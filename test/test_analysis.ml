(* Analysis tests: call graph, vectorization/dependence analysis, FP flow
   graph, static cost model, def-use summaries. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f
let st_of src = Symtab.build (Parser.parse src)

(* first-occurrence textual substitution for fixture tweaking *)
module Str_replace = struct
  let replace haystack needle replacement =
    let nl = String.length needle in
    let hl = String.length haystack in
    let rec find i =
      if i + nl > hl then None
      else if String.sub haystack i nl = needle then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> Alcotest.failf "fixture does not contain %S" needle
    | Some i ->
      String.sub haystack 0 i ^ replacement ^ String.sub haystack (i + nl) (hl - i - nl)
end

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)

let callgraph_src =
  {|
module m
  implicit none
contains
  subroutine a()
    call b
    call b
    call c
  end subroutine a
  subroutine b()
    real(kind=8) :: x
    x = helper(1.0d0)
  end subroutine b
  subroutine c()
    call c
  end subroutine c
  function helper(v) result(w)
    real(kind=8) :: v, w
    w = v
  end function helper
end module m
program p
  use m
  implicit none
  call a
end program p
|}

let callgraph_tests =
  [
    t "callees with static counts" (fun () ->
        let g = Analysis.Callgraph.build (st_of callgraph_src) in
        Alcotest.(check (list (pair string int)))
          "a calls" [ ("b", 2); ("c", 1) ]
          (Analysis.Callgraph.callees g (Some "a")));
    t "function references are edges" (fun () ->
        let g = Analysis.Callgraph.build (st_of callgraph_src) in
        Alcotest.(check (list (pair string int)))
          "b calls" [ ("helper", 1) ]
          (Analysis.Callgraph.callees g (Some "b")));
    t "main body edges" (fun () ->
        let g = Analysis.Callgraph.build (st_of callgraph_src) in
        Alcotest.(check (list (pair string int))) "main" [ ("a", 1) ]
          (Analysis.Callgraph.callees g None));
    t "callers reverse edges" (fun () ->
        let g = Analysis.Callgraph.build (st_of callgraph_src) in
        Alcotest.(check int) "b has one caller" 1
          (List.length (Analysis.Callgraph.callers g "b")));
    t "reachable closure" (fun () ->
        let g = Analysis.Callgraph.build (st_of callgraph_src) in
        Alcotest.(check (list string)) "from a" [ "a"; "b"; "c"; "helper" ]
          (List.sort compare (Analysis.Callgraph.reachable g ~roots:[ "a" ])));
    t "recursion detection" (fun () ->
        let g = Analysis.Callgraph.build (st_of callgraph_src) in
        Alcotest.(check bool) "c recursive" true (Analysis.Callgraph.is_recursive g "c");
        Alcotest.(check bool) "a not recursive" false (Analysis.Callgraph.is_recursive g "a"));
  ]

(* ------------------------------------------------------------------ *)
(* Vectorization analysis                                              *)

let vec_report src =
  let st = st_of src in
  match Analysis.Vectorize.analyze st with
  | r :: _ -> r
  | [] -> Alcotest.fail "no loops analyzed"

let mk_loop body_decls body =
  Printf.sprintf
    "program p\n implicit none\n integer :: i\n%s\n do i = 1, 10\n%s\n end do\nend program p\n"
    body_decls body

let has_blocker pred r = List.exists pred r.Analysis.Vectorize.blockers

let vectorize_tests =
  [
    t "clean stencil loop vectorizes" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8), dimension(12) :: a, b" "  b(i) = a(i) * 2.0d0 + a(i + 1)")
        in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable r));
    t "array recurrence blocks" (fun () ->
        let r = vec_report (mk_loop "real(kind=8), dimension(12) :: a" "  a(i + 1) = a(i) * 0.5d0") in
        Alcotest.(check bool) "carried" true
          (has_blocker
             (function Analysis.Vectorize.Carried_array_dependence "a" -> true | _ -> false)
             r));
    t "same-index read+write is fine" (fun () ->
        let r = vec_report (mk_loop "real(kind=8), dimension(12) :: a" "  a(i) = a(i) * 0.5d0") in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable r));
    t "scalar recurrence blocks" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8) :: prev\n real(kind=8), dimension(12) :: a"
               "  a(i) = prev * 0.5d0\n  prev = a(i)")
        in
        Alcotest.(check bool) "carried scalar" true
          (has_blocker
             (function Analysis.Vectorize.Carried_scalar_dependence "prev" -> true | _ -> false)
             r));
    t "privatizable temporary is fine" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8) :: tmp\n real(kind=8), dimension(12) :: a"
               "  tmp = a(i) * 2.0d0\n  a(i) = tmp + 1.0d0")
        in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable r));
    t "sum reduction recognized" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8) :: s\n real(kind=8), dimension(12) :: a" "  s = s + a(i)")
        in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable r);
        Alcotest.(check (list string)) "reduction" [ "s" ] r.Analysis.Vectorize.reductions);
    t "max reduction recognized" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8) :: m\n real(kind=8), dimension(12) :: a" "  m = max(m, a(i))")
        in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable r));
    t "accumulator read elsewhere disqualifies (funarc d1)" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8) :: d1, t1" "  d1 = 2.0d0 * d1\n  t1 = t1 + sin(d1) / d1")
        in
        Alcotest.(check bool) "not vectorizable" false (Analysis.Vectorize.vectorizable r));
    t "do while never vectorizes" (fun () ->
        let src =
          "program p\n implicit none\n real(kind=8) :: x\n x = 0.0d0\n do while (x < 1.0d0)\n  x = x + 0.25d0\n end do\nend program p\n"
        in
        let r = vec_report src in
        Alcotest.(check bool) "blocked" true
          (has_blocker (function Analysis.Vectorize.Do_while_loop -> true | _ -> false) r));
    t "exit blocks vectorization" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8), dimension(12) :: a" "  a(i) = 1.0d0\n  if (a(i) > 0.5d0) exit")
        in
        Alcotest.(check bool) "blocked" true
          (has_blocker (function Analysis.Vectorize.Irregular_control_flow -> true | _ -> false) r));
    t "nested loop blocks the outer loop" (fun () ->
        let src =
          "program p\n implicit none\n integer :: i, j\n real(kind=8), dimension(4, 4) :: a\n do i = 1, 4\n  do j = 1, 4\n   a(i, j) = 1.0d0\n  end do\n end do\nend program p\n"
        in
        let st = st_of src in
        let reports = Analysis.Vectorize.analyze st in
        Alcotest.(check int) "two loops" 2 (List.length reports);
        let outer = Option.get (Analysis.Vectorize.report_for reports 0) in
        let inner = Option.get (Analysis.Vectorize.report_for reports 1) in
        Alcotest.(check bool) "outer blocked" true
          (has_blocker (function Analysis.Vectorize.Nested_loop -> true | _ -> false) outer);
        Alcotest.(check bool) "inner ok" true (Analysis.Vectorize.vectorizable inner));
    t "intrinsic calls keep vectorization" (fun () ->
        let r =
          vec_report (mk_loop "real(kind=8), dimension(12) :: a" "  a(i) = sqrt(abs(a(i)))")
        in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable r));
    t "kind-uniform inlinable call keeps vectorization" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function lin(x) result(y)\n  real(kind=8) :: x, y\n  y = 2.0d0 * x + 1.0d0\n end function lin\n subroutine work(a, n)\n  integer :: n, i\n  real(kind=8), dimension(n) :: a\n  do i = 1, n\n   a(i) = lin(a(i))\n  end do\n end subroutine work\nend module m\n"
        in
        let st = st_of src in
        let loop =
          List.find
            (fun r -> r.Analysis.Vectorize.proc = Some "work")
            (Analysis.Vectorize.analyze st)
        in
        Alcotest.(check bool) "vectorizable" true (Analysis.Vectorize.vectorizable loop);
        Alcotest.(check (list string)) "inlined" [ "lin" ] loop.Analysis.Vectorize.inlined_calls);
    t "kind-mismatched call boundary blocks vectorization" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function lin(x) result(y)\n  real(kind=4) :: x, y\n  y = 2.0 * x + 1.0\n end function lin\n subroutine work(a, n)\n  integer :: n, i\n  real(kind=8), dimension(n) :: a\n  do i = 1, n\n   a(i) = lin(a(i))\n  end do\n end subroutine work\nend module m\n"
        in
        let st = st_of src in
        let loop =
          List.find
            (fun r -> r.Analysis.Vectorize.proc = Some "work")
            (Analysis.Vectorize.analyze st)
        in
        Alcotest.(check bool) "blocked" true
          (has_blocker
             (function Analysis.Vectorize.Non_inlinable_call "lin" -> true | _ -> false)
             loop));
    t "mixed-kind operations counted as conversion sites" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=4), dimension(12) :: a\n real(kind=8) :: w"
               "  a(i) = w * a(i)")
        in
        Alcotest.(check bool) "has conv sites" true (r.Analysis.Vectorize.conv_sites >= 1);
        Alcotest.(check bool) "still vectorizable" true (Analysis.Vectorize.vectorizable r));
    t "select case in a loop body blocks vectorization" (fun () ->
        let r =
          vec_report
            (mk_loop "real(kind=8), dimension(12) :: a\n integer :: k"
               "  k = mod(i, 2)\n  select case (k)\n  case (0)\n   a(i) = 1.0d0\n  case default\n   a(i) = 2.0d0\n  end select")
        in
        Alcotest.(check bool) "blocked" true
          (has_blocker (function Analysis.Vectorize.Irregular_control_flow -> true | _ -> false) r));
    t "calls inside select arms are seen by the call graph" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine a(k)\n  integer :: k\n  select case (k)\n  case (1)\n   call b\n  case default\n   call c\n  end select\n end subroutine a\n subroutine b()\n  return\n end subroutine b\n subroutine c()\n  return\n end subroutine c\nend module m\n"
        in
        let g = Analysis.Callgraph.build (st_of src) in
        Alcotest.(check (list (pair string int))) "edges" [ ("b", 1); ("c", 1) ]
          (Analysis.Callgraph.callees g (Some "a")));
    t "literal operands are free conversions" (fun () ->
        (* a k4 literal with a k4 array: no mixing at all *)
        let r =
          vec_report (mk_loop "real(kind=4), dimension(12) :: a" "  a(i) = 2.0 * a(i)")
        in
        Alcotest.(check int) "no conv sites" 0 r.Analysis.Vectorize.conv_sites;
        (* assigning a k8 literal to a k4 element folds at compile time *)
        let r2 = vec_report (mk_loop "real(kind=4), dimension(12) :: a" "  a(i) = 2.0d0") in
        Alcotest.(check int) "literal store free" 0 r2.Analysis.Vectorize.conv_sites;
        (* but a k8-promoted expression stored to k4 is a real conversion *)
        let r3 =
          vec_report (mk_loop "real(kind=4), dimension(12) :: a" "  a(i) = 2.0d0 * a(i)")
        in
        Alcotest.(check bool) "promoted store counted" true
          (r3.Analysis.Vectorize.conv_sites >= 1));
  ]

(* ------------------------------------------------------------------ *)
(* Flow graph                                                          *)

let flow_src =
  {|
module m
  implicit none
  real(kind=8), dimension(8) :: buf
contains
  subroutine consume(v, s)
    real(kind=8), dimension(8) :: v
    real(kind=4) :: s
    v(1) = s
  end subroutine consume
  subroutine drive()
    real(kind=4) :: scale
    integer :: i
    scale = 2.0
    do i = 1, 3
      call consume(buf, scale)
    end do
  end subroutine drive
end module m
program p
  use m
  implicit none
  call drive
end program p
|}

let flowgraph_tests =
  [
    t "nodes cover every FP declaration" (fun () ->
        let g = Analysis.Flowgraph.build (st_of flow_src) in
        let names = List.sort compare (List.map (fun n -> n.Analysis.Flowgraph.n_var) (Analysis.Flowgraph.nodes g)) in
        Alcotest.(check (list string)) "names" [ "buf"; "s"; "scale"; "v" ] names);
    t "edges record parameter passing with loop depth" (fun () ->
        let g = Analysis.Flowgraph.build (st_of flow_src) in
        let edges = Analysis.Flowgraph.edges g in
        Alcotest.(check int) "two real dummies" 2 (List.length edges);
        List.iter
          (fun e -> Alcotest.(check int) "depth 1" 1 e.Analysis.Flowgraph.e_loop_depth)
          edges);
    t "matching kinds: no violations" (fun () ->
        let g = Analysis.Flowgraph.build (st_of flow_src) in
        Alcotest.(check int) "violations" 0 (List.length (Analysis.Flowgraph.violations g)));
    t "array element counts on nodes" (fun () ->
        let g = Analysis.Flowgraph.build (st_of flow_src) in
        let buf = Option.get (Analysis.Flowgraph.node_of_var g ~scope:(Symtab.Unit_scope "m") "buf") in
        Alcotest.(check (option int)) "8 elements" (Some 8) buf.Analysis.Flowgraph.n_elements;
        Alcotest.(check bool) "is array" true buf.Analysis.Flowgraph.n_is_array);
    t "kind mismatch shows as violation" (fun () ->
        (* retype the scale variable to kind 8: consume's s stays kind 4 *)
        let mismatched = Str_replace.replace flow_src "real(kind=4) :: scale" "real(kind=8) :: scale" in
        let g = Analysis.Flowgraph.build (st_of mismatched) in
        Alcotest.(check int) "one violation" 1 (List.length (Analysis.Flowgraph.violations g)));
  ]

(* ------------------------------------------------------------------ *)
(* Static cost model                                                   *)

let static_cost_tests =
  [
    t "clean program has zero penalty" (fun () ->
        let v = Analysis.Static_cost.evaluate (st_of flow_src) in
        Alcotest.(check (float 0.0)) "penalty" 0.0 v.Analysis.Static_cost.penalty);
    t "mismatch penalty scales with loop depth" (fun () ->
        let shallow =
          Str_replace.replace flow_src "real(kind=4) :: scale" "real(kind=8) :: scale"
        in
        let deep =
          Str_replace.replace shallow "do i = 1, 3\n      call consume(buf, scale)\n    end do"
            "do i = 1, 3\n      do j = 1, 3\n        call consume(buf, scale)\n      end do\n    end do"
        in
        let deep = Str_replace.replace deep "integer :: i" "integer :: i, j" in
        let vs = Analysis.Static_cost.evaluate (st_of shallow) in
        let vd = Analysis.Static_cost.evaluate (st_of deep) in
        Alcotest.(check bool) "deeper costs more" true
          (vd.Analysis.Static_cost.penalty > vs.Analysis.Static_cost.penalty));
    t "array mismatch penalized by elements" (fun () ->
        let arr_mismatch =
          Str_replace.replace flow_src "real(kind=8), dimension(8) :: v"
            "real(kind=4), dimension(8) :: v"
        in
        let scalar_mismatch =
          Str_replace.replace flow_src "real(kind=4) :: s" "real(kind=8) :: s"
        in
        let va = Analysis.Static_cost.evaluate (st_of arr_mismatch) in
        let vs = Analysis.Static_cost.evaluate (st_of scalar_mismatch) in
        Alcotest.(check bool) "array mismatch costs more" true
          (va.Analysis.Static_cost.penalty > vs.Analysis.Static_cost.penalty));
    t "predicts_worse on lost vectorization" (fun () ->
        let base = { Analysis.Static_cost.penalty = 0.0; vector_loops = 5; mismatched_edges = 0 } in
        let cand = { Analysis.Static_cost.penalty = 0.0; vector_loops = 4; mismatched_edges = 0 } in
        Alcotest.(check bool) "rejected" true
          (Analysis.Static_cost.predicts_worse ~baseline:base ~candidate:cand ~penalty_budget:1e9));
    t "predicts_worse on penalty budget" (fun () ->
        let base = { Analysis.Static_cost.penalty = 0.0; vector_loops = 5; mismatched_edges = 0 } in
        let cand = { Analysis.Static_cost.penalty = 100.0; vector_loops = 5; mismatched_edges = 2 } in
        Alcotest.(check bool) "rejected" true
          (Analysis.Static_cost.predicts_worse ~baseline:base ~candidate:cand ~penalty_budget:50.0);
        Alcotest.(check bool) "accepted under budget" false
          (Analysis.Static_cost.predicts_worse ~baseline:base ~candidate:cand ~penalty_budget:500.0));
  ]

(* ------------------------------------------------------------------ *)
(* Static trip counts                                                  *)

let do_loop ?step from_ to_ =
  Fortran.Ast.Do
    { id = 0; var = "i"; from_ = Ast.Int_lit from_; to_ = Ast.Int_lit to_; step; body = [] }

let trip_count_tests =
  let tc = Analysis.Static_cost.trip_count in
  [
    t "counted loop folds" (fun () ->
        Alcotest.(check (option int)) "1..10" (Some 10) (tc (do_loop 1 10));
        Alcotest.(check (option int)) "5..5" (Some 1) (tc (do_loop 5 5));
        Alcotest.(check (option int))
          "1..10 by 3" (Some 4)
          (tc (do_loop ~step:(Ast.Int_lit 3) 1 10)));
    t "zero-trip loop is Some 0, not None" (fun () ->
        Alcotest.(check (option int)) "5..1" (Some 0) (tc (do_loop 5 1));
        Alcotest.(check (option int))
          "1..5 by -1" (Some 0)
          (tc (do_loop ~step:(Ast.Int_lit (-1)) 1 5)));
    t "negative stride counts downward" (fun () ->
        Alcotest.(check (option int))
          "10..1 by -2" (Some 5)
          (tc (do_loop ~step:(Ast.Unop (Ast.Neg, Ast.Int_lit 2)) 10 1));
        Alcotest.(check (option int))
          "10..1 by -3" (Some 4)
          (tc (do_loop ~step:(Ast.Int_lit (-3)) 10 1)));
    t "do-while and zero step do not fold" (fun () ->
        Alcotest.(check (option int))
          "do while" None
          (tc (Fortran.Ast.Do_while { id = 0; cond = Ast.Logical_lit true; body = [] }));
        Alcotest.(check (option int))
          "zero step" None
          (tc (do_loop ~step:(Ast.Int_lit 0) 1 10)));
    t "const_int folds through the parameter env" (fun () ->
        let env = function "n" -> Some 100 | _ -> None in
        Alcotest.(check (option int))
          "n - 1" (Some 99)
          (Analysis.Static_cost.const_int ~env (Ast.Binop (Ast.Sub, Ast.Var "n", Ast.Int_lit 1)));
        Alcotest.(check (option int))
          "unbound var" None
          (Analysis.Static_cost.const_int (Ast.Var "n"));
        Alcotest.(check (option int))
          "division by zero" None
          (Analysis.Static_cost.const_int (Ast.Binop (Ast.Div, Ast.Int_lit 1, Ast.Int_lit 0)));
        Alcotest.(check (option int))
          "1..n loop" (Some 100)
          (tc ~env
             (Fortran.Ast.Do
                { id = 0; var = "i"; from_ = Ast.Int_lit 1; to_ = Ast.Var "n"; step = None; body = [] })));
  ]

(* ------------------------------------------------------------------ *)
(* Def-use                                                             *)

let defuse_tests =
  [
    t "defs and uses with loop depth" (fun () ->
        let src =
          "program p\n implicit none\n integer :: i\n real(kind=8) :: acc\n real(kind=8), dimension(4) :: a\n acc = 0.0d0\n do i = 1, 4\n  acc = acc + a(i)\n end do\n print *, 'acc', acc\nend program p\n"
        in
        let st = st_of src in
        let summaries = Analysis.Defuse.analyze st in
        let acc =
          Option.get (Analysis.Defuse.for_var summaries ~scope:(Symtab.Unit_scope "p") "acc")
        in
        Alcotest.(check int) "two defs" 2 (List.length acc.Analysis.Defuse.defs);
        Alcotest.(check int) "deepest use" 1 (Analysis.Defuse.max_use_depth acc));
    t "call arguments count as defs" (fun () ->
        let st = st_of flow_src in
        let summaries = Analysis.Defuse.analyze st in
        let buf =
          Option.get (Analysis.Defuse.for_var summaries ~scope:(Symtab.Unit_scope "m") "buf")
        in
        Alcotest.(check bool) "buf has defs" true (buf.Analysis.Defuse.defs <> []));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("callgraph", callgraph_tests);
      ("vectorize", vectorize_tests);
      ("flowgraph", flowgraph_tests);
      ("static cost", static_cost_tests);
      ("trip count", trip_count_tests);
      ("defuse", defuse_tests);
    ]
