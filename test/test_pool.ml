(* Pool tests: submission-order preservation, exception propagation,
   reuse across batches, lifecycle edge cases. *)

open Search

let t name f = Alcotest.test_case name `Quick f

(* burn a little CPU so tasks do not finish in lockstep *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i mod 7)
  done;
  Sys.opaque_identity !acc

let lifecycle_tests =
  [
    t "create refuses zero workers" (fun () ->
        match Pool.create ~workers:0 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "size reports the worker count" (fun () ->
        Pool.with_pool ~workers:3 (fun p -> Alcotest.(check int) "3" 3 (Pool.size p)));
    t "shutdown is idempotent" (fun () ->
        let p = Pool.create ~workers:2 in
        Pool.shutdown p;
        Pool.shutdown p);
    t "map after shutdown raises" (fun () ->
        let p = Pool.create ~workers:2 in
        Pool.shutdown p;
        match Pool.map p (fun x -> x) [ 1 ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "default_workers is non-negative" (fun () ->
        Alcotest.(check bool) ">= 0" true (Pool.default_workers () >= 0));
  ]

let map_tests =
  [
    t "empty batch" (fun () ->
        Pool.with_pool ~workers:2 (fun p ->
            Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) [])));
    t "preserves submission order" (fun () ->
        Pool.with_pool ~workers:4 (fun p ->
            let xs = List.init 100 (fun i -> i) in
            let ys =
              Pool.map p
                (fun i ->
                  (* later submissions do less work, so they tend to finish
                     first — order must still follow submission *)
                  ignore (spin (1000 * (100 - i)));
                  2 * i)
                xs
            in
            Alcotest.(check (list int)) "doubled in order" (List.map (fun i -> 2 * i) xs) ys));
    t "more workers than tasks" (fun () ->
        Pool.with_pool ~workers:8 (fun p ->
            Alcotest.(check (list int)) "squares" [ 1; 4; 9 ]
              (Pool.map p (fun x -> x * x) [ 1; 2; 3 ])));
    t "batch larger than the bounded queue" (fun () ->
        (* capacity is 2*workers = 2: submissions must block and drain *)
        Pool.with_pool ~workers:1 (fun p ->
            let xs = List.init 50 (fun i -> i) in
            Alcotest.(check (list int)) "all there" xs (Pool.map p (fun x -> x) xs)));
    t "worker exception propagates" (fun () ->
        Pool.with_pool ~workers:3 (fun p ->
            match Pool.map p (fun i -> if i = 5 then failwith "boom" else i) (List.init 10 Fun.id) with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> Alcotest.(check string) "message" "boom" m));
    t "first exception in submission order wins" (fun () ->
        Pool.with_pool ~workers:4 (fun p ->
            match
              Pool.map p
                (fun i -> if i >= 3 then failwith (Printf.sprintf "boom-%d" i) else i)
                (List.init 10 Fun.id)
            with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> Alcotest.(check string) "earliest task" "boom-3" m));
    t "pool survives a failed batch" (fun () ->
        Pool.with_pool ~workers:2 (fun p ->
            (try ignore (Pool.map p (fun _ -> failwith "boom") [ 1; 2; 3 ]) with Failure _ -> ());
            Alcotest.(check (list int)) "still works" [ 2; 4 ] (Pool.map p (fun x -> 2 * x) [ 1; 2 ])));
    t "reusable across many batches" (fun () ->
        Pool.with_pool ~workers:2 (fun p ->
            for k = 1 to 20 do
              let xs = List.init k (fun i -> i) in
              Alcotest.(check (list int)) "batch" (List.map (fun i -> i + k) xs)
                (Pool.map p (fun i -> i + k) xs)
            done));
  ]

let () =
  Alcotest.run "pool" [ ("lifecycle", lifecycle_tests); ("map", map_tests) ]
