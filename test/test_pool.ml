(* Pool tests: submission-order preservation, exception propagation,
   reuse across batches, lifecycle edge cases. *)

open Search

let t name f = Alcotest.test_case name `Quick f

(* burn a little CPU so tasks do not finish in lockstep *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i mod 7)
  done;
  Sys.opaque_identity !acc

let lifecycle_tests =
  [
    t "create refuses zero workers" (fun () ->
        match Pool.create ~workers:0 with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "size reports the worker count" (fun () ->
        Pool.with_pool ~workers:3 (fun p -> Alcotest.(check int) "3" 3 (Pool.size p)));
    t "shutdown is idempotent" (fun () ->
        let p = Pool.create ~workers:2 in
        Pool.shutdown p;
        Pool.shutdown p);
    t "map after shutdown raises" (fun () ->
        let p = Pool.create ~workers:2 in
        Pool.shutdown p;
        match Pool.map p (fun x -> x) [ 1 ] with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "default_workers is non-negative" (fun () ->
        Alcotest.(check bool) ">= 0" true (Pool.default_workers () >= 0));
  ]

let map_tests =
  [
    t "empty batch" (fun () ->
        Pool.with_pool ~workers:2 (fun p ->
            Alcotest.(check (list int)) "empty" [] (Pool.map p (fun x -> x) [])));
    t "preserves submission order" (fun () ->
        Pool.with_pool ~workers:4 (fun p ->
            let xs = List.init 100 (fun i -> i) in
            let ys =
              Pool.map p
                (fun i ->
                  (* later submissions do less work, so they tend to finish
                     first — order must still follow submission *)
                  ignore (spin (1000 * (100 - i)));
                  2 * i)
                xs
            in
            Alcotest.(check (list int)) "doubled in order" (List.map (fun i -> 2 * i) xs) ys));
    t "more workers than tasks" (fun () ->
        Pool.with_pool ~workers:8 (fun p ->
            Alcotest.(check (list int)) "squares" [ 1; 4; 9 ]
              (Pool.map p (fun x -> x * x) [ 1; 2; 3 ])));
    t "batch larger than the bounded queue" (fun () ->
        (* capacity is 2*workers = 2: submissions must block and drain *)
        Pool.with_pool ~workers:1 (fun p ->
            let xs = List.init 50 (fun i -> i) in
            Alcotest.(check (list int)) "all there" xs (Pool.map p (fun x -> x) xs)));
    t "worker exception propagates" (fun () ->
        Pool.with_pool ~workers:3 (fun p ->
            match Pool.map p (fun i -> if i = 5 then failwith "boom" else i) (List.init 10 Fun.id) with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> Alcotest.(check string) "message" "boom" m));
    t "first exception in submission order wins" (fun () ->
        Pool.with_pool ~workers:4 (fun p ->
            match
              Pool.map p
                (fun i -> if i >= 3 then failwith (Printf.sprintf "boom-%d" i) else i)
                (List.init 10 Fun.id)
            with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> Alcotest.(check string) "earliest task" "boom-3" m));
    t "pool survives a failed batch" (fun () ->
        Pool.with_pool ~workers:2 (fun p ->
            (try ignore (Pool.map p (fun _ -> failwith "boom") [ 1; 2; 3 ]) with Failure _ -> ());
            Alcotest.(check (list int)) "still works" [ 2; 4 ] (Pool.map p (fun x -> 2 * x) [ 1; 2 ])));
    t "reusable across many batches" (fun () ->
        Pool.with_pool ~workers:2 (fun p ->
            for k = 1 to 20 do
              let xs = List.init k (fun i -> i) in
              Alcotest.(check (list int)) "batch" (List.map (fun i -> i + k) xs)
                (Pool.map p (fun i -> i + k) xs)
            done));
  ]

(* ------------------------------------------------------------------ *)
(* Shard scheduler: partitioner and deque properties, the deterministic
   schedule simulation, and the shards x workers determinism matrix.   *)

let qt = QCheck_alcotest.to_alcotest

let shard_unit_tests =
  [
    t "create refuses bad arguments" (fun () ->
        List.iter
          (fun (s, w) ->
            match Shard.create ~shards:s ~workers:w () with
            | sh ->
              Shard.shutdown sh;
              Alcotest.failf "expected Invalid_argument for %dx%d" s w
            | exception Invalid_argument _ -> ())
          [ (0, 2); (-1, 0); (2, -1) ]);
    t "slots: workers=0 is one sequential slot" (fun () ->
        Shard.with_shards ~shards:4 ~workers:0 (fun sh ->
            Alcotest.(check int) "slots" 1 (Shard.slots sh)));
    t "slots: shards x workers otherwise" (fun () ->
        Shard.with_shards ~shards:3 ~workers:2 (fun sh ->
            Alcotest.(check int) "slots" 6 (Shard.slots sh)));
    t "map preserves submission order" (fun () ->
        Shard.with_shards ~shards:3 ~workers:2 (fun sh ->
            let xs = List.init 100 Fun.id in
            let ys =
              Shard.map sh ~cost:(fun _ -> 1.0)
                (fun i ->
                  ignore (spin (1000 * (100 - i)));
                  2 * i)
                xs
            in
            Alcotest.(check (list int)) "doubled in order" (List.map (fun i -> 2 * i) xs) ys));
    t "first exception in submission order wins" (fun () ->
        Shard.with_shards ~shards:2 ~workers:2 (fun sh ->
            match
              Shard.map sh ~cost:(fun _ -> 1.0)
                (fun i -> if i >= 3 then failwith (Printf.sprintf "boom-%d" i) else i)
                (List.init 10 Fun.id)
            with
            | _ -> Alcotest.fail "expected Failure"
            | exception Failure m -> Alcotest.(check string) "earliest task" "boom-3" m));
    t "failed batch is not accounted, scheduler survives" (fun () ->
        Shard.with_shards ~shards:2 ~workers:2 (fun sh ->
            (try ignore (Shard.map sh ~cost:(fun _ -> 5.0) (fun _ -> failwith "boom") [ 1; 2 ])
             with Failure _ -> ());
            Alcotest.(check (float 1e-9)) "clock untouched" 0.0 (Shard.stats sh).Shard.sim_seconds;
            Alcotest.(check (list int)) "still works" [ 2; 4 ]
              (Shard.map sh ~cost:(fun _ -> 1.0) (fun x -> 2 * x) [ 1; 2 ])));
    t "serial evaluations advance the clock by their full cost" (fun () ->
        Shard.with_shards ~shards:4 ~workers:4 (fun sh ->
            Shard.serial sh 3.5;
            Shard.serial sh 1.5;
            let st = Shard.stats sh in
            Alcotest.(check (float 1e-9)) "sum" 5.0 st.Shard.sim_seconds;
            Alcotest.(check int) "count" 2 st.Shard.serial_tasks));
    t "deque hands out each element exactly once under racing takers" (fun () ->
        let n = 5000 in
        let dq = Shard.Deque.of_list (List.init n Fun.id) in
        let taken = Array.make n 0 in
        let thief () =
          let rec go acc =
            match Shard.Deque.take dq with Some x -> go (x :: acc) | None -> acc
          in
          go []
        in
        let domains = List.init 4 (fun _ -> Domain.spawn thief) in
        let batches = List.map Domain.join domains in
        List.iter (List.iter (fun x -> taken.(x) <- taken.(x) + 1)) batches;
        Array.iteri
          (fun i c -> if c <> 1 then Alcotest.failf "element %d taken %d times" i c)
          taken;
        Alcotest.(check int) "drained" 0 (Shard.Deque.remaining dq));
  ]

let shard_partition_exactly_once =
  QCheck.Test.make ~name:"partition assigns every element exactly once, in order" ~count:300
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (shards, xs) ->
      let parts = Shard.partition ~shards xs in
      Array.length parts = shards && List.concat (Array.to_list parts) = xs)

let shard_partition_balanced =
  QCheck.Test.make ~name:"partition blocks differ by at most one element" ~count:300
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (shards, xs) ->
      let sizes = Array.map List.length (Shard.partition ~shards xs) in
      let mn = Array.fold_left min max_int sizes and mx = Array.fold_left max 0 sizes in
      mx - mn <= 1)

(* a queue grid generator: up to 5 shards of up to 8 tasks, costs in (0, 10] *)
let queues_gen =
  QCheck.(
    pair (int_range 0 4)
      (list_of_size Gen.(1 -- 5)
         (list_of_size Gen.(0 -- 8) (map (fun f -> 0.001 +. f) (float_bound_inclusive 10.0)))))

let sim_sequential_is_total =
  QCheck.Test.make ~name:"Sim: workers=0 makespan is the serial total, no steals" ~count:300
    queues_gen
    (fun (_, qs) ->
      let shards = max 1 (List.length qs) in
      let queues = Array.of_list (List.map Array.of_list qs) in
      let queues =
        if Array.length queues = shards then queues else Array.make shards [||]
      in
      let total = Array.fold_left (fun a q -> Array.fold_left ( +. ) a q) 0.0 queues in
      let o = Shard.Sim.schedule ~shards ~workers:0 ~queues in
      Float.abs (o.Shard.Sim.makespan -. total) < 1e-9 && o.Shard.Sim.steals = 0)

let sim_makespan_bounds =
  QCheck.Test.make ~name:"Sim: critical-path and work bounds hold at every grid point" ~count:300
    queues_gen
    (fun (workers, qs) ->
      let shards = max 1 (List.length qs) in
      let queues = Array.of_list (List.map Array.of_list qs) in
      QCheck.assume (Array.length queues = shards);
      let total = Array.fold_left (fun a q -> Array.fold_left ( +. ) a q) 0.0 queues in
      let longest = Array.fold_left (fun a q -> Array.fold_left max a q) 0.0 queues in
      let slots = if workers <= 0 then 1 else shards * workers in
      let o = Shard.Sim.schedule ~shards ~workers ~queues in
      let m = o.Shard.Sim.makespan in
      m >= (total /. float_of_int slots) -. 1e-9
      && m >= longest -. 1e-9
      && m <= total +. 1e-9)

let sim_single_shard_never_steals =
  QCheck.Test.make ~name:"Sim: one shard never steals" ~count:200
    QCheck.(
      pair (int_range 0 4)
        (list_of_size Gen.(0 -- 12) (map (fun f -> 0.001 +. f) (float_bound_inclusive 10.0))))
    (fun (workers, costs) ->
      let queues = [| Array.of_list costs |] in
      (Shard.Sim.schedule ~shards:1 ~workers ~queues).Shard.Sim.steals = 0)

let shard_map_order_any_grid =
  QCheck.Test.make ~name:"map keeps the commit stream in submission order at any grid point"
    ~count:25
    QCheck.(triple (int_range 1 4) (int_range 0 3) (small_list (float_bound_inclusive 5.0)))
    (fun (shards, workers, costs) ->
      Shard.with_shards ~shards ~workers (fun sh ->
          let ys = Shard.map sh ~cost:Fun.id (fun c -> c +. 1.0) costs in
          ys = List.map (fun c -> c +. 1.0) costs))

let shard_property_tests =
  [
    qt shard_partition_exactly_once;
    qt shard_partition_balanced;
    qt sim_sequential_is_total;
    qt sim_makespan_bounds;
    qt sim_single_shard_never_steals;
    qt shard_map_order_any_grid;
  ]

(* ------------------------------------------------------------------ *)
(* The shards x workers determinism matrix: one small whole-model
   campaign, identical record for record, in summary, minimal set and
   cluster hours at every {1,2,4} x {0,4} point — and identical to the
   unsharded sequential run.                                           *)

let small_mpas =
  { Models.Registry.mpas with
    Models.Registry.source = Models.Mpas.source ~p:Models.Mpas.small () }

let matrix_config =
  { Core.Config.default with
    Core.Config.max_variants = Some 12;
    mode = Core.Config.Whole_model_guided }

let record_key (r : Variant.record) =
  (r.Variant.index, Transform.Assignment.signature r.Variant.asg, r.Variant.meas)

let minimal_key (c : Core.Tuner.campaign) =
  Option.map
    (fun (r : Search.Delta_debug.result) ->
      (List.map Transform.Assignment.atom_id r.Search.Delta_debug.high_set,
       r.Search.Delta_debug.finished, r.Search.Delta_debug.evaluations))
    c.Core.Tuner.minimal

let matrix_tests =
  [
    Alcotest.test_case "records identical at every shards x workers point" `Slow (fun () ->
        let reference =
          Core.Tuner.run_delta_debug ~config:matrix_config ~workers:0 small_mpas
        in
        let ref_keys = List.map record_key reference.Core.Tuner.records in
        List.iter
          (fun (s, w) ->
            let c =
              Core.Tuner.run_delta_debug ~config:matrix_config ~workers:w ~shards:s small_mpas
            in
            let label = Printf.sprintf "shards=%d workers=%d" s w in
            Alcotest.(check int)
              (label ^ " record count") (List.length ref_keys)
              (List.length c.Core.Tuner.records);
            if List.map record_key c.Core.Tuner.records <> ref_keys then
              Alcotest.failf "%s: record stream differs from the sequential run" label;
            Alcotest.(check bool)
              (label ^ " summary") true
              (compare reference.Core.Tuner.summary c.Core.Tuner.summary = 0);
            Alcotest.(check bool)
              (label ^ " minimal") true
              (minimal_key reference = minimal_key c);
            Alcotest.(check (float 1e-9))
              (label ^ " simulated hours") reference.Core.Tuner.simulated_hours
              c.Core.Tuner.simulated_hours;
            Alcotest.(check bool)
              (label ^ " backend") true
              (compare reference.Core.Tuner.backend c.Core.Tuner.backend = 0);
            let st = Option.get c.Core.Tuner.sched in
            Alcotest.(check int) (label ^ " sched shards") s st.Core.Tuner.sched_shards;
            Alcotest.(check int) (label ^ " sched workers") w st.Core.Tuner.sched_workers;
            if st.Core.Tuner.sched_sim_hours <= 0.0 then
              Alcotest.failf "%s: simulated makespan not accounted" label)
          [ (1, 0); (2, 0); (4, 0); (1, 4); (2, 4); (4, 4) ]);
    Alcotest.test_case "sharded journal resume re-evaluates nothing" `Slow (fun () ->
        Harness.with_dir @@ fun dir ->
        let base =
          Core.Tuner.run_delta_debug ~config:matrix_config ~workers:0 small_mpas
        in
        let faults =
          { Core.Cluster.Faults.none with Core.Cluster.Faults.preempt_at_hours = Some 0.05 }
        in
        let killed =
          Core.Tuner.run_delta_debug ~config:matrix_config ~workers:4 ~shards:2 ~journal:dir
            ~faults small_mpas
        in
        Alcotest.(check bool) "preempted" true killed.Core.Tuner.interrupted;
        let resumed =
          Core.Tuner.resume ~config:matrix_config ~workers:4 ~shards:4 ~model:small_mpas
            ~journal:dir ()
        in
        if
          List.map record_key resumed.Core.Tuner.records
          <> List.map record_key base.Core.Tuner.records
        then Alcotest.fail "resumed records differ from the uninterrupted run";
        Alcotest.(check bool) "summary" true
          (compare base.Core.Tuner.summary resumed.Core.Tuner.summary = 0);
        Alcotest.(check bool) "backend" true
          (compare base.Core.Tuner.backend resumed.Core.Tuner.backend = 0);
        Alcotest.(check int) "zero re-evaluation of the journaled prefix"
          (List.length resumed.Core.Tuner.records - resumed.Core.Tuner.preloaded)
          resumed.Core.Tuner.trace_stats.Search.Trace.misses);
  ]

let () =
  Alcotest.run "pool"
    [
      ("lifecycle", lifecycle_tests);
      ("map", map_tests);
      ("shard", shard_unit_tests);
      ("shard-properties", shard_property_tests);
      ("shard-matrix", matrix_tests);
    ]
