module mfz
  implicit none
  real(kind=4) :: g41
  real(kind=8) :: g81 = 2.0d0
contains
  subroutine p1(g81)
    real(kind=8), intent(inout) :: g81
    g81 = g81 + 1.0d0
  end subroutine p1
end module mfz

program fzmain
  use mfz
  implicit none
  call p1(g81)
  g41 = 1.5
  print *, 'chk', g81, g41
end program fzmain
