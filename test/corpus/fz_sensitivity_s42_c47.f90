module mfz
  implicit none
  real(kind=4) :: g41 = 1.5
  real(kind=8) :: g82
  logical :: gl1
  real(kind=8), dimension(3) :: ga83
contains
  subroutine p1(a1)
    real(kind=8), intent(out) :: a1
    select case (gl1)
    case (.true.)
    case (.false.)
      g82 = dble(2.0) / (abs(sqrt(abs(1.0d-2))) + 0.5d0) + max(ga83(1), -a1)
    end select
  end subroutine p1
end module mfz

program fzmain
  use mfz
  implicit none
  call p1(g82)
  print *, 'chk', -exp(min(max(g82, g82), 2.0d0)), g41
end program fzmain
