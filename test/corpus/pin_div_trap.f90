module mfz
  implicit none
  real(kind=8) :: g81, g82
  integer :: w1
end module mfz

program fzmain
  use mfz
  implicit none
  do while (w1 < 3)
    w1 = w1 + 1
    g82 = g82 + 0.5d0
  end do
  g81 = 1.0d0 / (g82 - 1.5d0)
  print *, 'chk', g81
end program fzmain
