module mfz
  implicit none
  real(kind=4) :: g41, g42 = 0.5
  real(kind=8) :: g81
  integer :: gi1
  real(kind=4), dimension(4) :: ga44
contains
  function p1(a1, a2, a3) result(res_)
    integer :: a1
    real(kind=8), intent(out) :: a2
    integer :: a3
    integer :: i1, i2
    real(kind=8) :: res_
    res_ = i2 + exp(min(i1 + g81, 2.0d0))
  end function p1
end module mfz

program fzmain
  use mfz
  implicit none
  real(kind=8) :: m1
  real(kind=8) :: m3
  integer :: i1, i2
  m1 = exp(min(1.5d0, 2.0d0)) / (abs(2.0d0 - g42) + 0.5d0) / (abs(atan(dble(i2))) + 0.5d0)
  if (min(g42, g42) > exp(min(3.0, 2.0))) then
  else
    do i1 = 1, 3
      m3 = p1(gi1, m1, size(ga44))
    end do
  end if
  print *, 'chk', log(abs(2 ** 0 - min(m3, m1)) + 0.5d0), g41
end program fzmain
