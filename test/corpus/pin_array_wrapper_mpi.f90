module mfz
  implicit none
  integer, parameter :: np = 3
  real(kind=8) :: g81
  real(kind=8), dimension(np) :: ga83
contains
  subroutine p1(a1)
    real(kind=8), dimension(3) :: a1
    integer :: i1
    do i1 = 1, np
      a1(i1) = a1(i1) * 2.0d0
    end do
  end subroutine p1
end module mfz

program fzmain
  use mfz
  implicit none
  integer :: i1
  do i1 = 1, np
    ga83(i1) = 0.5d0 * i1
  end do
  call p1(ga83)
  call mpi_allreduce(sum(ga83), g81, 'sum')
  select case (np)
  case (3)
    g81 = g81 + 1.0d0
  case default
    g81 = 0.0d0
  end select
  print *, 'chk', g81
end program fzmain
