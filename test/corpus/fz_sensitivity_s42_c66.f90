module mfz
  implicit none
  real(kind=8), parameter :: cf8 = 1.5d0
  real(kind=4) :: g41 = 0.25, g42
  real(kind=8) :: g81 = 0.5d0, g82 = 1.0d-2
  logical :: gl1
  real(kind=4), dimension(3) :: ga43
contains
  subroutine p2(a1, a2)
    integer :: a1
    logical :: a2
    real(kind=8) :: v2
    integer :: i2
    if (g42 - g41 >= g42 - g42) then
    else if (.not. v2 == g81) then
      g81 = tiny(g82)
    else
      print *, 'k2', max(g81 ** 0, cf8 ** 1)
    end if
  end subroutine p2
end module mfz

program fzmain
  use mfz
  implicit none
  integer :: i2
  call p2(i2, gl1)
  call p2(size(ga43), .false.)
end program fzmain
