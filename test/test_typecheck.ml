(* Type checker tests: inference, promotion, intrinsics, call-site kind
   compatibility (the wrapper obligation), constant folding. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let env_src =
  {|
module env
  implicit none
  integer, parameter :: n = 3
  real(kind=4) :: r4
  real(kind=8) :: r8
  integer :: i
  logical :: flag
  real(kind=8), dimension(n, 2) :: arr
  real(kind=4), dimension(n) :: arr4
contains
  subroutine sub8(a)
    real(kind=8), intent(inout) :: a
    a = a + 1.0d0
  end subroutine sub8

  subroutine subarr(v)
    real(kind=8), dimension(3) :: v
    v(1) = 0.0d0
  end subroutine subarr

  function f4(x) result(y)
    real(kind=4) :: x, y
    y = x
  end function f4
end module env

program main
  use env
  implicit none
  r8 = 1.0d0
end program main
|}

let st () = Symtab.build (Parser.parse env_src)

let parse_expr src =
  let prog = Parser.parse (Printf.sprintf "program t\n x = %s\nend program t\n" src) in
  match prog with
  | [ Ast.Main { Ast.main_body = [ { Ast.node = Ast.Assign (_, rhs); _ } ]; _ } ] -> rhs
  | _ -> Alcotest.fail "bad expression fixture"

let infer src =
  Typecheck.infer (st ()) ~in_proc:None (parse_expr src)

let check_ty name src expected =
  t name (fun () ->
      let got = infer src in
      Alcotest.(check string) name
        (Format.asprintf "%a" Typecheck.pp_ty expected)
        (Format.asprintf "%a" Typecheck.pp_ty got))

let expect_infer_error name src =
  t name (fun () ->
      match infer src with
      | _ -> Alcotest.failf "expected Typecheck.Error for %s" src
      | exception Typecheck.Error _ -> ())

let inference_tests =
  [
    check_ty "int + int" "i + 2" Typecheck.Integer;
    check_ty "int + real4 promotes" "i + r4" (Typecheck.Real Ast.K4);
    check_ty "real4 + real8 promotes to 8" "r4 + r8" (Typecheck.Real Ast.K8);
    check_ty "k4 literal keeps kind" "r4 * 2.0" (Typecheck.Real Ast.K4);
    check_ty "d0 literal forces k8" "r4 * 2.0d0" (Typecheck.Real Ast.K8);
    check_ty "comparison is logical" "r4 < r8" Typecheck.Logical;
    check_ty "logical connective" "flag .and. .true." Typecheck.Logical;
    check_ty "negation keeps type" "-r8" (Typecheck.Real Ast.K8);
    check_ty "array element type" "arr(1, 2)" (Typecheck.Real Ast.K8);
    check_ty "function result type" "f4(r4)" (Typecheck.Real Ast.K4);
    check_ty "power of int" "i ** 2" Typecheck.Integer;
    expect_infer_error "arithmetic on logical" "flag + 1";
    expect_infer_error "not on number" ".not. i";
    expect_infer_error "undeclared variable" "zz + 1";
    expect_infer_error "wrong subscript count" "arr(1)";
    expect_infer_error "non-integer subscript" "arr(1.5, 1)";
    expect_infer_error "subscripted scalar" "r4(1)";
  ]

let intrinsic_tests =
  [
    check_ty "sqrt keeps kind" "sqrt(r4)" (Typecheck.Real Ast.K4);
    check_ty "sin of k8" "sin(r8)" (Typecheck.Real Ast.K8);
    check_ty "abs of int is int" "abs(i)" Typecheck.Integer;
    check_ty "min promotes" "min(i, r4, r8)" (Typecheck.Real Ast.K8);
    check_ty "mod of ints" "mod(i, 3)" Typecheck.Integer;
    check_ty "real() default kind" "real(r8)" (Typecheck.Real Ast.K4);
    check_ty "real() with kind" "real(r4, 8)" (Typecheck.Real Ast.K8);
    check_ty "dble" "dble(r4)" (Typecheck.Real Ast.K8);
    check_ty "int()" "int(r8)" Typecheck.Integer;
    check_ty "sum over array" "sum(arr)" (Typecheck.Real Ast.K8);
    check_ty "maxval over k4 array" "maxval(arr4)" (Typecheck.Real Ast.K4);
    check_ty "size is integer" "size(arr)" Typecheck.Integer;
    check_ty "epsilon keeps kind" "epsilon(r4)" (Typecheck.Real Ast.K4);
    check_ty "tanh keeps kind" "tanh(r4)" (Typecheck.Real Ast.K4);
    check_ty "atan2 promotes" "atan2(r4, r8)" (Typecheck.Real Ast.K8);
    check_ty "dot_product of k8 arrays" "dot_product(arr4, arr4)" (Typecheck.Real Ast.K4);
    expect_infer_error "sqrt of integer" "sqrt(i)";
    expect_infer_error "sum of scalar" "sum(r8)";
    expect_infer_error "min arity" "min(r4)";
  ]

(* ------------------------------------------------------------------ *)

let with_call call_src k =
  let src =
    Printf.sprintf
      {|
module env2
  implicit none
  real(kind=4) :: r4
  real(kind=8) :: r8
  real(kind=4), dimension(3) :: a4
  real(kind=8), dimension(3) :: a8
contains
  subroutine sub8(a)
    real(kind=8), intent(inout) :: a
    a = a + 1.0d0
  end subroutine sub8

  subroutine subarr(v)
    real(kind=8), dimension(3) :: v
    v(1) = 0.0d0
  end subroutine subarr
end module env2

program main
  use env2
  implicit none
  %s
end program main
|}
      call_src
  in
  k (Symtab.build (Parser.parse src))

let mismatch_tests =
  [
    t "matching call has no mismatches" (fun () ->
        with_call "call sub8(r8)" (fun st ->
            Alcotest.(check int) "mismatches" 0 (List.length (Typecheck.mismatches st));
            Typecheck.check_program st));
    t "kind-mismatched scalar argument detected" (fun () ->
        with_call "call sub8(r4)" (fun st ->
            match Typecheck.mismatches st with
            | [ m ] ->
              Alcotest.(check string) "callee" "sub8" m.Typecheck.mm_callee;
              Alcotest.(check bool) "kinds" true
                (m.Typecheck.mm_actual_kind = Ast.K4 && m.Typecheck.mm_dummy_kind = Ast.K8);
              Alcotest.(check bool) "scalar" false m.Typecheck.mm_is_array
            | _ -> Alcotest.fail "expected exactly one mismatch"));
    t "kind-mismatched literal argument detected" (fun () ->
        with_call "call sub8(1.0)" (fun st ->
            Alcotest.(check int) "mismatches" 1 (List.length (Typecheck.mismatches st))));
    t "kind-mismatched array argument detected" (fun () ->
        with_call "call subarr(a4)" (fun st ->
            match Typecheck.mismatches st with
            | [ m ] -> Alcotest.(check bool) "array" true m.Typecheck.mm_is_array
            | _ -> Alcotest.fail "expected exactly one mismatch"));
    t "check_program raises on mismatch" (fun () ->
        with_call "call sub8(r4)" (fun st ->
            match Typecheck.check_program st with
            | () -> Alcotest.fail "expected Typecheck.Error"
            | exception Typecheck.Error _ -> ()));
    t "expression actual with matching kind is fine" (fun () ->
        with_call "call sub8(r8 * 2.0d0 + 1.0d0)" (fun st ->
            Alcotest.(check int) "mismatches" 0 (List.length (Typecheck.mismatches st))));
    t "mismatch inside expression call" (fun () ->
        (* function reference in an expression also gets checked *)
        let src =
          "module m\n implicit none\n real(kind=4) :: r4\n real(kind=8) :: out\ncontains\n function g(x) result(y)\n  real(kind=8) :: x, y\n  y = x\n end function g\nend module m\nprogram p\n use m\n implicit none\n out = g(r4) + 1.0d0\nend program p\n"
        in
        let st = Symtab.build (Parser.parse src) in
        Alcotest.(check int) "mismatches" 1 (List.length (Typecheck.mismatches st)));
  ]

let folding_tests =
  [
    t "static_int literal" (fun () ->
        Alcotest.(check (option int)) "5" (Some 5)
          (Typecheck.static_int (st ()) ~in_proc:None (Ast.Int_lit 5)));
    t "static_int parameter" (fun () ->
        Alcotest.(check (option int)) "n" (Some 3)
          (Typecheck.static_int (st ()) ~in_proc:None (Ast.Var "n")));
    t "static_int arithmetic" (fun () ->
        let e = parse_expr "n * 2 + 1" in
        Alcotest.(check (option int)) "7" (Some 7) (Typecheck.static_int (st ()) ~in_proc:None e));
    t "static_int power" (fun () ->
        let e = parse_expr "2 ** n" in
        Alcotest.(check (option int)) "8" (Some 8) (Typecheck.static_int (st ()) ~in_proc:None e));
    t "static_int of runtime variable is None" (fun () ->
        Alcotest.(check (option int)) "None" None
          (Typecheck.static_int (st ()) ~in_proc:None (Ast.Var "i")));
    t "static_elements of 2d array" (fun () ->
        let st = st () in
        let v = Option.get (Symtab.lookup_var st ~in_proc:None "arr") in
        Alcotest.(check (option int)) "n*2" (Some 6) (Typecheck.static_elements st ~in_proc:None v));
    t "static_elements of scalar" (fun () ->
        let st = st () in
        let v = Option.get (Symtab.lookup_var st ~in_proc:None "r8") in
        Alcotest.(check (option int)) "1" (Some 1) (Typecheck.static_elements st ~in_proc:None v));
  ]

let whole_program_tests =
  [
    t "all bundled models type-check" (fun () ->
        List.iter
          (fun (m : Models.Registry.t) ->
            let st = Symtab.build (Parser.parse m.Models.Registry.source) in
            Typecheck.check_program st)
          (Models.Registry.funarc :: Models.Registry.all));
    t "do bound must be integer" (fun () ->
        let src = "program p\n implicit none\n real(kind=8) :: x\n integer :: i\n do i = 1, x\n  x = 1.0d0\n end do\nend program p\n" in
        match Typecheck.check_program (Symtab.build (Parser.parse src)) with
        | () -> Alcotest.fail "expected error"
        | exception Typecheck.Error _ -> ());
    t "if condition must be logical" (fun () ->
        let src = "program p\n implicit none\n real(kind=8) :: x\n if (x) then\n  x = 1.0d0\n end if\nend program p\n" in
        match Typecheck.check_program (Symtab.build (Parser.parse src)) with
        | () -> Alcotest.fail "expected error"
        | exception Typecheck.Error _ -> ());
    t "assignment type clash" (fun () ->
        let src = "program p\n implicit none\n logical :: b\n b = 1\nend program p\n" in
        match Typecheck.check_program (Symtab.build (Parser.parse src)) with
        | () -> Alcotest.fail "expected error"
        | exception Typecheck.Error _ -> ());
    t "select case selector must be integer or logical" (fun () ->
        let src =
          "program p\n implicit none\n real(kind=8) :: x\n select case (x)\n case default\n  x = 1.0d0\n end select\nend program p\n"
        in
        match Typecheck.check_program (Symtab.build (Parser.parse src)) with
        | () -> Alcotest.fail "expected error"
        | exception Typecheck.Error _ -> ());
    t "case value type must match the selector" (fun () ->
        let src =
          "program p\n implicit none\n integer :: k\n logical :: b\n b = .true.\n k = 1\n select case (k)\n case (.true.)\n  k = 2\n end select\nend program p\n"
        in
        match Typecheck.check_program (Symtab.build (Parser.parse src)) with
        | () -> Alcotest.fail "expected error"
        | exception Typecheck.Error _ -> ());
    t "call arity is checked" (fun () ->
        with_call "call sub8(r8, r8)" (fun st ->
            match Typecheck.check_program st with
            | () -> Alcotest.fail "expected error"
            | exception Typecheck.Error _ -> ()));
  ]

(* ------------------------------------------------------------------ *)
(* Negative paths: each ill-typed program must be rejected with the
   specific diagnostic, not just any failure.                          *)

let expect_message name src expected =
  t name (fun () ->
      match Typecheck.check_program (Symtab.build (Parser.parse src)) with
      | () -> Alcotest.failf "expected Typecheck.Error %S" expected
      | exception Typecheck.Error { message; _ } ->
        Alcotest.(check string) "diagnostic" expected message)

let negative_tests =
  [
    expect_message "undeclared name in main program"
      "program p\n implicit none\n zz = 1\nend program p\n"
      "undeclared variable \"zz\" in main program";
    expect_message "undeclared name in procedure"
      "module m\n implicit none\n real(kind=8) :: x\ncontains\n subroutine s()\n  x = qq\n\
      \ end subroutine s\nend module m\nprogram p\n use m\n implicit none\n call s\nend program p\n"
      "undeclared variable \"qq\" in procedure \"s\"";
    expect_message "kind clash logical := integer"
      "program p\n implicit none\n logical :: b\n b = 1\nend program p\n"
      "type clash in assignment";
    expect_message "kind clash real := logical"
      "program p\n implicit none\n real(kind=8) :: x\n x = .true.\nend program p\n"
      "type clash in assignment";
    expect_message "subroutine arity"
      "module m\n implicit none\ncontains\n subroutine s(a)\n  real(kind=8) :: a\n  a = 0.0d0\n\
      \ end subroutine s\nend module m\nprogram p\n use m\n implicit none\n real(kind=8) :: x\n\
      \ call s(x, x)\nend program p\n"
      "subroutine \"s\" expects 1 arguments, got 2";
    expect_message "function arity"
      "module m\n implicit none\ncontains\n function g(a) result(r)\n  real(kind=8) :: a, r\n\
      \  r = a\n end function g\nend module m\nprogram p\n use m\n implicit none\n\
      \ real(kind=8) :: x\n x = g(x, x)\nend program p\n"
      "function \"g\" expects 1 arguments, got 2";
    expect_message "assignment to intent(in) dummy"
      "module m\n implicit none\ncontains\n subroutine s(a)\n  real(kind=8), intent(in) :: a\n\
      \  a = 1.0d0\n end subroutine s\nend module m\nprogram p\n use m\n implicit none\n\
      \ real(kind=8) :: x\n x = 0.0d0\n call s(x)\nend program p\n"
      "assignment to intent(in) dummy \"a\" in procedure \"s\"";
    expect_message "argument kind mismatch names the wrapper obligation"
      "module m\n implicit none\ncontains\n subroutine s(a)\n  real(kind=8) :: a\n  a = 0.0d0\n\
      \ end subroutine s\nend module m\nprogram p\n use m\n implicit none\n real(kind=4) :: x\n\
      \ call s(x)\nend program p\n"
      "argument 1 of call to \"s\": actual is real(4) but dummy \"a\" is real(8) — a \
       conversion wrapper is required";
    expect_message "do variable must be integer"
      "program p\n implicit none\n real(kind=8) :: x\n do x = 1, 3\n  x = x\n end do\n\
       end program p\n"
      "do variable \"x\" is not integer";
    expect_message "if condition must be logical (message)"
      "program p\n implicit none\n real(kind=8) :: x\n if (x) then\n  x = 1.0d0\n end if\n\
       end program p\n"
      "if condition is not logical";
    t "intent(inout) dummy assignment is allowed" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine s(a)\n\
          \  real(kind=8), intent(inout) :: a\n  a = 1.0d0\n end subroutine s\nend module m\n\
           program p\n use m\n implicit none\n real(kind=8) :: x\n x = 0.0d0\n call s(x)\n\
           end program p\n"
        in
        Typecheck.check_program (Symtab.build (Parser.parse src)));
  ]

let () =
  Alcotest.run "typecheck"
    [
      ("inference", inference_tests);
      ("intrinsics", intrinsic_tests);
      ("call-site kinds", mismatch_tests);
      ("constant folding", folding_tests);
      ("whole programs", whole_program_tests);
      ("negative diagnostics", negative_tests);
    ]
