(* Predictive-search tests: the error-amplification scorer, the
   evidence-driven rank engine, prune soundness, scheduler/resume
   determinism of the steered trajectories, the holdout split's
   scheduling invariance, and the CSV/journal prediction columns. *)

let t name f = Alcotest.test_case name `Quick f

let small_funarc =
  { Models.Registry.funarc with Models.Registry.source = Models.Funarc.source ~n:200 () }

let small_mpas =
  { Models.Registry.mpas with
    Models.Registry.source = Models.Mpas.source ~p:Models.Mpas.small () }

let with_predict ?(margin = Core.Config.default.Core.Config.predict_margin) mode config =
  { config with Core.Config.predict = mode; predict_margin = margin }

let signatures (c : Core.Tuner.campaign) =
  List.map
    (fun (r : Search.Variant.record) ->
      ( r.Search.Variant.index,
        Transform.Assignment.signature r.Search.Variant.asg,
        Search.Variant.status_to_string r.Search.Variant.meas.Search.Variant.status ))
    c.Core.Tuner.records

let minimal_sig (c : Core.Tuner.campaign) =
  Option.map
    (fun m -> Transform.Assignment.signature m.Search.Delta_debug.minimal)
    c.Core.Tuner.minimal

(* ------------------------------------------------------------------ *)
(* Scorer                                                              *)

let scorer_tests =
  [
    t "scorer engages on funarc" (fun () ->
        let config = with_predict Core.Config.Predict_rank Core.Config.default in
        let p = Core.Tuner.prepare ~config small_funarc in
        match p.Core.Tuner.scorer with
        | None -> Alcotest.fail "the mirror analysis declined funarc"
        | Some sc ->
          Alcotest.(check (float 0.0))
            "nothing lowered, nothing bounded" 0.0
            (Sensitivity.Score.static_bound sc
               (Transform.Assignment.original p.Core.Tuner.atoms));
          List.iter
            (fun a ->
              match Sensitivity.Score.atom_bound sc a with
              | None -> Alcotest.fail "demotable atom without a bound"
              | Some b ->
                Alcotest.(check bool) "bound is non-negative" true (b >= 0.0 || b <> b))
            p.Core.Tuner.atoms);
    t "scorer is off when predict is off" (fun () ->
        let p = Core.Tuner.prepare small_funarc in
        Alcotest.(check bool) "no scorer" true (p.Core.Tuner.scorer = None));
    t "prune never skips a passing variant (exhaustive funarc space)" (fun () ->
        (* the bench asserts this on the registered model; the tier-1 suite
           keeps a scaled-down copy so the guarantee cannot rot unnoticed *)
        let config = with_predict Core.Config.Predict_prune Core.Config.default in
        let p = Core.Tuner.prepare ~config small_funarc in
        let sc =
          match p.Core.Tuner.scorer with
          | Some sc -> sc
          | None -> Alcotest.fail "no scorer"
        in
        let brute = Core.Tuner.run_brute_force small_funarc in
        let wrongly_pruned =
          List.filter
            (fun (r : Search.Variant.record) ->
              r.Search.Variant.meas.Search.Variant.status = Search.Variant.Pass
              && Sensitivity.Score.prune sc r.Search.Variant.asg)
            brute.Core.Tuner.records
        in
        Alcotest.(check int) "no passing variant pruned" 0 (List.length wrongly_pruned));
  ]

(* ------------------------------------------------------------------ *)
(* The evidence engine                                                 *)

let rank_engine_tests =
  let mk () =
    let p = Core.Tuner.prepare small_funarc in
    let rk =
      Sensitivity.Rank.create ~st:p.Core.Tuner.st ~atoms:p.Core.Tuner.atoms ~safe:[]
        ~perf_floor:p.Core.Tuner.perf_floor
    in
    (p.Core.Tuner.atoms, rk)
  in
  let lower atoms sel =
    Transform.Assignment.of_lowered atoms
      ~lowered:(List.filteri (fun i _ -> List.mem i sel) atoms)
  in
  let efail = { Sensitivity.Rank.err_ok = false; perf_ok = true; speedup = 1.1 } in
  let pass = { Sensitivity.Rank.err_ok = true; perf_ok = true; speedup = 1.1 } in
  [
    t "no evidence, no demotion" (fun () ->
        let atoms, rk = mk () in
        Sensitivity.Rank.round rk;
        Alcotest.(check bool) "kept" false (Sensitivity.Rank.demote rk (lower atoms [ 0; 1 ])));
    t "an error failure dominates its supersets" (fun () ->
        let atoms, rk = mk () in
        Sensitivity.Rank.observe rk (lower atoms [ 0 ]) efail;
        Sensitivity.Rank.round rk;
        Alcotest.(check bool) "superset demoted" true
          (Sensitivity.Rank.demote rk (lower atoms [ 0; 1 ]));
        Alcotest.(check bool) "disjoint kept" false
          (Sensitivity.Rank.demote rk (lower atoms [ 1; 2 ])));
    t "pass evidence shrinks the culprit core" (fun () ->
        let atoms, rk = mk () in
        Sensitivity.Rank.observe rk (lower atoms [ 1 ]) pass;
        Sensitivity.Rank.observe rk (lower atoms [ 0; 1 ]) efail;
        Sensitivity.Rank.round rk;
        (* atom 1 passed alone, so the {0,1} failure's core is {0} *)
        Alcotest.(check bool) "core superset demoted" true
          (Sensitivity.Rank.demote rk (lower atoms [ 0; 2 ]));
        Alcotest.(check bool) "the innocent atom alone is kept" false
          (Sensitivity.Rank.demote rk (lower atoms [ 1 ])));
    t "an emptied core falls back to full-set dominance" (fun () ->
        let atoms, rk = mk () in
        Sensitivity.Rank.observe rk (lower atoms [ 0; 1 ]) pass;
        (* the OR-model is now inconsistent for a failure inside {0}:
           subtraction would empty the core and predict everything fails *)
        Sensitivity.Rank.observe rk (lower atoms [ 0 ]) efail;
        Sensitivity.Rank.round rk;
        Alcotest.(check bool) "superset of the full set demoted" true
          (Sensitivity.Rank.demote rk (lower atoms [ 0; 2 ]));
        Alcotest.(check bool) "unrelated candidate kept" false
          (Sensitivity.Rank.demote rk (lower atoms [ 2 ])));
    t "observe deduplicates by signature" (fun () ->
        let atoms, rk = mk () in
        let asg = lower atoms [ 0 ] in
        Sensitivity.Rank.observe rk asg pass;
        (* a replayed contradictory outcome for the same signature is
           ignored: committed evidence is immutable *)
        Sensitivity.Rank.observe rk asg efail;
        Sensitivity.Rank.round rk;
        Alcotest.(check bool) "still kept" false
          (Sensitivity.Rank.demote rk (lower atoms [ 0; 1 ])));
    t "features are finite and match the predictor's names" (fun () ->
        let p = Core.Tuner.prepare small_funarc in
        let f =
          Sensitivity.Rank.features ~st:p.Core.Tuner.st
            (Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4)
        in
        Alcotest.(check int) "arity" (List.length Sensitivity.Rank.feature_names)
          (Array.length f);
        Array.iter (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v)) f);
  ]

(* ------------------------------------------------------------------ *)
(* Steered campaigns: identity of the minimal set, determinism         *)

let campaign_tests =
  [
    t "rank reaches the same minimal set as off" (fun () ->
        let off = Core.Tuner.run_delta_debug small_funarc in
        let rank =
          Core.Tuner.run_delta_debug
            ~config:(with_predict Core.Config.Predict_rank Core.Config.default)
            small_funarc
        in
        Alcotest.(check bool) "identical minimal" true (minimal_sig off = minimal_sig rank));
    t "rank trajectory is identical across workers and shards" (fun () ->
        let config = with_predict Core.Config.Predict_rank Core.Config.default in
        let seq = Core.Tuner.run_delta_debug ~config ~workers:0 small_mpas in
        let pooled = Core.Tuner.run_delta_debug ~config ~workers:4 small_mpas in
        let sharded = Core.Tuner.run_delta_debug ~config ~shards:2 ~workers:2 small_mpas in
        Alcotest.(check bool) "workers=4 record-identical" true
          (signatures seq = signatures pooled);
        Alcotest.(check bool) "shards=2 record-identical" true
          (signatures seq = signatures sharded);
        Alcotest.(check bool) "same minimal" true
          (minimal_sig seq = minimal_sig pooled && minimal_sig seq = minimal_sig sharded));
    t "prune trajectory is identical across workers and shards" (fun () ->
        (* a margin low enough that pruning actually fires on this space *)
        let config =
          with_predict ~margin:1.0 Core.Config.Predict_prune Core.Config.default
        in
        let pruned_count c =
          List.length
            (List.filter
               (fun (r : Search.Variant.record) ->
                 let d = r.Search.Variant.meas.Search.Variant.detail in
                 String.length d >= 8 && String.sub d 0 8 = "static: ")
               c.Core.Tuner.records)
        in
        let seq = Core.Tuner.run_delta_debug ~config ~workers:0 small_funarc in
        let pooled = Core.Tuner.run_delta_debug ~config ~workers:4 small_funarc in
        let sharded = Core.Tuner.run_delta_debug ~config ~shards:2 ~workers:2 small_funarc in
        Alcotest.(check bool) "workers=4 record-identical" true
          (signatures seq = signatures pooled);
        Alcotest.(check bool) "shards=2 record-identical" true
          (signatures seq = signatures sharded);
        Alcotest.(check int) "same pruned count" (pruned_count seq) (pruned_count pooled));
    t "a resumed prune campaign replays without re-evaluating" (fun () ->
        let config =
          with_predict ~margin:1.0 Core.Config.Predict_prune Core.Config.default
        in
        let dir = Filename.temp_file "sens_resume" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        Fun.protect
          ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
          (fun () ->
            let full =
              Core.Tuner.run_delta_debug ~config ~workers:0 ~journal:dir small_funarc
            in
            let resumed =
              Core.Tuner.resume ~config ~workers:0 ~model:small_funarc ~journal:dir ()
            in
            Alcotest.(check int) "whole prefix preloaded"
              (List.length full.Core.Tuner.records)
              resumed.Core.Tuner.preloaded;
            Alcotest.(check int) "zero fresh evaluations" 0
              resumed.Core.Tuner.trace_stats.Search.Trace.misses;
            Alcotest.(check bool) "record-identical" true
              (signatures full = signatures resumed);
            Alcotest.(check bool) "same minimal" true
              (minimal_sig full = minimal_sig resumed)));
  ]

(* ------------------------------------------------------------------ *)
(* Holdout split: committed order, not arrival order                   *)

let holdout_tests =
  [
    t "holdout split is invariant under record arrival order" (fun () ->
        let c = Core.Tuner.run_brute_force small_funarc in
        let p = c.Core.Tuner.prepared in
        let bits = Int64.bits_of_float in
        let report records =
          match Core.Predictor.holdout_report p records with
          | Some (tr, te, n) -> (bits tr, bits te, n)
          | None -> Alcotest.fail "fit failed"
        in
        (* a sharded run lists the same committed records in a different
           arrival order; the split must not notice *)
        Alcotest.(check bool) "reversed arrival, bit-identical report" true
          (report c.Core.Tuner.records = report (List.rev c.Core.Tuner.records));
        let shuffled =
          let tagged =
            List.mapi (fun i r -> ((i * 7919) mod 101, i, r)) c.Core.Tuner.records
          in
          List.map (fun (_, _, r) -> r) (List.sort compare tagged)
        in
        Alcotest.(check bool) "shuffled arrival, bit-identical report" true
          (report c.Core.Tuner.records = report shuffled));
  ]

(* ------------------------------------------------------------------ *)
(* Export columns and journal fields                                   *)

(* minimal RFC-4180 reader: split one CSV line into fields, honouring
   quoted fields and doubled quotes *)
let split_csv_line line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let n = String.length line in
  let rec go i in_quotes =
    if i >= n then fields := Buffer.contents buf :: !fields
    else
      match line.[i] with
      | '"' when in_quotes ->
        if i + 1 < n && line.[i + 1] = '"' then begin
          Buffer.add_char buf '"';
          go (i + 2) true
        end
        else go (i + 1) false
      | '"' -> go (i + 1) true
      | ',' when not in_quotes ->
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf;
        go (i + 1) false
      | c ->
        Buffer.add_char buf c;
        go (i + 1) in_quotes
  in
  go 0 false;
  List.rev !fields

let export_tests =
  [
    t "variants CSV carries the prediction columns" (fun () ->
        let config = with_predict Core.Config.Predict_rank Core.Config.default in
        let c = Core.Tuner.run_delta_debug ~config small_funarc in
        let lines =
          List.filter (fun l -> l <> "")
            (String.split_on_char '\n' (Core.Export.variants_csv c))
        in
        let header = split_csv_line (List.hd lines) in
        Alcotest.(check bool) "predicted_score column" true
          (List.mem "predicted_score" header);
        Alcotest.(check bool) "static_bound column" true (List.mem "static_bound" header);
        let score_at = ref (-1) and bound_at = ref (-1) in
        List.iteri
          (fun i h ->
            if h = "predicted_score" then score_at := i;
            if h = "static_bound" then bound_at := i)
          header;
        List.iter
          (fun row ->
            let cells = split_csv_line row in
            Alcotest.(check int) "full width" (List.length header) (List.length cells);
            (* a predicted campaign fills both cells on every row *)
            Alcotest.(check bool) "score cell filled" true
              (List.nth cells !score_at <> "");
            Alcotest.(check bool) "bound cell filled" true
              (List.nth cells !bound_at <> ""))
          (List.tl lines));
    t "unpredicted records export empty prediction cells" (fun () ->
        let p = Core.Tuner.prepare small_funarc in
        let asg = Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4 in
        let r = { Search.Variant.index = 1; asg; meas = Core.Tuner.evaluate p asg } in
        let csv = Core.Export.variants_csv_records [ r ] in
        let row = split_csv_line (List.nth (String.split_on_char '\n' csv) 1) in
        let header = split_csv_line (List.hd (String.split_on_char '\n' csv)) in
        let cell name =
          let at = ref (-1) in
          List.iteri (fun i h -> if h = name then at := i) header;
          List.nth row !at
        in
        Alcotest.(check string) "empty score" "" (cell "predicted_score");
        Alcotest.(check string) "empty bound" "" (cell "static_bound"));
    t "RFC-4180 fields round-trip through the splitter" (fun () ->
        List.iter
          (fun s ->
            let line =
              String.concat "," [ Core.Export.csv_field s; "x"; Core.Export.csv_field s ]
            in
            Alcotest.(check (list string)) "round trip" [ s; "x"; s ] (split_csv_line line))
          [ "plain"; "with,comma"; "say \"hi\""; "line\nbreak"; "tail\r"; "" ]);
    t "journal score fields round-trip and stay absent when off" (fun () ->
        let config = with_predict Core.Config.Predict_rank Core.Config.default in
        let dir = Filename.temp_file "sens_journal" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        Fun.protect
          ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
          (fun () ->
            let c = Core.Tuner.run_delta_debug ~config ~workers:0 ~journal:dir small_funarc in
            let loaded = Persist.Journal.load ~dir in
            Alcotest.(check int) "every record journaled"
              (List.length c.Core.Tuner.records)
              (List.length loaded.Persist.Journal.l_entries);
            List.iter
              (fun (e : Persist.Journal.entry) ->
                Alcotest.(check bool) "score present" true (e.Persist.Journal.e_score <> None);
                Alcotest.(check bool) "bound present" true (e.Persist.Journal.e_bound <> None))
              loaded.Persist.Journal.l_entries;
            (* an unpredicted journal of the same model writes no score
               fields at all — pre-PR-9 journals parse the same way *)
            let dir_off = dir ^ "_off" in
            Unix.mkdir dir_off 0o755;
            Fun.protect
              ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir_off)))
              (fun () ->
                ignore (Core.Tuner.run_delta_debug ~workers:0 ~journal:dir_off small_funarc);
                let ic = open_in (Persist.Journal.file ~dir:dir_off) in
                let contents =
                  Fun.protect
                    ~finally:(fun () -> close_in ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
                in
                Alcotest.(check bool) "no score field on disk" false
                  (let rec contains i =
                     i + 7 <= String.length contents
                     && (String.sub contents i 7 = "\"score\"" || contains (i + 1))
                   in
                   contains 0);
                let off = Persist.Journal.load ~dir:dir_off in
                List.iter
                  (fun (e : Persist.Journal.entry) ->
                    Alcotest.(check bool) "parses as None" true
                      (e.Persist.Journal.e_score = None && e.Persist.Journal.e_bound = None))
                  off.Persist.Journal.l_entries)));
  ]

let () =
  Alcotest.run "sensitivity"
    [
      ("scorer", scorer_tests);
      ("rank engine", rank_engine_tests);
      ("campaigns", campaign_tests);
      ("holdout", holdout_tests);
      ("export", export_tests);
    ]
