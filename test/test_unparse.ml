(* Unparser round-trip tests: parse . unparse is a fixpoint, and the
   unparsed text preserves semantics (checked structurally and, for
   expressions, by evaluation-order-sensitive cases). *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let roundtrip_fix name src =
  t name (fun () ->
      let p1 = Parser.parse src in
      let t1 = Unparse.program p1 in
      let p2 = Parser.parse t1 in
      let t2 = Unparse.program p2 in
      Alcotest.(check string) "unparse fixpoint" t1 t2)

let expr_roundtrip name expr_src =
  (* embed the expression in an assignment and verify it survives *)
  t name (fun () ->
      let src = Printf.sprintf "program t\n implicit none\n x = %s\nend program t\n" expr_src in
      let p1 = Parser.parse src in
      let t1 = Unparse.program p1 in
      let p2 = Parser.parse t1 in
      let get_rhs = function
        | [ Ast.Main { Ast.main_body = [ { Ast.node = Ast.Assign (_, rhs); _ } ]; _ } ] -> rhs
        | _ -> Alcotest.fail "unexpected program"
      in
      Alcotest.(check bool) "same expression AST" true (get_rhs p1 = get_rhs p2))

let fixture_snippets =
  [
    roundtrip_fix "funarc model" (Models.Funarc.source ());
    roundtrip_fix "mpas model" (Models.Mpas.source ~p:Models.Mpas.small ());
    roundtrip_fix "adcirc model" (Models.Adcirc.source ~p:Models.Adcirc.small ());
    roundtrip_fix "mom6 model" (Models.Mom6.source ~p:Models.Mom6.small ());
    roundtrip_fix "declarations with attributes"
      "module m\n implicit none\n real(kind=8), dimension(3), intent(in) :: q\n integer, parameter :: n = 4\ncontains\n subroutine s(q)\n  real(kind=8), dimension(3), intent(in) :: q\n  return\n end subroutine s\nend module m\n";
    roundtrip_fix "select case"
      "program t\n implicit none\n integer :: k\n real(kind=8) :: x\n k = 2\n select case (k)\n case (1)\n  x = 1.0d0\n case (2, 4:6, :0, 8:)\n  x = 2.0d0\n case default\n  x = 3.0d0\n end select\nend program t\n";
    roundtrip_fix "control flow nest"
      "program t\n implicit none\n integer :: i\n real(kind=8) :: x\n do i = 1, 10, 2\n  if (x > 0.0) then\n   x = x - 1.0\n  else if (x < -1.0) then\n   cycle\n  else\n   exit\n  end if\n end do\n do while (x < 5.0)\n  x = x + 1.0\n end do\n print *, 'x', x\n stop 'done'\nend program t\n";
  ]

(* Golden round trips over the full registered sources (not the small
   fixtures above): for every registered model, unparse∘parse is a
   fixpoint, the reparse preserves the AST exactly, and the round-tripped
   program still typechecks. *)
let registered_models =
  Models.Registry.funarc :: Models.Registry.lulesh :: Models.Registry.all

let golden_registry_tests =
  List.map
    (fun (m : Models.Registry.t) ->
      t (Printf.sprintf "registered %s source round-trips" m.Models.Registry.name) (fun () ->
          let p1 = Parser.parse ~file:(m.Models.Registry.name ^ ".f90") m.Models.Registry.source in
          let t1 = Unparse.program p1 in
          let p2 = Parser.parse ~file:(m.Models.Registry.name ^ "_rt.f90") t1 in
          let t2 = Unparse.program p2 in
          Alcotest.(check string) "unparse fixpoint" t1 t2;
          (* typecheck stability: the round-tripped program is still
             accepted (the original sources are checked in test_typecheck) *)
          Fortran.Typecheck.check_program (Symtab.build p2)))
    registered_models

let expr_cases =
  [
    expr_roundtrip "subtraction grouping right" "a - (b - c)";
    expr_roundtrip "subtraction grouping left" "a - b - c";
    expr_roundtrip "division chain" "a / b / c";
    expr_roundtrip "division of product" "a / (b * c)";
    expr_roundtrip "negated sum" "-(a + b)";
    expr_roundtrip "negation in product" "a * (-b)";
    expr_roundtrip "double power" "a ** b ** c";
    expr_roundtrip "power of sum" "(a + b) ** 2";
    expr_roundtrip "not over and" ".not. (a .and. b)";
    expr_roundtrip "comparison of sums" "a + b < c * d";
    expr_roundtrip "mixed logical" "(a .or. b) .and. c";
    expr_roundtrip "call with expression args" "f(a + 1, g(b), c(i, j))";
    expr_roundtrip "negative literal argument" "min(a, -1.5)";
    expr_roundtrip "string argument survives quoting" "h('it''s', x)";
  ]

(* random expression generator for the fixpoint property *)
let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c"; "x" ] >|= fun v -> Ast.Var v in
  let leaf =
    frequency
      [
        (3, var);
        (2, map (fun i -> Ast.Int_lit (abs i mod 100)) int);
        (2, return (Ast.Real_lit { text = "1.5"; value = 1.5; kind = Ast.K4 }));
        (1, return (Ast.Real_lit { text = "2.0d0"; value = 2.0; kind = Ast.K8 }));
      ]
  in
  let binop =
    oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Pow; Ast.Lt; Ast.Ge; Ast.Eq ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (3, leaf);
               ( 4,
                 map3 (fun op l r -> Ast.Binop (op, l, r)) binop (self (n / 2)) (self (n / 2)) );
               (1, map (fun e -> Ast.Unop (Ast.Neg, e)) (self (n / 2)));
               ( 1,
                 map
                   (fun e -> Ast.Index ("f", [ e ]))
                   (self (n / 2)) );
             ])

let arbitrary_expr = QCheck.make ~print:Unparse.expr gen_expr

(* comparisons cannot nest as operands of arithmetic; restrict the check to
   expressions that type—here we only require parse(unparse(e)) = e
   syntactically, which holds regardless of typing *)
let unparse_parse_roundtrip =
  QCheck.Test.make ~name:"parse (unparse e) = e for generated expressions" ~count:500
    arbitrary_expr (fun e ->
      let src = Printf.sprintf "program t\n x = %s\nend program t\n" (Unparse.expr e) in
      match Parser.parse src with
      | [ Ast.Main { Ast.main_body = [ { Ast.node = Ast.Assign (_, rhs); _ } ]; _ } ] -> rhs = e
      | _ -> false)

let () =
  Alcotest.run "unparse"
    [
      ("fixpoints", fixture_snippets);
      ("registered models", golden_registry_tests);
      ("expressions", expr_cases);
      ("properties", [ QCheck_alcotest.to_alcotest unparse_parse_roundtrip ]);
    ]
