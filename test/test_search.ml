(* Search tests: variant accounting, the trace cache, delta debugging's
   1-minimality (against synthetic oracles and brute-force ground truth),
   and the frontier. *)

open Search

let t name f = Alcotest.test_case name `Quick f

(* a synthetic atom universe *)
let mk_atoms n =
  List.init n (fun i ->
      {
        Transform.Assignment.a_scope = Fortran.Symtab.Proc_scope "p";
        a_name = Printf.sprintf "v%02d" i;
        a_declared = Fortran.Ast.K8;
        a_is_array = false;
      })

(* an oracle parameterized by a set of critical atoms: a variant passes iff
   no critical atom is lowered; passing variants speed up with the number
   of lowered atoms *)
let oracle ~critical atoms asg =
  let lowered = Transform.Assignment.lowered asg in
  let bad = List.exists (fun a -> List.memq a lowered) critical in
  let n = List.length atoms in
  let frac = float_of_int (List.length lowered) /. float_of_int (max 1 n) in
  if bad then
    {
      Variant.status = Variant.Fail;
      speedup = 1.0 +. frac;
      rel_error = 1.0;
      hotspot_time = 1.0;
      model_time = 1.0;
      proc_stats = [];
      casting_share = 0.0;
      detail = "critical atom lowered";
    }
  else
    {
      Variant.status = Variant.Pass;
      speedup = 1.0 +. frac;
      rel_error = 1e-9;
      hotspot_time = 1.0;
      model_time = 1.0;
      proc_stats = [];
      casting_share = 0.0;
      detail = "ok";
    }

let dd_config = { Delta_debug.error_threshold = 1e-3; perf_floor = 0.9 }

let run_dd ~critical n =
  let atoms = mk_atoms n in
  let crit = List.filteri (fun i _ -> List.mem i critical) atoms in
  let trace = Trace.create () in
  let result =
    Delta_debug.search ~atoms ~trace ~evaluate:(oracle ~critical:crit atoms) dd_config
  in
  (atoms, crit, result, trace)

let delta_debug_tests =
  [
    t "no critical atoms: everything lowered" (fun () ->
        let _, _, r, _ = run_dd ~critical:[] 12 in
        Alcotest.(check int) "empty high set" 0 (List.length r.Delta_debug.high_set);
        Alcotest.(check bool) "finished" true r.Delta_debug.finished);
    t "single critical atom found exactly" (fun () ->
        let _, crit, r, _ = run_dd ~critical:[ 5 ] 12 in
        Alcotest.(check int) "one high" 1 (List.length r.Delta_debug.high_set);
        Alcotest.(check bool) "the right one" true
          (List.memq (List.hd crit) r.Delta_debug.high_set));
    t "scattered critical atoms found exactly" (fun () ->
        let _, crit, r, _ = run_dd ~critical:[ 1; 7; 11 ] 16 in
        Alcotest.(check int) "three high" 3 (List.length r.Delta_debug.high_set);
        List.iter
          (fun c ->
            Alcotest.(check bool) "critical kept" true (List.memq c r.Delta_debug.high_set))
          crit);
    t "evaluation count is subquadratic-ish" (fun () ->
        let n = 32 in
        let _, _, r, _ = run_dd ~critical:[ 3 ] n in
        Alcotest.(check bool) "fewer than n^2 evals" true (r.Delta_debug.evaluations < n * n));
    t "ranker sees every consumed evaluation and steers the rounds" (fun () ->
        let n = 16 in
        let atoms = mk_atoms n in
        let crit = List.filteri (fun i _ -> List.mem i [ 2; 9 ]) atoms in
        let noted = ref 0 in
        let rounds = ref 0 in
        (* an all-knowing demoter: any candidate lowering a critical atom
           will fail, push it back *)
        let ranker =
          {
            Delta_debug.note = (fun _ _ -> incr noted);
            round = (fun () -> incr rounds);
            demote =
              (fun asg ->
                let lowered = Transform.Assignment.lowered asg in
                List.exists (fun c -> List.memq c lowered) crit);
          }
        in
        let trace = Trace.create () in
        let r =
          Delta_debug.search ~ranker ~atoms ~trace ~evaluate:(oracle ~critical:crit atoms)
            dd_config
        in
        let _, _, r0, t0 = run_dd ~critical:[ 2; 9 ] n in
        Alcotest.(check int) "same high set size" (List.length r0.Delta_debug.high_set)
          (List.length r.Delta_debug.high_set);
        List.iter
          (fun c ->
            Alcotest.(check bool) "critical kept" true (List.memq c r.Delta_debug.high_set))
          crit;
        Alcotest.(check bool) "rounds ran" true (!rounds > 0);
        (* note fires on every consumed test (memo hits included), so it
           covers at least each fresh evaluation *)
        Alcotest.(check bool) "note covers every fresh evaluation" true
          (!noted >= Trace.count trace);
        (* the oracle-grade demoter cannot do worse than the classic order *)
        Alcotest.(check bool) "no more evaluations than unranked" true
          (Trace.count trace <= Trace.count t0));
    t "budget exhaustion returns best seen" (fun () ->
        let atoms = mk_atoms 20 in
        let crit = List.filteri (fun i _ -> i = 4 || i = 13) atoms in
        let trace = Trace.create ~max_variants:6 () in
        let r = Delta_debug.search ~atoms ~trace ~evaluate:(oracle ~critical:crit atoms) dd_config in
        Alcotest.(check bool) "not finished" false r.Delta_debug.finished;
        Alcotest.(check bool) "budget respected" true (Trace.count trace <= 6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"dd finds exactly the critical set (monotone oracle)" ~count:60
         QCheck.(pair (int_range 4 20) (small_list (int_range 0 19)))
         (fun (n, crit_idx) ->
           let critical = List.sort_uniq compare (List.filter (fun i -> i < n) crit_idx) in
           let atoms, crit, r, _ = run_dd ~critical n in
           ignore atoms;
           r.Delta_debug.finished
           && List.length r.Delta_debug.high_set = List.length crit
           && List.for_all (fun c -> List.memq c r.Delta_debug.high_set) crit));
    t "1-minimality verified against the oracle" (fun () ->
        let atoms, crit, r, _ = run_dd ~critical:[ 2; 9 ] 14 in
        ignore crit;
        (* lowering any single remaining high atom must fail the oracle *)
        List.iter
          (fun h ->
            let lowered =
              h :: Transform.Assignment.lowered r.Delta_debug.minimal
            in
            let asg = Transform.Assignment.of_lowered atoms ~lowered in
            let m =
              oracle ~critical:(List.filteri (fun i _ -> List.mem i [ 2; 9 ]) atoms) atoms asg
            in
            Alcotest.(check bool) "violates criteria" false (Delta_debug.accepted dd_config m))
          r.Delta_debug.high_set);
  ]

let ddmin_tests =
  [
    t "partition sizes balance" (fun () ->
        Alcotest.(check (list (list int))) "3 chunks" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
          (Ddmin.partition 3 [ 1; 2; 3; 4; 5 ]);
        Alcotest.(check (list (list int))) "oversized n" [ [ 1 ]; [ 2 ] ] (Ddmin.partition 9 [ 1; 2 ]));
    t "partition edge cases" (fun () ->
        Alcotest.(check (list (list int))) "n = 1 is the whole list" [ [ 1; 2; 3 ] ]
          (Ddmin.partition 1 [ 1; 2; 3 ]);
        Alcotest.(check (list (list int))) "n > length: singletons" [ [ 1 ]; [ 2 ]; [ 3 ] ]
          (Ddmin.partition 7 [ 1; 2; 3 ]);
        Alcotest.(check (list (list int))) "n = length: singletons" [ [ 1 ]; [ 2 ] ]
          (Ddmin.partition 2 [ 1; 2 ]);
        Alcotest.(check (list (list int))) "empty list" [] (Ddmin.partition 3 []);
        Alcotest.(check (list (list int))) "n = 0 clamps to 1" [ [ 1; 2 ] ]
          (Ddmin.partition 0 [ 1; 2 ]));
    t "prefetch announces each round's candidates before testing" (fun () ->
        let announced = ref [] in
        let tested = ref [] in
        let test xs =
          tested := xs :: !tested;
          (* anything containing 3 passes *)
          List.mem 3 xs
        in
        let prefetch cands = announced := cands :: !announced in
        let m = Ddmin.minimize ~prefetch ~test [ 1; 2; 3; 4 ] in
        Alcotest.(check (list int)) "minimal" [ 3 ] m;
        (* every tested subset (except the initial []-probe and the seeds)
           was announced by some earlier prefetch call *)
        let all_announced = List.concat !announced in
        List.iter
          (fun xs ->
            if xs <> [] && xs <> [ 1; 2; 3; 4 ] then
              Alcotest.(check bool) "was announced" true (List.mem xs all_announced))
          !tested);
    t "minimize of passing empty set" (fun () ->
        Alcotest.(check (list int)) "empty" [] (Ddmin.minimize ~test:(fun _ -> true) [ 1; 2; 3 ]));
    t "identity order replays the classic trajectory" (fun () ->
        let log ~order test =
          let tested = ref [] in
          let wrapped xs =
            tested := xs :: !tested;
            test xs
          in
          let m =
            match order with
            | None -> Ddmin.minimize ~test:wrapped [ 1; 2; 3; 4; 5; 6 ]
            | Some o -> Ddmin.minimize ~order:o ~test:wrapped [ 1; 2; 3; 4; 5; 6 ]
          in
          (m, List.rev !tested)
        in
        let test xs = List.mem 3 xs && List.mem 5 xs in
        let classic = log ~order:None test in
        let ordered = log ~order:(Some (fun c -> c)) test in
        Alcotest.(check bool) "same minimal and same test sequence" true (classic = ordered);
        (* each round presents all chunks before any complement *)
        ignore
          (Ddmin.minimize
             ~order:(fun cands ->
               let rec chunks_first seen_comp = function
                 | [] -> true
                 | Ddmin.Chunk _ :: rest -> (not seen_comp) && chunks_first seen_comp rest
                 | Ddmin.Complement _ :: rest -> chunks_first true rest
               in
               Alcotest.(check bool) "chunks precede complements" true (chunks_first false cands);
               cands)
             ~test [ 1; 2; 3; 4; 5; 6 ]));
    t "order demotes within the round without losing 1-minimality" (fun () ->
        (* the oracle needs {3}; an order that sends every candidate
           missing 3 to the back skips straight to the passing chunk *)
        let count = ref 0 in
        let test xs =
          incr count;
          List.mem 3 xs
        in
        let order cands =
          let keep, demoted =
            List.partition (fun c -> List.mem 3 (Ddmin.subset c)) cands
          in
          keep @ demoted
        in
        let m = Ddmin.minimize ~order ~test [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        let steered = !count in
        count := 0;
        let m' = Ddmin.minimize ~test [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        Alcotest.(check (list int)) "same minimal" m' m;
        Alcotest.(check bool)
          (Printf.sprintf "fewer tests steered (%d) than classic (%d)" steered !count)
          true (steered <= !count));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"minimize returns exactly the required subset" ~count:100
         QCheck.(pair (int_range 1 24) (small_list (int_range 0 23)))
         (fun (n, req_idx) ->
           let xs = List.init n (fun i -> i) in
           let required = List.sort_uniq compare (List.filter (fun i -> i < n) req_idx) in
           let test sub = List.for_all (fun r -> List.mem r sub) required in
           let m = Ddmin.minimize ~test xs in
           List.sort compare m = required));
  ]

let hierarchical_tests =
  [
    t "groups must partition the atoms" (fun () ->
        let atoms = mk_atoms 4 in
        let trace = Trace.create () in
        match
          Hierarchical.search ~atoms
            ~groups:[ List.filteri (fun i _ -> i < 2) atoms ]
            ~trace ~evaluate:(oracle ~critical:[] atoms) dd_config
        with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "finds the critical atoms through groups" (fun () ->
        let atoms = mk_atoms 12 in
        let crit = List.filteri (fun i _ -> i = 3 || i = 4 (* same group *)) atoms in
        let groups = Ddmin.partition 4 atoms in
        let trace = Trace.create () in
        let r =
          Hierarchical.search ~atoms ~groups ~trace ~evaluate:(oracle ~critical:crit atoms)
            dd_config
        in
        Alcotest.(check bool) "finished" true r.Delta_debug.finished;
        Alcotest.(check int) "exactly the criticals" 2 (List.length r.Delta_debug.high_set);
        List.iter
          (fun c ->
            Alcotest.(check bool) "critical kept" true (List.memq c r.Delta_debug.high_set))
          crit);
    t "clustered criticals cost fewer evaluations than flat dd" (fun () ->
        (* criticals all inside one group: the group phase isolates them fast *)
        let atoms = mk_atoms 24 in
        let crit = List.filteri (fun i _ -> i >= 4 && i < 8) atoms in
        let groups = Ddmin.partition 6 atoms in
        let t_h = Trace.create () in
        let rh =
          Hierarchical.search ~atoms ~groups ~trace:t_h ~evaluate:(oracle ~critical:crit atoms)
            dd_config
        in
        let t_f = Trace.create () in
        let rf =
          Delta_debug.search ~atoms ~trace:t_f ~evaluate:(oracle ~critical:crit atoms) dd_config
        in
        Alcotest.(check bool) "same high set size" true
          (List.length rh.Delta_debug.high_set = List.length rf.Delta_debug.high_set);
        Alcotest.(check bool) "fewer or equal evals" true
          (rh.Delta_debug.evaluations <= rf.Delta_debug.evaluations));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hierarchical finds every critical atom" ~count:40
         QCheck.(pair (int_range 4 20) (small_list (int_range 0 19)))
         (fun (n, crit_idx) ->
           let atoms = mk_atoms n in
           let critical = List.sort_uniq compare (List.filter (fun i -> i < n) crit_idx) in
           let crit = List.filteri (fun i _ -> List.mem i critical) atoms in
           let groups = Ddmin.partition 4 atoms in
           let trace = Trace.create () in
           let r =
             Hierarchical.search ~atoms ~groups ~trace ~evaluate:(oracle ~critical:crit atoms)
               dd_config
           in
           r.Delta_debug.finished
           && List.length r.Delta_debug.high_set = List.length crit
           && List.for_all (fun c -> List.memq c r.Delta_debug.high_set) crit));
  ]

(* Speculative batching must leave the search trajectory bit-identical:
   same records in the same order, same minimal variant, same budget
   cut-off — only wall clock may differ. *)
let batched_tests =
  let sigs trace =
    List.map
      (fun (r : Variant.record) ->
        (r.Variant.index, Transform.Assignment.signature r.Variant.asg, r.Variant.meas))
      (Trace.records trace)
  in
  let dd ?pool ?max_variants ~critical n =
    let atoms = mk_atoms n in
    let crit = List.filteri (fun i _ -> List.mem i critical) atoms in
    let trace = Trace.create ?max_variants () in
    let r =
      Delta_debug.search ?pool ~atoms ~trace ~evaluate:(oracle ~critical:crit atoms) dd_config
    in
    (r, sigs trace)
  in
  [
    t "delta debugging: pool run identical to sequential" (fun () ->
        let r_seq, t_seq = dd ~critical:[ 2; 9 ] 16 in
        Pool.with_pool ~workers:4 (fun pool ->
            let r_par, t_par = dd ~pool ~critical:[ 2; 9 ] 16 in
            Alcotest.(check bool) "same records" true (t_seq = t_par);
            Alcotest.(check bool) "same minimal" true
              (r_seq.Delta_debug.minimal = r_par.Delta_debug.minimal);
            Alcotest.(check int) "same evaluations" r_seq.Delta_debug.evaluations
              r_par.Delta_debug.evaluations));
    t "budget cut-off identical under batching" (fun () ->
        (* the batch that crosses the budget must record exactly the
           assignments the sequential run would have evaluated *)
        let r_seq, t_seq = dd ~max_variants:7 ~critical:[ 1; 4; 13 ] 20 in
        Pool.with_pool ~workers:3 (fun pool ->
            let r_par, t_par = dd ~pool ~max_variants:7 ~critical:[ 1; 4; 13 ] 20 in
            Alcotest.(check bool) "not finished" false r_par.Delta_debug.finished;
            Alcotest.(check bool) "same finished flag" r_seq.Delta_debug.finished
              r_par.Delta_debug.finished;
            Alcotest.(check bool) "same records" true (t_seq = t_par);
            Alcotest.(check bool) "same best-seen fallback" true
              (r_seq.Delta_debug.high_set = r_par.Delta_debug.high_set)));
    t "hierarchical: pool run identical to sequential" (fun () ->
        let atoms = mk_atoms 18 in
        let crit = List.filteri (fun i _ -> i = 4 || i = 5) atoms in
        let groups = Ddmin.partition 6 atoms in
        let go pool =
          let trace = Trace.create () in
          let r =
            Hierarchical.search ?pool ~atoms ~groups ~trace
              ~evaluate:(oracle ~critical:crit atoms) dd_config
          in
          (r, sigs trace)
        in
        let r_seq, t_seq = go None in
        Pool.with_pool ~workers:4 (fun pool ->
            let r_par, t_par = go (Some pool) in
            Alcotest.(check bool) "same records" true (t_seq = t_par);
            Alcotest.(check bool) "same high set" true
              (r_seq.Delta_debug.high_set = r_par.Delta_debug.high_set)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"pool trajectory equals sequential (random oracles)" ~count:25
         QCheck.(pair (int_range 4 20) (small_list (int_range 0 19)))
         (fun (n, crit_idx) ->
           let critical = List.sort_uniq compare (List.filter (fun i -> i < n) crit_idx) in
           let _, t_seq = dd ~critical n in
           Pool.with_pool ~workers:2 (fun pool ->
               let _, t_par = dd ~pool ~critical n in
               t_seq = t_par)));
  ]

let brute_force_tests =
  [
    t "explores exactly 2^n variants" (fun () ->
        let atoms = mk_atoms 6 in
        let trace = Trace.create () in
        let records = Brute_force.search ~atoms ~trace ~evaluate:(oracle ~critical:[] atoms) () in
        Alcotest.(check int) "64" 64 (List.length records));
    t "refuses oversized spaces" (fun () ->
        let atoms = mk_atoms 21 in
        let trace = Trace.create () in
        match Brute_force.search ~atoms ~trace ~evaluate:(oracle ~critical:[] atoms) () with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    t "agrees with delta debugging on the best passing variant" (fun () ->
        let atoms = mk_atoms 8 in
        let crit = List.filteri (fun i _ -> i = 2) atoms in
        let bf_trace = Trace.create () in
        let records =
          Brute_force.search ~atoms ~trace:bf_trace ~evaluate:(oracle ~critical:crit atoms) ()
        in
        let best_bf = Option.get (Variant.best records) in
        let _, _, dd, _ = run_dd ~critical:[ 2 ] 8 in
        (* dd's 1-minimal variant lowers all non-critical atoms: same
           speedup as the brute-force optimum *)
        let dd_frac = Transform.Assignment.fraction_lowered dd.Delta_debug.minimal in
        Alcotest.(check (float 1e-9)) "same speedup" best_bf.Variant.meas.Variant.speedup
          (1.0 +. dd_frac));
  ]

let trace_tests =
  [
    t "identical assignments evaluated once" (fun () ->
        let atoms = mk_atoms 4 in
        let count = ref 0 in
        let trace = Trace.create () in
        let f asg =
          incr count;
          oracle ~critical:[] atoms asg
        in
        let asg = Transform.Assignment.uniform atoms Fortran.Ast.K4 in
        ignore (Trace.evaluate trace ~f asg);
        ignore (Trace.evaluate trace ~f asg);
        Alcotest.(check int) "one eval" 1 !count;
        Alcotest.(check int) "one record" 1 (List.length (Trace.records trace)));
    t "budget raises after cap" (fun () ->
        let atoms = mk_atoms 4 in
        let trace = Trace.create ~max_variants:2 () in
        let f = oracle ~critical:[] atoms in
        let lower i =
          Transform.Assignment.of_lowered atoms
            ~lowered:(List.filteri (fun j _ -> j < i) atoms)
        in
        ignore (Trace.evaluate trace ~f (lower 0));
        ignore (Trace.evaluate trace ~f (lower 1));
        (match Trace.evaluate trace ~f (lower 2) with
        | _ -> Alcotest.fail "expected Budget_exhausted"
        | exception Trace.Budget_exhausted -> ());
        (* cached entries still served after exhaustion *)
        ignore (Trace.evaluate trace ~f (lower 1)));
    t "cache hit after exhaustion is served, not raised" (fun () ->
        (* regression: under speculative batching the searches may revisit
           an already-evaluated assignment after the budget ran out — the
           cache must answer, and must not burn budget *)
        let atoms = mk_atoms 4 in
        let trace = Trace.create ~max_variants:1 () in
        let f = oracle ~critical:[] atoms in
        let asg = Transform.Assignment.uniform atoms Fortran.Ast.K4 in
        let m0 = Trace.evaluate trace ~f asg in
        let fresh =
          Transform.Assignment.of_lowered atoms ~lowered:(List.filteri (fun i _ -> i = 0) atoms)
        in
        (match Trace.evaluate trace ~f fresh with
        | _ -> Alcotest.fail "expected Budget_exhausted"
        | exception Trace.Budget_exhausted -> ());
        let m1 = Trace.evaluate trace ~f asg in
        Alcotest.(check bool) "same measurement" true (m0 = m1);
        Alcotest.(check int) "budget not burned" 1 (Trace.count trace);
        (* and a fresh assignment still raises *)
        match Trace.evaluate trace ~f fresh with
        | _ -> Alcotest.fail "expected Budget_exhausted again"
        | exception Trace.Budget_exhausted -> ());
    t "find_cached peeks without recording" (fun () ->
        let atoms = mk_atoms 3 in
        let trace = Trace.create () in
        let f = oracle ~critical:[] atoms in
        let asg = Transform.Assignment.uniform atoms Fortran.Ast.K4 in
        Alcotest.(check bool) "miss" true (Trace.find_cached trace asg = None);
        let m = Trace.evaluate trace ~f asg in
        Alcotest.(check bool) "hit" true (Trace.find_cached trace asg = Some m);
        Alcotest.(check int) "one record" 1 (List.length (Trace.records trace)));
    t "records keep evaluation order" (fun () ->
        let atoms = mk_atoms 3 in
        let trace = Trace.create () in
        let f = oracle ~critical:[] atoms in
        ignore (Trace.evaluate trace ~f (Transform.Assignment.original atoms));
        ignore (Trace.evaluate trace ~f (Transform.Assignment.uniform atoms Fortran.Ast.K4));
        match Trace.records trace with
        | [ a; b ] ->
          Alcotest.(check int) "first" 1 a.Variant.index;
          Alcotest.(check int) "second" 2 b.Variant.index
        | _ -> Alcotest.fail "expected two records");
  ]

let variant_tests =
  [
    t "summarize percentages" (fun () ->
        let atoms = mk_atoms 2 in
        let mk status speedup =
          {
            Variant.index = 0;
            asg = Transform.Assignment.original atoms;
            meas =
              {
                Variant.status;
                speedup;
                rel_error = 0.0;
                hotspot_time = 1.0;
                model_time = 1.0;
                proc_stats = [];
                casting_share = 0.0;
                detail = "";
              };
          }
        in
        let s =
          Variant.summarize
            [ mk Variant.Pass 1.5; mk Variant.Fail 2.0; mk Variant.Timeout 0.0; mk Variant.Pass 1.2 ]
        in
        Alcotest.(check (float 1e-9)) "pass" 50.0 s.Variant.pass_pct;
        Alcotest.(check (float 1e-9)) "fail" 25.0 s.Variant.fail_pct;
        Alcotest.(check (float 1e-9)) "timeout" 25.0 s.Variant.timeout_pct;
        Alcotest.(check (float 1e-9)) "best from passing only" 1.5 s.Variant.best_speedup);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"frontier points are mutually non-dominated" ~count:100
         QCheck.(small_list (pair (float_bound_exclusive 3.0) (float_bound_exclusive 1.0)))
         (fun pts ->
           let atoms = mk_atoms 1 in
           let records =
             List.mapi
               (fun i (sp, err) ->
                 {
                   Variant.index = i;
                   asg = Transform.Assignment.original atoms;
                   meas =
                     {
                       Variant.status = Variant.Pass;
                       speedup = 0.1 +. sp;
                       rel_error = err;
                       hotspot_time = 1.0;
                       model_time = 1.0;
                       proc_stats = [];
                       casting_share = 0.0;
                       detail = "";
                     };
                 })
               pts
           in
           let front = Variant.frontier records in
           List.for_all
             (fun (a : Variant.record) ->
               List.for_all
                 (fun (b : Variant.record) ->
                   a == b
                   || not
                        (b.Variant.meas.Variant.speedup >= a.Variant.meas.Variant.speedup
                        && b.Variant.meas.Variant.rel_error <= a.Variant.meas.Variant.rel_error
                        && (b.Variant.meas.Variant.speedup > a.Variant.meas.Variant.speedup
                           || b.Variant.meas.Variant.rel_error < a.Variant.meas.Variant.rel_error)))
                 front)
             front));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"sort-then-sweep frontier matches the quadratic reference" ~count:200
         (* coarse grids force duplicate speedups and error ties *)
         QCheck.(small_list (triple (int_bound 4) (int_bound 4) (int_bound 3)))
         (fun pts ->
           let atoms = mk_atoms 1 in
           let records =
             List.mapi
               (fun i (sp, err, status) ->
                 {
                   Variant.index = i;
                   asg = Transform.Assignment.original atoms;
                   meas =
                     {
                       Variant.status =
                         (match status with
                         | 0 | 1 -> Variant.Pass
                         | 2 -> Variant.Fail
                         | _ -> Variant.Error);
                       speedup = 0.5 *. float_of_int sp;
                       rel_error = 0.25 *. float_of_int err;
                       hotspot_time = 1.0;
                       model_time = 1.0;
                       proc_stats = [];
                       casting_share = 0.0;
                       detail = "";
                     };
                 })
               pts
           in
           (* the pre-optimization O(n^2) scan, verbatim *)
           let reference records =
             let passing =
               List.filter (fun (r : Variant.record) -> r.Variant.meas.Variant.status = Variant.Pass) records
             in
             let dominated (r : Variant.record) =
               List.exists
                 (fun (r' : Variant.record) ->
                   r' != r
                   && r'.Variant.meas.Variant.speedup >= r.Variant.meas.Variant.speedup
                   && r'.Variant.meas.Variant.rel_error <= r.Variant.meas.Variant.rel_error
                   && (r'.Variant.meas.Variant.speedup > r.Variant.meas.Variant.speedup
                      || r'.Variant.meas.Variant.rel_error < r.Variant.meas.Variant.rel_error))
                 passing
             in
             List.filter (fun r -> not (dominated r)) passing
             |> List.sort (fun (a : Variant.record) (b : Variant.record) ->
                    compare a.Variant.meas.Variant.rel_error b.Variant.meas.Variant.rel_error)
           in
           List.map (fun (r : Variant.record) -> r.Variant.index) (Variant.frontier records)
           = List.map (fun (r : Variant.record) -> r.Variant.index) (reference records)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"one-fold summarize matches per-status filters" ~count:200
         QCheck.(small_list (pair (int_bound 3) (float_bound_exclusive 2.0)))
         (fun pts ->
           let atoms = mk_atoms 1 in
           let records =
             List.mapi
               (fun i (status, sp) ->
                 {
                   Variant.index = i;
                   asg = Transform.Assignment.original atoms;
                   meas =
                     {
                       Variant.status =
                         (match status with
                         | 0 -> Variant.Pass
                         | 1 -> Variant.Fail
                         | 2 -> Variant.Timeout
                         | _ -> Variant.Error);
                       speedup = sp;
                       rel_error = 0.0;
                       hotspot_time = 1.0;
                       model_time = 1.0;
                       proc_stats = [];
                       casting_share = 0.0;
                       detail = "";
                     };
                 })
               pts
           in
           let total = List.length records in
           let pct s =
             if total = 0 then 0.0
             else
               100.0
               *. float_of_int
                    (List.length
                       (List.filter (fun (r : Variant.record) -> r.Variant.meas.Variant.status = s) records))
               /. float_of_int total
           in
           let best =
             List.fold_left
               (fun acc (r : Variant.record) ->
                 if r.Variant.meas.Variant.status = Variant.Pass then
                   Float.max acc r.Variant.meas.Variant.speedup
                 else acc)
               0.0 records
           in
           let s = Variant.summarize records in
           s.Variant.total = total
           && s.Variant.pass_pct = pct Variant.Pass
           && s.Variant.fail_pct = pct Variant.Fail
           && s.Variant.timeout_pct = pct Variant.Timeout
           && s.Variant.error_pct = pct Variant.Error
           && s.Variant.best_speedup = best));
  ]

let random_walk_tests =
  [
    t "deterministic for a seed" (fun () ->
        let atoms = mk_atoms 8 in
        let go () =
          let trace = Trace.create () in
          List.map
            (fun (r : Variant.record) -> Transform.Assignment.signature r.Variant.asg)
            (Random_walk.search ~atoms ~trace ~evaluate:(oracle ~critical:[] atoms) ~samples:20
               ~seed:99 ())
        in
        Alcotest.(check (list string)) "same exploration" (go ()) (go ()));
    t "respects the trace budget" (fun () ->
        let atoms = mk_atoms 8 in
        let trace = Trace.create ~max_variants:5 () in
        let records =
          Random_walk.search ~atoms ~trace ~evaluate:(oracle ~critical:[] atoms) ~samples:100
            ~seed:7 ()
        in
        Alcotest.(check bool) "counted" true (List.length records <= 5));
  ]

let () =
  Alcotest.run "search"
    [
      ("delta debugging", delta_debug_tests);
      ("ddmin", ddmin_tests);
      ("hierarchical", hierarchical_tests);
      ("batched", batched_tests);
      ("brute force", brute_force_tests);
      ("trace", trace_tests);
      ("variants", variant_tests);
      ("random walk", random_walk_tests);
    ]
