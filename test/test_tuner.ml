(* Tuner tests: preparation, classification of variant outcomes, speedup
   modes, static filtering, cluster accounting. Uses small workloads. *)

let t name f = Alcotest.test_case name `Quick f

let small_mpas =
  { Models.Registry.mpas with
    Models.Registry.source = Models.Mpas.source ~p:Models.Mpas.small () }

let small_adcirc =
  { Models.Registry.adcirc with
    Models.Registry.source = Models.Adcirc.source ~p:Models.Adcirc.small () }

let small_funarc =
  { Models.Registry.funarc with Models.Registry.source = Models.Funarc.source ~n:200 () }

let prepare_tests =
  [
    t "prepare profiles the baseline" (fun () ->
        let p = Core.Tuner.prepare small_mpas in
        Alcotest.(check bool) "cost" true (p.Core.Tuner.baseline_cost > 0.0);
        Alcotest.(check bool) "hotspot below total" true
          (p.Core.Tuner.baseline_hotspot < p.Core.Tuner.baseline_cost);
        Alcotest.(check bool) "metric" true (p.Core.Tuner.baseline_metric <> []);
        Alcotest.(check bool) "budget is 3x" true
          (Float.abs (p.Core.Tuner.budget -. (3.0 *. p.Core.Tuner.baseline_cost)) < 1e-6));
    t "eq1 n follows the model's noise" (fun () ->
        let p_quiet = Core.Tuner.prepare small_mpas in
        Alcotest.(check int) "n=1 at 1%" 1 p_quiet.Core.Tuner.eq1_n;
        let noisy = { small_mpas with Models.Registry.noise_rel_std = 0.09 } in
        let p_noisy = Core.Tuner.prepare noisy in
        Alcotest.(check int) "n=7 at 9%" 7 p_noisy.Core.Tuner.eq1_n);
    t "noise-adjusted perf floor" (fun () ->
        let noisy = { small_mpas with Models.Registry.noise_rel_std = 0.09 } in
        let p = Core.Tuner.prepare noisy in
        Alcotest.(check bool) "below configured floor" true (p.Core.Tuner.perf_floor < 0.95));
    t "threshold derived from the supported 32-bit build" (fun () ->
        let p = Core.Tuner.prepare small_mpas in
        Alcotest.(check bool) "finite positive" true
          (Float.is_finite p.Core.Tuner.threshold && p.Core.Tuner.threshold > 0.0));
    t "ensemble matches configured size" (fun () ->
        let p = Core.Tuner.prepare small_mpas in
        Alcotest.(check int) "10 runs" 10 (List.length p.Core.Tuner.baseline_times));
  ]

let eval_tests =
  [
    t "original assignment is a passing parity variant" (fun () ->
        let p = Core.Tuner.prepare small_funarc in
        let m = Core.Tuner.evaluate p (Transform.Assignment.original p.Core.Tuner.atoms) in
        Alcotest.(check string) "pass" "pass" (Search.Variant.status_to_string m.Search.Variant.status);
        Alcotest.(check bool) "error zero" true (m.Search.Variant.rel_error = 0.0);
        Alcotest.(check bool) "speedup near 1" true
          (m.Search.Variant.speedup > 0.9 && m.Search.Variant.speedup < 1.1));
    t "uniform32 measurement carries speedup and error" (fun () ->
        let p = Core.Tuner.prepare small_funarc in
        let m = Core.Tuner.uniform32_measurement p in
        Alcotest.(check bool) "speedup > 1" true (m.Search.Variant.speedup > 1.0);
        Alcotest.(check bool) "error > 0" true (m.Search.Variant.rel_error > 0.0));
    t "timeouts classified when the budget shrinks" (fun () ->
        (* a model whose variants exceed 0.5x the baseline time: everything
           (even parity) times out *)
        let strangled = { small_funarc with Models.Registry.timeout_factor = 0.5 } in
        let p = Core.Tuner.prepare strangled in
        let m = Core.Tuner.evaluate p (Transform.Assignment.original p.Core.Tuner.atoms) in
        Alcotest.(check string) "timeout" "timeout"
          (Search.Variant.status_to_string m.Search.Variant.status);
        Alcotest.(check (Alcotest.float 1e-9)) "no speedup" 0.0 m.Search.Variant.speedup);
    t "runtime errors classified" (fun () ->
        let small_mom6 =
          { Models.Registry.mom6 with
            Models.Registry.source = Models.Mom6.source ~p:Models.Mom6.small () }
        in
        let p = Core.Tuner.prepare small_mom6 in
        let m =
          Core.Tuner.evaluate p (Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4)
        in
        Alcotest.(check string) "error" "error"
          (Search.Variant.status_to_string m.Search.Variant.status));
    t "whole-model mode measures model time" (fun () ->
        let config = { Core.Config.default with Core.Config.mode = Core.Config.Whole_model_guided } in
        let p_whole = Core.Tuner.prepare ~config small_mpas in
        let p_hot = Core.Tuner.prepare small_mpas in
        let asg = Transform.Assignment.uniform p_hot.Core.Tuner.atoms Fortran.Ast.K4 in
        let m_whole = Core.Tuner.evaluate p_whole asg in
        let m_hot = Core.Tuner.evaluate p_hot asg in
        (* hotspot-guided sees the speedup; whole-model-guided sees the
           boundary casting penalty *)
        Alcotest.(check bool) "hotspot faster" true
          (m_hot.Search.Variant.speedup > m_whole.Search.Variant.speedup));
    t "evaluate never raises on transformed garbage" (fun () ->
        (* lowering everything in ADCIRC can only yield pass/fail/error,
           never an exception *)
        let p = Core.Tuner.prepare small_adcirc in
        let m =
          Core.Tuner.evaluate p (Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4)
        in
        ignore m.Search.Variant.status);
    t "static filter rejects without running" (fun () ->
        let config = { Core.Config.default with Core.Config.static_filter = true;
                       static_penalty_budget = 0.0 } in
        let p = Core.Tuner.prepare ~config small_mpas in
        let m =
          Core.Tuner.evaluate p (Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4)
        in
        Alcotest.(check string) "filtered" "static-filter" m.Search.Variant.detail;
        Alcotest.(check (Alcotest.float 1e-9)) "no cluster cost" 0.0 m.Search.Variant.model_time);
  ]

let cluster_tests =
  [
    t "paper-faithful constants per model" (fun () ->
        let c = Core.Cluster.for_model Models.Registry.mpas in
        Alcotest.(check int) "20 nodes" 20 c.Core.Cluster.nodes;
        Alcotest.(check (Alcotest.float 1e-9)) "12h" 12.0 c.Core.Cluster.job_hours;
        Alcotest.(check (Alcotest.float 1e-9)) "90s baseline" 90.0 c.Core.Cluster.baseline_wall_s);
    t "variant seconds scale with modeled cost" (fun () ->
        let c = Core.Cluster.for_model Models.Registry.mpas in
        let fast = Core.Cluster.variant_seconds c ~baseline_cost:100.0 ~variant_cost:100.0 in
        let slow = Core.Cluster.variant_seconds c ~baseline_cost:100.0 ~variant_cost:300.0 in
        Alcotest.(check (Alcotest.float 1e-9)) "3x run part" 180.0 (slow -. fast));
    t "campaign hours split across nodes" (fun () ->
        let c = Core.Cluster.for_model Models.Registry.mpas in
        let one = Core.Cluster.campaign_hours c ~baseline_cost:1.0 ~variant_costs:[ 1.0 ] in
        let twenty =
          Core.Cluster.campaign_hours c ~baseline_cost:1.0
            ~variant_costs:(List.init 20 (fun _ -> 1.0))
        in
        Alcotest.(check (Alcotest.float 1e-9)) "20 variants = 20x one" (one *. 20.0) twenty);
    t "over_budget" (fun () ->
        let c = Core.Cluster.for_model Models.Registry.mom6 in
        Alcotest.(check bool) "13h over" true (Core.Cluster.over_budget c 13.0);
        Alcotest.(check bool) "11h under" false (Core.Cluster.over_budget c 11.0);
        Alcotest.(check bool) "exactly 12h is within budget" false
          (Core.Cluster.over_budget c c.Core.Cluster.job_hours));
    t "degenerate inputs: no variants, no baseline" (fun () ->
        let c = Core.Cluster.for_model Models.Registry.mpas in
        Alcotest.(check (Alcotest.float 1e-12)) "empty campaign costs nothing" 0.0
          (Core.Cluster.campaign_hours c ~baseline_cost:2.0 ~variant_costs:[]);
        (* a zero/negative baseline cost can't scale model time to wall
           seconds: only the fixed overhead remains *)
        Alcotest.(check (Alcotest.float 1e-9)) "zero baseline" c.Core.Cluster.per_variant_overhead_s
          (Core.Cluster.variant_seconds c ~baseline_cost:0.0 ~variant_cost:50.0);
        Alcotest.(check (Alcotest.float 1e-9)) "negative baseline"
          c.Core.Cluster.per_variant_overhead_s
          (Core.Cluster.variant_seconds c ~baseline_cost:(-1.0) ~variant_cost:50.0));
  ]

let campaign_tests =
  [
    t "brute force campaign on funarc subset" (fun () ->
        let m = small_funarc in
        let campaign = Core.Tuner.run_brute_force m in
        Alcotest.(check int) "256 variants" 256 campaign.Core.Tuner.summary.Search.Variant.total;
        Alcotest.(check bool) "frontier non-empty" true
          (Search.Variant.frontier campaign.Core.Tuner.records <> []));
    t "delta-debug campaign respects max_variants" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 10 } in
        let campaign = Core.Tuner.run_delta_debug ~config small_mpas in
        Alcotest.(check bool) "at most 10" true
          (campaign.Core.Tuner.summary.Search.Variant.total <= 10));
    t "campaign carries simulated cluster hours" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 8 } in
        let campaign = Core.Tuner.run_delta_debug ~config small_mpas in
        Alcotest.(check bool) "positive hours" true (campaign.Core.Tuner.simulated_hours > 0.0));
    t "workers=4 campaign bit-identical to sequential (mpas)" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 20 } in
        let c_seq = Core.Tuner.run_delta_debug ~config ~workers:0 small_mpas in
        let c_par = Core.Tuner.run_delta_debug ~config ~workers:4 small_mpas in
        Alcotest.(check bool) "identical records" true
          (c_seq.Core.Tuner.records = c_par.Core.Tuner.records);
        Alcotest.(check bool) "identical minimal" true
          (c_seq.Core.Tuner.minimal = c_par.Core.Tuner.minimal);
        Alcotest.(check bool) "identical summary" true
          (c_seq.Core.Tuner.summary = c_par.Core.Tuner.summary);
        Alcotest.(check (Alcotest.float 0.0)) "identical simulated hours"
          c_seq.Core.Tuner.simulated_hours c_par.Core.Tuner.simulated_hours);
    t "workers=4 campaign bit-identical to sequential (funarc)" (fun () ->
        let c_seq = Core.Tuner.run_delta_debug ~workers:0 small_funarc in
        let c_par = Core.Tuner.run_delta_debug ~workers:4 small_funarc in
        Alcotest.(check bool) "identical records" true
          (c_seq.Core.Tuner.records = c_par.Core.Tuner.records);
        Alcotest.(check bool) "identical minimal" true
          (c_seq.Core.Tuner.minimal = c_par.Core.Tuner.minimal));
    t "workers=3 hierarchical bit-identical to sequential" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 30 } in
        let c_seq = Core.Tuner.run_hierarchical ~config ~workers:0 small_mpas in
        let c_par = Core.Tuner.run_hierarchical ~config ~workers:3 small_mpas in
        Alcotest.(check bool) "identical records" true
          (c_seq.Core.Tuner.records = c_par.Core.Tuner.records);
        Alcotest.(check bool) "identical minimal" true
          (c_seq.Core.Tuner.minimal = c_par.Core.Tuner.minimal));
    t "batch-reuse fires iff the space has inert atoms (BENCH reuse_hits=0)" (fun () ->
        (* Every campaign in BENCH_2026-08-09_pr7.json reports
           reuse_hits = 0 with reuse_misses equal to the dynamic
           evaluation count: the batcher IS reached on every evaluation,
           but the share key (the variant's effective program) never
           repeats, because every atom of the registry models is live —
           and the trace already dedups identical signatures upstream.
           That is correct behavior, not a plumbing bug; the table pays
           off exactly when the search space contains inert atoms. Pin
           both sides so a regression in either direction is caught. *)
        let live = Core.Tuner.run_brute_force small_funarc in
        Alcotest.(check int) "live space: no effective-program repeats" 0
          live.Core.Tuner.backend.Core.Tuner.reuse_hits;
        Alcotest.(check bool) "live space: the batcher is reached" true
          (live.Core.Tuner.backend.Core.Tuner.reuse_misses > 0);
        (* the same model with a never-referenced spare real in the
           search space: variants differing only in the spare's kind are
           effectively identical, and brute force provably enumerates
           such pairs (ddmin's trajectory need not — one more reason the
           bench ddmin campaigns sit at zero) *)
        let spares =
          let base = small_funarc in
          let marker = "real(kind=8) :: s1, h, t1, t2, dppi\n" in
          let insert = "    real(kind=8) :: spare\n" in
          let src = base.Models.Registry.source in
          let i =
            let n = String.length src and m = String.length marker in
            let rec go i =
              if i + m > n then Alcotest.fail "funarc marker not found"
              else if String.equal (String.sub src i m) marker then i
              else go (i + 1)
            in
            go 0
          in
          let cut = i + String.length marker in
          { base with
            Models.Registry.source =
              String.sub src 0 cut ^ insert ^ String.sub src cut (String.length src - cut);
          }
        in
        let c = Core.Tuner.run_brute_force spares in
        Alcotest.(check bool) "inert atom: the reuse table serves repeats" true
          (c.Core.Tuner.backend.Core.Tuner.reuse_hits > 0));
    t "same seed reproduces the campaign" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 12 } in
        let c1 = Core.Tuner.run_delta_debug ~config small_mpas in
        let c2 = Core.Tuner.run_delta_debug ~config small_mpas in
        let sigs c =
          List.map
            (fun (r : Search.Variant.record) -> Transform.Assignment.signature r.Search.Variant.asg)
            c.Core.Tuner.records
        in
        Alcotest.(check (list string)) "same exploration" (sigs c1) (sigs c2));
  ]

let extension_tests =
  [
    t "hierarchical campaign finds a valid 1-minimal variant" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 40 } in
        let c = Core.Tuner.run_hierarchical ~config small_mpas in
        match c.Core.Tuner.minimal with
        | Some r ->
          (* the reported minimal variant must satisfy the oracle *)
          let m = Core.Tuner.evaluate c.Core.Tuner.prepared r.Search.Delta_debug.minimal in
          Alcotest.(check bool) "accepted" true
            (Search.Delta_debug.accepted
               { Search.Delta_debug.error_threshold = c.Core.Tuner.prepared.Core.Tuner.threshold;
                 perf_floor = c.Core.Tuner.prepared.Core.Tuner.perf_floor }
               m)
        | None -> Alcotest.fail "expected a result");
    t "flow groups partition the atom set" (fun () ->
        let small_mom6 =
          { Models.Registry.mom6 with
            Models.Registry.source = Models.Mom6.source ~p:Models.Mom6.small () }
        in
        let p = Core.Tuner.prepare small_mom6 in
        let groups = Core.Tuner.flow_groups p in
        let flat = List.concat groups in
        Alcotest.(check int) "same size" (List.length p.Core.Tuner.atoms) (List.length flat);
        List.iter
          (fun a -> Alcotest.(check bool) "member" true (List.memq a flat))
          p.Core.Tuner.atoms;
        (* whole-array parameter passing couples atoms into one group:
           zonal_mass_flux's column buffer feeds zonal_flux_adjust's dummy *)
        let group_of id =
          List.find
            (fun g -> List.exists (fun a -> Transform.Assignment.atom_id a = id) g)
            groups
        in
        let g = group_of "zonal_flux_adjust/ucol" in
        Alcotest.(check bool) "coupled with its actual" true
          (List.exists
             (fun a -> Transform.Assignment.atom_id a = "zonal_mass_flux/ucol_w")
             g));
    t "CSV export has one row per variant" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 8 } in
        let c = Core.Tuner.run_delta_debug ~config small_mpas in
        let csv = Core.Export.variants_csv c in
        let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
        Alcotest.(check int) "rows" (c.Core.Tuner.summary.Search.Variant.total + 1)
          (List.length lines));
    t "CSV fields are RFC-4180 quoted" (fun () ->
        Alcotest.(check string) "plain passes through" "pass" (Core.Export.csv_field "pass");
        Alcotest.(check string) "comma quoted" "\"a,b\"" (Core.Export.csv_field "a,b");
        Alcotest.(check string) "quote doubled" "\"say \"\"hi\"\"\""
          (Core.Export.csv_field "say \"hi\"");
        Alcotest.(check string) "newline quoted" "\"a\nb\"" (Core.Export.csv_field "a\nb");
        (* a record whose status/signature would break a naive CSV writer *)
        let p = Core.Tuner.prepare small_funarc in
        let asg = Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4 in
        let m = Core.Tuner.evaluate p asg in
        let r = { Search.Variant.index = 1; asg; meas = m } in
        let csv = Core.Export.variants_csv_records [ r ] in
        Alcotest.(check int) "two lines" 2
          (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv))));
    t "JSON export is well-formed enough" (fun () ->
        let config = { Core.Config.default with Core.Config.max_variants = Some 6 } in
        let c = Core.Tuner.run_delta_debug ~config small_mpas in
        let j = Core.Export.summary_json c in
        let contains sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length j && (String.sub j i n = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "model key" true (contains "\"model\": \"mpas\"");
        Alcotest.(check bool) "minimal key" true (contains "\"minimal\"");
        Alcotest.(check bool) "trace stats key" true (contains "\"trace\": {\"hits\": ");
        Alcotest.(check bool) "fresh-eval counter matches" true
          (contains
             (Printf.sprintf "\"misses\": %d"
                c.Core.Tuner.trace_stats.Search.Trace.misses)));
    t "predictor fits the funarc space with useful held-out accuracy" (fun () ->
        let c = Core.Tuner.run_brute_force small_funarc in
        match Core.Predictor.holdout_report c.Core.Tuner.prepared c.Core.Tuner.records with
        | Some (train_r2, test_r2, n) ->
          Alcotest.(check bool) "train fit" true (train_r2 > 0.4);
          Alcotest.(check bool) "held-out better than the mean" true (test_r2 > 0.2);
          Alcotest.(check bool) "held-out size" true (n > 50)
        | None -> Alcotest.fail "fit failed");
    t "predictor features are static and finite" (fun () ->
        let p = Core.Tuner.prepare small_mpas in
        let f =
          Core.Predictor.features p (Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K4)
        in
        Alcotest.(check int) "arity" (List.length Core.Predictor.feature_names) (Array.length f);
        Array.iter (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v)) f);
  ]

let () =
  Alcotest.run "tuner"
    [
      ("prepare", prepare_tests);
      ("evaluate", eval_tests);
      ("cluster", cluster_tests);
      ("campaigns", campaign_tests);
      ("extensions", extension_tests);
    ]
