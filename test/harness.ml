(* Shared plumbing for the durable-campaign test suites: temp
   directories, the SIGKILL-style journal tear, and the campaign
   equality / zero-re-evaluation checks. Linked into every test
   executable of the (tests) stanza; keep it dependency-light. *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/prose_test_%d_%d" (Filename.get_temp_dir_name ()) (Unix.getpid ()) !n

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if try Sys.is_directory p with Sys_error _ -> false then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let with_dir2 f = with_dir (fun a -> with_dir (fun b -> f a b))

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* cut the journal to a prefix, mid-record-line (a real SIGKILL tear) *)
let truncate_journal dir frac =
  let path = Persist.Journal.file ~dir in
  let s = slurp path in
  let header_end = String.index s '\n' + 1 in
  let cut = header_end + int_of_float (frac *. float_of_int (String.length s - header_end)) in
  let oc = open_out_bin path in
  output_string oc (String.sub s 0 cut);
  close_out oc

let keys (c : Core.Tuner.campaign) =
  List.map
    (fun (r : Search.Variant.record) ->
      ( r.Search.Variant.index,
        Transform.Assignment.signature r.Search.Variant.asg,
        r.Search.Variant.meas ))
    c.Core.Tuner.records

(* nan-valued measurement fields make [=] unusable; [compare] is total *)
let check_same_campaign name (a : Core.Tuner.campaign) (b : Core.Tuner.campaign) =
  Alcotest.(check int) (name ^ ": record count") (List.length a.Core.Tuner.records)
    (List.length b.Core.Tuner.records);
  Alcotest.(check bool) (name ^ ": records identical") true (compare (keys a) (keys b) = 0);
  Alcotest.(check bool)
    (name ^ ": summary identical")
    true
    (compare a.Core.Tuner.summary b.Core.Tuner.summary = 0);
  Alcotest.(check int64)
    (name ^ ": simulated hours bits")
    (Int64.bits_of_float a.Core.Tuner.simulated_hours)
    (Int64.bits_of_float b.Core.Tuner.simulated_hours)

let check_no_reeval name (c : Core.Tuner.campaign) =
  Alcotest.(check int)
    (name ^ ": fresh evals = records - preloaded")
    (List.length c.Core.Tuner.records - c.Core.Tuner.preloaded)
    c.Core.Tuner.trace_stats.Search.Trace.misses
