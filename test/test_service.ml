(* Service-layer tests: job codec + admission control, the atomic
   campaign store, the wire-protocol codec, round-robin fairness (QCheck
   over the pure cursor arithmetic), and the headline multiplexing
   invariant — N concurrent jobs' journals, minimal sets and summaries
   are byte-identical to the same campaigns run solo, across quota
   exhaustion, mid-slice drains and SIGKILL-torn journals. *)

let t name f = Alcotest.test_case name `Quick f
let qt = QCheck_alcotest.to_alcotest

let contains_sub line sub =
  let n = String.length sub and m = String.length line in
  let rec at i = i + n <= m && (String.sub line i n = sub || at (i + 1)) in
  at 0

let small_funarc =
  { Models.Registry.funarc with Models.Registry.source = Models.Funarc.source ~n:200 () }

(* tests resolve the registry names onto scaled-down sources *)
let find_model name =
  if name = "funarc" then small_funarc else Models.Registry.find name

let base_spec =
  {
    Service.Job.sp_model = "funarc";
    sp_algo = "delta_debug";
    sp_seed = 42;
    sp_workers = 0;
    sp_max_variants = None;
    sp_whole_model = false;
    sp_quota_hours = None;
    sp_faults = None;
    sp_tenant = "default";
    sp_priority = 1;
  }

let fault_spec =
  {
    Core.Cluster.Faults.fault_seed = 7;
    transient_prob = 0.40;
    node_failure_prob = 0.25;
    max_retries = 1;
    preempt_at_hours = None;
  }

let full_spec =
  {
    Service.Job.sp_model = "funarc";
    sp_algo = "brute_force";
    sp_seed = 7;
    sp_workers = 4;
    sp_max_variants = Some 48;
    sp_whole_model = true;
    sp_quota_hours = Some 0x1.999999999999ap-3 (* a float with no short decimal *);
    sp_faults = Some fault_spec;
    sp_tenant = "climate-group";
    sp_priority = 3;
  }

(* ------------------------------------------------------------------ *)
(* Job codec + admission control                                       *)

let job_tests =
  [
    t "specs round-trip through JSON bit-exactly" (fun () ->
        List.iter
          (fun spec ->
            let s = Persist.Json.to_string (Service.Job.spec_json spec) in
            match Service.Job.spec_result (Persist.Json.parse s) with
            | Ok back ->
              Alcotest.(check bool) "spec preserved" true (compare back spec = 0)
            | Error msg -> Alcotest.failf "round-trip rejected: %s" msg)
          [ base_spec; full_spec ]);
    t "jobs round-trip through JSON in every state" (fun () ->
        List.iter
          (fun state ->
            let j =
              {
                (Service.Job.make ~id:"j042" full_spec) with
                Service.Job.state;
                records = 17;
                hours = 0x1.5555555555555p-4;
                best_speedup = 1.4375;
              }
            in
            let s = Persist.Json.to_string (Service.Job.to_json j) in
            match Service.Job.of_json (Persist.Json.parse s) with
            | Ok back -> Alcotest.(check bool) "job preserved" true (compare back j = 0)
            | Error msg -> Alcotest.failf "round-trip rejected: %s" msg)
          [
            Service.Job.Queued;
            Service.Job.Running;
            Service.Job.Paused;
            Service.Job.Done;
            Service.Job.Failed "quota-exhausted";
          ]);
    t "malformed specs are rejected, not raised" (fun () ->
        List.iter
          (fun s ->
            match Service.Job.spec_result (Persist.Json.parse s) with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %s" s)
          [ {|{}|}; {|{"model":"funarc"}|}; {|{"model":7,"algo":"delta_debug","seed":1}|} ]);
    t "admission control rejects bad specs" (fun () ->
        let rejects name spec =
          match Service.Job.validate ~find_model spec with
          | Error _ -> ()
          | Ok () -> Alcotest.failf "%s admitted" name
        in
        (match Service.Job.validate ~find_model base_spec with
        | Ok () -> ()
        | Error m -> Alcotest.failf "base spec rejected: %s" m);
        rejects "unknown model" { base_spec with Service.Job.sp_model = "nope" };
        rejects "unknown algo" { base_spec with Service.Job.sp_algo = "gradient" };
        rejects "negative workers" { base_spec with Service.Job.sp_workers = -1 };
        rejects "zero variant budget" { base_spec with Service.Job.sp_max_variants = Some 0 };
        rejects "non-positive quota" { base_spec with Service.Job.sp_quota_hours = Some 0.0 });
    t "job-supplied preemption boundaries are admission-rejected" (fun () ->
        let preempting =
          {
            base_spec with
            Service.Job.sp_faults =
              Some { fault_spec with Core.Cluster.Faults.preempt_at_hours = Some 1.0 };
          }
        in
        match Service.Job.validate ~find_model preempting with
        | Error msg ->
          Alcotest.(check bool) "points at the quota mechanism" true
            (contains_sub msg "quota")
        | Ok () -> Alcotest.fail "preempting spec admitted");
  ]

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

let store_tests =
  [
    t "submit assigns sequential ids and tolerates foreign entries" (fun () ->
        Harness.with_dir (fun root ->
            let store = Service.Store.open_ ~root in
            (* foreign junk a shared filesystem accumulates *)
            let jobs_dir = Filename.concat root "jobs" in
            let oc = open_out (Filename.concat jobs_dir "README") in
            output_string oc "not a job\n";
            close_out oc;
            Unix.mkdir (Filename.concat jobs_dir "zebra") 0o755;
            let submit () =
              match Service.Store.submit store ~find_model base_spec with
              | Ok j -> j
              | Error m -> Alcotest.failf "rejected: %s" m
            in
            let a = submit () and b = submit () in
            Alcotest.(check string) "first id" "j001" a.Service.Job.id;
            Alcotest.(check string) "second id" "j002" b.Service.Job.id;
            Alcotest.(check (list string)) "list skips foreign entries" [ "j001"; "j002" ]
              (List.map (fun j -> j.Service.Job.id) (Service.Store.list store))));
    t "updates are atomic and malformed state files load as None" (fun () ->
        Harness.with_dir (fun root ->
            let store = Service.Store.open_ ~root in
            let j =
              match Service.Store.submit store ~find_model base_spec with
              | Ok j -> j
              | Error m -> Alcotest.failf "rejected: %s" m
            in
            Service.Store.update store
              { j with Service.Job.state = Service.Job.Paused; records = 9 };
            (match Service.Store.load store "j001" with
            | Some back ->
              Alcotest.(check bool) "paused" true
                (back.Service.Job.state = Service.Job.Paused);
              Alcotest.(check int) "records" 9 back.Service.Job.records
            | None -> Alcotest.fail "updated job unloadable");
            Alcotest.(check bool) "no temp file left" false
              (Sys.file_exists
                 (Filename.concat (Service.Store.job_dir store "j001") "job.json.tmp"));
            Alcotest.(check bool) "unknown id" true (Service.Store.load store "j999" = None);
            (* a torn/garbage state file must not take the listing down *)
            let dir = Filename.concat (Filename.concat root "jobs") "j002" in
            Unix.mkdir dir 0o755;
            let oc = open_out (Filename.concat dir "job.json") in
            output_string oc "{\"id\": \"j0";
            close_out oc;
            Alcotest.(check bool) "garbage loads as None" true
              (Service.Store.load store "j002" = None);
            Alcotest.(check (list string)) "listing survives" [ "j001" ]
              (List.map (fun j -> j.Service.Job.id) (Service.Store.list store))));
  ]

(* ------------------------------------------------------------------ *)
(* Wire protocol codec                                                 *)

let proto_tests =
  [
    t "requests round-trip through the wire encoding" (fun () ->
        List.iter
          (fun req ->
            let line = Persist.Json.to_string (Service.Proto.request_json req) in
            match Service.Proto.request_of_string line with
            | Ok back -> Alcotest.(check bool) line true (compare back req = 0)
            | Error msg -> Alcotest.failf "%s rejected: %s" line msg)
          [
            Service.Proto.Ping;
            Service.Proto.Submit base_spec;
            Service.Proto.Submit full_spec;
            Service.Proto.Jobs;
            Service.Proto.Show "j007";
            Service.Proto.Cancel "j007";
            Service.Proto.Watch "j007";
          ]);
    t "malformed request lines are errors, not exceptions" (fun () ->
        List.iter
          (fun line ->
            match Service.Proto.request_of_string line with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted %s" line)
          [ ""; "{"; "[]"; {|{"cmd":"warp"}|}; {|{"cmd":"show"}|}; {|{"cmd":"submit"}|} ]);
    t "status events round-trip bit-exactly" (fun () ->
        List.iter
          (fun state ->
            let ev =
              {
                Service.Sched.ev_job = "j003";
                ev_state = state;
                ev_records = 12;
                ev_hours = 0x1.91a2b3c4d5e6fp-5;
                ev_best = 1.375;
                ev_shared = 5;
                ev_detail = "slice";
              }
            in
            match Service.Proto.event_of_json (Service.Proto.event_json ev) with
            | Some back -> Alcotest.(check bool) "event preserved" true (compare back ev = 0)
            | None -> Alcotest.fail "event rejected")
          [ Service.Job.Running; Service.Job.Done; Service.Job.Failed "cancelled" ];
        Alcotest.(check bool) "non-events ignored" true
          (Service.Proto.event_of_json (Persist.Json.parse {|{"ok":true}|}) = None));
    t "ok/error envelopes" (fun () ->
        Alcotest.(check bool) "ok" true (Service.Proto.is_ok (Service.Proto.ok []));
        let e = Service.Proto.error "boom" in
        Alcotest.(check bool) "not ok" false (Service.Proto.is_ok e);
        Alcotest.(check string) "message" "boom" (Service.Proto.error_of e));
  ]

(* ------------------------------------------------------------------ *)
(* Fairness of the round-robin cursor                                  *)

let fair_unit_tests =
  [
    t "next_after walks the sorted ids and wraps" (fun () ->
        let n cursor ids = Service.Sched.Fair.next_after ~cursor ids in
        Alcotest.(check (option string)) "empty" None (n None []);
        Alcotest.(check (option string)) "no cursor -> head" (Some "j001")
          (n None [ "j001"; "j002" ]);
        Alcotest.(check (option string)) "advance" (Some "j002")
          (n (Some "j001") [ "j001"; "j002" ]);
        Alcotest.(check (option string)) "wrap" (Some "j001")
          (n (Some "j002") [ "j001"; "j002" ]);
        Alcotest.(check (option string)) "cursor's job may have departed" (Some "j003")
          (n (Some "j002") [ "j001"; "j003" ]));
    t "weighted cursor bursts up to its weight, then yields" (fun () ->
        let weight = function "j001" -> 3 | _ -> 1 in
        let step cursor ids =
          match Service.Sched.Fair.next ~weight ~cursor ids with
          | Some (id, cursor') -> (id, cursor')
          | None -> Alcotest.fail "empty runnable list"
        in
        let ids = [ "j001"; "j002" ] in
        let c0 = Service.Sched.Fair.start in
        let id1, c1 = step c0 ids in
        let id2, c2 = step c1 ids in
        let id3, c3 = step c2 ids in
        let id4, c4 = step c3 ids in
        let id5, _ = step c4 ids in
        Alcotest.(check (list string)) "3-slice burst, then the next job, then wrap"
          [ "j001"; "j001"; "j001"; "j002"; "j001" ]
          [ id1; id2; id3; id4; id5 ];
        (* a departed job forfeits its remaining credit *)
        let _, mid = step c0 ids in
        let next_id, _ = step mid [ "j002" ] in
        Alcotest.(check string) "credit dies with the departure" "j002" next_id);
    t "simulate_weighted at weight 1 is the plain round robin" (fun () ->
        let slices = [ ("j001", 3); ("j002", 1); ("j003", 2) ] in
        Alcotest.(check (list string)) "identical order"
          (Service.Sched.Fair.simulate ~slices)
          (Service.Sched.Fair.simulate_weighted
             ~slices:(List.map (fun (id, n) -> (id, n, 1)) slices)));
  ]

(* Between two consecutive slices of any still-runnable job, every other
   job is served at most once: no runnable job starves while another is
   served twice. The trailing segment (after the job's last slice) is
   exempt — the job has departed. *)
let fairness_prop =
  QCheck.Test.make ~name:"no runnable job starves beyond one round" ~count:500
    QCheck.(small_list (int_range 1 5))
    (fun counts ->
      let slices = List.mapi (fun i n -> (Printf.sprintf "j%03d" (i + 1), n)) counts in
      let order = Service.Sched.Fair.simulate ~slices in
      let served id = List.length (List.filter (String.equal id) order) in
      List.for_all (fun (id, n) -> served id = n) slices
      &&
      let distinct gap = List.length (List.sort_uniq compare gap) = List.length gap in
      List.for_all
        (fun (id, _) ->
          let rec split acc gaps = function
            | [] -> List.rev (List.rev acc :: gaps)
            | x :: rest ->
              if String.equal x id then split [] (List.rev acc :: gaps) rest
              else split (x :: acc) gaps rest
          in
          match List.rev (split [] [] order) with
          | [] -> true
          | _after_departure :: live_gaps -> List.for_all distinct live_gaps)
        slices)

(* The weighted generalization: between two consecutive services of any
   still-runnable job, every other job is served at most its weight
   times. At uniform weight 1 this is exactly the property above. *)
let weighted_fairness_prop =
  QCheck.Test.make ~name:"weighted deficit: no job starves beyond others' weights" ~count:500
    QCheck.(small_list (pair (int_range 1 5) (int_range 1 4)))
    (fun jobs ->
      let slices = List.mapi (fun i (n, w) -> (Printf.sprintf "j%03d" (i + 1), n, w)) jobs in
      let order = Service.Sched.Fair.simulate_weighted ~slices in
      let served id = List.length (List.filter (String.equal id) order) in
      List.for_all (fun (id, n, _) -> served id = n) slices
      &&
      let weight_of id =
        match List.find_opt (fun (j, _, _) -> String.equal j id) slices with
        | Some (_, _, w) -> w
        | None -> 1
      in
      let bounded gap =
        List.for_all
          (fun other ->
            List.length (List.filter (String.equal other) gap) <= weight_of other)
          (List.sort_uniq compare gap)
      in
      List.for_all
        (fun (id, _, _) ->
          let rec split acc gaps = function
            | [] -> List.rev (List.rev acc :: gaps)
            | x :: rest ->
              if String.equal x id then split [] (List.rev acc :: gaps) rest
              else split (x :: acc) gaps rest
          in
          match List.rev (split [] [] order) with
          | [] -> true
          | _after_departure :: live_gaps -> List.for_all bounded live_gaps)
        slices)

(* ------------------------------------------------------------------ *)
(* Scheduler: multiplexing byte-identity, quota, drain, SIGKILL        *)

let submit_or_die store spec =
  match Service.Store.submit store ~find_model spec with
  | Ok j -> j
  | Error m -> Alcotest.failf "submit rejected: %s" m

(* each slice flattened to (job, state, fresh evals, memo-shared, new records) *)
let drive sched =
  let rec go acc =
    match Service.Sched.step sched with
    | Service.Sched.Idle -> List.rev acc
    | Service.Sched.Sliced { si_job; si_state; si_fresh; si_new_records; si_shared } ->
      go ((si_job, si_state, si_fresh, si_shared, si_new_records) :: acc)
  in
  go []

(* zero re-evaluation, slice by slice: every new durable record of a
   slice was either freshly evaluated or served by the fleet memo — a
   resumed prefix is replayed, never re-run *)
let check_slices_fresh name slices =
  List.iter
    (fun (job, _, fresh, shared, new_records) ->
      Alcotest.(check int)
        (Printf.sprintf "%s: %s slice evaluated only its fresh records" name job)
        new_records (fresh + shared))
    slices

let job_journal store id =
  Harness.slurp (Persist.Journal.file ~dir:(Service.Store.campaign_dir store id))

let strip_trace s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> not (contains_sub l "\"trace\""))
  |> String.concat "\n"

(* a memo-fed job's journal is the solo journal plus provenance
   annotation lines — strip those before byte-comparing *)
let strip_shared s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> not (contains_sub l "\"kind\":\"shared\""))
  |> String.concat "\n"

let state_of store id =
  match Service.Store.load store id with
  | Some j -> j.Service.Job.state
  | None -> Alcotest.failf "job %s vanished" id

(* the three concurrent campaigns of the identity matrix *)
let spec_dd = base_spec

(* mild enough that the dd campaign survives its opening probe (at these
   rates and seed it still loses a variant mid-run), heavy enough to
   exercise the fault books inside a multiplexed slice *)
let mild_faults =
  {
    Core.Cluster.Faults.fault_seed = 7;
    transient_prob = 0.30;
    node_failure_prob = 0.15;
    max_retries = 2;
    preempt_at_hours = None;
  }

let spec_faulted =
  { base_spec with Service.Job.sp_seed = 7; sp_workers = 4; sp_faults = Some mild_faults }

let spec_brute = { base_spec with Service.Job.sp_algo = "brute_force"; sp_max_variants = Some 48 }

let solo_dd ~journal =
  Core.Tuner.run_delta_debug
    ~config:(Service.Job.config_of_spec spec_dd)
    ~workers:0 ~journal small_funarc

let solo_faulted ~journal =
  Core.Tuner.run_delta_debug
    ~config:(Service.Job.config_of_spec spec_faulted)
    ~workers:4 ~journal ~faults:mild_faults small_funarc

let solo_brute ~journal =
  Core.Tuner.run_brute_force ~config:(Service.Job.config_of_spec spec_brute) ~journal small_funarc

let matrix_test pool_workers () =
  Harness.with_dir @@ fun root ->
  Harness.with_dir @@ fun d1 ->
  Harness.with_dir2 @@ fun d2 d3 ->
  let store = Service.Store.open_ ~root in
  List.iter (fun s -> ignore (submit_or_die store s)) [ spec_dd; spec_faulted; spec_brute ];
  let with_pool f =
    if pool_workers > 0 then Search.Pool.with_pool ~workers:pool_workers (fun p -> f (Some p))
    else f None
  in
  let slices =
    with_pool (fun pool ->
        let sched = Service.Sched.create ~slice_records:3 ?pool ~find_model store in
        drive sched)
  in
  let name = Printf.sprintf "matrix pool=%d" pool_workers in
  (* genuinely interleaved: every job took several slices, and the first
     round visits the queue in id order *)
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s got multiple slices" name id)
        true
        (List.length (List.filter (fun (j, _, _, _, _) -> j = id) slices) >= 2))
    [ "j001"; "j002"; "j003" ];
  Alcotest.(check (list string))
    (name ^ ": first round is id order")
    [ "j001"; "j002"; "j003" ]
    (List.filteri (fun i _ -> i < 3) (List.map (fun (j, _, _, _, _) -> j) slices));
  check_slices_fresh name slices;
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%s: %s done" name id) true
        (state_of store id = Service.Job.Done))
    [ "j001"; "j002"; "j003" ];
  let solos = [ solo_dd ~journal:d1; solo_faulted ~journal:d2; solo_brute ~journal:d3 ] in
  List.iteri
    (fun i solo ->
      let id = Printf.sprintf "j%03d" (i + 1) in
      let solo_dir = List.nth [ d1; d2; d3 ] i in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s journal byte-identical to solo" name id)
        true
        (String.equal (job_journal store id)
           (Harness.slurp (Persist.Journal.file ~dir:solo_dir)));
      Alcotest.(check string)
        (Printf.sprintf "%s: %s summary identical to solo (sans trace)" name id)
        (strip_trace (Core.Export.summary_json solo))
        (strip_trace (Harness.slurp (Service.Store.summary_file store id)));
      match solo.Core.Tuner.minimal with
      | Some r ->
        Alcotest.(check string)
          (Printf.sprintf "%s: %s minimal set identical to solo" name id)
          (Service.Sched.minimal_text solo r)
          (Harness.slurp (Service.Store.minimal_file store id))
      | None -> ())
    solos

let quota_test () =
  Harness.with_dir2 @@ fun root solo_dir ->
  (* learn the campaign's total cost, then set a quota strictly inside it *)
  let config = Service.Job.config_of_spec spec_dd in
  let probe = Core.Tuner.run_delta_debug ~config ~workers:0 small_funarc in
  let quota = 0.6 *. probe.Core.Tuner.simulated_hours in
  let store = Service.Store.open_ ~root in
  ignore (submit_or_die store { spec_dd with Service.Job.sp_quota_hours = Some quota });
  let sched = Service.Sched.create ~slice_records:4 ~find_model store in
  let slices = drive sched in
  check_slices_fresh "quota" slices;
  (match Service.Store.load store "j001" with
  | Some j ->
    Alcotest.(check bool) "terminal quota failure" true
      (j.Service.Job.state = Service.Job.Failed "quota-exhausted");
    Alcotest.(check bool) "charged at least the quota" true (j.Service.Job.hours >= quota)
  | None -> Alcotest.fail "job vanished");
  (* the same budget as an injected preemption boundary stops the solo
     run at the same durable record — the journals are byte-identical *)
  let faults =
    { Core.Cluster.Faults.none with Core.Cluster.Faults.preempt_at_hours = Some quota }
  in
  let solo =
    Core.Tuner.run_delta_debug ~config ~workers:0 ~journal:solo_dir ~faults small_funarc
  in
  Alcotest.(check bool) "solo preemption fired" true solo.Core.Tuner.interrupted;
  Alcotest.(check bool) "quota stop = preemption stop, byte for byte" true
    (String.equal (job_journal store "j001")
       (Harness.slurp (Persist.Journal.file ~dir:solo_dir)));
  match Service.Store.load store "j001" with
  | Some j ->
    Alcotest.(check int64) "charged exactly the solo run's hours"
      (Int64.bits_of_float solo.Core.Tuner.simulated_hours)
      (Int64.bits_of_float j.Service.Job.hours)
  | None -> Alcotest.fail "job vanished"

let drain_test () =
  Harness.with_dir2 @@ fun root solo_dir ->
  let store = Service.Store.open_ ~root in
  ignore (submit_or_die store spec_dd);
  (* drain mid-slice, from the event stream — exactly what the SIGTERM
     handler does while a slice is running *)
  let sched_cell = ref None in
  let ticks = ref 0 in
  let on_event (ev : Service.Sched.event) =
    if ev.Service.Sched.ev_detail = "" then begin
      incr ticks;
      if !ticks = 3 then Option.iter Service.Sched.drain !sched_cell
    end
  in
  let sched = Service.Sched.create ~slice_records:10_000 ~find_model ~on_event store in
  sched_cell := Some sched;
  (match Service.Sched.step sched with
  | Service.Sched.Sliced { si_state = Service.Job.Paused; _ } -> ()
  | Service.Sched.Sliced { si_state; _ } ->
    Alcotest.failf "drained slice ended %s" (Service.Job.state_name si_state)
  | Service.Sched.Idle -> Alcotest.fail "nothing ran");
  Alcotest.(check bool) "draining scheduler idles" true
    (Service.Sched.step sched = Service.Sched.Idle);
  Alcotest.(check bool) "job paused durably" true (state_of store "j001" = Service.Job.Paused);
  (* a later server finishes the job bit-identically, evaluating nothing
     it already journaled *)
  let sched2 = Service.Sched.create ~slice_records:10_000 ~find_model store in
  let slices = drive sched2 in
  check_slices_fresh "post-drain" slices;
  Alcotest.(check bool) "done after restart" true (state_of store "j001" = Service.Job.Done);
  let _ : Core.Tuner.campaign = solo_dd ~journal:solo_dir in
  Alcotest.(check bool) "drained journal byte-identical to solo" true
    (String.equal (job_journal store "j001")
       (Harness.slurp (Persist.Journal.file ~dir:solo_dir)))

let sigkill_test () =
  Harness.with_dir @@ fun root ->
  Harness.with_dir2 @@ fun d1 d2 ->
  let store = Service.Store.open_ ~root in
  ignore (submit_or_die store spec_dd);
  ignore (submit_or_die store spec_faulted);
  let sched = Service.Sched.create ~slice_records:3 ~find_model store in
  (* three slices: both jobs mid-campaign, both Running in the store *)
  for _ = 1 to 3 do
    match Service.Sched.step sched with
    | Service.Sched.Sliced _ -> ()
    | Service.Sched.Idle -> Alcotest.fail "queue drained too early"
  done;
  Alcotest.(check bool) "j001 left running" true (state_of store "j001" = Service.Job.Running);
  (* SIGKILL: tear j001's journal mid-record; j002 stops at a clean slice
     boundary. Both job.json files still say Running, with progress ahead
     of the torn journal — stale state a crash leaves behind. *)
  Harness.truncate_journal (Service.Store.campaign_dir store "j001") 0.6;
  (* a fresh server over the same root picks both up and finishes them *)
  let sched2 = Service.Sched.create ~slice_records:3 ~find_model store in
  let slices = drive sched2 in
  check_slices_fresh "post-kill" slices;
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " done after restart") true
        (state_of store id = Service.Job.Done))
    [ "j001"; "j002" ];
  let _ : Core.Tuner.campaign = solo_dd ~journal:d1 in
  let _ : Core.Tuner.campaign = solo_faulted ~journal:d2 in
  List.iteri
    (fun i dir ->
      let id = Printf.sprintf "j%03d" (i + 1) in
      Alcotest.(check bool) (id ^ " journal byte-identical to solo") true
        (String.equal (job_journal store id) (Harness.slurp (Persist.Journal.file ~dir))))
    [ d1; d2 ]

(* K identical jobs over the shared evaluation memo: every journal
   (provenance lines stripped), minimal set and summary (trace line
   stripped) byte-identical to the solo run, while the fleet evaluates
   strictly fewer fresh variants than K solo runs would *)
let memo_matrix_test k pool_workers () =
  Harness.with_dir2 @@ fun root solo_dir ->
  let store = Service.Store.open_ ~root in
  for _ = 1 to k do
    ignore (submit_or_die store spec_dd)
  done;
  let with_pool f =
    if pool_workers > 0 then Search.Pool.with_pool ~workers:pool_workers (fun p -> f (Some p))
    else f None
  in
  let slices =
    with_pool (fun pool ->
        let sched =
          Service.Sched.create ~slice_records:3 ?pool ~memo:(Service.Memo.create ())
            ~find_model store
        in
        drive sched)
  in
  let name = Printf.sprintf "memo k=%d pool=%d" k pool_workers in
  check_slices_fresh name slices;
  Alcotest.(check bool) (name ^ ": the memo actually served records") true
    (List.exists (fun (_, _, _, shared, _) -> shared > 0) slices);
  let solo = solo_dd ~journal:solo_dir in
  let fleet_misses = List.fold_left (fun acc (_, _, fresh, _, _) -> acc + fresh) 0 slices in
  Alcotest.(check bool)
    (Printf.sprintf "%s: fleet misses strictly below %dx solo" name k)
    true
    (fleet_misses < k * solo.Core.Tuner.trace_stats.Search.Trace.misses);
  let solo_journal = Harness.slurp (Persist.Journal.file ~dir:solo_dir) in
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "%s: %s done" name id) true
        (state_of store id = Service.Job.Done);
      Alcotest.(check string)
        (Printf.sprintf "%s: %s journal (sans provenance) byte-identical to solo" name id)
        solo_journal
        (strip_shared (job_journal store id));
      Alcotest.(check string)
        (Printf.sprintf "%s: %s summary identical to solo (sans trace)" name id)
        (strip_trace (Core.Export.summary_json solo))
        (strip_trace (Harness.slurp (Service.Store.summary_file store id)));
      match solo.Core.Tuner.minimal with
      | Some r ->
        Alcotest.(check string)
          (Printf.sprintf "%s: %s minimal set identical to solo" name id)
          (Service.Sched.minimal_text solo r)
          (Harness.slurp (Service.Store.minimal_file store id))
      | None -> ())
    (List.init k (fun i -> Printf.sprintf "j%03d" (i + 1)))

(* SIGTERM mid-slice with the memo on, then a SIGKILL-style torn journal:
   a fresh server (fresh, empty in-memory memo) resumes every job with
   zero re-evaluation of any journaled prefix — memo-served records
   journaled before the crash are replayed like any other prefix *)
let memo_restart_test () =
  Harness.with_dir2 @@ fun root solo_dir ->
  let store = Service.Store.open_ ~root in
  ignore (submit_or_die store spec_dd);
  ignore (submit_or_die store spec_dd);
  let sched_cell = ref None in
  let ticks = ref 0 in
  let on_event (ev : Service.Sched.event) =
    if ev.Service.Sched.ev_detail = "" then begin
      incr ticks;
      if !ticks = 8 then Option.iter Service.Sched.drain !sched_cell
    end
  in
  let sched =
    Service.Sched.create ~slice_records:3 ~memo:(Service.Memo.create ()) ~find_model ~on_event
      store
  in
  sched_cell := Some sched;
  let pre = drive sched in
  check_slices_fresh "memo pre-drain" pre;
  Alcotest.(check bool) "memo served records before the drain" true
    (List.exists (fun (_, _, _, shared, _) -> shared > 0) pre);
  Alcotest.(check bool) "a job paused mid-campaign" true
    (List.exists (fun id -> state_of store id = Service.Job.Paused) [ "j001"; "j002" ]);
  (* SIGKILL on top of the drain: tear the donor's journal mid-record;
     the follower's journal keeps provenance lines naming the donor *)
  Harness.truncate_journal (Service.Store.campaign_dir store "j001") 0.6;
  let sched2 =
    Service.Sched.create ~slice_records:3 ~memo:(Service.Memo.create ()) ~find_model store
  in
  let slices = drive sched2 in
  check_slices_fresh "memo post-restart" slices;
  let solo = solo_dd ~journal:solo_dir in
  ignore (solo : Core.Tuner.campaign);
  let solo_journal = Harness.slurp (Persist.Journal.file ~dir:solo_dir) in
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " done after restart") true
        (state_of store id = Service.Job.Done);
      Alcotest.(check string)
        (id ^ " journal (sans provenance) byte-identical to solo")
        solo_journal
        (strip_shared (job_journal store id)))
    [ "j001"; "j002" ]

let cancel_test () =
  Harness.with_dir @@ fun root ->
  let store = Service.Store.open_ ~root in
  ignore (submit_or_die store spec_dd);
  let sched = Service.Sched.create ~slice_records:3 ~find_model store in
  (match Service.Sched.step sched with
  | Service.Sched.Sliced _ -> ()
  | Service.Sched.Idle -> Alcotest.fail "nothing ran");
  (match Service.Sched.cancel sched "j001" with
  | Ok j ->
    Alcotest.(check bool) "cancelled" true
      (j.Service.Job.state = Service.Job.Failed "cancelled")
  | Error m -> Alcotest.failf "cancel failed: %s" m);
  Alcotest.(check bool) "terminal jobs cannot be re-cancelled" true
    (match Service.Sched.cancel sched "j001" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "unknown ids error" true
    (match Service.Sched.cancel sched "j999" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "cancelled job never runs again" true
    (Service.Sched.step sched = Service.Sched.Idle)

let sched_tests =
  [
    Alcotest.test_case "3 concurrent jobs = 3 solo runs, byte for byte (sequential)" `Quick
      (matrix_test 0);
    Alcotest.test_case "3 concurrent jobs = 3 solo runs, byte for byte (4 workers)" `Slow
      (matrix_test 4);
    Alcotest.test_case "2 same-model jobs share the memo, bytes = solo (sequential)" `Quick
      (memo_matrix_test 2 0);
    Alcotest.test_case "3 same-model jobs share the memo, bytes = solo (sequential)" `Quick
      (memo_matrix_test 3 0);
    Alcotest.test_case "2 same-model jobs share the memo, bytes = solo (4 workers)" `Slow
      (memo_matrix_test 2 4);
    Alcotest.test_case "3 same-model jobs share the memo, bytes = solo (4 workers)" `Slow
      (memo_matrix_test 3 4);
    t "SIGTERM + torn journal with memo on: restart re-evaluates nothing" memo_restart_test;
    t "quota exhaustion stops at the exact preemption record" quota_test;
    t "mid-slice drain pauses durably and resumes bit-identically" drain_test;
    t "SIGKILL-torn journal: restart re-evaluates nothing, results identical" sigkill_test;
    t "cancel is terminal and unschedulable" cancel_test;
  ]

(* ------------------------------------------------------------------ *)
(* Journal discovery (the `prose campaign ls` regression)              *)

let header =
  {
    Persist.Journal.version = 1;
    model = "funarc";
    algo = "brute_force";
    seed = 42;
    config_digest = "cafe";
    workers = 0;
    atoms = 4;
    caps = [ "shared" ];
  }

let find_campaign_tests =
  [
    t "find_campaigns skips foreign files and descends to job journals" (fun () ->
        Harness.with_dir (fun root ->
            let mkdir_p parts =
              ignore
                (List.fold_left
                   (fun acc p ->
                     let d = Filename.concat acc p in
                     if not (Sys.file_exists d) then Unix.mkdir d 0o755;
                     d)
                   root parts)
            in
            if not (Sys.file_exists root) then Unix.mkdir root 0o755;
            let mk_journal parts =
              mkdir_p parts;
              let dir = List.fold_left Filename.concat root parts in
              Persist.Journal.close (Persist.Journal.create ~dir header)
            in
            mk_journal [ "alpha" ];
            mk_journal [ "jobs"; "j001"; "campaign" ];
            (* inside a campaign dir: must NOT be descended into *)
            mk_journal [ "alpha"; "nested" ];
            (* beyond max_depth 3 *)
            mk_journal [ "a"; "b"; "c"; "deep" ];
            mkdir_p [ "empty" ];
            let oc = open_out (Filename.concat root "README") in
            output_string oc "hello\n";
            close_out oc;
            Unix.symlink "nowhere" (Filename.concat root "broken");
            let found = Persist.Journal.find_campaigns ~root () in
            let rel d =
              let p = root ^ Filename.dir_sep in
              if String.length d > String.length p && String.sub d 0 (String.length p) = p
              then String.sub d (String.length p) (String.length d - String.length p)
              else d
            in
            Alcotest.(check (list string))
              "campaign dirs, lexicographic, no descent into campaigns"
              [ "alpha"; Filename.concat (Filename.concat "jobs" "j001") "campaign" ]
              (List.map rel found)));
    t "find_campaigns of a campaign root returns just it" (fun () ->
        Harness.with_dir (fun root ->
            Persist.Journal.close (Persist.Journal.create ~dir:root header);
            Alcotest.(check (list string)) "itself" [ root ]
              (Persist.Journal.find_campaigns ~root ())));
    t "find_campaigns of a missing root is empty" (fun () ->
        Alcotest.(check (list string)) "empty" []
          (Persist.Journal.find_campaigns ~root:"/nonexistent/prose-test" ()));
  ]

let () =
  Alcotest.run "service"
    [
      ("job", job_tests);
      ("store", store_tests);
      ("proto", proto_tests);
      ("fair", fair_unit_tests @ [ qt fairness_prop; qt weighted_fairness_prop ]);
      ("sched", sched_tests);
      ("campaign-discovery", find_campaign_tests);
    ]
