(* Testgen tests: the generator only produces well-typed programs whose
   canonical text is an unparse fixpoint, the case stream is
   deterministic in (seed, index), the oracles catch seeded corruptions,
   the minimizer shrinks while preserving the failure, and corpus
   save/load round-trips. *)

let t name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* The tentpole property: every generated case passes every oracle.
   This is the in-tree slice of `prose fuzz`; CI additionally runs the
   300-case smoke gate and developers the 1000-case campaign.          *)

let arbitrary_case =
  QCheck.make ~print:(fun c -> c.Testgen.Gen.source) Testgen.Gen.case

let all_oracles_pass =
  QCheck.Test.make ~name:"generated cases pass all four oracles" ~count:40 arbitrary_case
    (fun c ->
      match Testgen.Oracle.check ~ids:Testgen.Oracle.all c with
      | [] -> true
      | vs ->
        List.iter
          (fun (v : Testgen.Oracle.violation) ->
            Printf.eprintf "oracle %s: %s\n"
              (Testgen.Oracle.name v.Testgen.Oracle.oracle)
              v.Testgen.Oracle.detail)
          vs;
        false)

(* ------------------------------------------------------------------ *)

let determinism_tests =
  [
    t "case stream is deterministic in (seed, index)" (fun () ->
        List.iter
          (fun i ->
            let a = Testgen.Gen.case_at ~seed:42 ~index:i in
            let b = Testgen.Gen.case_at ~seed:42 ~index:i in
            Alcotest.(check string) "same source" a.Testgen.Gen.source b.Testgen.Gen.source;
            Alcotest.(check (list string))
              "same assignment" a.Testgen.Gen.lowered b.Testgen.Gen.lowered)
          [ 0; 1; 5; 17 ]);
    t "different indices give different programs" (fun () ->
        let a = Testgen.Gen.case_at ~seed:42 ~index:0 in
        let b = Testgen.Gen.case_at ~seed:42 ~index:1 in
        Alcotest.(check bool) "distinct" false
          (String.equal a.Testgen.Gen.source b.Testgen.Gen.source));
    t "generated source is canonical (unparse fixpoint by construction)" (fun () ->
        let c = Testgen.Gen.case_at ~seed:7 ~index:3 in
        let t1 = Fortran.Unparse.program (Fortran.Parser.parse ~file:"c.f90" c.Testgen.Gen.source) in
        Alcotest.(check string) "fixpoint" c.Testgen.Gen.source t1);
  ]

(* ------------------------------------------------------------------ *)
(* Negative controls: each oracle must catch a seeded corruption, and
   the minimizer must shrink the witness without losing the failure.   *)

let corrupt_with_undeclared (c : Testgen.Gen.case) =
  let needle = "  print *, 'chk'" in
  let src = c.Testgen.Gen.source in
  let rec find i =
    if i + String.length needle > String.length src then
      Alcotest.fail "fixture has no chk print"
    else if String.equal (String.sub src i (String.length needle)) needle then i
    else find (i + 1)
  in
  let i = find 0 in
  {
    c with
    Testgen.Gen.source =
      String.sub src 0 i ^ "  zz_undeclared = 1\n" ^ String.sub src i (String.length src - i);
  }

let oracle_tests =
  [
    t "roundtrip oracle flags non-canonical text" (fun () ->
        let c = Testgen.Gen.case_at ~seed:42 ~index:11 in
        let c' = { c with Testgen.Gen.source = c.Testgen.Gen.source ^ "\n" } in
        match Testgen.Oracle.check ~ids:[ Testgen.Oracle.Roundtrip ] c' with
        | [ { Testgen.Oracle.oracle = Testgen.Oracle.Roundtrip; _ } ] -> ()
        | _ -> Alcotest.fail "expected exactly one roundtrip violation");
    t "typecheck oracle reports the frontend diagnostic" (fun () ->
        let c' = corrupt_with_undeclared (Testgen.Gen.case_at ~seed:42 ~index:11) in
        match Testgen.Oracle.check ~ids:[ Testgen.Oracle.Typecheck ] c' with
        | [ { Testgen.Oracle.oracle = Testgen.Oracle.Typecheck; detail } ] ->
          Alcotest.(check bool) "names the variable" true
            (let sub = "zz_undeclared" in
             let rec has i =
               i + String.length sub <= String.length detail
               && (String.equal (String.sub detail i (String.length sub)) sub || has (i + 1))
             in
             has 0)
        | _ -> Alcotest.fail "expected exactly one typecheck violation");
    t "oracle name round-trips" (fun () ->
        List.iter
          (fun id ->
            Alcotest.(check bool) "of_name (name id) = id" true
              (Testgen.Oracle.of_name (Testgen.Oracle.name id) = Some id))
          Testgen.Oracle.all);
    t "minimizer shrinks a failing case and keeps it failing" (fun () ->
        let ids = [ Testgen.Oracle.Typecheck ] in
        let c' = corrupt_with_undeclared (Testgen.Gen.case_at ~seed:42 ~index:11) in
        let m = Testgen.Minimize.minimize ~ids c' in
        Alcotest.(check bool) "still fails" true (Testgen.Oracle.check ~ids m <> []);
        let lines s = List.length (String.split_on_char '\n' s) in
        Alcotest.(check bool) "no larger" true
          (lines m.Testgen.Gen.source <= lines c'.Testgen.Gen.source);
        (* the corruption is one statement in an otherwise healthy
           program: ddmin + pruning must get below a dozen lines *)
        Alcotest.(check bool) "aggressively shrunk" true (lines m.Testgen.Gen.source <= 12));
  ]

(* ------------------------------------------------------------------ *)

let corpus_tests =
  [
    t "corpus save/load round-trips" (fun () ->
        let dir =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "prose_corpus_%d" (Unix.getpid ()))
        in
        let entry =
          {
            Testgen.Corpus.name = "fz_test_s1_c2";
            case = Testgen.Gen.case_at ~seed:1 ~index:2;
            oracle = "equiv";
            origin = "seed=1 case=2";
          }
        in
        let path = Testgen.Corpus.save ~dir entry in
        Alcotest.(check bool) ".f90 written" true (Sys.file_exists path);
        (match Testgen.Corpus.load ~dir with
        | [ e ] ->
          Alcotest.(check string) "name" entry.Testgen.Corpus.name e.Testgen.Corpus.name;
          Alcotest.(check string) "oracle" "equiv" e.Testgen.Corpus.oracle;
          Alcotest.(check string) "origin" "seed=1 case=2" e.Testgen.Corpus.origin;
          Alcotest.(check string) "source"
            entry.Testgen.Corpus.case.Testgen.Gen.source
            e.Testgen.Corpus.case.Testgen.Gen.source;
          Alcotest.(check (list string))
            "lowered" entry.Testgen.Corpus.case.Testgen.Gen.lowered
            e.Testgen.Corpus.case.Testgen.Gen.lowered
        | es -> Alcotest.failf "expected one entry, got %d" (List.length es));
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir);
    t "loading an absent directory is an empty corpus" (fun () ->
        Alcotest.(check int) "empty" 0
          (List.length (Testgen.Corpus.load ~dir:"no_such_corpus_dir")));
  ]

let () =
  Alcotest.run "testgen"
    [
      ("property", [ QCheck_alcotest.to_alcotest all_oracles_pass ]);
      ("determinism", determinism_tests);
      ("oracles", oracle_tests);
      ("corpus", corpus_tests);
    ]
