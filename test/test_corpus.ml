(* Corpus replayer: every counterexample checked into test/corpus/ —
   minimized fuzz findings and pinned regression seeds — is re-run
   through all oracles on every `dune runtest`, so a bug fixed
   once stays fixed. *)

let t name f = Alcotest.test_case name `Quick f

let replay (e : Testgen.Corpus.entry) =
  t (Printf.sprintf "%s (%s, %s)" e.Testgen.Corpus.name e.Testgen.Corpus.oracle
       e.Testgen.Corpus.origin) (fun () ->
      match Testgen.Oracle.check ~ids:Testgen.Oracle.all e.Testgen.Corpus.case with
      | [] -> ()
      | vs ->
        Alcotest.failf "%d oracle violation(s); first (%s): %s" (List.length vs)
          (Testgen.Oracle.name (List.hd vs).Testgen.Oracle.oracle)
          (List.hd vs).Testgen.Oracle.detail)

let () =
  let entries = Testgen.Corpus.load ~dir:"corpus" in
  let tests =
    match entries with
    | [] -> [ t "corpus is empty" (fun () -> ()) ]
    | es -> List.map replay es
  in
  Alcotest.run "corpus" [ ("replay", tests) ]
