(* Durable-campaign tests: the JSON codec, the write-ahead journal (torn
   tails, bit-identical replay), atomic snapshots, and the headline
   invariant — a campaign interrupted at an arbitrary journaled prefix and
   resumed is record-for-record and summary-bit-identical to one that was
   never interrupted, with zero re-evaluation of the journaled prefix. *)

let t name f = Alcotest.test_case name `Quick f

let small_funarc =
  { Models.Registry.funarc with Models.Registry.source = Models.Funarc.source ~n:200 () }

(* keep the funarc brute-force space small: the budget truncates the 2^n
   enumeration, and preloaded records count toward it on resume *)
let funarc_config = { Core.Config.default with Core.Config.max_variants = Some 48 }

let with_dir = Harness.with_dir
let with_dir2 = Harness.with_dir2

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let json_tests =
  [
    t "escape_string covers the C0 controls" (fun () ->
        Alcotest.(check string) "two-char escapes" {|a\"b\\c\nd\re\tf|}
          (Persist.Json.escape_string "a\"b\\c\nd\re\tf");
        Alcotest.(check string) "backspace and formfeed" {|\b\f|}
          (Persist.Json.escape_string "\b\012");
        Alcotest.(check string) "bare controls as \\u00XX" {|\u0000x\u0001\u001f|}
          (Persist.Json.escape_string "\x00x\x01\x1f"));
    t "values round-trip through to_string/parse" (fun () ->
        let v =
          Persist.Json.Obj
            [
              ("s", Persist.Json.Str "quote \" slash \\ ctrl \x02\r\n\t end");
              ("n", Persist.Json.Num 42.0);
              ("f", Persist.Json.Num 0.15625);
              ("b", Persist.Json.Bool true);
              ("z", Persist.Json.Null);
              ("a", Persist.Json.Arr [ Persist.Json.Num 1.0; Persist.Json.Str "x" ]);
            ]
        in
        Alcotest.(check bool) "round-trip" true
          (compare (Persist.Json.parse (Persist.Json.to_string v)) v = 0));
    t "parse rejects malformed input" (fun () ->
        let rejects s =
          match Persist.Json.parse s with
          | _ -> Alcotest.failf "accepted %S" s
          | exception Persist.Json.Parse_error _ -> ()
        in
        rejects "{";
        rejects "[1,]";
        rejects "1 2";
        rejects "\"unterminated");
    t "hex floats are bit-exact" (fun () ->
        List.iter
          (fun x ->
            let back = Persist.Json.of_hex_float (Persist.Json.hex_float x) in
            Alcotest.(check int64)
              (Printf.sprintf "bits of %h" x)
              (Int64.bits_of_float x) (Int64.bits_of_float back))
          [ 0.0; -0.0; 1.0; 0.1; -3.14159e300; 4.9e-324; infinity; neg_infinity ];
        (* nan round-trips as *a* nan (the payload is not preserved:
           [float_of_string "nan"] yields the canonical quiet nan) *)
        Alcotest.(check bool)
          "nan stays nan" true
          (Float.is_nan (Persist.Json.of_hex_float (Persist.Json.hex_float nan))));
  ]

(* ------------------------------------------------------------------ *)
(* Journal + snapshot files                                            *)

let header =
  {
    Persist.Journal.version = 1;
    model = "funarc";
    algo = "brute_force";
    seed = 42;
    config_digest = "cafe";
    workers = 0;
    atoms = 4;
    caps = [ "shared" ];
  }

let weird_meas =
  {
    Search.Variant.status = Search.Variant.Error;
    speedup = -0.0;
    rel_error = infinity;
    hotspot_time = nan;
    model_time = 0x1.fffffffffffffp-3;
    proc_stats = [ ("p \"q\"", 4.9e-324, 3); ("r\n", neg_infinity, 0) ];
    casting_share = 0.1;
    detail = "comma, \"quote\" and\nnewline\ttab";
  }

let entry i signature meas =
  { Persist.Journal.e_index = i; e_signature = signature; e_meas = meas; e_score = None; e_bound = None }

let journal_tests =
  [
    t "entries replay bit-identically (inf/nan/denormal floats)" (fun () ->
        with_dir (fun dir ->
            let w = Persist.Journal.create ~dir header in
            let es =
              [ entry 1 "4488" weird_meas;
                entry 2 "8888"
                  { weird_meas with Search.Variant.status = Search.Variant.Pass; detail = "" } ]
            in
            List.iter (Persist.Journal.append w) es;
            Persist.Journal.close w;
            let loaded = Persist.Journal.load ~dir in
            Alcotest.(check bool) "header" true (compare loaded.Persist.Journal.l_header header = 0);
            Alcotest.(check bool) "not torn" false loaded.Persist.Journal.l_torn;
            (* [compare] treats nan = nan but 0.0 = -0.0: check the sign
               bit explicitly on top of structural equality *)
            Alcotest.(check bool) "entries" true
              (compare loaded.Persist.Journal.l_entries es = 0);
            let m = (List.hd loaded.Persist.Journal.l_entries).Persist.Journal.e_meas in
            Alcotest.(check int64) "-0.0 speedup bits"
              (Int64.bits_of_float (-0.0))
              (Int64.bits_of_float m.Search.Variant.speedup);
            Alcotest.(check int64) "model_time bits"
              (Int64.bits_of_float weird_meas.Search.Variant.model_time)
              (Int64.bits_of_float m.Search.Variant.model_time)));
    t "a torn tail is dropped and reopen truncates it" (fun () ->
        with_dir (fun dir ->
            let w = Persist.Journal.create ~dir header in
            Persist.Journal.append w (entry 1 "4488" weird_meas);
            Persist.Journal.append w (entry 2 "8888" weird_meas);
            Persist.Journal.close w;
            let path = Persist.Journal.file ~dir in
            let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
            output_string oc "{\"kind\": \"record\", \"index\": 3, \"sig";
            close_out oc;
            let loaded = Persist.Journal.load ~dir in
            Alcotest.(check bool) "torn" true loaded.Persist.Journal.l_torn;
            Alcotest.(check int) "two complete entries" 2
              (List.length loaded.Persist.Journal.l_entries);
            let loaded', w' = Persist.Journal.reopen ~dir () in
            Alcotest.(check int) "reopen sees both" 2
              (List.length loaded'.Persist.Journal.l_entries);
            Persist.Journal.append w' (entry 3 "4444" weird_meas);
            Persist.Journal.close w';
            let final = Persist.Journal.load ~dir in
            Alcotest.(check bool) "tail healed" false final.Persist.Journal.l_torn;
            Alcotest.(check int) "three entries" 3 (List.length final.Persist.Journal.l_entries)));
    t "create refuses an existing journal" (fun () ->
        with_dir (fun dir ->
            let w = Persist.Journal.create ~dir header in
            Persist.Journal.close w;
            match Persist.Journal.create ~dir header with
            | _ -> Alcotest.fail "second create succeeded"
            | exception Sys_error _ -> ()));
    t "load raises Corrupt on mid-file damage and bad headers" (fun () ->
        with_dir (fun dir ->
            match Persist.Journal.load ~dir with
            | _ -> Alcotest.fail "loaded a missing journal"
            | exception Persist.Journal.Corrupt _ -> ());
        with_dir (fun dir ->
            let w = Persist.Journal.create ~dir header in
            Persist.Journal.append w (entry 1 "4488" weird_meas);
            Persist.Journal.append w (entry 2 "8888" weird_meas);
            Persist.Journal.close w;
            let path = Persist.Journal.file ~dir in
            let ic = open_in_bin path in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            (* corrupt the FIRST record line: not a torn tail, must raise *)
            let i = String.index s '\n' + 1 in
            let s' = String.mapi (fun j c -> if j = i then '!' else c) s in
            let oc = open_out_bin path in
            output_string oc s';
            close_out oc;
            match Persist.Journal.load ~dir with
            | _ -> Alcotest.fail "loaded a corrupt journal"
            | exception Persist.Journal.Corrupt _ -> ()));
    t "snapshot round-trips atomically" (fun () ->
        with_dir (fun dir ->
            Alcotest.(check bool) "absent -> None" true (Persist.Snapshot.read ~dir = None);
            let s =
              {
                Persist.Snapshot.s_records = 17;
                s_hours = 0.125;
                s_best_speedup = 1.4375;
                s_lost_seconds = 42.5;
                s_preemptions = 2;
                s_finished = false;
              }
            in
            Persist.Snapshot.write ~dir s;
            Alcotest.(check bool) "round-trip" true
              (compare (Persist.Snapshot.read ~dir) (Some s) = 0);
            Alcotest.(check bool) "no temp left behind" false
              (Sys.file_exists (Persist.Snapshot.file ~dir ^ ".tmp"))));
    t "assignment signatures round-trip through of_signature" (fun () ->
        let p = Core.Tuner.prepare small_funarc in
        let atoms = p.Core.Tuner.atoms in
        let half = List.filteri (fun i _ -> i mod 2 = 0) atoms in
        let asg = Transform.Assignment.of_lowered atoms ~lowered:half in
        let s = Transform.Assignment.signature asg in
        let back = Transform.Assignment.of_signature atoms s in
        Alcotest.(check string) "signature preserved" s (Transform.Assignment.signature back);
        Alcotest.(check bool) "assignments equal" true (compare back asg = 0);
        Alcotest.check_raises "wrong length rejected"
          (Invalid_argument "Assignment.of_signature: 2-char signature over 8 atoms")
          (fun () -> ignore (Transform.Assignment.of_signature atoms "48")));
  ]

(* ------------------------------------------------------------------ *)
(* Campaign-level resume determinism                                   *)

let check_same_campaign = Harness.check_same_campaign
let check_no_reeval = Harness.check_no_reeval
let truncate_journal = Harness.truncate_journal

let resume_tests =
  let kill_resume_dd workers frac () =
    with_dir2 (fun dir_base dir_kill ->
        (* funarc's dd journals ~16 records, so cutting at any interior
           fraction leaves both a replayed prefix and fresh work *)
        let config = Core.Config.default in
        let base =
          Core.Tuner.run_delta_debug ~config ~workers ~journal:dir_base small_funarc
        in
        (* the journaled uninterrupted run doubles as the kill victim:
           copy-by-rerun into dir_kill, then tear its journal *)
        let _ : Core.Tuner.campaign =
          Core.Tuner.run_delta_debug ~config ~workers ~journal:dir_kill small_funarc
        in
        truncate_journal dir_kill frac;
        let resumed =
          Core.Tuner.resume ~config ~workers ~model:small_funarc ~journal:dir_kill ()
        in
        let name = Printf.sprintf "dd workers=%d frac=%.2f" workers frac in
        Alcotest.(check bool) (name ^ ": something was replayed") true
          (resumed.Core.Tuner.preloaded > 0);
        Alcotest.(check bool) (name ^ ": something was fresh") true
          (resumed.Core.Tuner.trace_stats.Search.Trace.misses > 0);
        check_same_campaign name base resumed;
        check_no_reeval name resumed)
  in
  [
    t "kill at a journaled prefix + resume = uninterrupted (sequential)"
      (kill_resume_dd 0 0.43);
    t "kill at a journaled prefix + resume = uninterrupted (4 workers)"
      (kill_resume_dd 4 0.61);
    t "resume of a finished journal re-evaluates nothing" (fun () ->
        with_dir (fun dir ->
            let base =
              Core.Tuner.run_brute_force ~config:funarc_config ~journal:dir small_funarc
            in
            let resumed =
              Core.Tuner.resume ~config:funarc_config ~model:small_funarc ~journal:dir ()
            in
            Alcotest.(check int) "everything preloaded"
              (List.length base.Core.Tuner.records)
              resumed.Core.Tuner.preloaded;
            Alcotest.(check int) "zero fresh evaluations" 0
              resumed.Core.Tuner.trace_stats.Search.Trace.misses;
            check_same_campaign "finished resume" base resumed));
    t "record lines are byte-identical for workers 0 and 4" (fun () ->
        with_dir2 (fun d0 d4 ->
            let config = Core.Config.default in
            let _ : Core.Tuner.campaign =
              Core.Tuner.run_delta_debug ~config ~workers:0 ~journal:d0 small_funarc
            in
            let _ : Core.Tuner.campaign =
              Core.Tuner.run_delta_debug ~config ~workers:4 ~journal:d4 small_funarc
            in
            let lines d =
              let ic = open_in_bin (Persist.Journal.file ~dir:d) in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              match String.split_on_char '\n' s with
              | _header :: records -> records
              | [] -> []
            in
            Alcotest.(check (list string)) "record lines" (lines d0) (lines d4)));
    t "resume refuses a mismatched configuration" (fun () ->
        with_dir (fun dir ->
            let _ : Core.Tuner.campaign =
              Core.Tuner.run_brute_force ~config:funarc_config ~journal:dir small_funarc
            in
            let other = { funarc_config with Core.Config.static_filter = true } in
            match Core.Tuner.resume ~config:other ~model:small_funarc ~journal:dir () with
            | _ -> Alcotest.fail "resumed under a different configuration"
            | exception Core.Tuner.Resume_mismatch _ -> ()));
    t "resume adopts the journal's seed" (fun () ->
        with_dir (fun dir ->
            let seeded = { funarc_config with Core.Config.seed = 7 } in
            let base = Core.Tuner.run_brute_force ~config:seeded ~journal:dir small_funarc in
            truncate_journal dir 0.5;
            (* offered config has the default seed; the journal's seed 7 wins *)
            let resumed =
              Core.Tuner.resume ~config:funarc_config ~model:small_funarc ~journal:dir ()
            in
            Alcotest.(check int) "seed adopted" 7
              resumed.Core.Tuner.prepared.Core.Tuner.config.Core.Config.seed;
            check_same_campaign "seed adoption" base resumed;
            check_no_reeval "seed adoption" resumed))
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)

(* probabilities high enough that, over ~48 variants, some losses are
   certain at this seed (a lost variant needs max_retries + 1 = 2
   consecutive failed rolls) *)
let fault_spec =
  {
    Core.Cluster.Faults.fault_seed = 7;
    transient_prob = 0.40;
    node_failure_prob = 0.25;
    max_retries = 1;
    preempt_at_hours = None;
  }

let fault_tests =
  [
    t "fault-injected campaigns are deterministic at a fixed seed" (fun () ->
        with_dir2 (fun da db ->
            let run dir =
              Core.Tuner.run_brute_force ~config:funarc_config ~journal:dir ~faults:fault_spec
                small_funarc
            in
            let a = run da and b = run db in
            check_same_campaign "fault replay" a b;
            Alcotest.(check bool) "identical loss accounting" true
              (compare a.Core.Tuner.fault_stats b.Core.Tuner.fault_stats = 0);
            let losses =
              List.filter
                (fun (r : Search.Variant.record) ->
                  String.length r.Search.Variant.meas.Search.Variant.detail >= 6
                  && String.sub r.Search.Variant.meas.Search.Variant.detail 0 6 = "fault:")
                a.Core.Tuner.records
            in
            Alcotest.(check bool) "some variants were lost to faults" true (losses <> []);
            match a.Core.Tuner.fault_stats with
            | None -> Alcotest.fail "no fault stats"
            | Some fs ->
              Alcotest.(check int) "losses match stats"
                (fs.Core.Cluster.Faults.transient_losses + fs.Core.Cluster.Faults.node_losses)
                (List.length losses);
              Alcotest.(check bool) "lost node-seconds accounted" true
                (fs.Core.Cluster.Faults.lost_node_seconds > 0.0)));
    t "a preemption chain resumed cleanly equals the uninterrupted run" (fun () ->
        with_dir (fun dir ->
            let base = Core.Tuner.run_brute_force ~config:funarc_config small_funarc in
            let preempt h =
              { Core.Cluster.Faults.none with Core.Cluster.Faults.preempt_at_hours = Some h }
            in
            let killed =
              Core.Tuner.run_brute_force ~config:funarc_config ~journal:dir
                ~faults:(preempt 0.01) small_funarc
            in
            Alcotest.(check bool) "first boundary fired" true killed.Core.Tuner.interrupted;
            Alcotest.(check bool) "progress was journaled" true
              (killed.Core.Tuner.records <> []);
            (match killed.Core.Tuner.fault_stats with
            | Some fs -> Alcotest.(check int) "one preemption" 1 fs.Core.Cluster.Faults.preemptions
            | None -> Alcotest.fail "no fault stats");
            (* second job: same journal, later boundary — more progress *)
            let killed2 =
              Core.Tuner.resume ~config:funarc_config ~faults:(preempt 0.04)
                ~model:small_funarc ~journal:dir ()
            in
            Alcotest.(check bool) "second boundary fired" true killed2.Core.Tuner.interrupted;
            Alcotest.(check bool) "the chain advanced" true
              (List.length killed2.Core.Tuner.records > List.length killed.Core.Tuner.records);
            check_no_reeval "second job" killed2;
            (* final job: no boundary — runs to completion *)
            let finished =
              Core.Tuner.resume ~config:funarc_config ~model:small_funarc ~journal:dir ()
            in
            Alcotest.(check bool) "finished" false finished.Core.Tuner.interrupted;
            check_same_campaign "preemption chain" base finished;
            check_no_reeval "final job" finished));
    t "campaign edge cases: empty hours, degenerate baseline, exact boundary" (fun () ->
        let c = Core.Cluster.for_model Models.Registry.mpas in
        Alcotest.(check (Alcotest.float 1e-12)) "no variants, no hours" 0.0
          (Core.Cluster.campaign_hours c ~baseline_cost:1.0 ~variant_costs:[]);
        Alcotest.(check (Alcotest.float 1e-9)) "zero baseline: overhead only"
          c.Core.Cluster.per_variant_overhead_s
          (Core.Cluster.variant_seconds c ~baseline_cost:0.0 ~variant_cost:123.0);
        Alcotest.(check (Alcotest.float 1e-9)) "negative baseline: overhead only"
          c.Core.Cluster.per_variant_overhead_s
          (Core.Cluster.variant_seconds c ~baseline_cost:(-5.0) ~variant_cost:123.0);
        Alcotest.(check bool) "exactly 12h is within budget" false
          (Core.Cluster.over_budget c 12.0);
        Alcotest.(check bool) "just over 12h is over" true
          (Core.Cluster.over_budget c (12.0 +. 1e-9)));
  ]

let () =
  Alcotest.run "persist"
    [
      ("json", json_tests);
      ("journal", journal_tests);
      ("resume", resume_tests);
      ("faults", fault_tests);
    ]
