(* Lower tests: the slot-resolved IR evaluator and the closure-compiled
   backend must be observably indistinguishable from the string-keyed
   tree-walker — same status, cost, timers, records, printed lines and
   breakdown, bit for bit — on baselines and on transformed variants,
   with and without the per-procedure caches and the batch-reuse table,
   sequentially and under the worker pool. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f
let ts name f = Alcotest.test_case name `Slow f

let machine = Runtime.Machine.default

let build src =
  let st = Symtab.build (Parser.parse src) in
  Typecheck.check_program st;
  st

let interp ?budget st = Runtime.Interp.run ~machine ?budget st

let lower_run ?cache ?budget ?wrapper_owner st =
  Runtime.Lower.run ?budget (Runtime.Lower.lower ?cache ?wrapper_owner ~machine st)

let pp_outcome ppf (o : Runtime.Interp.outcome) =
  Format.fprintf ppf "%a cost=%.17g records=%d printed=%d timers=%d"
    Runtime.Interp.pp_status o.status o.cost (List.length o.records)
    (List.length o.printed) (List.length o.timers)

let outcome_t =
  Alcotest.testable pp_outcome (fun a b -> compare a b = 0)

let check_equiv msg ref_out fast_out = Alcotest.check outcome_t msg ref_out fast_out

let first out key =
  match Runtime.Interp.series out key with
  | v :: _ -> v
  | [] -> Alcotest.failf "no '%s' record" key

(* ------------------------------------------------------------------ *)
(* Slot resolution units: shadowing and module globals                 *)

let slot_tests =
  [
    t "dummy shadows a module global of the same name" (fun () ->
        let src =
          "module m\n implicit none\n real(kind=8) :: x = 100.0d0\ncontains\n\
          \ subroutine set(x)\n  real(kind=8) :: x\n  x = x + 1.0d0\n end subroutine set\n\
           end module m\n\
           program p\n use m\n implicit none\n real(kind=8) :: y\n y = 5.0d0\n call set(y)\n\
          \ print *, 'y', y\n print *, 'g', x\nend program p\n"
        in
        let st = build src in
        let out = lower_run st in
        (* the dummy [x] resolved to the callee's local slot, not the
           module global's slot *)
        Alcotest.(check (float 0.0)) "dummy updated" 6.0 (first out "y");
        Alcotest.(check (float 0.0)) "global untouched" 100.0 (first out "g");
        check_equiv "interp agrees" (interp st) out);
    t "local shadows a module global inside one procedure only" (fun () ->
        let src =
          "module m\n implicit none\n real(kind=8) :: g = 2.0d0\ncontains\n\
          \ function local_g() result(r)\n  real(kind=8) :: g, r\n  g = 40.0d0\n  r = g\n\
          \ end function local_g\n\
          \ function global_g() result(r)\n  real(kind=8) :: r\n  r = g\n end function global_g\n\
           end module m\n\
           program p\n use m\n implicit none\n print *, 'a', local_g()\n\
          \ print *, 'b', global_g()\n print *, 'c', g\nend program p\n"
        in
        let st = build src in
        let out = lower_run st in
        Alcotest.(check (float 0.0)) "local slot" 40.0 (first out "a");
        Alcotest.(check (float 0.0)) "global slot" 2.0 (first out "b");
        Alcotest.(check (float 0.0)) "global unchanged" 2.0 (first out "c");
        check_equiv "interp agrees" (interp st) out);
    t "module globals across two modules get distinct slots" (fun () ->
        let src =
          "module a\n implicit none\n real(kind=8) :: v = 1.0d0\nend module a\n\
           module b\n implicit none\n real(kind=4) :: w = 2.0\nend module b\n\
           program p\n use a\n use b\n implicit none\n v = v + 10.0d0\n w = w + 1.0\n\
          \ print *, 'v', v\n print *, 'w', w\nend program p\n"
        in
        let st = build src in
        let out = lower_run st in
        Alcotest.(check (float 0.0)) "a::v" 11.0 (first out "v");
        Alcotest.(check (float 0.0)) "b::w" 3.0 (first out "w");
        check_equiv "interp agrees" (interp st) out);
    t "module array global is slot-addressed and shared" (fun () ->
        let src =
          "module m\n implicit none\n real(kind=8), dimension(4) :: buf\ncontains\n\
          \ subroutine store(i, v)\n  integer :: i\n  real(kind=8) :: v\n  buf(i) = v\n\
          \ end subroutine store\nend module m\n\
           program p\n use m\n implicit none\n call store(3, 9.5d0)\n\
          \ print *, 'v', buf(3)\nend program p\n"
        in
        let st = build src in
        let out = lower_run st in
        Alcotest.(check (float 0.0)) "shared storage" 9.5 (first out "v");
        check_equiv "interp agrees" (interp st) out);
    t "out-of-scope reference to a callee local still traps" (fun () ->
        (* an array extent naming an undeclared variable must trap with
           the same message as the tree-walker *)
        let src =
          "module m\n implicit none\ncontains\n subroutine s()\n  real(kind=8) :: x\n\
          \  x = 1.0d0\n end subroutine s\nend module m\n\
           program p\n use m\n implicit none\n call s\n print *, 'v', x\nend program p\n"
        in
        let st = Symtab.build (Parser.parse src) in
        check_equiv "same trap" (interp st) (lower_run st));
  ]

(* ------------------------------------------------------------------ *)
(* Equivalence property on random assignments                          *)

let model_fixture name =
  match name with
  | "funarc" -> Models.Registry.funarc
  | "mpas" ->
    { Models.Registry.mpas with
      Models.Registry.source = Models.Mpas.source ~p:Models.Mpas.small () }
  | _ -> assert false

let equiv_on_assignment (model : Models.Registry.t) cache ccache st atoms bits =
  let lowered = List.filteri (fun i _ -> (bits lsr (i mod 62)) land 1 = 1) atoms in
  let asg = Transform.Assignment.of_lowered atoms ~lowered in
  let prog' = Transform.Rewrite.apply st asg in
  let w = Transform.Wrappers.insert prog' in
  let owner = Transform.Wrappers.owner_fn w in
  (* reference: the historical unparse→reparse round trip, tree-walked *)
  let text = Unparse.program w.Transform.Wrappers.program in
  let st_rt = Symtab.build (Parser.parse ~file:(model.name ^ "_variant.f90") text) in
  Typecheck.check_program st_rt;
  let ref_out = Runtime.Interp.run ~machine ~wrapper_owner:owner st_rt in
  (* fast paths: lowered directly from the transformed AST with the
     shared per-procedure cache, then additionally closure-compiled *)
  let st_d = Symtab.build w.Transform.Wrappers.program in
  Typecheck.check_program st_d;
  let ir = Runtime.Lower.lower ~cache ~wrapper_owner:owner ~machine st_d in
  let fast_out = Runtime.Lower.run ir in
  let compiled_out = Runtime.Compile.run (Runtime.Compile.compile ~cache:ccache ir) in
  compare ref_out fast_out = 0 && compare fast_out compiled_out = 0

let equiv_property name =
  let model = model_fixture name in
  let st = build model.Models.Registry.source in
  let atoms =
    Transform.Assignment.atoms_of_target st ~module_:model.Models.Registry.target_module
      ~procs:(Some model.Models.Registry.target_procs)
      ~exclude:model.Models.Registry.exclude_atoms
  in
  let cache = Runtime.Lower.Cache.create () in
  let ccache = Runtime.Compile.Cache.create () in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:
         (name ^ ": interpreter == lowered IR == compiled closures on random assignments")
       ~count:30
       QCheck.(int_bound max_int)
       (fun bits -> equiv_on_assignment model cache ccache st atoms bits))

let equiv_tests =
  [
    equiv_property "funarc";
    equiv_property "mpas";
    t "budget cut-off is bit-identical" (fun () ->
        let model = model_fixture "mpas" in
        let st = build model.Models.Registry.source in
        let baseline = interp st in
        (* a budget inside the run forces Timed_out on both paths at the
           same accumulated cost *)
        let budget = baseline.Runtime.Interp.cost /. 3.0 in
        let ref_out = interp ~budget st in
        let fast_out = lower_run ~budget st in
        Alcotest.(check bool) "timed out" true
          (ref_out.Runtime.Interp.status = Runtime.Interp.Timed_out);
        check_equiv "same cut-off" ref_out fast_out);
  ]

(* ------------------------------------------------------------------ *)
(* Cache correctness: hits reuse published procedures, results do not
   depend on cache or worker count                                     *)

let small_mpas = model_fixture "mpas"

let record_key (r : Search.Variant.record) =
  (r.Search.Variant.index, Transform.Assignment.signature r.Search.Variant.asg,
   r.Search.Variant.meas)

let cache_tests =
  [
    t "cache hits on repeated lowering of the same signature" (fun () ->
        let st = build small_mpas.Models.Registry.source in
        let cache = Runtime.Lower.Cache.create () in
        let o1 = lower_run ~cache st in
        let _, misses_after_first = Runtime.Lower.Cache.stats cache in
        let o2 = lower_run ~cache st in
        let hits, misses = Runtime.Lower.Cache.stats cache in
        Alcotest.(check int) "no new misses" misses_after_first misses;
        Alcotest.(check bool) "every procedure hit" true (hits >= misses);
        check_equiv "identical outcomes" o1 o2);
    ts "workers=4 with cache == workers=0 without cache, record for record" (fun () ->
        let config =
          { Core.Config.default with Core.Config.max_variants = Some 20 }
        in
        let fast =
          Core.Tuner.run_delta_debug
            ~config:{ config with Core.Config.proc_cache = true }
            ~workers:4 small_mpas
        in
        let slow =
          Core.Tuner.run_delta_debug
            ~config:{ config with Core.Config.proc_cache = false }
            ~workers:0 small_mpas
        in
        Alcotest.(check int) "same variant count"
          (List.length slow.Core.Tuner.records)
          (List.length fast.Core.Tuner.records);
        List.iter2
          (fun a b ->
            Alcotest.(check bool)
              (Printf.sprintf "record %d identical" a.Search.Variant.index)
              true
              (compare (record_key a) (record_key b) = 0))
          slow.Core.Tuner.records fast.Core.Tuner.records;
        Alcotest.(check bool) "same minimal" true
          (compare
             (Option.map
                (fun (r : Search.Delta_debug.result) -> r.Search.Delta_debug.high_set)
                slow.Core.Tuner.minimal)
             (Option.map
                (fun (r : Search.Delta_debug.result) -> r.Search.Delta_debug.high_set)
                fast.Core.Tuner.minimal)
           = 0));
    ts "verify-roundtrip campaign passes" (fun () ->
        let config =
          { Core.Config.default with
            Core.Config.max_variants = Some 15;
            verify_roundtrip = true;
          }
        in
        let c = Core.Tuner.run_delta_debug ~config ~workers:0 small_mpas in
        Alcotest.(check bool) "explored variants" true
          (c.Core.Tuner.summary.Search.Variant.total > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Evaluation backends: the compiled closures and the batch-reuse table
   must leave campaigns record-for-record identical at every worker
   count                                                               *)

let check_campaigns_equal (reference : Core.Tuner.campaign) (candidate : Core.Tuner.campaign) =
  Alcotest.(check int) "same variant count"
    (List.length reference.Core.Tuner.records)
    (List.length candidate.Core.Tuner.records);
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d identical" a.Search.Variant.index)
        true
        (compare (record_key a) (record_key b) = 0))
    reference.Core.Tuner.records candidate.Core.Tuner.records;
  Alcotest.(check bool) "same minimal" true
    (compare
       (Option.map
          (fun (r : Search.Delta_debug.result) -> r.Search.Delta_debug.high_set)
          reference.Core.Tuner.minimal)
       (Option.map
          (fun (r : Search.Delta_debug.result) -> r.Search.Delta_debug.high_set)
          candidate.Core.Tuner.minimal)
     = 0)

let run_backend model ~compile ~batch_reuse ~workers ~max_variants =
  Core.Tuner.run_delta_debug
    ~config:
      { Core.Config.default with
        Core.Config.max_variants = Some max_variants;
        compile;
        batch_reuse;
      }
    ~workers model

(* funarc with two never-referenced reals in the search space: variants
   that differ only in the spares' kinds are effectively identical, so
   the batch-reuse table gets genuine within-campaign hits *)
let funarc_spares =
  let base = Models.Registry.funarc in
  let marker = "real(kind=8) :: s1, h, t1, t2, dppi\n" in
  let insert = "    real(kind=8) :: spare1, spare2\n" in
  let src = base.Models.Registry.source in
  let i =
    let n = String.length src and m = String.length marker in
    let rec go i =
      if i + m > n then Alcotest.fail "funarc marker not found"
      else if String.equal (String.sub src i m) marker then i
      else go (i + 1)
    in
    go 0
  in
  let cut = i + String.length marker in
  { base with
    Models.Registry.source =
      String.sub src 0 cut ^ insert ^ String.sub src cut (String.length src - cut);
  }

let backend_tests =
  [
    ts "compiled backend == IR evaluator, record for record (workers 0 and 4)" (fun () ->
        let reference =
          run_backend small_mpas ~compile:false ~batch_reuse:false ~workers:0
            ~max_variants:20
        in
        List.iter
          (fun workers ->
            let c =
              run_backend small_mpas ~compile:true ~batch_reuse:false ~workers
                ~max_variants:20
            in
            Alcotest.(check bool) "procedures were compiled" true
              (c.Core.Tuner.backend.Core.Tuner.compiled_procs > 0);
            check_campaigns_equal reference c)
          [ 0; 4 ]);
    ts "batched reuse == unbatched, record for record (workers 0 and 4)" (fun () ->
        let reference =
          run_backend small_mpas ~compile:true ~batch_reuse:false ~workers:0
            ~max_variants:20
        in
        Alcotest.(check int) "reuse disabled reports no traffic" 0
          (reference.Core.Tuner.backend.Core.Tuner.reuse_hits
          + reference.Core.Tuner.backend.Core.Tuner.reuse_misses);
        List.iter
          (fun workers ->
            let c =
              run_backend small_mpas ~compile:true ~batch_reuse:true ~workers
                ~max_variants:20
            in
            check_campaigns_equal reference c)
          [ 0; 4 ]);
    ts "batch-reuse table hits on effectively-identical variants" (fun () ->
        (* brute force enumerates atom subsets by counter bits, so with
           the never-referenced spares as the two highest-order atoms,
           every mask >= 256 repeats an earlier variant's effective
           program — the reuse table must serve those without re-running,
           and the records must not change *)
        let run batch_reuse =
          Core.Tuner.run_brute_force
            ~config:
              { Core.Config.default with
                Core.Config.max_variants = Some 300;
                batch_reuse;
              }
            funarc_spares
        in
        let reference = run false in
        let batched = run true in
        Alcotest.(check bool) "reuse table was hit" true
          (batched.Core.Tuner.backend.Core.Tuner.reuse_hits > 0);
        check_campaigns_equal reference batched);
  ]

let () =
  Alcotest.run "lower"
    [
      ("slots", slot_tests); ("equivalence", equiv_tests); ("cache", cache_tests);
      ("backends", backend_tests);
    ]
