(* prose — automated, performance-guided floating-point precision tuning
   for the bundled weather/climate model proxies.

   Subcommands:
     prose models               list the registered tuning targets
     prose source MODEL         print a model's Fortran source
     prose tune MODEL [...]     run a tuning campaign and report
     prose reduce MODEL         taint-based program reduction (Sec. III-C)
     prose report               regenerate every table/figure/checklist
     prose serve                multiplex queued campaigns over one pool
     prose submit MODEL [...]   queue a campaign with the service
     prose watch JOB            stream a job's status events
     prose jobs ls|show|cancel  inspect the service queue                  *)

open Cmdliner

let pf = Printf.printf

(* ------------------------------------------------------------------ *)

let model_conv =
  let parse s =
    match Models.Registry.find (String.lowercase_ascii s) with
    | m -> Ok m
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown model %S (try: funarc, mpas, adcirc, mom6)" s))
  in
  Arg.conv (parse, fun ppf (m : Models.Registry.t) -> Format.pp_print_string ppf m.name)

let model_arg =
  Arg.(required & pos 0 (some model_conv) None & info [] ~docv:"MODEL" ~doc:"Tuning target.")

(* ------------------------------------------------------------------ *)

let models_cmd =
  let doc = "List the registered tuning targets" in
  let run () =
    List.iter
      (fun (m : Models.Registry.t) ->
        pf "%-8s %-10s target %s: %s\n" m.name m.title m.target_module m.description)
      ((Models.Registry.funarc :: Models.Registry.all) @ [ Models.Registry.mpas_joint ])
  in
  Cmd.v (Cmd.info "models" ~doc) Term.(const run $ const ())

let source_cmd =
  let doc = "Print a model's Fortran source" in
  let run (m : Models.Registry.t) = print_string m.source in
  Cmd.v (Cmd.info "source" ~doc) Term.(const run $ model_arg)

(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed for the injected run-to-run noise.")

let max_variants_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-variants" ] ~doc:"Override the model's dynamic-evaluation budget.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel variant evaluation (default: cores - 1; 0 = \
           sequential). Results are identical for every N; only wall clock changes.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"S"
        ~doc:
          "Run the campaign on the work-stealing shard scheduler: each speculative \
           round's candidates are block-partitioned over $(i,S) simulated node-shards of \
           $(b,--workers) slots each, and shards that drain early steal from their \
           neighbours. Records, the minimal set and the summary are bit-identical at \
           every shards x workers point; the deterministic simulated makespan is \
           reported separately.")

let whole_model_arg =
  Arg.(
    value & flag
    & info [ "whole-model" ]
        ~doc:"Guide the search by whole-model time instead of hotspot CPU time (Sec. IV-C).")

let static_filter_arg =
  Arg.(
    value & flag
    & info [ "static-filter" ]
        ~doc:"Enable the Sec.-V static pre-filter (vectorization report + casting penalty).")

let brute_arg =
  Arg.(value & flag & info [ "brute-force" ] ~doc:"Exhaustive 2^n search instead of delta debugging.")

let predict_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("off", Core.Config.Predict_off);
             ("rank", Core.Config.Predict_rank);
             ("prune", Core.Config.Predict_prune);
           ])
        Core.Config.Predict_off
    & info [ "predict" ] ~docv:"MODE"
        ~doc:
          "Steer the search with the static error-amplification analysis (lib/sensitivity). \
           $(b,rank) reorders delta-debugging candidates by predicted score (pass-probability \
           x payoff) so promising subsets are tried first; $(b,prune) additionally skips \
           variants whose sound static error bound provably exceeds the threshold, \
           journaling them as static losses with zero evaluation cost. Falls back to the \
           unpredicted search when the analysis cannot vouch for the program.")

let predict_margin_arg =
  Arg.(
    value & opt float Core.Config.default.Core.Config.predict_margin
    & info [ "predict-margin" ] ~docv:"M"
        ~doc:
          "Safety factor for $(b,--predict prune): only variants whose finite static bound \
           exceeds $(i,M) x threshold are skipped. The default is deliberately enormous — \
           sound worst-case bounds overshoot observed error by roughly the square root of \
           the operation count — so pruning only fires on overwhelming evidence; lower it \
           explicitly to trade safety for pruning.")

let verify_roundtrip_arg =
  Arg.(
    value & flag
    & info [ "verify-roundtrip" ]
        ~doc:
          "Cross-check every variant evaluation: run both the direct-AST fast path and the \
           historical unparse->reparse pipeline and abort if any outcome differs. \
           Slow; intended for CI and debugging the evaluation fast path.")

let no_compile_arg =
  Arg.(
    value & flag
    & info [ "no-compile" ]
        ~doc:
          "Evaluate variants with the IR-walking evaluator instead of the closure-compiled \
           backend. Slower; results are bit-identical either way.")

let no_batch_reuse_arg =
  Arg.(
    value & flag
    & info [ "no-batch-reuse" ]
        ~doc:
          "Re-run every variant even when an effectively-identical one (same precision \
           signature on the reachable program) already ran. Slower; results are \
           bit-identical either way.")

let csv_arg =
  Arg.(
    value & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Write the per-variant data as CSV.")

let json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"PATH" ~doc:"Write the campaign summary as JSON.")

let hierarchical_arg =
  Arg.(
    value & flag
    & info [ "hierarchical" ]
        ~doc:"Cluster atoms by the FP flow graph and search groups first (Sec. V).")

let journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"DIR"
        ~doc:
          "Make the campaign durable: append every measured variant to \
           $(i,DIR)/journal.jsonl (write-ahead, fsynced) with periodic snapshots, so a \
           killed campaign continues with $(b,--resume).")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Continue the journaled campaign in $(b,--journal) $(i,DIR): replay every \
           journaled record into the evaluation cache (zero re-evaluations) and finish \
           the search. The result is identical to an uninterrupted run.")

let faults_term =
  let fault_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "fault-seed" ] ~docv:"N" ~doc:"Seed for the deterministic fault injection.")
  in
  let fault_transient_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-transient" ] ~docv:"P"
          ~doc:"Per-attempt probability of a spurious transient variant failure.")
  in
  let fault_node_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-node" ] ~docv:"P"
          ~doc:"Per-attempt probability that the node dies mid-variant.")
  in
  let fault_retries_arg =
    Arg.(
      value & opt int 2
      & info [ "fault-retries" ] ~docv:"N"
          ~doc:"Extra attempts before a faulted variant is declared lost.")
  in
  let preempt_arg =
    Arg.(
      value & opt (some float) None
      & info [ "preempt-hours" ] ~docv:"H"
          ~doc:
            "Preempt the campaign once its simulated cluster hours reach $(i,H) (the \
             paper's 12-hour job boundary). The journal stays consistent; continue with \
             $(b,--resume).")
  in
  let mk fault_seed transient_prob node_failure_prob max_retries preempt_at_hours =
    let spec =
      {
        Core.Cluster.Faults.fault_seed;
        transient_prob;
        node_failure_prob;
        max_retries;
        preempt_at_hours;
      }
    in
    if Core.Cluster.Faults.active spec then Some spec else None
  in
  Term.(
    const mk $ fault_seed_arg $ fault_transient_arg $ fault_node_arg $ fault_retries_arg
    $ preempt_arg)

let tune_cmd =
  let doc = "Run a precision-tuning campaign on a model" in
  let run m seed max_variants whole static predict predict_margin brute hierarchical csv json
      workers shards verify no_compile no_batch_reuse journal resume faults =
    let config =
      {
        Core.Config.default with
        Core.Config.seed;
        max_variants;
        static_filter = static;
        predict;
        predict_margin;
        mode = (if whole then Core.Config.Whole_model_guided else Core.Config.Hotspot_guided);
        verify_roundtrip = verify;
        compile = not no_compile;
        batch_reuse = not no_batch_reuse;
      }
    in
    (* fault bookkeeping and preemption happen in the journal's commit
       sink; without a journal the flags would silently do nothing useful *)
    if faults <> None && journal = None then begin
      prerr_endline "prose tune: fault injection (--fault-*/--preempt-hours) requires --journal DIR";
      exit 2
    end;
    let campaign =
      if resume then begin
        match journal with
        | None ->
          prerr_endline "prose tune: --resume requires --journal DIR";
          exit 2
        | Some dir -> (
          try Core.Tuner.resume ~config ?workers ?shards ?faults ~model:m ~journal:dir ()
          with
          | Core.Tuner.Resume_mismatch msg | Persist.Journal.Corrupt msg ->
            prerr_endline ("prose tune: " ^ msg);
            exit 1)
      end
      else if brute then Core.Tuner.run_brute_force ~config ?journal ?faults m
      else if hierarchical then
        Core.Tuner.run_hierarchical ~config ?workers ?shards ?journal ?faults m
      else Core.Tuner.run_delta_debug ~config ?workers ?shards ?journal ?faults m
    in
    print_string (Core.Report.campaign_header campaign);
    print_newline ();
    print_string (Core.Report.table2 [ campaign ]);
    print_newline ();
    print_string (Core.Report.figure5 campaign);
    print_newline ();
    print_string (Core.Report.figure6 campaign);
    let ts = campaign.Core.Tuner.trace_stats in
    pf "\ntrace: %d cache hits, %d fresh evaluations, %d live entries, %d journaled appends\n"
      ts.Search.Trace.hits ts.Search.Trace.misses ts.Search.Trace.live ts.Search.Trace.appends;
    let bs = campaign.Core.Tuner.backend in
    pf
      "backend: %d procedures compiled, %d compile-cache hits, %d batch-reuse hits, %d \
       batch-reuse misses\n"
      bs.Core.Tuner.compiled_procs bs.Core.Tuner.compile_hits bs.Core.Tuner.reuse_hits
      bs.Core.Tuner.reuse_misses;
    Option.iter
      (fun (ss : Core.Tuner.sched_stats) ->
        pf
          "sched: %d shards x %d workers (%d slots), simulated makespan %.3f h, %d steals, \
           %d rounds, %d batched + %d serial evaluations\n"
          ss.Core.Tuner.sched_shards ss.Core.Tuner.sched_workers ss.Core.Tuner.sched_slots
          ss.Core.Tuner.sched_sim_hours ss.Core.Tuner.sched_steals ss.Core.Tuner.sched_rounds
          ss.Core.Tuner.sched_batched ss.Core.Tuner.sched_serial)
      campaign.Core.Tuner.sched;
    (match config.Core.Config.predict with
    | Core.Config.Predict_off -> ()
    | mode ->
      let pruned =
        List.length
          (List.filter
             (fun (r : Search.Variant.record) ->
               let d = r.Search.Variant.meas.Search.Variant.detail in
               String.length d >= 8 && String.sub d 0 8 = "static: ")
             campaign.Core.Tuner.records)
      in
      pf "predict: %s, %s, %d statically pruned record(s)\n"
        (match mode with
        | Core.Config.Predict_rank -> "rank"
        | Core.Config.Predict_prune -> "prune"
        | Core.Config.Predict_off -> "off")
        (match campaign.Core.Tuner.prepared.Core.Tuner.scorer with
        | Some _ -> "scorer engaged"
        | None -> "analysis declined — unpredicted search")
        pruned);
    if campaign.Core.Tuner.preloaded > 0 then
      pf "resume: %d records replayed from the journal\n" campaign.Core.Tuner.preloaded;
    Option.iter
      (fun (fs : Core.Cluster.Faults.stats) ->
        pf
          "faults: %d retried attempts, %d transient losses, %d node losses, %.0f \
           node-seconds lost, %d preemptions\n"
          fs.Core.Cluster.Faults.retried_attempts fs.Core.Cluster.Faults.transient_losses
          fs.Core.Cluster.Faults.node_losses fs.Core.Cluster.Faults.lost_node_seconds
          fs.Core.Cluster.Faults.preemptions)
      campaign.Core.Tuner.fault_stats;
    if campaign.Core.Tuner.interrupted then
      pf "campaign INTERRUPTED by preemption — continue with: prose tune %s --journal %s --resume\n"
        m.Models.Registry.name
        (Option.value ~default:"DIR" journal);
    Option.iter
      (fun path -> Core.Export.write_file ~path (Core.Export.variants_csv campaign))
      csv;
    Option.iter
      (fun path -> Core.Export.write_file ~path (Core.Export.summary_json campaign))
      json;
    match campaign.Core.Tuner.minimal with
    | Some r when r.Search.Delta_debug.high_set <> [] ->
      pf "\n1-minimal variant (declaration diff against the original):\n%s"
        (Transform.Diff.declarations campaign.Core.Tuner.prepared.Core.Tuner.st
           r.Search.Delta_debug.minimal)
    | Some _ | None -> ()
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ model_arg $ seed_arg $ max_variants_arg $ whole_model_arg $ static_filter_arg
      $ predict_arg $ predict_margin_arg $ brute_arg $ hierarchical_arg $ csv_arg $ json_arg
      $ workers_arg $ shards_arg $ verify_roundtrip_arg $ no_compile_arg $ no_batch_reuse_arg
      $ journal_arg $ resume_arg $ faults_term)

(* ------------------------------------------------------------------ *)
(* prose campaign ls|show|replay — inspect durable campaign journals.  *)

let dir_arg =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Campaign journal directory.")

let is_campaign_dir d = Sys.file_exists (Filename.concat d "journal.jsonl")

let load_or_die dir =
  match Persist.Journal.load ~dir with
  | loaded -> loaded
  | exception Persist.Journal.Corrupt msg ->
    prerr_endline ("prose campaign: " ^ msg);
    exit 1
  | exception Sys_error msg ->
    prerr_endline ("prose campaign: " ^ msg);
    exit 1

let status_counts entries =
  let pass = ref 0 and fail = ref 0 and timeout = ref 0 and error = ref 0 in
  List.iter
    (fun (e : Persist.Journal.entry) ->
      match e.Persist.Journal.e_meas.Search.Variant.status with
      | Search.Variant.Pass -> incr pass
      | Search.Variant.Fail -> incr fail
      | Search.Variant.Timeout -> incr timeout
      | Search.Variant.Error -> incr error)
    entries;
  (!pass, !fail, !timeout, !error)

let campaign_ls_cmd =
  let doc = "List campaign journals under a directory" in
  let run root =
    (* a listing must survive whatever else lives under the root: service
       job state, foreign files, broken symlinks, even a corrupt journal
       gets a note instead of killing the whole listing *)
    let dirs =
      if is_campaign_dir root then [ root ]
      else if (try Sys.is_directory root with Sys_error _ -> false) then
        Persist.Journal.find_campaigns ~root ()
      else begin
        prerr_endline ("prose campaign: no such directory " ^ root);
        exit 1
      end
    in
    let display dir =
      if dir = root then "."
      else
        let prefix = root ^ Filename.dir_sep in
        let n = String.length prefix in
        if String.length dir > n && String.sub dir 0 n = prefix then
          String.sub dir n (String.length dir - n)
        else dir
    in
    if dirs = [] then pf "no campaign journals under %s\n" root
    else
      List.iter
        (fun dir ->
          match Persist.Journal.load ~dir with
          | exception Persist.Journal.Corrupt msg ->
            pf "%-24s (unreadable: %s)\n" (display dir) msg
          | exception Sys_error msg -> pf "%-24s (unreadable: %s)\n" (display dir) msg
          | loaded ->
            let h = loaded.Persist.Journal.l_header in
            let n = List.length loaded.Persist.Journal.l_entries in
            let state =
              match Persist.Snapshot.read ~dir with
              | Some s when s.Persist.Snapshot.s_finished -> "finished"
              | Some _ | None -> "in progress"
            in
            pf "%-24s %-8s %-12s seed %-6d %4d records  %s%s\n" (display dir)
              h.Persist.Journal.model h.Persist.Journal.algo h.Persist.Journal.seed n state
              (if loaded.Persist.Journal.l_torn then "  (torn tail)" else ""))
        dirs
  in
  Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ dir_arg)

let campaign_show_cmd =
  let doc = "Show one campaign journal: header, snapshot, outcome counts" in
  let run dir =
    let loaded = load_or_die dir in
    let h = loaded.Persist.Journal.l_header in
    pf "journal : %s\n" (Persist.Journal.file ~dir);
    pf "version : %d\n" h.Persist.Journal.version;
    pf "model   : %s\n" h.Persist.Journal.model;
    pf "algo    : %s\n" h.Persist.Journal.algo;
    pf "seed    : %d\n" h.Persist.Journal.seed;
    pf "config  : %s\n" h.Persist.Journal.config_digest;
    pf "workers : %d\n" h.Persist.Journal.workers;
    pf "atoms   : %d\n" h.Persist.Journal.atoms;
    if h.Persist.Journal.caps <> [] then
      pf "caps    : %s\n" (String.concat ", " h.Persist.Journal.caps);
    if loaded.Persist.Journal.l_shared <> [] then
      pf "shared  : %d record(s) attributed to the fleet memo\n"
        (List.length loaded.Persist.Journal.l_shared);
    let pass, fail, timeout, error = status_counts loaded.Persist.Journal.l_entries in
    pf "records : %d (%d pass, %d fail, %d timeout, %d error)%s\n"
      (List.length loaded.Persist.Journal.l_entries)
      pass fail timeout error
      (if loaded.Persist.Journal.l_torn then "  -- torn tail dropped" else "");
    (* prediction bookkeeping: absent entirely for journals written before
       the score fields existed *)
    let scored =
      List.filter_map (fun (e : Persist.Journal.entry) -> e.Persist.Journal.e_score)
        loaded.Persist.Journal.l_entries
    in
    let pruned =
      List.length
        (List.filter
           (fun (e : Persist.Journal.entry) ->
             let d = e.Persist.Journal.e_meas.Search.Variant.detail in
             String.length d >= 8 && String.sub d 0 8 = "static: ")
           loaded.Persist.Journal.l_entries)
    in
    if scored <> [] || pruned > 0 then
      pf "predict : %d scored record(s), mean score %.4f, %d statically pruned\n"
        (List.length scored)
        (if scored = [] then 0.0
         else List.fold_left ( +. ) 0.0 scored /. float_of_int (List.length scored))
        pruned;
    match Persist.Snapshot.read ~dir with
    | None -> pf "snapshot: none\n"
    | Some s ->
      pf "snapshot: %d records, %.3f simulated hours, best speedup %.4f, %s\n"
        s.Persist.Snapshot.s_records s.Persist.Snapshot.s_hours
        s.Persist.Snapshot.s_best_speedup
        (if s.Persist.Snapshot.s_finished then "finished" else "in progress");
      if s.Persist.Snapshot.s_preemptions > 0 || s.Persist.Snapshot.s_lost_seconds > 0.0 then
        pf "faults  : %.0f node-seconds lost, %d preemption(s)\n"
          s.Persist.Snapshot.s_lost_seconds s.Persist.Snapshot.s_preemptions
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ dir_arg)

let campaign_replay_cmd =
  let doc = "Reconstruct a campaign's records and summary from its journal" in
  let run dir csv =
    let loaded = load_or_die dir in
    let h = loaded.Persist.Journal.l_header in
    let m =
      match Models.Registry.find h.Persist.Journal.model with
      | m -> m
      | exception Not_found ->
        prerr_endline ("prose campaign: journal is for unknown model " ^ h.Persist.Journal.model);
        exit 1
    in
    let prog = Fortran.Parser.parse ~file:(m.Models.Registry.name ^ ".f90") m.source in
    let st = Fortran.Symtab.build prog in
    let atoms =
      Transform.Assignment.atoms_of_target st ~module_:m.target_module
        ~procs:(Some m.target_procs) ~exclude:m.exclude_atoms
    in
    if List.length atoms <> h.Persist.Journal.atoms then begin
      prerr_endline
        (Printf.sprintf "prose campaign: model %s has %d FP atoms but the journal recorded %d"
           m.Models.Registry.name (List.length atoms) h.Persist.Journal.atoms);
      exit 1
    end;
    let records =
      List.map
        (fun (e : Persist.Journal.entry) ->
          {
            Search.Variant.index = e.Persist.Journal.e_index;
            asg = Transform.Assignment.of_signature atoms e.Persist.Journal.e_signature;
            meas = e.Persist.Journal.e_meas;
          })
        loaded.Persist.Journal.l_entries
    in
    (* journaled prediction fields ride along into the CSV; journals
       written before the columns existed yield empty cells *)
    let annots : (int, float option * float option) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (e : Persist.Journal.entry) ->
        Hashtbl.replace annots e.Persist.Journal.e_index
          (e.Persist.Journal.e_score, e.Persist.Journal.e_bound))
      loaded.Persist.Journal.l_entries;
    let annot (r : Search.Variant.record) =
      Option.value ~default:(None, None) (Hashtbl.find_opt annots r.Search.Variant.index)
    in
    let s = Search.Variant.summarize records in
    pf "%s %s campaign: %d records replayed%s\n" h.Persist.Journal.model h.Persist.Journal.algo
      s.Search.Variant.total
      (if loaded.Persist.Journal.l_torn then " (torn tail dropped)" else "");
    pf "pass %.1f%%  fail %.1f%%  timeout %.1f%%  error %.1f%%  best speedup %.4f\n"
      s.Search.Variant.pass_pct s.Search.Variant.fail_pct s.Search.Variant.timeout_pct
      s.Search.Variant.error_pct s.Search.Variant.best_speedup;
    Option.iter
      (fun path -> Core.Export.write_file ~path (Core.Export.variants_csv_records ~annot records))
      csv
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ dir_arg $ csv_arg)

let campaign_cmd =
  let doc = "Inspect durable campaign journals" in
  Cmd.group (Cmd.info "campaign" ~doc)
    [ campaign_ls_cmd; campaign_show_cmd; campaign_replay_cmd ]

(* ------------------------------------------------------------------ *)
(* prose serve / submit / watch / jobs — the multiplexing campaign
   service. The CLI talks to a running server over ROOT/prose.sock and
   falls back to the on-disk store (submit queues, watch/jobs read)
   when no server is listening. *)

let root_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:"Service root directory (holds the socket, job state and campaign journals).")

let job_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id, e.g. j001.")

let open_store root =
  if try Sys.is_directory root with Sys_error _ -> false then Service.Store.open_ ~root
  else begin
    prerr_endline ("prose: no such directory " ^ root);
    exit 1
  end

let job_line (j : Service.Job.t) =
  let { Service.Job.id; spec; state; records; hours; best_speedup; shared } = j in
  let extra = match state with Service.Job.Failed msg -> "  (" ^ msg ^ ")" | _ -> "" in
  let extra = (if shared > 0 then Printf.sprintf "  %d memo-shared" shared else "") ^ extra in
  Printf.sprintf "%-6s %-8s %-12s %-8s %5d records %10.4f h  best %.3fx%s" id
    spec.Service.Job.sp_model spec.Service.Job.sp_algo (Service.Job.state_name state) records
    hours best_speedup extra

let serve_cmd =
  let doc = "Serve tuning campaigns from a job queue (SIGTERM drains)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the campaign service on $(b,--root): admitted jobs are multiplexed over one \
         shared evaluation pool in fair round-robin time slices, each slice a journaled \
         run/resume segment. Every job's journal, minimal set and summary are byte-identical \
         to the same campaign run solo with $(b,prose tune). SIGTERM/SIGINT drain: the \
         in-flight slice pauses at its next durable record and a restarted server resumes \
         every job bit-identically with zero re-evaluation.";
    ]
  in
  let slots_arg =
    Arg.(
      value & opt int 0
      & info [ "slots" ] ~docv:"N"
          ~doc:
            "Worker domains in the shared evaluation pool lent to every job slice (0 = \
             strictly sequential). Job results never depend on it.")
  in
  let slice_arg =
    Arg.(
      value & opt int 8
      & info [ "slice" ] ~docv:"K"
          ~doc:"Fresh durable records per scheduler time slice (>= 1).")
  in
  let no_memo_arg =
    Arg.(
      value & flag
      & info [ "no-shared-memo" ]
          ~doc:
            "Disable the fleet-wide cross-campaign evaluation memo. With the memo on (the \
             default), concurrent jobs in the same evaluation space evaluate each variant \
             once fleet-wide; memo-served records are journaled normally plus a provenance \
             line. Job results never depend on this flag.")
  in
  let run root slots slice no_memo =
    match
      Service.Server.run ~slice_records:slice ~shared_memo:(not no_memo)
        ~log:(fun m -> pf "%s\n%!" m) ~root ~slots ()
    with
    | Ok () -> ()
    | Error msg ->
      prerr_endline ("prose serve: " ^ msg);
      exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc ~man)
    Term.(const run $ root_arg $ slots_arg $ slice_arg $ no_memo_arg)

let submit_cmd =
  let doc = "Submit a tuning campaign to the service queue" in
  let submit_model_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Tuning target (validated at admission).")
  in
  let sworkers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker count recorded in the job's journal header, exactly as a solo $(b,prose \
             tune --workers N) run's would be. Results are identical for every N; the \
             server's $(b,--slots) bounds actual parallelism.")
  in
  let quota_arg =
    Arg.(
      value & opt (some float) None
      & info [ "quota" ] ~docv:"H"
          ~doc:
            "Per-job budget in simulated cluster hours (fault losses included). The job goes \
             terminal at the first durable record whose accumulated hours reach the quota — \
             the same stopping record a preemption at that boundary produces.")
  in
  let tenant_arg =
    Arg.(value & opt string "default" & info [ "tenant" ] ~doc:"Accounting label for the job.")
  in
  let priority_arg =
    Arg.(
      value & opt int 1
      & info [ "priority" ] ~docv:"W"
          ~doc:
            "Scheduling weight (>= 1): the job claims up to $(docv) consecutive time slices \
             per round-robin turn. Results never depend on it.")
  in
  let run root model seed max_variants whole brute hierarchical workers quota tenant priority
      faults =
    let spec =
      {
        Service.Job.sp_model = String.lowercase_ascii model;
        sp_algo =
          (if brute then "brute_force" else if hierarchical then "hierarchical" else "delta_debug");
        sp_seed = seed;
        sp_workers = workers;
        sp_max_variants = max_variants;
        sp_whole_model = whole;
        sp_quota_hours = quota;
        sp_faults = faults;
        sp_tenant = tenant;
        sp_priority = priority;
      }
    in
    match Service.Proto.roundtrip ~root (Service.Proto.Submit spec) with
    | Some (Ok resp) ->
      let id =
        match Option.bind (Persist.Json.member "job" resp) (fun j ->
            match Service.Job.of_json j with
            | Ok job -> Some job.Service.Job.id
            | Error _ -> None)
        with
        | Some id -> id
        | None -> "?"
      in
      pf "submitted %s\n" id
    | Some (Error msg) ->
      prerr_endline ("prose submit: " ^ msg);
      exit 1
    | None -> (
      (* no server listening: admit straight into the store; a later
         server picks the job up from its Queued state *)
      let store = open_store root in
      match Service.Store.submit store ~find_model:Models.Registry.find spec with
      | Ok j ->
        pf "queued %s (no server running; start one with: prose serve --root %s)\n"
          j.Service.Job.id root
      | Error msg ->
        prerr_endline ("prose submit: rejected: " ^ msg);
        exit 1)
  in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ root_arg $ submit_model_arg $ seed_arg $ max_variants_arg $ whole_model_arg
      $ brute_arg $ hierarchical_arg $ sworkers_arg $ quota_arg $ tenant_arg $ priority_arg
      $ faults_term)

let watch_cmd =
  let doc = "Stream a job's status events until it completes" in
  let exit_for = function Service.Job.Done -> exit 0 | _ -> exit 1 in
  let fallback root id =
    let store = open_store root in
    match Service.Store.load store id with
    | None ->
      prerr_endline ("prose watch: no such job " ^ id);
      exit 1
    | Some j ->
      pf "%s\n" (job_line j);
      if Service.Job.terminal j.Service.Job.state then exit_for j.Service.Job.state
      else begin
        prerr_endline
          ("prose watch: no server running; start one with: prose serve --root " ^ root);
        exit 3
      end
  in
  let run root id =
    let session =
      Service.Proto.with_client ~root (fun (ic, oc) ->
          Service.Proto.send oc (Service.Proto.request_json (Service.Proto.Watch id));
          match Service.Proto.recv ic with
          | None -> `Lost
          | Some resp when not (Service.Proto.is_ok resp) ->
            `Refused (Service.Proto.error_of resp)
          | Some _ ->
            let rec loop () =
              match Service.Proto.recv ic with
              | None -> `Lost (* server drained mid-watch; re-read the store *)
              | Some line -> (
                match Service.Proto.event_of_json line with
                | None -> loop ()
                | Some ev ->
                  let { Service.Sched.ev_job; ev_state; ev_records; ev_hours; ev_best;
                        ev_shared; ev_detail } =
                    ev
                  in
                  pf "%-6s %-8s %5d records %10.4f h  best %.3fx%s%s\n%!" ev_job
                    (Service.Job.state_name ev_state)
                    ev_records ev_hours ev_best
                    (if ev_shared > 0 then Printf.sprintf "  %d memo-shared" ev_shared else "")
                    (if ev_detail = "" then "" else "  [" ^ ev_detail ^ "]");
                  if Service.Job.terminal ev_state then `Terminal ev_state else loop ())
            in
            loop ())
    in
    match session with
    | None | Some `Lost -> fallback root id
    | Some (`Refused msg) ->
      prerr_endline ("prose watch: " ^ msg);
      exit 1
    | Some (`Terminal st) -> exit_for st
  in
  Cmd.v (Cmd.info "watch" ~doc) Term.(const run $ root_arg $ job_arg)

let jobs_cmd =
  let doc = "List, inspect and cancel service jobs" in
  let ls_cmd =
    let run root =
      let store = open_store root in
      match Service.Store.list store with
      | [] -> pf "no jobs under %s\n" root
      | jobs -> List.iter (fun j -> pf "%s\n" (job_line j)) jobs
    in
    Cmd.v (Cmd.info "ls" ~doc:"List all jobs") Term.(const run $ root_arg)
  in
  let show_cmd =
    let run root id =
      let store = open_store root in
      match Service.Store.load store id with
      | None ->
        prerr_endline ("prose jobs: no such job " ^ id);
        exit 1
      | Some j ->
        let { Service.Job.sp_model; sp_algo; sp_seed; sp_workers; sp_max_variants;
              sp_whole_model; sp_quota_hours; sp_faults; sp_tenant; sp_priority } =
          j.Service.Job.spec
        in
        pf "%s\n" (job_line j);
        pf "  model %s  algo %s  seed %d  workers %d  tenant %s  priority %d\n" sp_model
          sp_algo sp_seed sp_workers sp_tenant sp_priority;
        if j.Service.Job.shared > 0 then
          pf "  fleet dedup: %d of %d records served by the shared memo (%.0f%%)\n"
            j.Service.Job.shared j.Service.Job.records
            (100.0 *. float_of_int j.Service.Job.shared
            /. float_of_int (max 1 j.Service.Job.records));
        pf "  budget: %s variants, %s cluster-hours quota\n"
          (match sp_max_variants with Some n -> string_of_int n | None -> "model default")
          (match sp_quota_hours with Some h -> Printf.sprintf "%.3f" h | None -> "unlimited");
        pf "  guidance: %s\n" (if sp_whole_model then "whole-model" else "hotspot");
        Option.iter
          (fun (f : Core.Cluster.Faults.spec) ->
            pf "  faults: seed %d, transient %.3f, node %.3f, %d retries\n"
              f.Core.Cluster.Faults.fault_seed f.Core.Cluster.Faults.transient_prob
              f.Core.Cluster.Faults.node_failure_prob f.Core.Cluster.Faults.max_retries)
          sp_faults;
        let dir = Service.Store.campaign_dir store id in
        if Sys.file_exists (Persist.Journal.file ~dir) then pf "  journal: %s\n" dir;
        let published p = if Sys.file_exists p then pf "  published: %s\n" p in
        published (Service.Store.summary_file store id);
        published (Service.Store.minimal_file store id)
    in
    Cmd.v (Cmd.info "show" ~doc:"Show one job's spec, progress and artifacts")
      Term.(const run $ root_arg $ job_arg)
  in
  let cancel_cmd =
    let run root id =
      match Service.Proto.roundtrip ~root (Service.Proto.Cancel id) with
      | Some (Ok _) -> pf "cancelled %s\n" id
      | Some (Error msg) ->
        prerr_endline ("prose jobs: " ^ msg);
        exit 1
      | None -> (
        let store = open_store root in
        match Service.Store.load store id with
        | None ->
          prerr_endline ("prose jobs: no such job " ^ id);
          exit 1
        | Some j when Service.Job.terminal j.Service.Job.state ->
          prerr_endline
            ("prose jobs: " ^ id ^ " is already " ^ Service.Job.state_name j.Service.Job.state);
          exit 1
        | Some j ->
          Service.Store.update store
            { j with Service.Job.state = Service.Job.Failed "cancelled" };
          pf "cancelled %s (no server running)\n" id)
    in
    Cmd.v (Cmd.info "cancel" ~doc:"Terminal-state a runnable job")
      Term.(const run $ root_arg $ job_arg)
  in
  Cmd.group (Cmd.info "jobs" ~doc) [ ls_cmd; show_cmd; cancel_cmd ]

(* ------------------------------------------------------------------ *)

let reduce_cmd =
  let doc = "Show the taint-based program reduction for a model's search space" in
  let run (m : Models.Registry.t) =
    let prog = Fortran.Parser.parse ~file:(m.name ^ ".f90") m.source in
    let st = Fortran.Symtab.build prog in
    let atoms =
      Transform.Assignment.atoms_of_target st ~module_:m.target_module
        ~procs:(Some m.target_procs) ~exclude:m.exclude_atoms
    in
    let targets =
      List.map (fun a -> (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name)) atoms
    in
    let reduced, stats = Analysis.Taint.reduce st ~targets in
    pf "! reduction: %s\n" (Format.asprintf "%a" Analysis.Taint.pp_stats stats);
    print_string (Fortran.Unparse.program reduced)
  in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run $ model_arg)

let analyze_cmd =
  let doc = "Static analyses of a model: vectorization report, flow graph, static cost" in
  let run (m : Models.Registry.t) =
    let prog = Fortran.Parser.parse ~file:(m.name ^ ".f90") m.source in
    let st = Fortran.Symtab.build prog in
    pf "== vectorization report ==\n";
    List.iter
      (fun r -> Format.printf "  %a@." Analysis.Vectorize.pp_report r)
      (Analysis.Vectorize.analyze st);
    let g = Analysis.Flowgraph.build st in
    pf "\n== interprocedural FP flow graph ==\n";
    pf "  %d nodes, %d parameter-passing edges, %d kind violations\n"
      (List.length (Analysis.Flowgraph.nodes g))
      (List.length (Analysis.Flowgraph.edges g))
      (List.length (Analysis.Flowgraph.violations g));
    List.iter (fun e -> Format.printf "  %a@." Analysis.Flowgraph.pp_edge e)
      (Analysis.Flowgraph.edges g);
    let v = Analysis.Static_cost.evaluate st in
    pf "\n== static cost ==\n  vector loops %d, casting penalty %.0f\n"
      v.Analysis.Static_cost.vector_loops v.Analysis.Static_cost.penalty;
    let p = Core.Tuner.prepare m in
    pf "\n== flow-graph clusters (hierarchical search groups) ==\n";
    List.iter
      (fun group ->
        pf "  { %s }\n"
          (String.concat ", " (List.map Transform.Assignment.atom_id group)))
      (Core.Tuner.flow_groups p)
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ model_arg)

let fuzz_cmd =
  let doc = "Differentially test the pipeline on random well-typed programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random well-typed Fortran programs with random precision \
         assignments and checks pipeline invariants on each: unparse/parse \
         fixpoint ($(b,roundtrip)), typecheck stability ($(b,typecheck)), \
         assignment application and wrapper repair ($(b,rewrite)), bit-identical \
         outcomes between the tree-walking interpreter and the slot-resolved \
         fast path ($(b,equiv)), and three-way agreement including the \
         closure-compiled backend ($(b,compiled)). Counterexamples are minimized \
         with ddmin and written to the corpus directory as a replayable \
         $(i,.f90) + assignment pair; $(b,dune runtest) replays the corpus.";
    ]
  in
  let oracle_names =
    String.concat ", " (List.map Testgen.Oracle.name Testgen.Oracle.all)
  in
  let oracle_conv =
    let parse s =
      match Testgen.Oracle.of_name s with
      | Some id -> Ok id
      | None ->
        Error (`Msg (Printf.sprintf "unknown oracle %S (expected one of: %s)" s oracle_names))
    in
    Arg.conv (parse, fun ppf id -> Format.pp_print_string ppf (Testgen.Oracle.name id))
  in
  let cases_arg =
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Base seed. Case $(i,i) is generated deterministically from (seed, $(i,i)), so \
             any reported failure replays exactly from the seed printed with it.")
  in
  let oracle_filter_arg =
    Arg.(
      value & opt_all oracle_conv []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Run only the named oracle(s): %s. Repeatable; default: all."
               oracle_names))
  in
  let corpus_arg =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory for minimized counterexamples.")
  in
  let run cases seed oracles corpus =
    let ids = match oracles with [] -> Testgen.Oracle.all | ids -> ids in
    let failures = ref 0 in
    for i = 0 to cases - 1 do
      let case = Testgen.Gen.case_at ~seed ~index:i in
      match Testgen.Oracle.check ~ids case with
      | [] -> ()
      | (first :: _) as vs ->
        incr failures;
        List.iter
          (fun (v : Testgen.Oracle.violation) ->
            pf "FAIL seed=%d case=%d oracle=%s: %s\n%!" seed i
              (Testgen.Oracle.name v.Testgen.Oracle.oracle)
              v.Testgen.Oracle.detail)
          vs;
        let minimized = Testgen.Minimize.minimize ~ids case in
        let oracle = Testgen.Oracle.name first.Testgen.Oracle.oracle in
        let entry =
          {
            Testgen.Corpus.name = Printf.sprintf "fz_%s_s%d_c%d" oracle seed i;
            case = minimized;
            oracle;
            origin = Printf.sprintf "seed=%d case=%d" seed i;
          }
        in
        let path = Testgen.Corpus.save ~dir:corpus entry in
        pf "  minimized: %d source line(s), %d lowered atom(s) -> %s\n%!"
          (List.length (String.split_on_char '\n' minimized.Testgen.Gen.source))
          (List.length minimized.Testgen.Gen.lowered)
          path
    done;
    pf "fuzz: %d/%d cases passed (seed=%d, oracles: %s)\n" (cases - !failures) cases seed
      (String.concat ", " (List.map Testgen.Oracle.name ids));
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(const run $ cases_arg $ fuzz_seed_arg $ oracle_filter_arg $ corpus_arg)

let report_cmd =
  let doc = "Run every campaign and print all tables, figures and validation checks" in
  let run seed workers =
    let config = { Core.Config.default with Core.Config.seed } in
    let suite = Core.Experiments.run_suite ~config ?workers () in
    let hotspots = [ suite.Core.Experiments.mpas; suite.Core.Experiments.adcirc; suite.Core.Experiments.mom6 ] in
    print_string (Core.Report.table1 hotspots);
    print_newline ();
    print_string (Core.Report.table2 hotspots);
    print_newline ();
    print_string (Core.Report.figure2 suite.Core.Experiments.funarc);
    print_string
      (Core.Report.figure3 suite.Core.Experiments.funarc
         ~error_budget:suite.Core.Experiments.funarc.Core.Tuner.prepared.Core.Tuner.threshold);
    List.iter (fun c -> print_string (Core.Report.figure5 c)) hotspots;
    List.iter (fun c -> print_string (Core.Report.figure6 c)) hotspots;
    print_string (Core.Report.figure7 suite.Core.Experiments.mpas_whole);
    pf "\nVALIDATION CHECKS\n";
    pf "funarc:\n%s" (Core.Checks.render (Core.Checks.funarc suite.Core.Experiments.funarc));
    pf "MPAS-A:\n%s" (Core.Checks.render (Core.Checks.mpas_hotspot suite.Core.Experiments.mpas));
    pf "ADCIRC:\n%s" (Core.Checks.render (Core.Checks.adcirc_hotspot suite.Core.Experiments.adcirc));
    pf "MOM6:\n%s" (Core.Checks.render (Core.Checks.mom6_hotspot suite.Core.Experiments.mom6));
    pf "MPAS-A (whole-model):\n%s"
      (Core.Checks.render (Core.Checks.mpas_whole_model suite.Core.Experiments.mpas_whole))
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ seed_arg $ workers_arg)

let () =
  let doc = "automated performance-guided floating-point precision tuning" in
  let info = Cmd.info "prose" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            models_cmd;
            source_cmd;
            tune_cmd;
            campaign_cmd;
            serve_cmd;
            submit_cmd;
            watch_cmd;
            jobs_cmd;
            analyze_cmd;
            reduce_cmd;
            fuzz_cmd;
            report_cmd;
          ]))
