(* prose — automated, performance-guided floating-point precision tuning
   for the bundled weather/climate model proxies.

   Subcommands:
     prose models               list the registered tuning targets
     prose source MODEL         print a model's Fortran source
     prose tune MODEL [...]     run a tuning campaign and report
     prose reduce MODEL         taint-based program reduction (Sec. III-C)
     prose report               regenerate every table/figure/checklist    *)

open Cmdliner

let pf = Printf.printf

(* ------------------------------------------------------------------ *)

let model_conv =
  let parse s =
    match Models.Registry.find (String.lowercase_ascii s) with
    | m -> Ok m
    | exception Not_found ->
      Error (`Msg (Printf.sprintf "unknown model %S (try: funarc, mpas, adcirc, mom6)" s))
  in
  Arg.conv (parse, fun ppf (m : Models.Registry.t) -> Format.pp_print_string ppf m.name)

let model_arg =
  Arg.(required & pos 0 (some model_conv) None & info [] ~docv:"MODEL" ~doc:"Tuning target.")

(* ------------------------------------------------------------------ *)

let models_cmd =
  let doc = "List the registered tuning targets" in
  let run () =
    List.iter
      (fun (m : Models.Registry.t) ->
        pf "%-8s %-10s target %s: %s\n" m.name m.title m.target_module m.description)
      (Models.Registry.funarc :: Models.Registry.all)
  in
  Cmd.v (Cmd.info "models" ~doc) Term.(const run $ const ())

let source_cmd =
  let doc = "Print a model's Fortran source" in
  let run (m : Models.Registry.t) = print_string m.source in
  Cmd.v (Cmd.info "source" ~doc) Term.(const run $ model_arg)

(* ------------------------------------------------------------------ *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed for the injected run-to-run noise.")

let max_variants_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-variants" ] ~doc:"Override the model's dynamic-evaluation budget.")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel variant evaluation (default: cores - 1; 0 = \
           sequential). Results are identical for every N; only wall clock changes.")

let whole_model_arg =
  Arg.(
    value & flag
    & info [ "whole-model" ]
        ~doc:"Guide the search by whole-model time instead of hotspot CPU time (Sec. IV-C).")

let static_filter_arg =
  Arg.(
    value & flag
    & info [ "static-filter" ]
        ~doc:"Enable the Sec.-V static pre-filter (vectorization report + casting penalty).")

let brute_arg =
  Arg.(value & flag & info [ "brute-force" ] ~doc:"Exhaustive 2^n search instead of delta debugging.")

let verify_roundtrip_arg =
  Arg.(
    value & flag
    & info [ "verify-roundtrip" ]
        ~doc:
          "Cross-check every variant evaluation: run both the direct-AST fast path and the \
           historical unparse$(i,\\->)reparse pipeline and abort if any outcome differs. \
           Slow; intended for CI and debugging the evaluation fast path.")

let csv_arg =
  Arg.(
    value & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Write the per-variant data as CSV.")

let json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"PATH" ~doc:"Write the campaign summary as JSON.")

let hierarchical_arg =
  Arg.(
    value & flag
    & info [ "hierarchical" ]
        ~doc:"Cluster atoms by the FP flow graph and search groups first (Sec. V).")

let tune_cmd =
  let doc = "Run a precision-tuning campaign on a model" in
  let run m seed max_variants whole static brute hierarchical csv json workers verify =
    let config =
      {
        Core.Config.default with
        Core.Config.seed;
        max_variants;
        static_filter = static;
        mode = (if whole then Core.Config.Whole_model_guided else Core.Config.Hotspot_guided);
        verify_roundtrip = verify;
      }
    in
    let campaign =
      if brute then Core.Tuner.run_brute_force ~config m
      else if hierarchical then Core.Tuner.run_hierarchical ~config ?workers m
      else Core.Tuner.run_delta_debug ~config ?workers m
    in
    print_string (Core.Report.campaign_header campaign);
    print_newline ();
    print_string (Core.Report.table2 [ campaign ]);
    print_newline ();
    print_string (Core.Report.figure5 campaign);
    print_newline ();
    print_string (Core.Report.figure6 campaign);
    Option.iter
      (fun path -> Core.Export.write_file ~path (Core.Export.variants_csv campaign))
      csv;
    Option.iter
      (fun path -> Core.Export.write_file ~path (Core.Export.summary_json campaign))
      json;
    match campaign.Core.Tuner.minimal with
    | Some r when r.Search.Delta_debug.high_set <> [] ->
      pf "\n1-minimal variant (declaration diff against the original):\n%s"
        (Transform.Diff.declarations campaign.Core.Tuner.prepared.Core.Tuner.st
           r.Search.Delta_debug.minimal)
    | Some _ | None -> ()
  in
  Cmd.v (Cmd.info "tune" ~doc)
    Term.(
      const run $ model_arg $ seed_arg $ max_variants_arg $ whole_model_arg $ static_filter_arg
      $ brute_arg $ hierarchical_arg $ csv_arg $ json_arg $ workers_arg
      $ verify_roundtrip_arg)

(* ------------------------------------------------------------------ *)

let reduce_cmd =
  let doc = "Show the taint-based program reduction for a model's search space" in
  let run (m : Models.Registry.t) =
    let prog = Fortran.Parser.parse ~file:(m.name ^ ".f90") m.source in
    let st = Fortran.Symtab.build prog in
    let atoms =
      Transform.Assignment.atoms_of_target st ~module_:m.target_module
        ~procs:(Some m.target_procs) ~exclude:m.exclude_atoms
    in
    let targets =
      List.map (fun a -> (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name)) atoms
    in
    let reduced, stats = Analysis.Taint.reduce st ~targets in
    pf "! reduction: %s\n" (Format.asprintf "%a" Analysis.Taint.pp_stats stats);
    print_string (Fortran.Unparse.program reduced)
  in
  Cmd.v (Cmd.info "reduce" ~doc) Term.(const run $ model_arg)

let analyze_cmd =
  let doc = "Static analyses of a model: vectorization report, flow graph, static cost" in
  let run (m : Models.Registry.t) =
    let prog = Fortran.Parser.parse ~file:(m.name ^ ".f90") m.source in
    let st = Fortran.Symtab.build prog in
    pf "== vectorization report ==\n";
    List.iter
      (fun r -> Format.printf "  %a@." Analysis.Vectorize.pp_report r)
      (Analysis.Vectorize.analyze st);
    let g = Analysis.Flowgraph.build st in
    pf "\n== interprocedural FP flow graph ==\n";
    pf "  %d nodes, %d parameter-passing edges, %d kind violations\n"
      (List.length (Analysis.Flowgraph.nodes g))
      (List.length (Analysis.Flowgraph.edges g))
      (List.length (Analysis.Flowgraph.violations g));
    List.iter (fun e -> Format.printf "  %a@." Analysis.Flowgraph.pp_edge e)
      (Analysis.Flowgraph.edges g);
    let v = Analysis.Static_cost.evaluate st in
    pf "\n== static cost ==\n  vector loops %d, casting penalty %.0f\n"
      v.Analysis.Static_cost.vector_loops v.Analysis.Static_cost.penalty;
    let p = Core.Tuner.prepare m in
    pf "\n== flow-graph clusters (hierarchical search groups) ==\n";
    List.iter
      (fun group ->
        pf "  { %s }\n"
          (String.concat ", " (List.map Transform.Assignment.atom_id group)))
      (Core.Tuner.flow_groups p)
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ model_arg)

let fuzz_cmd =
  let doc = "Differentially test the pipeline on random well-typed programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates random well-typed Fortran programs with random precision \
         assignments and checks pipeline invariants on each: unparse/parse \
         fixpoint ($(b,roundtrip)), typecheck stability ($(b,typecheck)), \
         assignment application and wrapper repair ($(b,rewrite)), and \
         bit-identical outcomes between the tree-walking interpreter and the \
         slot-resolved fast path ($(b,equiv)). Counterexamples are minimized \
         with ddmin and written to the corpus directory as a replayable \
         $(i,.f90) + assignment pair; $(b,dune runtest) replays the corpus.";
    ]
  in
  let oracle_conv =
    let parse s =
      match Testgen.Oracle.of_name s with
      | Some id -> Ok id
      | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown oracle %S (expected roundtrip, typecheck, rewrite or equiv)"
               s))
    in
    Arg.conv (parse, fun ppf id -> Format.pp_print_string ppf (Testgen.Oracle.name id))
  in
  let cases_arg =
    Arg.(value & opt int 100 & info [ "cases" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let fuzz_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Base seed. Case $(i,i) is generated deterministically from (seed, $(i,i)), so \
             any reported failure replays exactly from the seed printed with it.")
  in
  let oracle_filter_arg =
    Arg.(
      value & opt_all oracle_conv []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"Run only the named oracle(s). Repeatable; default: all four.")
  in
  let corpus_arg =
    Arg.(
      value & opt string "test/corpus"
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory for minimized counterexamples.")
  in
  let run cases seed oracles corpus =
    let ids = match oracles with [] -> Testgen.Oracle.all | ids -> ids in
    let failures = ref 0 in
    for i = 0 to cases - 1 do
      let case = Testgen.Gen.case_at ~seed ~index:i in
      match Testgen.Oracle.check ~ids case with
      | [] -> ()
      | (first :: _) as vs ->
        incr failures;
        List.iter
          (fun (v : Testgen.Oracle.violation) ->
            pf "FAIL seed=%d case=%d oracle=%s: %s\n%!" seed i
              (Testgen.Oracle.name v.Testgen.Oracle.oracle)
              v.Testgen.Oracle.detail)
          vs;
        let minimized = Testgen.Minimize.minimize ~ids case in
        let oracle = Testgen.Oracle.name first.Testgen.Oracle.oracle in
        let entry =
          {
            Testgen.Corpus.name = Printf.sprintf "fz_%s_s%d_c%d" oracle seed i;
            case = minimized;
            oracle;
            origin = Printf.sprintf "seed=%d case=%d" seed i;
          }
        in
        let path = Testgen.Corpus.save ~dir:corpus entry in
        pf "  minimized: %d source line(s), %d lowered atom(s) -> %s\n%!"
          (List.length (String.split_on_char '\n' minimized.Testgen.Gen.source))
          (List.length minimized.Testgen.Gen.lowered)
          path
    done;
    pf "fuzz: %d/%d cases passed (seed=%d, oracles: %s)\n" (cases - !failures) cases seed
      (String.concat ", " (List.map Testgen.Oracle.name ids));
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~man)
    Term.(const run $ cases_arg $ fuzz_seed_arg $ oracle_filter_arg $ corpus_arg)

let report_cmd =
  let doc = "Run every campaign and print all tables, figures and validation checks" in
  let run seed workers =
    let config = { Core.Config.default with Core.Config.seed } in
    let suite = Core.Experiments.run_suite ~config ?workers () in
    let hotspots = [ suite.Core.Experiments.mpas; suite.Core.Experiments.adcirc; suite.Core.Experiments.mom6 ] in
    print_string (Core.Report.table1 hotspots);
    print_newline ();
    print_string (Core.Report.table2 hotspots);
    print_newline ();
    print_string (Core.Report.figure2 suite.Core.Experiments.funarc);
    print_string
      (Core.Report.figure3 suite.Core.Experiments.funarc
         ~error_budget:suite.Core.Experiments.funarc.Core.Tuner.prepared.Core.Tuner.threshold);
    List.iter (fun c -> print_string (Core.Report.figure5 c)) hotspots;
    List.iter (fun c -> print_string (Core.Report.figure6 c)) hotspots;
    print_string (Core.Report.figure7 suite.Core.Experiments.mpas_whole);
    pf "\nVALIDATION CHECKS\n";
    pf "funarc:\n%s" (Core.Checks.render (Core.Checks.funarc suite.Core.Experiments.funarc));
    pf "MPAS-A:\n%s" (Core.Checks.render (Core.Checks.mpas_hotspot suite.Core.Experiments.mpas));
    pf "ADCIRC:\n%s" (Core.Checks.render (Core.Checks.adcirc_hotspot suite.Core.Experiments.adcirc));
    pf "MOM6:\n%s" (Core.Checks.render (Core.Checks.mom6_hotspot suite.Core.Experiments.mom6));
    pf "MPAS-A (whole-model):\n%s"
      (Core.Checks.render (Core.Checks.mpas_whole_model suite.Core.Experiments.mpas_whole))
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ seed_arg $ workers_arg)

let () =
  let doc = "automated performance-guided floating-point precision tuning" in
  let info = Cmd.info "prose" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ models_cmd; source_cmd; tune_cmd; analyze_cmd; reduce_cmd; fuzz_cmd; report_cmd ]))
