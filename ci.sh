#!/bin/sh
# CI entry point: build everything, run the full test suite, then a quick
# benchmark pass guarded against wall-clock regressions, plus one campaign
# with the unparse->reparse cross-check enabled.
set -eux

dune build @all
dune runtest

# Quick campaigns at workers=0 (same setting the committed baseline was
# recorded with); any campaign >2x slower than BENCH_ci.json fails the run.
dune exec bench/main.exe -- --quick --workers 0 --json BENCH_ci_run.json \
  --check-against BENCH_ci.json

# One campaign with every evaluation cross-checked against the historical
# unparse->reparse pipeline; aborts on the first outcome mismatch.
dune exec bin/prose.exe -- tune mpas --max-variants 15 --workers 0 \
  --verify-roundtrip > /dev/null

# Fuzz smoke gate: 300 random well-typed programs through all four
# oracles (roundtrip, typecheck, rewrite, equiv) at a fixed seed; any
# violation is minimized, written to test/corpus/, and fails the run.
dune exec bin/prose.exe -- fuzz --cases 300 --seed 42
