#!/bin/sh
# CI entry point: build everything, run the full test suite, then a quick
# benchmark pass guarded against wall-clock regressions, plus one campaign
# with the unparse->reparse cross-check enabled.
set -eux

dune build @all
dune runtest

# Quick campaigns at workers=0 (same setting the committed baseline was
# recorded with); any campaign >2x slower than BENCH_ci.json fails the run.
# --scaling additionally runs the whole-model campaign at four
# shards x workers grid points, requires every point bit-identical in
# records and summary with a >=2x simulated-makespan improvement at 4x4,
# and lands the curve in the JSON trajectory. Campaigns the committed
# baseline predates are skipped with a warning, not a crash.
dune exec bench/main.exe -- --quick --workers 0 --scaling --json BENCH_ci_run.json \
  --check-against BENCH_ci.json

# One campaign with every evaluation cross-checked against the historical
# unparse->reparse pipeline; aborts on the first outcome mismatch.
dune exec bin/prose.exe -- tune mpas --max-variants 15 --workers 0 \
  --verify-roundtrip > /dev/null

# Fuzz smoke gate: 300 random well-typed programs through all five
# oracles (roundtrip, typecheck, rewrite, equiv, compiled) at a fixed
# seed; "compiled" is the three-way interpreter == lowered IR ==
# closure-compiled check. Any violation is minimized, written to
# test/corpus/, and fails the run.
dune exec bin/prose.exe -- fuzz --cases 300 --seed 42

# Sharded-scheduler gate: one joint multi-hotspot campaign (the atm_srk3
# driver inside the search space) at shards=2/workers=2 with fault
# injection on, diffed record-for-record (CSV) and summary-for-summary
# against the sequential shards=1/workers=0 run. Faults are pure coins
# over (seed, kind, signature, attempt) and backend counters replay the
# committed stream, so both files must be byte-identical.
SDIR=$(mktemp -d)
_build/default/bin/prose.exe tune mpas_joint --whole-model --max-variants 40 \
  --shards 1 --workers 0 --journal "$SDIR/seq" \
  --fault-transient 0.02 --fault-seed 7 \
  --csv "$SDIR/seq.csv" --json "$SDIR/seq.json" > /dev/null
_build/default/bin/prose.exe tune mpas_joint --whole-model --max-variants 40 \
  --shards 2 --workers 2 --journal "$SDIR/sharded" \
  --fault-transient 0.02 --fault-seed 7 \
  --csv "$SDIR/sharded.csv" --json "$SDIR/sharded.json" > /dev/null
diff -u "$SDIR/seq.csv" "$SDIR/sharded.csv"
diff -u "$SDIR/seq.json" "$SDIR/sharded.json"
rm -rf "$SDIR"

# Crash-safety smoke gate: SIGKILL a journaled campaign mid-search, resume
# it, and require the summary to be bit-identical to an uninterrupted run.
# Only the "trace" line (cache hits / replay counts, functions of how many
# fresh evaluations ran) may differ; everything else -- records, minimal
# variant, speedups, cluster hours, and since the counters replay the
# committed record stream also the "backend" line -- must match exactly.
# Runs the real binary (not via dune exec) so the SIGKILL hits the
# campaign process itself, tearing the journal mid-line.
JDIR=$(mktemp -d)
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --json "$JDIR/base.json" > /dev/null
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --journal "$JDIR/campaign" > /dev/null &
KILL_PID=$!
# fire once >=40 of the 256 records are durable: the tear is mid-search,
# not a post-completion formality (poll, because wall time is machine-fast)
while [ "$(wc -l < "$JDIR/campaign/journal.jsonl" 2> /dev/null || echo 0)" -lt 40 ]; do
  sleep 0.02
done
kill -9 "$KILL_PID" 2> /dev/null || true
wait "$KILL_PID" 2> /dev/null || true
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --journal "$JDIR/campaign" --resume \
  --json "$JDIR/resumed.json" > /dev/null
grep -v -e '"trace"' "$JDIR/base.json" > "$JDIR/base_cmp.json"
grep -v -e '"trace"' "$JDIR/resumed.json" > "$JDIR/resumed_cmp.json"
diff -u "$JDIR/base_cmp.json" "$JDIR/resumed_cmp.json"
rm -rf "$JDIR"
