#!/bin/sh
# CI entry point: build everything, run the full test suite, then a quick
# benchmark pass that records per-campaign wall clock and evaluation counts.
set -eux

dune build @all
dune runtest
dune exec bench/main.exe -- --quick --json BENCH_ci.json
