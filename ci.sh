#!/bin/sh
# CI entry point: build everything, run the full test suite, then a quick
# benchmark pass guarded against wall-clock regressions, plus one campaign
# with the unparse->reparse cross-check enabled.
set -eux

dune build @all
dune runtest

# Quick campaigns at workers=0 (same setting the committed baseline was
# recorded with); any campaign >2x slower than BENCH_ci.json fails the run.
# --scaling additionally runs the whole-model campaign at four
# shards x workers grid points, requires every point bit-identical in
# records and summary with a >=2x simulated-makespan improvement at 4x4,
# and lands the curve in the JSON trajectory. Campaigns the committed
# baseline predates are skipped with a warning, not a crash.
dune exec bench/main.exe -- --quick --workers 0 --scaling --json BENCH_ci_run.json \
  --check-against BENCH_ci.json

# One campaign with every evaluation cross-checked against the historical
# unparse->reparse pipeline; aborts on the first outcome mismatch.
dune exec bin/prose.exe -- tune mpas --max-variants 15 --workers 0 \
  --verify-roundtrip > /dev/null

# Fuzz smoke gate: 300 random well-typed programs through all six
# oracles (roundtrip, typecheck, rewrite, equiv, compiled, sensitivity)
# at a fixed seed; "compiled" is the three-way interpreter == lowered IR
# == closure-compiled check, "sensitivity" checks every finite static
# error bound against the measured single-atom demotion error. Any
# violation is minimized, written to test/corpus/, and fails the run.
dune exec bin/prose.exe -- fuzz --cases 300 --seed 42

# Sharded-scheduler gate: one joint multi-hotspot campaign (the atm_srk3
# driver inside the search space) at shards=2/workers=2 with fault
# injection on, diffed record-for-record (CSV) and summary-for-summary
# against the sequential shards=1/workers=0 run. Faults are pure coins
# over (seed, kind, signature, attempt) and backend counters replay the
# committed stream, so both files must be byte-identical.
SDIR=$(mktemp -d)
_build/default/bin/prose.exe tune mpas_joint --whole-model --max-variants 40 \
  --shards 1 --workers 0 --journal "$SDIR/seq" \
  --fault-transient 0.02 --fault-seed 7 \
  --csv "$SDIR/seq.csv" --json "$SDIR/seq.json" > /dev/null
_build/default/bin/prose.exe tune mpas_joint --whole-model --max-variants 40 \
  --shards 2 --workers 2 --journal "$SDIR/sharded" \
  --fault-transient 0.02 --fault-seed 7 \
  --csv "$SDIR/sharded.csv" --json "$SDIR/sharded.json" > /dev/null
diff -u "$SDIR/seq.csv" "$SDIR/sharded.csv"
diff -u "$SDIR/seq.json" "$SDIR/sharded.json"
rm -rf "$SDIR"

# Predictive-search gate, part 1: rank ordering must steer the mpas
# campaign to the bit-identical 1-minimal variant the unpredicted search
# finds (fewer evaluations are the point; a different answer is a bug).
PDIR=$(mktemp -d)
_build/default/bin/prose.exe tune mpas --workers 0 --predict off \
  --json "$PDIR/off.json" > /dev/null
_build/default/bin/prose.exe tune mpas --workers 0 --predict rank \
  --json "$PDIR/rank.json" > /dev/null
grep '"minimal"' "$PDIR/off.json" > "$PDIR/off_min.json"
grep '"minimal"' "$PDIR/rank.json" > "$PDIR/rank_min.json"
# the evaluation counts differ by design; the atom set must not
sed 's/"evaluations": [0-9]*/"evaluations": _/' "$PDIR/off_min.json" \
  > "$PDIR/off_cmp.json"
sed 's/"evaluations": [0-9]*/"evaluations": _/' "$PDIR/rank_min.json" \
  > "$PDIR/rank_cmp.json"
diff -u "$PDIR/off_cmp.json" "$PDIR/rank_cmp.json"

# Predictive-search gate, part 2: SIGKILL a journaled prune campaign
# mid-search (margin tuned so ~15% of the space is statically skipped and
# the rest runs for real), resume it, and require the summary to match an
# uninterrupted run modulo the "trace" line -- pruning decisions are pure
# functions of (config digest, variant signature), so the torn journal
# must replay them bit-identically. A second resume of the now-complete
# journal must preload every record and evaluate nothing.
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --predict prune --predict-margin 100000 \
  --json "$PDIR/pbase.json" > /dev/null
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --predict prune --predict-margin 100000 \
  --journal "$PDIR/pcamp" > /dev/null &
PKILL_PID=$!
while [ "$(wc -l < "$PDIR/pcamp/journal.jsonl" 2> /dev/null || echo 0)" -lt 40 ]; do
  sleep 0.02
done
kill -9 "$PKILL_PID" 2> /dev/null || true
wait "$PKILL_PID" 2> /dev/null || true
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --predict prune --predict-margin 100000 \
  --journal "$PDIR/pcamp" --resume --json "$PDIR/presumed.json" > /dev/null
grep -v -e '"trace"' "$PDIR/pbase.json" > "$PDIR/pbase_cmp.json"
grep -v -e '"trace"' "$PDIR/presumed.json" > "$PDIR/presumed_cmp.json"
diff -u "$PDIR/pbase_cmp.json" "$PDIR/presumed_cmp.json"
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --predict prune --predict-margin 100000 \
  --journal "$PDIR/pcamp" --resume --json "$PDIR/preplay.json" > /dev/null
grep '"misses": 0,' "$PDIR/preplay.json" > /dev/null
grep '"preloaded": 256' "$PDIR/preplay.json" > /dev/null
rm -rf "$PDIR"

# Crash-safety smoke gate: SIGKILL a journaled campaign mid-search, resume
# it, and require the summary to be bit-identical to an uninterrupted run.
# Only the "trace" line (cache hits / replay counts, functions of how many
# fresh evaluations ran) may differ; everything else -- records, minimal
# variant, speedups, cluster hours, and since the counters replay the
# committed record stream also the "backend" line -- must match exactly.
# Runs the real binary (not via dune exec) so the SIGKILL hits the
# campaign process itself, tearing the journal mid-line.
JDIR=$(mktemp -d)
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --json "$JDIR/base.json" > /dev/null
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --journal "$JDIR/campaign" > /dev/null &
KILL_PID=$!
# fire once >=40 of the 256 records are durable: the tear is mid-search,
# not a post-completion formality (poll, because wall time is machine-fast)
while [ "$(wc -l < "$JDIR/campaign/journal.jsonl" 2> /dev/null || echo 0)" -lt 40 ]; do
  sleep 0.02
done
kill -9 "$KILL_PID" 2> /dev/null || true
wait "$KILL_PID" 2> /dev/null || true
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --journal "$JDIR/campaign" --resume \
  --json "$JDIR/resumed.json" > /dev/null
grep -v -e '"trace"' "$JDIR/base.json" > "$JDIR/base_cmp.json"
grep -v -e '"trace"' "$JDIR/resumed.json" > "$JDIR/resumed_cmp.json"
diff -u "$JDIR/base_cmp.json" "$JDIR/resumed_cmp.json"
rm -rf "$JDIR"

# Service gate: serve two concurrent campaigns (one fault-injected) over a
# shared pool, SIGTERM the server mid-run, restart it, watch both jobs to
# completion, and byte-diff each job's journal and summary against the
# same campaign run solo with `prose tune`. Slices are journaled
# run/resume segments, so multiplexing and the drain/restart may only
# move the summary's "trace" line (cache/replay counters, functions of
# where the slice boundaries fell); journals must match byte for byte.
VDIR=$(mktemp -d)
_build/default/bin/prose.exe serve --root "$VDIR" --slots 2 --slice 4 \
  > "$VDIR/serve.log" 2>&1 &
SERVE_PID=$!
while [ ! -S "$VDIR/prose.sock" ]; do sleep 0.02; done
_build/default/bin/prose.exe submit --root "$VDIR" funarc --workers 0
_build/default/bin/prose.exe submit --root "$VDIR" funarc --seed 7 --workers 0 \
  --fault-transient 0.05 --fault-seed 7
# drain once the first job has real progress, so the SIGTERM lands
# mid-campaign (poll, because wall time is machine-fast)
while [ "$(wc -l < "$VDIR/jobs/j001/campaign/journal.jsonl" 2> /dev/null || echo 0)" -lt 8 ]; do
  sleep 0.02
done
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
# a restarted server resumes every in-flight journal bit-identically
# (zero re-evaluation of the journaled prefix) and finishes both jobs
_build/default/bin/prose.exe serve --root "$VDIR" --slots 2 --slice 4 \
  >> "$VDIR/serve.log" 2>&1 &
SERVE_PID=$!
while [ ! -S "$VDIR/prose.sock" ]; do sleep 0.02; done
_build/default/bin/prose.exe watch --root "$VDIR" j001
_build/default/bin/prose.exe watch --root "$VDIR" j002
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
_build/default/bin/prose.exe tune funarc --workers 0 \
  --journal "$VDIR/solo1" --json "$VDIR/solo1.json" > /dev/null
_build/default/bin/prose.exe tune funarc --seed 7 --workers 0 \
  --fault-transient 0.05 --fault-seed 7 \
  --journal "$VDIR/solo2" --json "$VDIR/solo2.json" > /dev/null
diff "$VDIR/solo1/journal.jsonl" "$VDIR/jobs/j001/campaign/journal.jsonl"
diff "$VDIR/solo2/journal.jsonl" "$VDIR/jobs/j002/campaign/journal.jsonl"
grep -v -e '"trace"' "$VDIR/solo1.json" > "$VDIR/solo1_cmp.json"
grep -v -e '"trace"' "$VDIR/jobs/j001/summary.json" > "$VDIR/j001_cmp.json"
diff -u "$VDIR/solo1_cmp.json" "$VDIR/j001_cmp.json"
grep -v -e '"trace"' "$VDIR/solo2.json" > "$VDIR/solo2_cmp.json"
grep -v -e '"trace"' "$VDIR/jobs/j002/summary.json" > "$VDIR/j002_cmp.json"
diff -u "$VDIR/solo2_cmp.json" "$VDIR/j002_cmp.json"

# Fleet-dedup gate: two campaigns in the same evaluation space (same
# model, same config, same seed) through one server share the
# process-wide evaluation memo — each variant is evaluated once
# fleet-wide, and memo-served records are journaled normally plus a
# {"kind":"shared",...} provenance line naming the donor job. Stripping
# those lines must recover the solo journal byte for byte, the summaries
# must match solo modulo the "trace" line, and the trailing job must
# account a nonzero cumulative shared counter (the leader, at
# --priority 2, stays ahead, so the follower is served almost entirely
# from the fleet).
_build/default/bin/prose.exe serve --root "$VDIR" --slots 2 --slice 4 \
  >> "$VDIR/serve.log" 2>&1 &
SERVE_PID=$!
while [ ! -S "$VDIR/prose.sock" ]; do sleep 0.02; done
_build/default/bin/prose.exe submit --root "$VDIR" funarc --seed 11 --workers 0 \
  --priority 2
_build/default/bin/prose.exe submit --root "$VDIR" funarc --seed 11 --workers 0
_build/default/bin/prose.exe watch --root "$VDIR" j003
_build/default/bin/prose.exe watch --root "$VDIR" j004
_build/default/bin/prose.exe jobs show --root "$VDIR" j004 | tee "$VDIR/j004_show.txt"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
_build/default/bin/prose.exe tune funarc --seed 11 --workers 0 \
  --journal "$VDIR/solo3" --json "$VDIR/solo3.json" > /dev/null
grep -v '"kind":"shared"' "$VDIR/jobs/j003/campaign/journal.jsonl" > "$VDIR/j003_j.jsonl"
grep -v '"kind":"shared"' "$VDIR/jobs/j004/campaign/journal.jsonl" > "$VDIR/j004_j.jsonl"
diff "$VDIR/solo3/journal.jsonl" "$VDIR/j003_j.jsonl"
diff "$VDIR/solo3/journal.jsonl" "$VDIR/j004_j.jsonl"
grep -v -e '"trace"' "$VDIR/solo3.json" > "$VDIR/solo3_cmp.json"
grep -v -e '"trace"' "$VDIR/jobs/j003/summary.json" > "$VDIR/j003_cmp.json"
grep -v -e '"trace"' "$VDIR/jobs/j004/summary.json" > "$VDIR/j004_cmp.json"
diff -u "$VDIR/solo3_cmp.json" "$VDIR/j003_cmp.json"
diff -u "$VDIR/solo3_cmp.json" "$VDIR/j004_cmp.json"
# the memo actually fired: `jobs show` prints the fleet-dedup gauge only
# when the job's cumulative shared counter is nonzero (the summary's
# "trace" line covers just the finishing slice, which can be all-replay),
# and the server log accounted at least one memo-served slice
grep 'fleet dedup:' "$VDIR/j004_show.txt" > /dev/null
grep -E ', [1-9][0-9]* memo-shared\)' "$VDIR/serve.log" > /dev/null
rm -rf "$VDIR"
