#!/bin/sh
# CI entry point: build everything, run the full test suite, then a quick
# benchmark pass guarded against wall-clock regressions, plus one campaign
# with the unparse->reparse cross-check enabled.
set -eux

dune build @all
dune runtest

# Quick campaigns at workers=0 (same setting the committed baseline was
# recorded with); any campaign >2x slower than BENCH_ci.json fails the run.
dune exec bench/main.exe -- --quick --workers 0 --json BENCH_ci_run.json \
  --check-against BENCH_ci.json

# One campaign with every evaluation cross-checked against the historical
# unparse->reparse pipeline; aborts on the first outcome mismatch.
dune exec bin/prose.exe -- tune mpas --max-variants 15 --workers 0 \
  --verify-roundtrip > /dev/null

# Fuzz smoke gate: 300 random well-typed programs through all five
# oracles (roundtrip, typecheck, rewrite, equiv, compiled) at a fixed
# seed; "compiled" is the three-way interpreter == lowered IR ==
# closure-compiled check. Any violation is minimized, written to
# test/corpus/, and fails the run.
dune exec bin/prose.exe -- fuzz --cases 300 --seed 42

# Crash-safety smoke gate: SIGKILL a journaled campaign mid-search, resume
# it, and require the summary to be bit-identical to an uninterrupted run.
# Only the "trace" and "backend" counter lines (cache hits / replay
# counts / compile and reuse traffic, all functions of how many fresh
# evaluations ran) may differ; everything else -- records, minimal
# variant, speedups, cluster hours -- must match exactly. Runs the real
# binary (not via dune exec) so the SIGKILL hits the campaign process
# itself, tearing the journal mid-line.
JDIR=$(mktemp -d)
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --json "$JDIR/base.json" > /dev/null
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --journal "$JDIR/campaign" > /dev/null &
KILL_PID=$!
# fire once >=40 of the 256 records are durable: the tear is mid-search,
# not a post-completion formality (poll, because wall time is machine-fast)
while [ "$(wc -l < "$JDIR/campaign/journal.jsonl" 2> /dev/null || echo 0)" -lt 40 ]; do
  sleep 0.02
done
kill -9 "$KILL_PID" 2> /dev/null || true
wait "$KILL_PID" 2> /dev/null || true
_build/default/bin/prose.exe tune funarc --brute-force --workers 0 \
  --journal "$JDIR/campaign" --resume \
  --json "$JDIR/resumed.json" > /dev/null
grep -v -e '"trace"' -e '"backend"' "$JDIR/base.json" > "$JDIR/base_cmp.json"
grep -v -e '"trace"' -e '"backend"' "$JDIR/resumed.json" > "$JDIR/resumed_cmp.json"
diff -u "$JDIR/base_cmp.json" "$JDIR/resumed_cmp.json"
rm -rf "$JDIR"
