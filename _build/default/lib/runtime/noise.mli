(** Deterministic run-to-run performance jitter.

    Real model executions on a shared supercomputer show run-to-run
    variance (1 % relative standard deviation for MPAS-A and ADCIRC, 9 %
    for MOM6 in the paper, Sec. IV-A); the paper's Eq. 1 takes the median
    of [n] runs to tolerate it. The cost model is deterministic, so the
    jitter is injected here: a multiplicative log-normal-ish factor drawn
    from a hash of (seed, run index), reproducible across processes. *)

val factor : seed:int -> run:int -> rel_std:float -> float
(** Multiplicative noise factor, mean ≈ 1, relative standard deviation
    ≈ [rel_std], clamped to [0.5, 2.0]. [rel_std = 0.] returns [1.]. *)

val gaussian : seed:int -> int -> float
(** Standard normal deviate from a deterministic hash stream; [int] is the
    draw index. *)
