(** GPTL-style per-procedure timers.

    The paper measures hotspot CPU time with the GPTL library, excluding
    non-targeted model procedures but including intrinsic/library time
    (Sec. III-E). The interpreter reproduces that attribution:

    - every modeled cost charge is attributed to the procedure currently
      on top of the attribution stack (intrinsics do not push, so their
      cost lands on the caller, as with GPTL);
    - generated wrappers get no timer of their own: their conversion cost
      is attributed to the procedure containing the call site. Casting at
      an {e intra-hotspot} boundary therefore counts against the hotspot
      (the paper's MPAS-A flux and MOM6 findings), while casting at the
      hotspot's {e outer} boundary counts against the surrounding model
      only — which is exactly why the whole-model-guided search of
      Sec. IV-C sees slowdowns that hotspot timing does not;
    - inclusive time (callees included) and call counts are kept per
      procedure; Fig. 6 plots average inclusive time per call. *)

type t

type entry = {
  name : string;
  calls : int;
  exclusive : float;  (** cost charged while this procedure was on top *)
  inclusive : float;  (** cost between entry and exit, callees included *)
}

val create : unit -> t

val enter : t -> string -> now:float -> unit
(** Push procedure [name]; [now] is the global cost accumulator. *)

val exit_ : t -> now:float -> unit
(** Pop the top procedure, folding [now - entry_mark] into its inclusive
    time. Calls must nest properly. *)

val charge : t -> float -> unit
(** Attribute cost to the procedure on top (no-op on an empty stack). *)

val current : t -> string option

val snapshot : t -> entry list
(** Per-procedure totals, sorted by descending inclusive time. Only valid
    once the stack has fully unwound (recursion would double-count
    inclusive time; the models are non-recursive). *)

val inclusive_of : entry list -> string -> float
val exclusive_of : entry list -> string -> float
val calls_of : entry list -> string -> int
