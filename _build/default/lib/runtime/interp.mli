(** Tree-walking interpreter with precision-faithful arithmetic and
    cost-model accounting — the "compile and execute on a dedicated node"
    stage ([T_3]) of the paper's workflow.

    Semantics:
    - [real(kind=4)] operations round through IEEE binary32 after every
      operation ({!Fp32}); [real(kind=8)] is native binary64.
    - Argument association is by reference for whole variables and
      copy-in/copy-out for expressions and array elements. Real arguments
      must match the dummy's kind exactly; a mismatch is a runtime error
      (strict Fortran — the transformation pipeline must have inserted
      wrappers).
    - A non-finite arithmetic result (overflow, division by zero, NaN)
      aborts the run with [Error] status — the "runtime error" column of
      Table II.
    - Execution stops with [Timed_out] when modeled cost exceeds [budget]
      (the paper kills variants at 3 × the baseline's time).

    Cost accounting follows {!Machine}: SIMD rates apply inside loops that
    {!Analysis.Vectorize} approves and whose static conversion-site ratio
    is below the machine threshold; calls to inlinable, kind-uniform
    procedures are free; other calls pay overhead; generated wrappers pay
    extra and are attributed to the procedure they wrap ({!Timers}). *)

type status =
  | Finished
  | Stopped of string  (** a [stop 'msg'] was executed *)
  | Runtime_error of string  (** FP trap, bounds error, kind mismatch, ... *)
  | Timed_out

type outcome = {
  status : status;
  cost : float;  (** total modeled CPU time (abstract units) *)
  timers : Timers.entry list;
  records : (string * float) list;
      (** the observation channel: every [print *, 'key', v1, v2, ...]
          appends [(key, v)] pairs in execution order; correctness metrics
          are computed from these series *)
  printed : string list;  (** every printed line, in order *)
  breakdown : (Machine.category * float) list;
      (** modeled cost by category; [Cat_convert] is the run's total
          casting overhead (the quantity behind the paper's "40 % of CPU
          time spent on casting" analysis) *)
}

val pp_status : Format.formatter -> status -> unit

val run :
  ?machine:Machine.t ->
  ?budget:float ->
  ?loop_reports:Analysis.Vectorize.report list ->
  ?wrapper_owner:(string -> string option) ->
  Fortran.Symtab.t ->
  outcome
(** Execute the program's main unit. [loop_reports] defaults to running
    {!Analysis.Vectorize.analyze} on the program; pass them explicitly to
    avoid recomputation across repeated runs. [wrapper_owner] maps a
    generated wrapper procedure to the procedure it wraps, for timer
    attribution and the wrapper call penalty. *)

val series : outcome -> string -> float list
(** All recorded values for the given key, in execution order. *)

val record_keys : outcome -> string list
(** Distinct record keys in first-appearance order. *)

val casting_share : outcome -> float
(** Fraction of the run's modeled cost spent on kind conversions. *)
