(* SplitMix64, seeded from (seed, index); gives a well-mixed uniform. *)
let splitmix64 state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform ~seed idx =
  let h = splitmix64 (Int64.add (Int64.of_int seed) (Int64.mul 0x100000001B3L (Int64.of_int idx))) in
  let mantissa = Int64.to_float (Int64.shift_right_logical h 11) in
  mantissa /. 9007199254740992.0 (* 2^53 *)

let gaussian ~seed idx =
  (* Box–Muller on two deterministic uniforms *)
  let u1 = Float.max 1e-12 (uniform ~seed (2 * idx)) in
  let u2 = uniform ~seed ((2 * idx) + 1) in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let factor ~seed ~run ~rel_std =
  if rel_std <= 0.0 then 1.0
  else
    let z = gaussian ~seed run in
    Float.min 2.0 (Float.max 0.5 (1.0 +. (rel_std *. z)))
