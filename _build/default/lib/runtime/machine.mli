(** Cost-model parameters of the modeled CPU.

    The paper's dynamic evaluation ran on Derecho nodes (AMD EPYC 7763,
    AVX2); this repository substitutes an analytic cost model whose
    parameters encode the three mechanisms the paper identifies as the
    sources of reduced-precision speedup and slowdown (Sec. II-A):

    - {b vector width}: packed binary32 admits twice the lanes of binary64
      ([lanes_f32] vs [lanes_f64]), applied only inside loops the
      {!Analysis.Vectorize} analysis approves;
    - {b memory traffic}: array accesses cost per byte moved;
    - {b casting overhead}: every kind conversion not folded at compile
      time costs [convert]; a call through a generated wrapper
      additionally pays [wrapper_overhead] and defeats inlining.

    Costs are in abstract "time units" (≈ cycles); only ratios matter,
    because every reported number is a speedup against a baseline run
    under the same machine. *)

(** Cost categories for attribution breakdowns. The paper's variant
    analyses quantify where variant CPU time goes — most notably casting
    overhead ("40 % of the CPU time is spent on casting overhead",
    Sec. IV-B) — so every charge carries a category. *)
type category =
  | Cat_flops  (** arithmetic, intrinsic math *)
  | Cat_memory  (** array element traffic *)
  | Cat_convert  (** kind conversions: the casting overhead *)
  | Cat_call  (** call and wrapper overhead *)
  | Cat_reduction  (** MPI reductions *)
  | Cat_loop  (** loop bookkeeping *)

val categories : category list
val category_name : category -> string

type t = {
  flop_f64 : float;  (** add/sub/mul, binary64 *)
  flop_f32 : float;
  div_f64 : float;
  div_f32 : float;
  sqrt_f64 : float;
  sqrt_f32 : float;
  math_f64 : float;  (** sin/cos/tan/exp/log/atan/asin/acos *)
  math_f32 : float;
  pow_f64 : float;
  pow_f32 : float;
  compare_cost : float;
  int_op : float;
  convert : float;  (** one kind-conversion instruction *)
  mem_byte : float;  (** array load/store, per byte *)
  call_overhead : float;  (** non-inlined user-procedure call *)
  wrapper_overhead : float;  (** additional penalty for a generated wrapper call *)
  allreduce : float;  (** fixed cost of the MPI_ALLREDUCE stand-in *)
  loop_overhead : float;  (** per loop iteration *)
  lanes_f32 : int;
  lanes_f64 : int;
  conv_ratio_threshold : float;
      (** a vectorizable loop whose static conversion-site/FP-op ratio
          exceeds this is compiled scalar (packed converts crowd out the
          pipeline) *)
  inline_stmt_limit : int;  (** max callee statements for inlining *)
}

val default : t
(** Derecho-flavored defaults (AVX2: 8 × f32 / 4 × f64 lanes). *)

val scalar : t
(** A machine with no SIMD ([lanes_f32 = lanes_f64 = 1]); used by ablation
    benchmarks to show criterion (1)'s contribution. *)

val op_cost : t -> lanes:int -> Fortran.Ast.real_kind -> Fortran.Ast.binop -> float
(** Cost of one executed arithmetic/comparison operation at the given
    result kind, spread over [lanes] SIMD lanes ([lanes = 1] = scalar).
    A kind-uniform vectorized loop passes [lanes t kind]; a mixed-kind
    vectorized loop runs every operation at the {e narrow} (binary64)
    width, as real compilers emit. *)

val intrinsic_cost : t -> lanes:int -> Fortran.Ast.real_kind -> string -> float
(** Cost of one elemental intrinsic evaluation ([sqrt], [sin], ...). *)

val convert_cost : t -> lanes:int -> float
(** Packed conversions never exceed the binary64 width. *)

val mem_cost : t -> lanes:int -> Fortran.Ast.real_kind -> float
val lanes : t -> Fortran.Ast.real_kind -> int
