(** Runtime values and storage cells.

    [real(kind=4)] scalars and array elements hold binary64 floats that
    are exactly representable in binary32 (see {!Fp32}); the invariant is
    maintained by every store and arithmetic operation in {!Interp}. *)

type v =
  | Vint of int
  | Vreal of float * Fortran.Ast.real_kind
  | Vlog of bool
  | Vstr of string

type cell =
  | Scalar of v ref
  | Real_array of { kind : Fortran.Ast.real_kind; data : float array; dims : int array }
  | Int_array of { data : int array; dims : int array }
  | Log_array of { data : bool array; dims : int array }

exception Bounds of string

(* Fortran column-major order, all lower bounds 1. *)
let offset ~name ~dims indices =
  let rank = Array.length dims in
  if List.length indices <> rank then
    raise (Bounds (Printf.sprintf "%s: rank %d but %d subscripts" name rank (List.length indices)));
  let off = ref 0 in
  let stride = ref 1 in
  List.iteri
    (fun d i ->
      if i < 1 || i > dims.(d) then
        raise
          (Bounds
             (Printf.sprintf "%s: subscript %d of dimension %d out of range [1,%d]" name i (d + 1)
                dims.(d)));
      off := !off + ((i - 1) * !stride);
      stride := !stride * dims.(d))
    indices;
  !off

let elements dims = Array.fold_left ( * ) 1 dims

let pp_v ppf = function
  | Vint i -> Format.fprintf ppf "%d" i
  | Vreal (x, _) -> Format.fprintf ppf "%.17g" x
  | Vlog true -> Format.pp_print_string ppf "T"
  | Vlog false -> Format.pp_print_string ppf "F"
  | Vstr s -> Format.pp_print_string ppf s

let to_string v = Format.asprintf "%a" pp_v v
