type category =
  | Cat_flops
  | Cat_memory
  | Cat_convert
  | Cat_call
  | Cat_reduction
  | Cat_loop

let categories = [ Cat_flops; Cat_memory; Cat_convert; Cat_call; Cat_reduction; Cat_loop ]

let category_name = function
  | Cat_flops -> "flops"
  | Cat_memory -> "memory"
  | Cat_convert -> "convert"
  | Cat_call -> "call"
  | Cat_reduction -> "reduction"
  | Cat_loop -> "loop"

type t = {
  flop_f64 : float;
  flop_f32 : float;
  div_f64 : float;
  div_f32 : float;
  sqrt_f64 : float;
  sqrt_f32 : float;
  math_f64 : float;
  math_f32 : float;
  pow_f64 : float;
  pow_f32 : float;
  compare_cost : float;
  int_op : float;
  convert : float;
  mem_byte : float;
  call_overhead : float;
  wrapper_overhead : float;
  allreduce : float;
  loop_overhead : float;
  lanes_f32 : int;
  lanes_f64 : int;
  conv_ratio_threshold : float;
  inline_stmt_limit : int;
}

let default =
  {
    flop_f64 = 1.0;
    flop_f32 = 1.0;
    div_f64 = 4.0;
    div_f32 = 2.5;
    sqrt_f64 = 5.0;
    sqrt_f32 = 3.0;
    math_f64 = 12.0;
    math_f32 = 6.5;
    pow_f64 = 22.0;
    pow_f32 = 13.0;
    compare_cost = 0.5;
    int_op = 0.2;
    convert = 2.0;
    mem_byte = 0.35;
    call_overhead = 20.0;
    wrapper_overhead = 15.0;
    allreduce = 1200.0;
    loop_overhead = 1.0;
    lanes_f32 = 8;
    lanes_f64 = 4;
    conv_ratio_threshold = 0.8;
    inline_stmt_limit = 16;
  }

let scalar = { default with lanes_f32 = 1; lanes_f64 = 1 }

let lanes t = function Fortran.Ast.K4 -> t.lanes_f32 | Fortran.Ast.K8 -> t.lanes_f64

let scale ~lanes:n cost = if n > 1 then cost /. float_of_int n else cost

let op_cost t ~lanes (kind : Fortran.Ast.real_kind) (op : Fortran.Ast.binop) =
  let raw =
    match op, kind with
    | (Fortran.Ast.Add | Fortran.Ast.Sub | Fortran.Ast.Mul), Fortran.Ast.K8 -> t.flop_f64
    | (Fortran.Ast.Add | Fortran.Ast.Sub | Fortran.Ast.Mul), Fortran.Ast.K4 -> t.flop_f32
    | Fortran.Ast.Div, Fortran.Ast.K8 -> t.div_f64
    | Fortran.Ast.Div, Fortran.Ast.K4 -> t.div_f32
    | Fortran.Ast.Pow, Fortran.Ast.K8 -> t.pow_f64
    | Fortran.Ast.Pow, Fortran.Ast.K4 -> t.pow_f32
    | ( ( Fortran.Ast.Eq | Fortran.Ast.Ne | Fortran.Ast.Lt | Fortran.Ast.Le | Fortran.Ast.Gt
        | Fortran.Ast.Ge | Fortran.Ast.And | Fortran.Ast.Or ),
        _ ) ->
      t.compare_cost
  in
  ignore kind;
  scale ~lanes raw

let intrinsic_cost t ~lanes (kind : Fortran.Ast.real_kind) name =
  let raw =
    match name, kind with
    | "sqrt", Fortran.Ast.K8 -> t.sqrt_f64
    | "sqrt", Fortran.Ast.K4 -> t.sqrt_f32
    | ( ("sin" | "cos" | "tan" | "exp" | "log" | "log10" | "atan" | "asin" | "acos" | "sinh"
        | "cosh" | "tanh" | "atan2"),
        Fortran.Ast.K8 ) ->
      t.math_f64
    | ( ("sin" | "cos" | "tan" | "exp" | "log" | "log10" | "atan" | "asin" | "acos" | "sinh"
        | "cosh" | "tanh" | "atan2"),
        Fortran.Ast.K4 ) ->
      t.math_f32
    | ("abs" | "min" | "max" | "sign" | "mod" | "aint" | "anint"), Fortran.Ast.K8 -> t.flop_f64
    | ("abs" | "min" | "max" | "sign" | "mod" | "aint" | "anint"), Fortran.Ast.K4 -> t.flop_f32
    | _, _ -> t.flop_f64
  in
  ignore kind;
  scale ~lanes raw

let convert_cost t ~lanes = scale ~lanes:(min lanes t.lanes_f64) t.convert

let mem_cost t ~lanes (kind : Fortran.Ast.real_kind) =
  let bytes = match kind with Fortran.Ast.K4 -> 4.0 | Fortran.Ast.K8 -> 8.0 in
  scale ~lanes (t.mem_byte *. bytes)
