(** IEEE binary32 emulation.

    OCaml's [float] is binary64; a [real(kind=4)] value is represented as
    the binary64 float that is exactly representable in binary32, obtained
    by rounding through the 32-bit encoding after {e every} operation.
    This is bit-faithful to performing the operation in single precision
    for the arithmetic used here (single rounding of a correctly-rounded
    binary64 result differs from fused binary32 arithmetic only through
    double rounding, which is immaterial to the tuning methodology). *)

val round : float -> float
(** Round a binary64 value to the nearest binary32 value (ties to even),
    returned as binary64. Overflow yields the appropriately signed
    infinity, exactly as binary32 arithmetic would. *)

val is_representable : float -> bool
(** Whether the value survives [round] unchanged. *)

val max_finite : float
(** Largest finite binary32 value, [(2 - 2{^-23}) * 2{^127}]. *)

val min_positive_normal : float

val of_kind : Fortran.Ast.real_kind -> float -> float
(** [of_kind K4 x = round x]; [of_kind K8 x = x]. *)
