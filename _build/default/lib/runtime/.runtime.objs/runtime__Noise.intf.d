lib/runtime/noise.mli:
