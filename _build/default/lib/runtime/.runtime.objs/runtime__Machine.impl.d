lib/runtime/machine.ml: Fortran
