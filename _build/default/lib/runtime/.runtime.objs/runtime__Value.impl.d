lib/runtime/value.ml: Array Format Fortran List Printf
