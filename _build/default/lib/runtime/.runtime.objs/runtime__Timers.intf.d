lib/runtime/timers.mli:
