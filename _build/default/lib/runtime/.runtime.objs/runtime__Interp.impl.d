lib/runtime/interp.ml: Analysis Array Ast Builtins Float Format Fortran Fp32 Hashtbl List Machine Option String Symtab Timers Token Typecheck Value
