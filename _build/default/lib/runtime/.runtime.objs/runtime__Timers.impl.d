lib/runtime/timers.ml: Hashtbl List
