lib/runtime/fp32.ml: Float Fortran Int32
