lib/runtime/machine.mli: Fortran
