lib/runtime/interp.mli: Analysis Format Fortran Machine Timers
