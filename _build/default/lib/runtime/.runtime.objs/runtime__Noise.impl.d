lib/runtime/noise.ml: Float Int64
