lib/runtime/fp32.mli: Fortran
