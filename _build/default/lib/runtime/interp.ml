open Fortran

type status =
  | Finished
  | Stopped of string
  | Runtime_error of string
  | Timed_out

type outcome = {
  status : status;
  cost : float;
  timers : Timers.entry list;
  records : (string * float) list;
  printed : string list;
  breakdown : (Machine.category * float) list;
      (* modeled cost by category; the Cat_convert entry is the run's
         casting overhead *)
}

let pp_status ppf = function
  | Finished -> Format.pp_print_string ppf "finished"
  | Stopped m -> Format.fprintf ppf "stopped: %s" m
  | Runtime_error m -> Format.fprintf ppf "runtime error: %s" m
  | Timed_out -> Format.pp_print_string ppf "timed out"

(* control-flow and failure signals *)
exception Return_signal
exception Exit_signal
exception Cycle_signal
exception Stop_signal of string
exception Trap of string
exception Timeout_signal

let trap fmt = Format.kasprintf (fun m -> raise (Trap m)) fmt

type vec_mode =
  | Vscalar  (* not vectorized *)
  | Vnarrow  (* vectorized at the binary64 width: the loop mixes kinds *)
  | Vfull  (* vectorized at each operation's natural width *)

type frame = {
  proc : string option;  (* None = main program body *)
  vars : (string, Value.cell) Hashtbl.t;
}

type ctx = {
  st : Symtab.t;
  machine : Machine.t;
  timers : Timers.t;
  mutable cost : float;
  budget : float option;
  vec_ok : (int, vec_mode) Hashtbl.t;  (* loop id -> vectorization mode *)
  wrapper_owner : string -> string option;
  globals : (string, Value.cell) Hashtbl.t;  (* "unit.var" *)
  params : (string, Value.v) Hashtbl.t;
  inlinable : (string, bool) Hashtbl.t;
  mutable vec : vec_mode;
  mutable records : (string * float) list;  (* reversed *)
  mutable printed : string list;  (* reversed *)
  mutable depth : int;
  mutable charging : bool;  (* disabled while folding compile-time constants *)
  mutable in_wrapper : bool;  (* executing a generated wrapper's body *)
  breakdown : float array;  (* indexed in Machine.categories order *)
}

let category_index =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun i c -> Hashtbl.add tbl c i) Machine.categories;
  fun c -> Hashtbl.find tbl c

let charge ctx cat c =
  if ctx.charging then begin
    ctx.cost <- ctx.cost +. c;
    let i = category_index cat in
    ctx.breakdown.(i) <- ctx.breakdown.(i) +. c;
    Timers.charge ctx.timers c
  end

let check_budget ctx =
  match ctx.budget with
  | Some b when ctx.cost > b -> raise Timeout_signal
  | Some _ | None -> ()

let lanes_of ctx kind =
  match ctx.vec with
  | Vscalar -> 1
  | Vnarrow -> ctx.machine.Machine.lanes_f64
  | Vfull -> Machine.lanes ctx.machine kind

let conv_lanes ctx = match ctx.vec with Vscalar -> 1 | Vnarrow | Vfull -> ctx.machine.Machine.lanes_f64

(* ------------------------------------------------------------------ *)
(* Value helpers                                                       *)

let mk_real kind x =
  let x = Fp32.of_kind kind x in
  if Float.is_finite x then Value.Vreal (x, kind)
  else if Float.is_nan x then trap "NaN produced in real(kind=%d) arithmetic" (Token.int_of_kind kind)
  else trap "overflow in real(kind=%d) arithmetic" (Token.int_of_kind kind)

let as_float = function
  | Value.Vreal (x, _) -> x
  | Value.Vint i -> float_of_int i
  | Value.Vlog _ | Value.Vstr _ -> trap "numeric value expected"

let as_int = function
  | Value.Vint i -> i
  | Value.Vreal (x, _) -> int_of_float x  (* truncation, as Fortran int assignment *)
  | Value.Vlog _ | Value.Vstr _ -> trap "integer value expected"

let as_bool = function
  | Value.Vlog b -> b
  | Value.Vint _ | Value.Vreal _ | Value.Vstr _ -> trap "logical value expected"

let value_kind = function
  | Value.Vreal (_, k) -> Some k
  | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> None

let is_real_literal = function Ast.Real_lit _ -> true | _ -> false

(* result kind of promoting two operands *)
let promote_kind a b =
  match a, b with
  | Some Ast.K8, _ | _, Some Ast.K8 -> Some Ast.K8
  | Some Ast.K4, _ | _, Some Ast.K4 -> Some Ast.K4
  | None, None -> None

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)

let global_key unit_name var = unit_name ^ "." ^ var

let zero_of_base (base : Ast.base_type) =
  match base with
  | Ast.Treal k -> Value.Vreal (0.0, k)
  | Ast.Tinteger -> Value.Vint 0
  | Ast.Tlogical -> Value.Vlog false

let alloc_cell (base : Ast.base_type) (extents : int list) : Value.cell =
  match extents with
  | [] -> Value.Scalar (ref (zero_of_base base))
  | _ ->
    let dims = Array.of_list extents in
    let n = Value.elements dims in
    if n < 0 || n > 50_000_000 then trap "array allocation of %d elements refused" n;
    (match base with
    | Ast.Treal kind -> Value.Real_array { kind; data = Array.make n 0.0; dims }
    | Ast.Tinteger -> Value.Int_array { data = Array.make n 0; dims }
    | Ast.Tlogical -> Value.Log_array { data = Array.make n false; dims })

(* ------------------------------------------------------------------ *)
(* The interpreter                                                     *)

let rec param_value ctx (info : Symtab.var_info) =
  let key =
    (match info.v_scope with
    | Symtab.Proc_scope p -> "p:" ^ p
    | Symtab.Unit_scope u -> "u:" ^ u)
    ^ "." ^ info.v_name
  in
  match Hashtbl.find_opt ctx.params key with
  | Some v -> v
  | None ->
    let in_proc = match info.v_scope with Symtab.Proc_scope p -> Some p | Symtab.Unit_scope _ -> None in
    let init =
      match info.v_init with
      | Some e -> e
      | None -> trap "parameter %s has no initializer" info.v_name
    in
    (* parameters reference only literals and other parameters: evaluate in
       an empty frame; costs are compile-time, so do not charge *)
    let saved = ctx.charging in
    ctx.charging <- false;
    let frame = { proc = in_proc; vars = Hashtbl.create 1 } in
    let v = eval_expr ctx frame init in
    ctx.charging <- saved;
    let v =
      match info.v_base, v with
      | Ast.Treal k, _ -> Value.Vreal (Fp32.of_kind k (as_float v), k)
      | Ast.Tinteger, _ -> Value.Vint (as_int v)
      | Ast.Tlogical, _ -> Value.Vlog (as_bool v)
    in
    Hashtbl.replace ctx.params key v;
    v

and resolve ctx frame name : [ `Cell of Value.cell | `Param of Value.v ] =
  match Hashtbl.find_opt frame.vars name with
  | Some cell -> `Cell cell
  | None -> (
    match Symtab.lookup_var ctx.st ~in_proc:frame.proc name with
    | None -> trap "undeclared variable %s" name
    | Some info ->
      if info.v_parameter then `Param (param_value ctx info)
      else (
        match info.v_scope with
        | Symtab.Unit_scope u -> (
          match Hashtbl.find_opt ctx.globals (global_key u name) with
          | Some cell -> `Cell cell
          | None -> trap "global %s.%s not allocated" u name)
        | Symtab.Proc_scope p ->
          trap "variable %s local to %s referenced out of scope" name p))

and scalar_ref ctx frame name =
  match resolve ctx frame name with
  | `Cell (Value.Scalar r) -> r
  | `Cell (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
    trap "array %s used as a scalar" name
  | `Param _ -> trap "parameter %s cannot be assigned" name

and eval_expr ctx frame (e : Ast.expr) : Value.v =
  match e with
  | Ast.Int_lit i -> Value.Vint i
  | Ast.Real_lit { value; kind; _ } -> Value.Vreal (Fp32.of_kind kind value, kind)
  | Ast.Logical_lit b -> Value.Vlog b
  | Ast.Str_lit s -> Value.Vstr s
  | Ast.Var name -> (
    match resolve ctx frame name with
    | `Param v -> v
    | `Cell (Value.Scalar r) -> !r
    | `Cell (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
      trap "whole array %s used as a value" name)
  | Ast.Unop (Ast.Neg, e1) -> (
    match eval_expr ctx frame e1 with
    | Value.Vint i ->
      charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
      Value.Vint (-i)
    | Value.Vreal (x, k) ->
      charge ctx Machine.Cat_flops (Machine.op_cost ctx.machine ~lanes:(lanes_of ctx k) k Ast.Sub);
      mk_real k (-.x)
    | Value.Vlog _ | Value.Vstr _ -> trap "negation of non-numeric value")
  | Ast.Unop (Ast.Not, e1) -> Value.Vlog (not (as_bool (eval_expr ctx frame e1)))
  | Ast.Binop (op, a, b) -> eval_binop ctx frame op a b
  | Ast.Index (name, args) -> (
    (* array element, intrinsic, or user function *)
    match Hashtbl.find_opt frame.vars name with
    | Some cell -> array_load ctx frame name cell args
    | None -> (
      match Symtab.lookup_var ctx.st ~in_proc:frame.proc name with
      | Some info when info.v_dims <> [] -> (
        match resolve ctx frame name with
        | `Cell cell -> array_load ctx frame name cell args
        | `Param _ -> trap "array parameter %s unsupported" name)
      | Some _ -> trap "scalar %s subscripted" name
      | None ->
        if Builtins.is_intrinsic_function name then eval_intrinsic ctx frame name args
        else
          (* user function call *)
          (match call_user ctx frame name args with
          | Some v -> v
          | None -> trap "subroutine %s called as a function" name)))

and eval_binop ctx frame op a b =
  match op with
  | Ast.And ->
    (* short-circuit; Fortran does not specify, but it is safe here *)
    if as_bool (eval_expr ctx frame a) then Value.Vlog (as_bool (eval_expr ctx frame b))
    else Value.Vlog false
  | Ast.Or ->
    if as_bool (eval_expr ctx frame a) then Value.Vlog true
    else Value.Vlog (as_bool (eval_expr ctx frame b))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt
  | Ast.Ge ->
    let va = eval_expr ctx frame a in
    let vb = eval_expr ctx frame b in
    let ka = value_kind va in
    let kb = value_kind vb in
    (* casting overhead: mixing real kinds where neither side is a literal
       (literal conversions fold at compile time) *)
    (match ka, kb with
    | Some k1, Some k2 when k1 <> k2 ->
      if not (is_real_literal a || is_real_literal b) then
        charge ctx Machine.Cat_convert (Machine.convert_cost ctx.machine ~lanes:(conv_lanes ctx))
    | _ -> ());
    (match va, vb, op with
    | Value.Vint x, Value.Vint y, (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow) ->
      charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
      Value.Vint
        (match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Div -> if y = 0 then trap "integer division by zero" else x / y
        | Ast.Pow ->
          if y < 0 then trap "negative integer exponent"
          else begin
            let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
            pow 1 y
          end
        | _ -> assert false)
    | _, _, (Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) ->
      let k = match promote_kind ka kb with Some k -> k | None -> trap "numeric operands expected" in
      charge ctx Machine.Cat_flops (Machine.op_cost ctx.machine ~lanes:(lanes_of ctx k) k op);
      let x = as_float va and y = as_float vb in
      mk_real k
        (match op with
        | Ast.Add -> x +. y
        | Ast.Sub -> x -. y
        | Ast.Mul -> x *. y
        | Ast.Div -> x /. y
        | _ -> assert false)
    | _, _, Ast.Pow -> (
      let k = match promote_kind ka kb with Some k -> k | None -> trap "numeric operands expected" in
      let x = as_float va in
      match vb with
      | Value.Vint n when abs n <= 4 ->
        (* strength-reduced small integer powers *)
        charge ctx Machine.Cat_flops (Machine.op_cost ctx.machine ~lanes:(lanes_of ctx k) k Ast.Mul *. float_of_int (max 1 (abs n - 1)));
        let rec pow acc i = if i = 0 then acc else pow (acc *. x) (i - 1) in
        let v = pow 1.0 (abs n) in
        mk_real k (if n < 0 then 1.0 /. v else v)
      | _ ->
        charge ctx Machine.Cat_flops (Machine.op_cost ctx.machine ~lanes:(lanes_of ctx k) k Ast.Pow);
        mk_real k (Float.pow x (as_float vb)))
    | _, _, (Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) ->
      charge ctx Machine.Cat_flops ctx.machine.Machine.compare_cost;
      (match va, vb with
      | Value.Vlog x, Value.Vlog y ->
        Value.Vlog (match op with Ast.Eq -> x = y | Ast.Ne -> x <> y | _ -> trap "ordering of logicals")
      | _ ->
        let x = as_float va and y = as_float vb in
        Value.Vlog
          (match op with
          | Ast.Eq -> x = y
          | Ast.Ne -> x <> y
          | Ast.Lt -> x < y
          | Ast.Le -> x <= y
          | Ast.Gt -> x > y
          | Ast.Ge -> x >= y
          | _ -> assert false))
    | _, _, (Ast.And | Ast.Or) -> assert false)

and eval_indices ctx frame args =
  List.map
    (fun a ->
      charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
      as_int (eval_expr ctx frame a))
    args

and array_load ctx frame name cell args =
  let indices = eval_indices ctx frame args in
  match cell with
  | Value.Real_array { kind; data; dims } ->
    charge ctx Machine.Cat_memory (Machine.mem_cost ctx.machine ~lanes:(lanes_of ctx kind) kind);
    Value.Vreal (data.(Value.offset ~name ~dims indices), kind)
  | Value.Int_array { data; dims } ->
    charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
    Value.Vint (data.(Value.offset ~name ~dims indices))
  | Value.Log_array { data; dims } -> Value.Vlog (data.(Value.offset ~name ~dims indices))
  | Value.Scalar _ -> trap "scalar %s subscripted" name

and array_store ctx frame name cell args v rhs_expr =
  let indices = eval_indices ctx frame args in
  match cell with
  | Value.Real_array { kind; data; dims } ->
    charge ctx Machine.Cat_memory (Machine.mem_cost ctx.machine ~lanes:(lanes_of ctx kind) kind);
    (match value_kind v with
    | Some k when k <> kind ->
      if not (is_real_literal rhs_expr) then
        charge ctx Machine.Cat_convert (Machine.convert_cost ctx.machine ~lanes:(conv_lanes ctx))
    | _ -> ());
    let x = Fp32.of_kind kind (as_float v) in
    if not (Float.is_finite x) then
      trap "non-finite value stored to %s (real(kind=%d))" name (Token.int_of_kind kind);
    data.(Value.offset ~name ~dims indices) <- x
  | Value.Int_array { data; dims } ->
    charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
    data.(Value.offset ~name ~dims indices) <- as_int v
  | Value.Log_array { data; dims } -> data.(Value.offset ~name ~dims indices) <- as_bool v
  | Value.Scalar _ -> trap "scalar %s subscripted" name

and scalar_store ctx r v ~rhs_expr ~name =
  ignore name;
  match !r, v with
  | Value.Vreal (_, k), _ ->
    (match value_kind v with
    | Some k2 when k2 <> k ->
      if not (is_real_literal rhs_expr) then
        charge ctx Machine.Cat_convert (Machine.convert_cost ctx.machine ~lanes:(conv_lanes ctx))
    | _ -> ());
    let x = Fp32.of_kind k (as_float v) in
    if not (Float.is_finite x) then
      trap "non-finite value stored to real(kind=%d) scalar" (Token.int_of_kind k);
    r := Value.Vreal (x, k)
  | Value.Vint _, _ -> r := Value.Vint (as_int v)
  | Value.Vlog _, _ -> r := Value.Vlog (as_bool v)
  | Value.Vstr _, _ -> r := v

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                          *)

and eval_intrinsic ctx frame name args =
  let unary () =
    match args with
    | [ a ] -> eval_expr ctx frame a
    | _ -> trap "intrinsic %s expects one argument" name
  in
  let charge_elemental k = charge ctx Machine.Cat_flops (Machine.intrinsic_cost ctx.machine ~lanes:(lanes_of ctx k) k name) in
  match name with
  | "abs" -> (
    match unary () with
    | Value.Vint i ->
      charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
      Value.Vint (abs i)
    | Value.Vreal (x, k) ->
      charge_elemental k;
      mk_real k (Float.abs x)
    | Value.Vlog _ | Value.Vstr _ -> trap "abs of non-numeric value")
  | "sqrt" | "exp" | "log" | "log10" | "sin" | "cos" | "tan" | "atan" | "asin" | "acos"
  | "sinh" | "cosh" | "tanh" | "aint" | "anint" -> (
    match unary () with
    | Value.Vreal (x, k) ->
      charge_elemental k;
      let f =
        match name with
        | "sqrt" -> sqrt
        | "exp" -> exp
        | "log" -> log
        | "log10" -> log10
        | "sin" -> sin
        | "cos" -> cos
        | "tan" -> tan
        | "atan" -> atan
        | "asin" -> asin
        | "acos" -> acos
        | "sinh" -> sinh
        | "cosh" -> cosh
        | "tanh" -> tanh
        | "aint" -> Float.trunc
        | "anint" -> Float.round
        | _ -> assert false
      in
      mk_real k (f x)
    | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> trap "%s of non-real value" name)
  | "min" | "max" ->
    let vs = List.map (eval_expr ctx frame) args in
    if List.length vs < 2 then trap "%s needs at least two arguments" name;
    let kind = List.fold_left (fun acc v -> promote_kind acc (value_kind v)) None vs in
    (match kind with
    | None ->
      charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
      let ints = List.map as_int vs in
      Value.Vint (List.fold_left (if name = "min" then min else max) (List.hd ints) (List.tl ints))
    | Some k ->
      charge_elemental k;
      let fs = List.map as_float vs in
      let f = List.fold_left (if name = "min" then Float.min else Float.max) (List.hd fs) (List.tl fs) in
      mk_real k f)
  | "mod" -> (
    match args with
    | [ a; b ] -> (
      let va = eval_expr ctx frame a in
      let vb = eval_expr ctx frame b in
      match va, vb with
      | Value.Vint x, Value.Vint y ->
        charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
        if y = 0 then trap "mod with zero divisor" else Value.Vint (x - (x / y * y))
      | _ ->
        let k = match promote_kind (value_kind va) (value_kind vb) with Some k -> k | None -> trap "mod of non-numeric" in
        charge ctx Machine.Cat_flops (Machine.op_cost ctx.machine ~lanes:(lanes_of ctx k) k Ast.Div);
        let x = as_float va and y = as_float vb in
        mk_real k (Float.rem x y))
    | _ -> trap "mod expects two arguments")
  | "atan2" -> (
    match args with
    | [ a; b ] -> (
      let va = eval_expr ctx frame a in
      let vb = eval_expr ctx frame b in
      match promote_kind (value_kind va) (value_kind vb) with
      | Some k ->
        charge_elemental k;
        mk_real k (Float.atan2 (as_float va) (as_float vb))
      | None -> trap "atan2 of non-real values")
    | _ -> trap "atan2 expects two arguments")
  | "sign" -> (
    match args with
    | [ a; b ] ->
      let x = eval_expr ctx frame a in
      let y = eval_expr ctx frame b in
      (match promote_kind (value_kind x) (value_kind y) with
      | Some k ->
        charge_elemental k;
        let m = Float.abs (as_float x) in
        mk_real k (if as_float y >= 0.0 then m else -.m)
      | None ->
        charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
        let m = abs (as_int x) in
        Value.Vint (if as_int y >= 0 then m else -m))
    | _ -> trap "sign expects two arguments")
  | "real" -> (
    match args with
    | [ a ] ->
      let v = eval_expr ctx frame a in
      (match value_kind v with
      | Some Ast.K4 | None -> ()
      | Some Ast.K8 -> charge ctx Machine.Cat_convert (Machine.convert_cost ctx.machine ~lanes:(conv_lanes ctx)));
      Value.Vreal (Fp32.round (as_float v), Ast.K4)
    | [ a; Ast.Int_lit k ] -> (
      let v = eval_expr ctx frame a in
      match Token.kind_of_int k with
      | Some kk ->
        if value_kind v <> Some kk && value_kind v <> None then
          charge ctx Machine.Cat_convert (Machine.convert_cost ctx.machine ~lanes:(conv_lanes ctx));
        Value.Vreal (Fp32.of_kind kk (as_float v), kk)
      | None -> trap "real(): unsupported kind %d" k)
    | _ -> trap "real() expects (x) or (x, kind)")
  | "dble" ->
    let v = unary () in
    if value_kind v = Some Ast.K4 then charge ctx Machine.Cat_convert (Machine.convert_cost ctx.machine ~lanes:(conv_lanes ctx));
    Value.Vreal (as_float v, Ast.K8)
  | "int" ->
    charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
    Value.Vint (int_of_float (as_float (unary ())))
  | "nint" ->
    charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
    Value.Vint (int_of_float (Float.round (as_float (unary ()))))
  | "floor" ->
    charge ctx Machine.Cat_flops ctx.machine.Machine.int_op;
    Value.Vint (int_of_float (Float.floor (as_float (unary ()))))
  | "dot_product" -> (
    match args with
    | [ Ast.Var a; Ast.Var b ] -> (
      match resolve ctx frame a, resolve ctx frame b with
      | ( `Cell (Value.Real_array { kind = ka; data = da; _ }),
          `Cell (Value.Real_array { kind = kb; data = db; _ }) ) ->
        let n = min (Array.length da) (Array.length db) in
        let kind = if ka = Ast.K8 || kb = Ast.K8 then Ast.K8 else Ast.K4 in
        let l = Machine.lanes ctx.machine kind in
        charge ctx Machine.Cat_flops
          (2.0 *. float_of_int n *. Machine.op_cost ctx.machine ~lanes:l kind Ast.Add);
        charge ctx Machine.Cat_memory
          (2.0 *. float_of_int n *. Machine.mem_cost ctx.machine ~lanes:l kind);
        let s = ref 0.0 in
        for i = 0 to n - 1 do
          s := Fp32.of_kind kind (!s +. Fp32.of_kind kind (da.(i) *. db.(i)))
        done;
        mk_real kind !s
      | _ -> trap "dot_product expects two real arrays")
    | _ -> trap "dot_product expects two whole-array arguments")
  | "sum" | "maxval" | "minval" -> (
    match args with
    | [ Ast.Var arr ] -> (
      match resolve ctx frame arr with
      | `Cell (Value.Real_array { kind; data; _ }) ->
        let n = Array.length data in
        (* library reductions vectorize internally *)
        let l = Machine.lanes ctx.machine kind in
        charge ctx Machine.Cat_flops
          (float_of_int n *. Machine.op_cost ctx.machine ~lanes:l kind Ast.Add);
        charge ctx Machine.Cat_memory
          (float_of_int n *. Machine.mem_cost ctx.machine ~lanes:l kind);
        (match name with
        | "sum" ->
          let s = ref 0.0 in
          Array.iter (fun x -> s := Fp32.of_kind kind (!s +. x)) data;
          mk_real kind !s
        | "maxval" ->
          if n = 0 then trap "maxval of empty array"
          else mk_real kind (Array.fold_left Float.max data.(0) data)
        | "minval" ->
          if n = 0 then trap "minval of empty array"
          else mk_real kind (Array.fold_left Float.min data.(0) data)
        | _ -> assert false)
      | `Cell (Value.Int_array { data; _ }) ->
        charge ctx Machine.Cat_flops (float_of_int (Array.length data) *. ctx.machine.Machine.int_op);
        (match name with
        | "sum" -> Value.Vint (Array.fold_left ( + ) 0 data)
        | "maxval" -> Value.Vint (Array.fold_left max min_int data)
        | "minval" -> Value.Vint (Array.fold_left min max_int data)
        | _ -> assert false)
      | `Cell (Value.Scalar _ | Value.Log_array _) | `Param _ -> trap "%s of non-array" name)
    | _ -> trap "%s expects a whole-array argument" name)
  | "size" -> (
    match args with
    | [ Ast.Var arr ] -> (
      match resolve ctx frame arr with
      | `Cell (Value.Real_array { dims; _ }) -> Value.Vint (Value.elements dims)
      | `Cell (Value.Int_array { dims; _ }) -> Value.Vint (Value.elements dims)
      | `Cell (Value.Log_array { dims; _ }) -> Value.Vint (Value.elements dims)
      | `Cell (Value.Scalar _) | `Param _ -> trap "size of non-array")
    | [ Ast.Var arr; d ] -> (
      let dim = as_int (eval_expr ctx frame d) in
      match resolve ctx frame arr with
      | `Cell (Value.Real_array { dims; _ })
      | `Cell (Value.Int_array { dims; _ })
      | `Cell (Value.Log_array { dims; _ }) ->
        if dim >= 1 && dim <= Array.length dims then Value.Vint dims.(dim - 1)
        else trap "size: dimension %d out of range" dim
      | `Cell (Value.Scalar _) | `Param _ -> trap "size of non-array")
    | _ -> trap "size expects an array argument")
  | "epsilon" | "huge" | "tiny" -> (
    match unary () with
    | Value.Vreal (_, k) ->
      let v =
        match name, k with
        | "epsilon", Ast.K8 -> epsilon_float
        | "epsilon", Ast.K4 -> 1.1920928955078125e-07
        | "huge", Ast.K8 -> max_float
        | "huge", Ast.K4 -> Fp32.max_finite
        | "tiny", Ast.K8 -> min_float
        | "tiny", Ast.K4 -> Fp32.min_positive_normal
        | _ -> assert false
      in
      Value.Vreal (v, k)
    | Value.Vint _ | Value.Vlog _ | Value.Vstr _ -> trap "%s of non-real value" name)
  | _ -> trap "unknown intrinsic %s" name

(* ------------------------------------------------------------------ *)
(* Procedure calls                                                     *)

and call_user ctx frame name arg_exprs : Value.v option =
  let p =
    match Symtab.find_proc ctx.st name with
    | Some p -> p
    | None -> trap "unknown procedure %s" name
  in
  ctx.depth <- ctx.depth + 1;
  if ctx.depth > 200 then trap "call depth limit exceeded at %s" name;
  check_budget ctx;
  if List.length arg_exprs <> List.length p.Ast.params then
    trap "procedure %s expects %d arguments, got %d" name (List.length p.Ast.params)
      (List.length arg_exprs);
  let callee_frame = { proc = Some name; vars = Hashtbl.create 16 } in
  (* Bind dummies; returns the copy-out list. *)
  let uniform = ref true in
  let copy_out = ref [] in
  List.iter2
    (fun dummy actual ->
      let dinfo =
        match Symtab.lookup_var ctx.st ~in_proc:(Some name) dummy with
        | Some i -> i
        | None -> trap "dummy %s of %s undeclared" dummy name
      in
      if dinfo.v_dims <> [] then begin
        (* whole-array association: share the cell *)
        match actual with
        | Ast.Var a -> (
          match resolve ctx frame a with
          | `Cell (Value.Real_array { kind; _ } as cell) -> (
            match dinfo.v_base with
            | Ast.Treal dk when dk = kind -> Hashtbl.replace callee_frame.vars dummy cell
            | Ast.Treal dk ->
              trap
                "argument %s of %s: real(kind=%d) array passed to real(kind=%d) dummy %s — \
                 wrapper required"
                a name (Token.int_of_kind kind) (Token.int_of_kind dk) dummy
            | Ast.Tinteger | Ast.Tlogical -> trap "array type mismatch for %s of %s" dummy name)
          | `Cell (Value.Int_array _ as cell) -> (
            match dinfo.v_base with
            | Ast.Tinteger -> Hashtbl.replace callee_frame.vars dummy cell
            | Ast.Treal _ | Ast.Tlogical -> trap "array type mismatch for %s of %s" dummy name)
          | `Cell (Value.Log_array _ as cell) -> (
            match dinfo.v_base with
            | Ast.Tlogical -> Hashtbl.replace callee_frame.vars dummy cell
            | Ast.Treal _ | Ast.Tinteger -> trap "array type mismatch for %s of %s" dummy name)
          | `Cell (Value.Scalar _) -> trap "scalar %s passed to array dummy %s of %s" a dummy name
          | `Param _ -> trap "parameter %s passed to array dummy" a)
        | _ -> trap "array dummy %s of %s requires a whole-array actual argument" dummy name
      end
      else begin
        (* scalar dummy *)
        match actual, dinfo.v_base with
        | Ast.Var a, _ -> (
          match resolve ctx frame a with
          | `Cell (Value.Scalar r as cell) -> (
            match !r, dinfo.v_base with
            | Value.Vreal (_, ak), Ast.Treal dk ->
              if ak = dk then Hashtbl.replace callee_frame.vars dummy cell
              else begin
                uniform := false;
                trap
                  "argument %s of %s: real(kind=%d) passed to real(kind=%d) dummy %s — wrapper \
                   required"
                  a name (Token.int_of_kind ak) (Token.int_of_kind dk) dummy
              end
            | Value.Vint _, Ast.Tinteger | Value.Vlog _, Ast.Tlogical ->
              Hashtbl.replace callee_frame.vars dummy cell
            | _ -> trap "type mismatch binding %s to dummy %s of %s" a dummy name)
          | `Param v -> bind_by_value ctx callee_frame ~callee:name ~dummy ~dinfo ~actual v uniform
          | `Cell (Value.Real_array _ | Value.Int_array _ | Value.Log_array _) ->
            trap "array %s passed to scalar dummy %s of %s" a dummy name)
        | _, _ ->
          let v = eval_expr ctx frame actual in
          bind_by_value ctx callee_frame ~callee:name ~dummy ~dinfo ~actual v uniform;
          (* copy-out for array-element actuals when the dummy may write *)
          (match actual, dinfo.v_intent with
          | Ast.Index (arr_name, idx), (Some Ast.Out | Some Ast.Inout | None) -> (
            match Symtab.lookup_var ctx.st ~in_proc:frame.proc arr_name with
            | Some { v_dims = _ :: _; v_parameter = false; _ } ->
              copy_out := (arr_name, idx, dummy) :: !copy_out
            | Some _ | None -> ())
          | _ -> ())
      end)
    p.Ast.params arg_exprs;
  (* allocate locals (non-dummy, non-parameter) *)
  List.iter
    (fun (info : Symtab.var_info) ->
      if (not (Hashtbl.mem callee_frame.vars info.v_name)) && not info.v_parameter then begin
        let extents =
          List.map (fun d -> as_int (eval_expr ctx callee_frame d)) info.v_dims
        in
        Hashtbl.replace callee_frame.vars info.v_name (alloc_cell info.v_base extents)
      end)
    (Symtab.vars_of_scope ctx.st (Symtab.Proc_scope name));
  (* run declaration initializers *)
  List.iter
    (fun (info : Symtab.var_info) ->
      match info.v_init with
      | Some e when not info.v_parameter ->
        let v = eval_expr ctx callee_frame e in
        (match Hashtbl.find_opt callee_frame.vars info.v_name with
        | Some (Value.Scalar r) -> scalar_store ctx r v ~rhs_expr:e ~name:info.v_name
        | Some _ | None -> trap "initializer on array %s unsupported" info.v_name)
      | Some _ | None -> ())
    (Symtab.vars_of_scope ctx.st (Symtab.Proc_scope name));
  (* call cost: inlinable, kind-uniform calls are free; wrappers pay extra *)
  let is_wrapper = ctx.wrapper_owner name <> None in
  (* a call from inside a wrapper body is never inlined: the boundary
     conversions are exactly what defeated inlining of the original call
     (the paper's MPAS-A flux observation) *)
  let inl =
    (not is_wrapper) && (not ctx.in_wrapper) && !uniform
    && Option.value ~default:false (Hashtbl.find_opt ctx.inlinable name)
  in
  (* Wrappers do not get a timer of their own: their conversion cost lands
     on the procedure containing the call site, exactly where GPTL-style
     instrumentation inside the work routines would leave it. The wrapped
     callee still times itself when invoked from the wrapper body. Call
     overhead is charged after timer entry, so a non-inlined callee's
     per-call time includes its call cost — as a GPTL timer at function
     entry would report. *)
  if not is_wrapper then Timers.enter ctx.timers name ~now:ctx.cost;
  if not inl then begin
    charge ctx Machine.Cat_call ctx.machine.Machine.call_overhead;
    if is_wrapper then charge ctx Machine.Cat_call ctx.machine.Machine.wrapper_overhead
  end;
  let saved_vec = ctx.vec in
  let saved_in_wrapper = ctx.in_wrapper in
  if not inl then ctx.vec <- Vscalar;
  ctx.in_wrapper <- is_wrapper;
  let finish () =
    if not is_wrapper then Timers.exit_ ctx.timers ~now:ctx.cost;
    ctx.vec <- saved_vec;
    ctx.in_wrapper <- saved_in_wrapper;
    ctx.depth <- ctx.depth - 1
  in
  (match exec_block ctx callee_frame p.Ast.proc_body with
  | () -> ()
  | exception Return_signal -> ()
  | exception e ->
    finish ();
    raise e);
  finish ();
  (* copy-out temporaries bound to array elements *)
  List.iter
    (fun (arr_name, idx, dummy) ->
      match Hashtbl.find_opt callee_frame.vars dummy with
      | Some (Value.Scalar r) -> (
        match resolve ctx frame arr_name with
        | `Cell cell -> array_store ctx frame arr_name cell idx !r (Ast.Var dummy)
        | `Param _ -> ())
      | Some _ | None -> ())
    !copy_out;
  match p.Ast.proc_kind with
  | Ast.Subroutine -> None
  | Ast.Function { result } -> (
    match Hashtbl.find_opt callee_frame.vars result with
    | Some (Value.Scalar r) -> Some !r
    | Some _ -> trap "array-valued function %s unsupported" name
    | None -> trap "function %s has no result cell" name)

and bind_by_value ctx callee_frame ~callee ~dummy ~dinfo ~actual v uniform =
  ignore ctx;
  match dinfo.Symtab.v_base, v with
  | Ast.Treal dk, Value.Vreal (_, ak) ->
    if ak <> dk then begin
      uniform := false;
      if is_real_literal actual then begin
        (* literal kind conversions fold at compile time *)
        uniform := true;
        Hashtbl.replace callee_frame.vars dummy
          (Value.Scalar (ref (Value.Vreal (Fp32.of_kind dk (as_float v), dk))))
      end
      else
        trap
          "argument %d-ish of %s: real(kind=%d) value passed to real(kind=%d) dummy %s — \
           wrapper required"
          0 callee (Token.int_of_kind ak) (Token.int_of_kind dk) dummy
    end
    else Hashtbl.replace callee_frame.vars dummy (Value.Scalar (ref v))
  | Ast.Treal dk, Value.Vint i ->
    Hashtbl.replace callee_frame.vars dummy
      (Value.Scalar (ref (Value.Vreal (Fp32.of_kind dk (float_of_int i), dk))))
  | Ast.Tinteger, Value.Vint _ | Ast.Tlogical, Value.Vlog _ ->
    Hashtbl.replace callee_frame.vars dummy (Value.Scalar (ref v))
  | _ -> trap "type mismatch binding value to dummy %s of %s" dummy callee

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and exec_block ctx frame blk = List.iter (exec_stmt ctx frame) blk

and exec_stmt ctx frame (s : Ast.stmt) =
  match s.node with
  | Ast.Assign (lhs, rhs) -> (
    let v = eval_expr ctx frame rhs in
    match lhs with
    | Ast.Lvar name -> (
      match resolve ctx frame name with
      | `Cell (Value.Scalar r) -> scalar_store ctx r v ~rhs_expr:rhs ~name
      | `Cell _ -> trap "assignment to whole array %s unsupported" name
      | `Param _ -> trap "assignment to parameter %s" name)
    | Ast.Lindex (name, idx) -> (
      match resolve ctx frame name with
      | `Cell cell -> array_store ctx frame name cell idx v rhs
      | `Param _ -> trap "assignment to parameter %s" name))
  | Ast.Call (name, args) ->
    if Builtins.is_intrinsic_subroutine name then exec_builtin_call ctx frame name args
    else ignore (call_user ctx frame name args)
  | Ast.If (arms, els) ->
    let rec go = function
      | [] -> exec_block ctx frame els
      | (cond, blk) :: rest ->
        if as_bool (eval_expr ctx frame cond) then exec_block ctx frame blk else go rest
    in
    go arms
  | Ast.Do { id; var; from_; to_; step; body } ->
    let r = scalar_ref ctx frame var in
    let lo = as_int (eval_expr ctx frame from_) in
    let hi = as_int (eval_expr ctx frame to_) in
    let stp = match step with Some e -> as_int (eval_expr ctx frame e) | None -> 1 in
    if stp = 0 then trap "do loop with zero step";
    let vec_here = Option.value ~default:Vscalar (Hashtbl.find_opt ctx.vec_ok id) in
    let saved_vec = ctx.vec in
    ctx.vec <- vec_here;
    let iter_overhead =
      match vec_here with
      | Vscalar -> ctx.machine.Machine.loop_overhead
      | Vnarrow | Vfull ->
        ctx.machine.Machine.loop_overhead /. float_of_int ctx.machine.Machine.lanes_f64
    in
    let restore () = ctx.vec <- saved_vec in
    (try
       let i = ref lo in
       while (stp > 0 && !i <= hi) || (stp < 0 && !i >= hi) do
         r := Value.Vint !i;
         charge ctx Machine.Cat_loop iter_overhead;
         check_budget ctx;
         (try exec_block ctx frame body with Cycle_signal -> ());
         i := !i + stp
       done
     with
    | Exit_signal -> ()
    | e ->
      restore ();
      raise e);
    restore ()
  | Ast.Do_while { cond; body; _ } ->
    (try
       while as_bool (eval_expr ctx frame cond) do
         charge ctx Machine.Cat_loop ctx.machine.Machine.loop_overhead;
         check_budget ctx;
         try exec_block ctx frame body with Cycle_signal -> ()
       done
     with Exit_signal -> ())
  | Ast.Select { selector; arms; default } ->
    let sel = eval_expr ctx frame selector in
    charge ctx Machine.Cat_flops ctx.machine.Machine.compare_cost;
    let matches item =
      match item, sel with
      | Ast.Case_value v, _ -> (
        match eval_expr ctx frame v, sel with
        | Value.Vint a, Value.Vint b -> a = b
        | Value.Vlog a, Value.Vlog b -> a = b
        | _ -> trap "case value incompatible with selector")
      | Ast.Case_range (lo, hi), Value.Vint x ->
        let above =
          match lo with Some e -> x >= as_int (eval_expr ctx frame e) | None -> true
        in
        let below =
          match hi with Some e -> x <= as_int (eval_expr ctx frame e) | None -> true
        in
        above && below
      | Ast.Case_range _, _ -> trap "case range requires an integer selector"
    in
    let rec go = function
      | [] -> exec_block ctx frame default
      | (items, blk) :: rest ->
        if List.exists matches items then exec_block ctx frame blk else go rest
    in
    go arms
  | Ast.Exit_stmt -> raise Exit_signal
  | Ast.Cycle_stmt -> raise Cycle_signal
  | Ast.Return_stmt -> raise Return_signal
  | Ast.Stop_stmt m -> raise (Stop_signal (Option.value ~default:"" m))
  | Ast.Print_stmt args ->
    let vs = List.map (fun a -> (a, eval_expr ctx frame a)) args in
    let line = String.concat " " (List.map (fun (_, v) -> Value.to_string v) vs) in
    ctx.printed <- line :: ctx.printed;
    (match vs with
    | (_, Value.Vstr key) :: rest ->
      List.iter
        (fun (_, v) ->
          match v with
          | Value.Vreal (x, _) -> ctx.records <- (key, x) :: ctx.records
          | Value.Vint i -> ctx.records <- (key, float_of_int i) :: ctx.records
          | Value.Vlog _ | Value.Vstr _ -> ())
        rest
    | _ -> ())

and exec_builtin_call ctx frame name args =
  match name, args with
  | "mpi_allreduce", [ send; Ast.Var recv; Ast.Str_lit op ] ->
    let v = eval_expr ctx frame send in
    charge ctx Machine.Cat_reduction ctx.machine.Machine.allreduce;
    (* single-rank semantics: the reduction of one contribution *)
    (match op with
    | "sum" | "max" | "min" -> ()
    | _ -> trap "mpi_allreduce: unknown op %s" op);
    let r = scalar_ref ctx frame recv in
    scalar_store ctx r v ~rhs_expr:send ~name:recv
  | "mpi_allreduce", _ -> trap "mpi_allreduce expects (send, recv, 'op')"
  | "mpi_barrier", [] -> charge ctx Machine.Cat_reduction (ctx.machine.Machine.allreduce /. 2.0)
  | "mpi_barrier", _ -> trap "mpi_barrier takes no arguments"
  | _, _ -> trap "unknown builtin subroutine %s" name

(* ------------------------------------------------------------------ *)
(* Program entry                                                       *)

let prepare_globals ctx =
  let prog = Symtab.program ctx.st in
  List.iter
    (fun u ->
      let uname = Ast.unit_name u in
      List.iter
        (fun (info : Symtab.var_info) ->
          if not info.v_parameter then begin
            let extents =
              List.map
                (fun d ->
                  match Typecheck.static_int ctx.st ~in_proc:None d with
                  | Some n -> n
                  | None -> trap "module array %s.%s has non-constant extent" uname info.v_name)
                info.v_dims
            in
            Hashtbl.replace ctx.globals (global_key uname info.v_name)
              (alloc_cell info.v_base extents)
          end)
        (Symtab.vars_of_scope ctx.st (Symtab.Unit_scope uname)))
    prog;
  (* run module-level initializers *)
  List.iter
    (fun u ->
      let uname = Ast.unit_name u in
      List.iter
        (fun (info : Symtab.var_info) ->
          match info.v_init with
          | Some e when not info.v_parameter -> (
            let frame = { proc = None; vars = Hashtbl.create 1 } in
            let v = eval_expr ctx frame e in
            match Hashtbl.find_opt ctx.globals (global_key uname info.v_name) with
            | Some (Value.Scalar r) -> scalar_store ctx r v ~rhs_expr:e ~name:info.v_name
            | Some _ | None -> trap "initializer on module array %s unsupported" info.v_name)
          | Some _ | None -> ())
        (Symtab.vars_of_scope ctx.st (Symtab.Unit_scope uname)))
    prog

let run ?(machine = Machine.default) ?budget ?loop_reports ?(wrapper_owner = fun _ -> None) st =
  let reports =
    match loop_reports with
    | Some r -> r
    | None -> Analysis.Vectorize.analyze ~inline_stmt_limit:machine.Machine.inline_stmt_limit st
  in
  let vec_ok = Hashtbl.create 32 in
  List.iter
    (fun (r : Analysis.Vectorize.report) ->
      let ratio =
        (* a loop that only converts (e.g. a wrapper copy loop) has nothing
           to amortize the packed converts against: treat as all-conversion *)
        if r.Analysis.Vectorize.fp_ops = 0 then
          if r.Analysis.Vectorize.conv_sites > 0 then infinity else 0.0
        else float_of_int r.Analysis.Vectorize.conv_sites /. float_of_int r.Analysis.Vectorize.fp_ops
      in
      let mode =
        if not (Analysis.Vectorize.vectorizable r) then Vscalar
        else if ratio > machine.Machine.conv_ratio_threshold then Vscalar
        else if ratio > 0.0 then Vnarrow
        else Vfull
      in
      Hashtbl.replace vec_ok r.Analysis.Vectorize.loop_id mode)
    reports;
  let inlinable = Hashtbl.create 32 in
  List.iter
    (fun name ->
      match Symtab.find_proc st name with
      | Some p ->
        Hashtbl.replace inlinable name
          (Analysis.Vectorize.inlinable st ~inline_stmt_limit:machine.Machine.inline_stmt_limit p)
      | None -> ())
    (Symtab.all_proc_names st);
  let ctx =
    {
      st;
      machine;
      timers = Timers.create ();
      cost = 0.0;
      budget;
      vec_ok;
      wrapper_owner;
      globals = Hashtbl.create 64;
      params = Hashtbl.create 64;
      inlinable;
      vec = Vscalar;
      records = [];
      printed = [];
      depth = 0;
      charging = true;
      in_wrapper = false;
      breakdown = Array.make (List.length Machine.categories) 0.0;
    }
  in
  let status =
    match
      prepare_globals ctx;
      match Ast.main_of (Symtab.program st) with
      | None -> trap "program has no main unit"
      | Some m ->
        let frame = { proc = None; vars = Hashtbl.create 16 } in
        ignore m.Ast.main_name;
        Timers.enter ctx.timers "<main>" ~now:ctx.cost;
        (try exec_block ctx frame m.Ast.main_body
         with e ->
           Timers.exit_ ctx.timers ~now:ctx.cost;
           raise e);
        Timers.exit_ ctx.timers ~now:ctx.cost
    with
    | () -> Finished
    | exception Stop_signal m -> Stopped m
    | exception Trap m -> Runtime_error m
    | exception Value.Bounds m -> Runtime_error m
    | exception Timeout_signal -> Timed_out
    | exception Return_signal -> Finished
    | exception Exit_signal -> Runtime_error "exit outside a loop"
    | exception Cycle_signal -> Runtime_error "cycle outside a loop"
  in
  {
    status;
    cost = ctx.cost;
    timers = Timers.snapshot ctx.timers;
    records = List.rev ctx.records;
    printed = List.rev ctx.printed;
    breakdown = List.mapi (fun i c -> (c, ctx.breakdown.(i))) Machine.categories;
  }

let series (outcome : outcome) key =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) outcome.records

let record_keys (outcome : outcome) =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (k, _) ->
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        Some k
      end)
    outcome.records

let casting_share (outcome : outcome) =
  if outcome.cost <= 0.0 then 0.0
  else
    match List.assoc_opt Machine.Cat_convert outcome.breakdown with
    | Some c -> c /. outcome.cost
    | None -> 0.0
