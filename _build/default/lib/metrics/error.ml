let rel_error ~baseline v =
  if Float.is_nan baseline || Float.is_nan v then infinity
  else if baseline = 0.0 then Float.abs v
  else Float.abs ((baseline -. v) /. baseline)

let l2 xs = sqrt (List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs)

let series_rel_error_l2 ~baseline variant =
  let nb = List.length baseline and nv = List.length variant in
  if nb = 0 then if nv = 0 then 0.0 else infinity
  else if nv < nb then infinity
  else begin
    let rec zip acc b v =
      match b, v with
      | [], _ -> List.rev acc
      | bx :: b', vx :: v' -> zip (rel_error ~baseline:bx vx :: acc) b' v'
      | _ :: _, [] -> List.rev acc
    in
    l2 (zip [] baseline variant)
  end

let within ~threshold e = (not (Float.is_nan e)) && e <= threshold
