(** Small-dimension ordinary least squares.

    Solves the normal equations by Gaussian elimination with partial
    pivoting — adequate for the handful of features used by the variant
    performance predictor (the direction of Wang & Rubio-González [42],
    which the paper cites as the way to avoid evaluating bad variants). *)

type model = { weights : float array (* intercept first *) }

val fit : features:float array list -> targets:float list -> model option
(** [fit ~features ~targets] returns the least-squares linear model (with
    an implicit intercept term prepended and a tiny ridge term keeping
    constant/collinear features from breaking the solve), or [None] when
    the sample count is below the parameter count or the lengths are
    inconsistent. *)

val predict : model -> float array -> float

val r_squared : model -> features:float array list -> targets:float list -> float
(** Coefficient of determination on a (possibly held-out) sample; can be
    negative when the model is worse than predicting the mean. *)
