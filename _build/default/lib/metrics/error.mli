(** Correctness metrics (Sec. III-D).

    The paper's automated correctness check computes a scalar metric from
    each model's output time series and compares it to the 64-bit
    baseline via relative error [|(out_base - out_variant)/out_base|].
    Each model prints one metric value per time step (kinetic energy for
    MPAS-A, extreme surface elevation for ADCIRC, max CFL for MOM6); the
    per-step relative errors are collapsed with an L2 norm over time, as
    described in Sec. IV-A. *)

val rel_error : baseline:float -> float -> float
(** [|(b - v)/b|]; when [b = 0], [|v|]. NaN inputs yield [infinity] so a
    corrupt metric always fails any threshold. *)

val l2 : float list -> float
(** Euclidean norm. *)

val series_rel_error_l2 : baseline:float list -> float list -> float
(** Per-step relative errors, L2-collapsed over time. The series are
    compared up to the shorter length; a variant that produced {e fewer}
    steps than the baseline (e.g. it died mid-run) contributes [infinity]
    for each missing step. *)

val within : threshold:float -> float -> bool
(** [within ~threshold e] — the pass/fail test of Fig. 1. NaN fails. *)
