let of_times ~baseline ~variant =
  match baseline, variant with
  | _, [] | [], _ -> 0.0
  | _, _ ->
    let mv = Stats.median variant in
    if mv = 0.0 then 0.0 else Stats.median baseline /. mv

let choose_n ~rel_std = if rel_std < 0.05 then 1 else 7
