let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let median = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) ** 2.0) xs))

let rel_stddev xs =
  let m = mean xs in
  if m = 0.0 then 0.0 else stddev xs /. Float.abs m

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left Float.min x xs
let maximum = function [] -> 0.0 | x :: xs -> List.fold_left Float.max x xs

let percentile p = function
  | [] -> 0.0
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n = 1 then a.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let fraction_in pred = function
  | [] -> 0.0
  | xs ->
    float_of_int (List.length (List.filter pred xs)) /. float_of_int (List.length xs)
