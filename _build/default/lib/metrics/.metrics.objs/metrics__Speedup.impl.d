lib/metrics/speedup.ml: Stats
