lib/metrics/error.ml: Float List
