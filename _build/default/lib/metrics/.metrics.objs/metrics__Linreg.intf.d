lib/metrics/linreg.mli:
