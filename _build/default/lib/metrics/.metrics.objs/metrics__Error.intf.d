lib/metrics/error.mli:
