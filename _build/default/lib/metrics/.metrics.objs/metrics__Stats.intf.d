lib/metrics/stats.mli:
