lib/metrics/speedup.mli:
