lib/metrics/linreg.ml: Array Float List
