(** The noise-tolerant speedup metric of Eq. 1 (Sec. III-E):

    {v Speedup = median(T_base_1..n) / median(T_var_1..n) v}

    [n] is chosen from the observed relative standard deviation of a
    baseline ensemble ([n = 1] for MPAS-A/ADCIRC at 1 % rsd, [n = 7] for
    MOM6 at 9 % rsd in the paper). *)

val of_times : baseline:float list -> variant:float list -> float
(** Median-over-median speedup; [> 1] is improvement. Empty variant
    times yield [0.]. *)

val choose_n : rel_std:float -> int
(** The paper's heuristic: [1] when the baseline ensemble's relative
    standard deviation is below 5 %, [7] otherwise. *)
