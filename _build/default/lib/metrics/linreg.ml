type model = { weights : float array }

let with_intercept x =
  let n = Array.length x in
  let y = Array.make (n + 1) 1.0 in
  Array.blit x 0 y 1 n;
  y

(* Gaussian elimination with partial pivoting; [a] is destroyed. *)
let solve a b =
  let n = Array.length b in
  let singular = ref false in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if Float.abs a.(!piv).(col) < 1e-12 then singular := true
    else begin
      if !piv <> col then begin
        let t = a.(col) in
        a.(col) <- a.(!piv);
        a.(!piv) <- t;
        let t = b.(col) in
        b.(col) <- b.(!piv);
        b.(!piv) <- t
      end;
      for r = col + 1 to n - 1 do
        let f = a.(r).(col) /. a.(col).(col) in
        for c = col to n - 1 do
          a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
        done;
        b.(r) <- b.(r) -. (f *. b.(col))
      done
    end
  done;
  if !singular then None
  else begin
    let x = Array.make n 0.0 in
    for r = n - 1 downto 0 do
      let s = ref b.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (a.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. a.(r).(r)
    done;
    Some x
  end

let fit ~features ~targets =
  match features with
  | [] -> None
  | f0 :: _ ->
    let d = Array.length f0 + 1 in
    if List.length features <> List.length targets || List.length features < d then None
    else if List.exists (fun f -> Array.length f + 1 <> d) features then None
    else begin
      let xs = List.map with_intercept features in
      (* ridge-regularized normal equations: (X^T X + lambda I) w = X^T y;
         the tiny lambda keeps constant or collinear features from making
         the system singular without noticeably biasing the fit *)
      let lambda = 1e-6 in
      let xtx = Array.init d (fun i -> Array.init d (fun j -> if i = j then lambda else 0.0)) in
      let xty = Array.make d 0.0 in
      List.iter2
        (fun x y ->
          for i = 0 to d - 1 do
            for j = 0 to d - 1 do
              xtx.(i).(j) <- xtx.(i).(j) +. (x.(i) *. x.(j))
            done;
            xty.(i) <- xty.(i) +. (x.(i) *. y)
          done)
        xs targets;
      match solve xtx xty with
      | Some w -> Some { weights = w }
      | None -> None
    end

let predict m x =
  let xi = with_intercept x in
  let s = ref 0.0 in
  Array.iteri (fun i w -> s := !s +. (w *. xi.(i))) m.weights;
  !s

let r_squared m ~features ~targets =
  let n = List.length targets in
  if n = 0 then 0.0
  else begin
    let mean = List.fold_left ( +. ) 0.0 targets /. float_of_int n in
    let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.0)) 0.0 targets in
    let ss_res =
      List.fold_left2
        (fun acc x y ->
          let e = y -. predict m x in
          acc +. (e *. e))
        0.0 features targets
    in
    if ss_tot <= 0.0 then if ss_res <= 1e-18 then 1.0 else 0.0
    else 1.0 -. (ss_res /. ss_tot)
  end
