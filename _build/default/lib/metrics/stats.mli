(** Basic statistics over float lists. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val median : float list -> float
(** Median (average of central pair for even lengths); 0 on empty. *)

val stddev : float list -> float
(** Population standard deviation. *)

val rel_stddev : float list -> float
(** Standard deviation / |mean| — the paper's "relative standard
    deviation" used to choose Eq. 1's [n] (Sec. IV-A). 0 when the mean
    is 0. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,100], linear interpolation. *)

val fraction_in : (float -> bool) -> float list -> float
(** Fraction of elements satisfying the predicate; 0 on empty. Used by
    the experiment-validation checks ("most variants that are >90 %
    32-bit have ≥1.8× speedup"). *)
