type t = {
  mutable recs : Variant.record list;  (* reversed *)
  mutable n : int;
  cache : (string, Variant.measurement) Hashtbl.t;
  max_variants : int option;
}

exception Budget_exhausted

let create ?max_variants () = { recs = []; n = 0; cache = Hashtbl.create 64; max_variants }

let evaluate t ~f asg =
  let key = Transform.Assignment.signature asg in
  match Hashtbl.find_opt t.cache key with
  | Some m -> m
  | None ->
    (match t.max_variants with
    | Some cap when t.n >= cap -> raise Budget_exhausted
    | Some _ | None -> ());
    let m = f asg in
    t.n <- t.n + 1;
    Hashtbl.add t.cache key m;
    t.recs <- { Variant.index = t.n; asg; meas = m } :: t.recs;
    m

let records t = List.rev t.recs
let count t = t.n

let clear t =
  t.recs <- [];
  t.n <- 0;
  Hashtbl.reset t.cache
