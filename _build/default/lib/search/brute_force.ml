let search ~atoms ~trace ~evaluate () =
  let n = List.length atoms in
  if n > 20 then invalid_arg (Printf.sprintf "Brute_force.search: 2^%d variants is too many" n);
  let arr = Array.of_list atoms in
  for mask = 0 to (1 lsl n) - 1 do
    let lowered = ref [] in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then lowered := arr.(i) :: !lowered
    done;
    let asg = Transform.Assignment.of_lowered atoms ~lowered:!lowered in
    ignore (Trace.evaluate trace ~f:evaluate asg)
  done;
  Trace.records trace
