(* deterministic xorshift over the seed; no global Random state *)
let next_state s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  s land max_int

let search ~atoms ~trace ~evaluate ~samples ~seed () =
  let state = ref (max 1 (abs seed)) in
  let bit () =
    state := next_state !state;
    !state land 1 = 1
  in
  (try
     for _ = 1 to samples do
       let lowered = List.filter (fun _ -> bit ()) atoms in
       let asg = Transform.Assignment.of_lowered atoms ~lowered in
       ignore (Trace.evaluate trace ~f:evaluate asg)
     done
   with Trace.Budget_exhausted -> ());
  Trace.records trace
