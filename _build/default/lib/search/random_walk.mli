(** Random-subset sampling baseline.

    Not part of the paper's methodology (which deliberately adopts the
    single canonical strategy); provided for the ablation benchmark that
    contrasts the delta-debugging search against naive exploration at an
    equal variant budget. Deterministic for a given seed. *)

val search :
  atoms:Transform.Assignment.atom list ->
  trace:Trace.t ->
  evaluate:(Transform.Assignment.t -> Variant.measurement) ->
  samples:int ->
  seed:int ->
  unit ->
  Variant.record list
(** Evaluates [samples] random lowered-subsets (duplicates are served from
    the trace cache and do not consume budget). *)
