type status = Pass | Fail | Timeout | Error

let status_to_string = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Timeout -> "timeout"
  | Error -> "error"

let pp_status ppf s = Format.pp_print_string ppf (status_to_string s)

type measurement = {
  status : status;
  speedup : float;
  rel_error : float;
  hotspot_time : float;
  model_time : float;
  proc_stats : (string * float * int) list;
  casting_share : float;
  detail : string;
}

type record = {
  index : int;
  asg : Transform.Assignment.t;
  meas : measurement;
}

let fraction_lowered r = Transform.Assignment.fraction_lowered r.asg

type summary = {
  total : int;
  pass_pct : float;
  fail_pct : float;
  timeout_pct : float;
  error_pct : float;
  best_speedup : float;
}

let summarize records =
  let total = List.length records in
  let pct s =
    if total = 0 then 0.0
    else
      100.0
      *. float_of_int (List.length (List.filter (fun r -> r.meas.status = s) records))
      /. float_of_int total
  in
  let best_speedup =
    List.fold_left
      (fun acc r -> if r.meas.status = Pass then Float.max acc r.meas.speedup else acc)
      0.0 records
  in
  {
    total;
    pass_pct = pct Pass;
    fail_pct = pct Fail;
    timeout_pct = pct Timeout;
    error_pct = pct Error;
    best_speedup;
  }

let frontier records =
  let passing = List.filter (fun r -> r.meas.status = Pass) records in
  let dominated r =
    List.exists
      (fun r' ->
        r' != r
        && r'.meas.speedup >= r.meas.speedup
        && r'.meas.rel_error <= r.meas.rel_error
        && (r'.meas.speedup > r.meas.speedup || r'.meas.rel_error < r.meas.rel_error))
      passing
  in
  List.filter (fun r -> not (dominated r)) passing
  |> List.sort (fun a b -> compare a.meas.rel_error b.meas.rel_error)

let best records =
  List.fold_left
    (fun acc r ->
      if r.meas.status <> Pass then acc
      else
        match acc with
        | Some b when b.meas.speedup >= r.meas.speedup -> acc
        | Some _ | None -> Some r)
    None records
