lib/search/trace.ml: Hashtbl List Transform Variant
