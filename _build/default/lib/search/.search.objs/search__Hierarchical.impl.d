lib/search/hierarchical.ml: Ddmin Delta_debug List Trace Transform
