lib/search/random_walk.ml: List Trace Transform
