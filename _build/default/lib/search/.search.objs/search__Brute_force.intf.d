lib/search/brute_force.mli: Trace Transform Variant
