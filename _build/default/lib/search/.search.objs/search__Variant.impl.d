lib/search/variant.ml: Float Format List Transform
