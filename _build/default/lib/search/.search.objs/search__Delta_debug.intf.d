lib/search/delta_debug.mli: Trace Transform Variant
