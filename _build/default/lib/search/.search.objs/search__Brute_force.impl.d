lib/search/brute_force.ml: Array List Printf Trace Transform
