lib/search/delta_debug.ml: Ddmin List Trace Transform Variant
