lib/search/hierarchical.mli: Delta_debug Trace Transform Variant
