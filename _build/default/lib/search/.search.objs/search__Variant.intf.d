lib/search/variant.mli: Format Transform
