lib/search/trace.mli: Transform Variant
