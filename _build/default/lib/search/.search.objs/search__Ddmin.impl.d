lib/search/ddmin.ml: List
