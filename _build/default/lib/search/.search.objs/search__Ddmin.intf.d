lib/search/ddmin.mli:
