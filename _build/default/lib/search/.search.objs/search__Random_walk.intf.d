lib/search/random_walk.mli: Trace Transform Variant
