(** Exhaustive search over the full [2^n] design space (Sec. II-B).

    Only feasible for small atom counts; used for the funarc motivating
    example (2⁸ = 256 variants, Fig. 2) and as ground truth in tests of
    the delta-debugging search's 1-minimality. *)

val search :
  atoms:Transform.Assignment.atom list ->
  trace:Trace.t ->
  evaluate:(Transform.Assignment.t -> Variant.measurement) ->
  unit ->
  Variant.record list
(** Evaluates every subset of atoms lowered to 32 bits, in subset-mask
    order (the baseline — nothing lowered — first). Raises
    [Invalid_argument] above 20 atoms. *)
