(** MOM6 proxy: layered zonal/meridional continuity with PPM
    reconstruction — the [MOM_continuity_PPM] hotspot (Sec. IV-A/IV-B).

    Reproduced structure, keyed to the paper's findings:
    - MOM6-style {e dimensional rescaling}: thicknesses and velocities are
      carried through intermediates scaled by powers of two up to 2⁷⁰
      (real MOM6 rescales by up to 2¹⁴⁰ for dimensional-consistency
      testing). Products of two rescaled quantities reach ~10⁴¹ — far
      beyond binary32's 3.4 × 10³⁸ — so lowering any variable on the
      rescaled path overflows and aborts: the dominant runtime-error
      class of Table II (51.7 % in the paper);
    - [zonal_flux_adjust] / [meridional_flux_adjust] are Newton
      iterations matching layer transports to a barotropic target at a
      tolerance chosen for 64-bit arithmetic; 32-bit residuals floor
      above the tolerance and the loop runs to its iteration cap, 10–100×
      more iterations (the Fig.-6 0.01–0.1× slowdowns);
    - [zonal_mass_flux] passes whole layer arrays to its callees; mixing
      kinds across that boundary forces element-wise wrapper copies whose
      cost lands inside the hotspot (the paper's "40 % of CPU time spent
      on casting overhead" variant 58);
    - correctness: the max CFL number per step (a MOM6 regression
      quantity), compared as L2-over-time relative error. *)

type params = {
  ni : int;  (** columns *)
  nk : int;  (** layers *)
  nsteps : int;
  max_adjust : int;  (** flux-adjust iteration cap *)
  nhost : int;  (** host sweeps per step *)
}

let default = { ni = 16; nk = 6; nsteps = 6; max_adjust = 30; nhost = 160 }
let small = { ni = 6; nk = 3; nsteps = 3; max_adjust = 20; nhost = 3 }

let source ?(p = default) () =
  Printf.sprintf
    {|
module mom_framework
  implicit none
  integer, parameter :: ni = %d
  integer, parameter :: nk = %d
  integer, parameter :: nsteps = %d
  real(kind=8), dimension(ni, nk) :: h_s, hv_s
  real(kind=8), dimension(ni, nk) :: uh_s, vh_s
  real(kind=8), dimension(ni) :: u_s, v_s, uhbt_s, vhbt_s, cfl_s
  real(kind=8), dimension(ni) :: bt_work_s
  real(kind=8) :: dt_m, dx_m
contains
  subroutine mom_init()
    integer :: i, k
    real(kind=8) :: x
    dt_m = 0.05d0
    dx_m = 1.0d0
    do i = 1, ni
      x = 6.283185307179586d0 * (i - 1) / ni
      u_s(i) = 0.4d0 * sin(x) + 0.1d0 * cos(3.0d0 * x)
      v_s(i) = 0.3d0 * cos(x)
      uhbt_s(i) = 0.0d0
      vhbt_s(i) = 0.0d0
      cfl_s(i) = 0.0d0
      bt_work_s(i) = 0.0d0
      do k = 1, nk
        h_s(i, k) = 5.0d0 + 2.0d0 * sin(x + 0.3d0 * k) + 0.1d0 * k
        hv_s(i, k) = 5.0d0 + 1.5d0 * cos(x - 0.2d0 * k)
        uh_s(i, k) = 0.0d0
        vh_s(i, k) = 0.0d0
      end do
    end do
  end subroutine mom_init

  subroutine mom_barotropic_host()
    ! barotropic solver / EOS / diagnostics stand-in: the untargeted
    ! majority of CPU time, a scalar recurrence per sweep
    integer :: i, s
    real(kind=8) :: acc, wgt
    do s = 1, %d
      acc = 0.0d0
      do i = 2, ni
        wgt = exp(-0.01d0 * abs(u_s(i)) - 0.002d0 * s)
        acc = 0.8d0 * acc + wgt * sin(0.05d0 * u_s(i) + 0.01d0 * i)
        bt_work_s(i) = bt_work_s(i - 1) * 0.25d0 + acc
      end do
    end do
  end subroutine mom_barotropic_host

  subroutine mom_apply_continuity()
    ! thin the layers with the converged transports and refresh velocity
    integer :: i, k, im1
    do i = 1, ni
      im1 = mod(i + ni - 2, ni) + 1
      do k = 1, nk
        h_s(i, k) = h_s(i, k) - dt_m * (uh_s(i, k) - uh_s(im1, k)) / dx_m
        hv_s(i, k) = hv_s(i, k) - 0.5d0 * dt_m * (vh_s(i, k) - vh_s(im1, k)) / dx_m
      end do
      u_s(i) = 0.98d0 * u_s(i) + 0.01d0 * sin(0.3d0 * i)
      v_s(i) = 0.98d0 * v_s(i) - 0.01d0 * cos(0.2d0 * i)
    end do
  end subroutine mom_apply_continuity
end module mom_framework

module mom_continuity_ppm
  use mom_framework
  implicit none
  ! MOM6-style dimensional rescaling factors (powers of two; real MOM6
  ! uses up to 2**140). Products of two rescaled quantities overflow
  ! binary32.
  real(kind=8) :: h_to_z = 1180591620717411303424.0  ! 2**70
  real(kind=8) :: z_to_h = 8.470329472543003e-22       ! 2**(-70)
  real(kind=8) :: l_to_z = 1180591620717411303424.0  ! 2**70
  real(kind=8) :: z_to_l = 8.470329472543003e-22       ! 2**(-70)
  real(kind=8), dimension(nk) :: e_l_w, e_r_w, duc_w
contains
  subroutine ppm_reconstruction(hcol, n)
    ! PPM edge values for one column of layer thicknesses
    integer, intent(in) :: n
    real(kind=8), dimension(n), intent(in) :: hcol
    integer :: k, km1, kp1
    real(kind=8) :: slope
    do k = 1, n
      km1 = max(1, k - 1)
      kp1 = min(n, k + 1)
      slope = 0.5 * (hcol(kp1) - hcol(km1))
      e_l_w(k) = hcol(k) - 0.5 * slope
      e_r_w(k) = hcol(k) + 0.5 * slope
    end do
  end subroutine ppm_reconstruction

  function zonal_flux_layer(uvel, hl, hr, dt_in) result(fl)
    ! upwind PPM face transport for one layer (inlinable kernel)
    real(kind=8) :: uvel, hl, hr, dt_in, fl
    real(kind=8) :: cfl_loc
    cfl_loc = uvel * dt_in
    fl = uvel * (0.5 * (hl + hr) - 0.16666666666666666 * cfl_loc * (hr - hl))
  end function zonal_flux_layer

  subroutine zonal_flux_adjust(ucol, hcol, uhcol, n, uh_tot, du)
    ! Newton iteration matching the column transport to the barotropic
    ! target; the tolerance is sized for 64-bit arithmetic, so 32-bit
    ! residuals floor above it and the loop runs to its cap
    integer, intent(in) :: n
    real(kind=8), dimension(n) :: ucol, hcol, uhcol
    real(kind=8), intent(in) :: uh_tot
    real(kind=8), intent(out) :: du
    real(kind=8) :: err, dsum, hsum, tol
    integer :: k, it
    tol = 1.0e-11 * (abs(uh_tot) + 1.0)
    du = 0.0
    it = 0
    err = 1.0e30
    do while (abs(err) > tol .and. it < %d)
      it = it + 1
      dsum = 0.0
      hsum = 0.0
      do k = 1, n
        dsum = dsum + zonal_flux_layer(ucol(k) + du, e_l_w(k), e_r_w(k), dt_m)
        hsum = hsum + 0.5 * (e_l_w(k) + e_r_w(k))
      end do
      err = dsum - uh_tot
      du = du - err / hsum
    end do
    do k = 1, n
      uhcol(k) = zonal_flux_layer(ucol(k) + du, e_l_w(k), e_r_w(k), dt_m)
    end do
  end subroutine zonal_flux_adjust

  subroutine zonal_mass_flux(n)
    ! per-column driver: PPM reconstruction, rescaled volume fluxes,
    ! flux adjustment to the barotropic target
    integer, intent(in) :: n
    integer :: i, k
    real(kind=8), dimension(nk) :: ucol_w, hcol_w, uhcol_w
    real(kind=8) :: htot, uscaled, vol, du, target_uh, cflmax
    do i = 1, n
      do k = 1, nk
        hcol_w(k) = h_s(i, k)
        ucol_w(k) = u_s(i) * (1.0 + 0.02 * k)
      end do
      call ppm_reconstruction(hcol_w, nk)
      target_uh = 0.0
      do k = 1, nk
        ! dimensionally rescaled volume transport: overflows binary32
        htot = hcol_w(k) * h_to_z
        uscaled = ucol_w(k) * l_to_z
        vol = htot * uscaled
        target_uh = target_uh + vol * z_to_h * z_to_l
      end do
      call zonal_flux_adjust(ucol_w, hcol_w, uhcol_w, nk, target_uh, du)
      cflmax = 0.0
      do k = 1, nk
        uh_s(i, k) = uhcol_w(k)
        cflmax = max(cflmax, abs(ucol_w(k) + du) * dt_m / dx_m)
      end do
      cfl_s(i) = cflmax
    end do
  end subroutine zonal_mass_flux

  subroutine meridional_flux_adjust(vcol, hcol, vhcol, n, vh_tot, dv)
    integer, intent(in) :: n
    real(kind=8), dimension(n) :: vcol, hcol, vhcol
    real(kind=8), intent(in) :: vh_tot
    real(kind=8), intent(out) :: dv
    real(kind=8) :: errv, dsumv, hsumv, tolv
    integer :: k, it
    tolv = 1.0e-11 * (abs(vh_tot) + 1.0)
    dv = 0.0
    it = 0
    errv = 1.0e30
    do while (abs(errv) > tolv .and. it < %d)
      it = it + 1
      dsumv = 0.0
      hsumv = 0.0
      do k = 1, n
        dsumv = dsumv + zonal_flux_layer(vcol(k) + dv, e_l_w(k), e_r_w(k), dt_m)
        hsumv = hsumv + 0.5 * (e_l_w(k) + e_r_w(k))
      end do
      errv = dsumv - vh_tot
      dv = dv - errv / hsumv
    end do
    do k = 1, n
      vhcol(k) = zonal_flux_layer(vcol(k) + dv, e_l_w(k), e_r_w(k), dt_m)
    end do
  end subroutine meridional_flux_adjust

  subroutine meridional_mass_flux(n)
    integer, intent(in) :: n
    integer :: i, k
    real(kind=8), dimension(nk) :: vcol_w, hvcol_w, vhcol_w
    real(kind=8) :: hvtot, vscaled, volv, dv, target_vh
    do i = 1, n
      do k = 1, nk
        hvcol_w(k) = hv_s(i, k)
        vcol_w(k) = v_s(i) * (1.0 + 0.015 * k)
      end do
      call ppm_reconstruction(hvcol_w, nk)
      target_vh = 0.0
      do k = 1, nk
        hvtot = hvcol_w(k) * h_to_z
        vscaled = vcol_w(k) * l_to_z
        volv = hvtot * vscaled
        target_vh = target_vh + volv * z_to_h * z_to_l
      end do
      call meridional_flux_adjust(vcol_w, hvcol_w, vhcol_w, nk, target_vh, dv)
      do k = 1, nk
        vh_s(i, k) = vhcol_w(k)
      end do
    end do
  end subroutine meridional_mass_flux

  subroutine continuity_ppm()
    call zonal_mass_flux(ni)
    call meridional_mass_flux(ni)
  end subroutine continuity_ppm
end module mom_continuity_ppm

program mom6_main
  use mom_framework
  use mom_continuity_ppm
  implicit none
  integer :: istep
  real(kind=8) :: cflmax_step
  call mom_init()
  do istep = 1, nsteps
    call continuity_ppm()
    call mom_apply_continuity()
    call mom_barotropic_host()
    cflmax_step = maxval(cfl_s)
    print *, 'cfl', cflmax_step
  end do
end program mom6_main
|}
    p.ni p.nk p.nsteps p.nhost p.max_adjust p.max_adjust

let target_procs =
  [
    "ppm_reconstruction";
    "zonal_flux_layer";
    "zonal_flux_adjust";
    "zonal_mass_flux";
    "meridional_flux_adjust";
    "meridional_mass_flux";
    "continuity_ppm";
  ]
