(** LULESH-style proxy application — the contrast case of the paper's
    introduction.

    The paper motivates its study by noting that existing FPPT tools
    target "programs restricted in size/complexity such as proxy
    applications with just a few computational hotspots that consume the
    majority of the runtime, e.g., LULESH" (Sec. I). This model provides
    that contrast inside the same harness: a 1-D Lagrangian shock
    hydrodynamics mini-app (Sedov-style blast in a closed tube) whose two
    kernels — force/acceleration and equation-of-state update — consume
    essentially the whole runtime, with clean vectorizable loops and no
    interprocedural FP traffic to speak of.

    Tuning it shows what the paper's intro claims: on a proxy app, the
    canonical FPPT cycle works beautifully (high pass rates, near-uniform
    32-bit winners); the pathologies only appear at weather/climate-model
    scale. *)

type params = {
  nzones : int;
  nsteps : int;
}

let default = { nzones = 64; nsteps = 40 }
let small = { nzones = 16; nsteps = 10 }

let source ?(p = default) () =
  Printf.sprintf
    {|
module lulesh_mod
  implicit none
  integer, parameter :: nzones = %d
  integer, parameter :: nsteps = %d
  real(kind=8), dimension(nzones) :: e_s, rho_s, p_s, q_s
  real(kind=8), dimension(nzones + 1) :: x_s, u_s
  real(kind=8) :: dt_l
contains
  subroutine lulesh_init()
    integer :: i
    dt_l = 1.0e-3
    do i = 1, nzones + 1
      x_s(i) = (i - 1) * 1.0 / nzones
      u_s(i) = 0.0
    end do
    do i = 1, nzones
      rho_s(i) = 1.0
      e_s(i) = 1.0e-6
      p_s(i) = 0.0
      q_s(i) = 0.0
    end do
    ! deposit the blast energy in the first zone
    e_s(1) = 2.5
  end subroutine lulesh_init

  subroutine calc_force_for_nodes(accel, n)
    ! pressure + artificial viscosity gradient at the nodes
    integer, intent(in) :: n
    real(kind=8), dimension(n + 1), intent(out) :: accel
    integer :: i
    real(kind=8) :: pl, pr
    accel(1) = 0.0
    accel(n + 1) = 0.0
    do i = 2, n
      pl = p_s(i - 1) + q_s(i - 1)
      pr = p_s(i) + q_s(i)
      accel(i) = (pl - pr) / (0.5 * (rho_s(i - 1) + rho_s(i)))
    end do
  end subroutine calc_force_for_nodes

  subroutine calc_energy_for_elems(n)
    ! EOS update: ideal gas with artificial viscosity
    integer, intent(in) :: n
    integer :: i
    real(kind=8) :: dvol, gamma_l, cs, du
    gamma_l = 1.6666666
    do i = 1, n
      du = u_s(i + 1) - u_s(i)
      dvol = du * dt_l / (x_s(i + 1) - x_s(i))
      e_s(i) = max(1.0e-12, e_s(i) - (p_s(i) + q_s(i)) * dvol)
      rho_s(i) = rho_s(i) / (1.0 + dvol)
      p_s(i) = (gamma_l - 1.0) * rho_s(i) * e_s(i)
      cs = sqrt(gamma_l * p_s(i) / rho_s(i))
      if (du < 0.0) then
        q_s(i) = rho_s(i) * (0.25 * du * du - 0.5 * cs * du)
      else
        q_s(i) = 0.0
      end if
    end do
  end subroutine calc_energy_for_elems

  subroutine lagrange_leapfrog()
    real(kind=8), dimension(nzones + 1) :: accel_w
    integer :: i
    call calc_force_for_nodes(accel_w, nzones)
    do i = 1, nzones + 1
      u_s(i) = u_s(i) + dt_l * accel_w(i)
    end do
    do i = 1, nzones + 1
      x_s(i) = x_s(i) + dt_l * u_s(i)
    end do
    call calc_energy_for_elems(nzones)
  end subroutine lagrange_leapfrog
end module lulesh_mod

program lulesh_main
  use lulesh_mod
  implicit none
  integer :: istep
  real(kind=8) :: etot
  call lulesh_init()
  do istep = 1, nsteps
    call lagrange_leapfrog()
    etot = sum(e_s) + 0.5d0 * dot_product(u_s, u_s) / nzones
    print *, 'etot', etot
  end do
end program lulesh_main
|}
    p.nzones p.nsteps

let target_procs = [ "calc_force_for_nodes"; "calc_energy_for_elems"; "lagrange_leapfrog" ]
