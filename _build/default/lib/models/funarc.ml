(** The funarc motivating example (Sec. II-B; Bailey).

    Computes the arc length of [g(x) = x + Σ_k 2^-k sin(2^k x)] over
    [0, π] by summation over [n] subintervals. Eight FP variable
    declarations (the [result] output is excluded, as in the paper) give
    the 2⁸ = 256-variant brute-force space of Fig. 2. *)

let default_n = 1000

let source ?(n = default_n) () =
  Printf.sprintf
    {|
module funarc_mod
  implicit none
  integer, parameter :: nseg = %d
contains
  function fun(x) result(t1)
    real(kind=8) :: x, t1, d1
    integer :: k
    d1 = 1.0
    t1 = x
    do k = 1, 5
      d1 = 2.0 * d1
      t1 = t1 + sin(d1 * x) / d1
    end do
  end function fun

  subroutine funarc(res)
    real(kind=8), intent(out) :: res
    real(kind=8) :: s1, h, t1, t2, dppi
    integer :: i
    dppi = acos(-1.0)
    s1 = 0.0
    t1 = 0.0
    h = dppi / nseg
    do i = 1, nseg
      t2 = fun(i * h)
      s1 = s1 + sqrt(h * h + (t2 - t1) * (t2 - t1))
      t1 = t2
    end do
    res = s1
  end subroutine funarc
end module funarc_mod

program funarc_main
  use funarc_mod
  implicit none
  real(kind=8) :: res
  call funarc(res)
  print *, 'result', res
end program funarc_main
|}
    n
