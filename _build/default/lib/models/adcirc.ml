(** ADCIRC proxy: tidal shallow-water timestepping whose per-step implicit
    solve is the [itpackv] hotspot (Sec. IV-A/IV-B).

    Reproduced structure, keyed to the paper's findings:
    - [pjac] is a forward relaxation sweep with a true loop-carried
      dependence ([x(i-1)]), so it cannot vectorize — criterion 1 fails
      and reduced precision buys almost nothing there;
    - [peror] computes the residual norm and spends its time in an
      [MPI_ALLREDUCE] stand-in whose cost is precision-independent — the
      paper's second reason the hotspot cannot speed up;
    - [jcg] drives the iteration and owns the convergence logic. With
      64-bit iterates the residual decreases monotonically to the tight
      tolerance; when the solution/residual chain is 32-bit the residual
      floors at single-precision level and jitters upward, tripping the
      ITPACK-style divergence bail-out ([qa >= 1]) — control flow
      substantially changes, the solve exits in a fraction of the
      iterations, and the returned surface elevation is unconverged: the
      fast-but-wrong bimodal cluster of Fig. 6;
    - the host feeds the unconverged elevation back through a nonlinear
      advective forcing, so bad variants compound over timesteps; badly
      diverged elevations drive the wave celerity [sqrt(g*(depth+eta))]
      negative, producing the runtime-error class of Table II;
    - correctness: the extreme water-surface elevation per step, compared
      as L2-over-time relative error (the domain-expert methodology the
      paper cites). *)

type params = {
  nnodes : int;
  nsteps : int;
  maxit : int;  (** jcg iteration cap *)
  nhost : int;  (** host sweeps per step (untuned CPU share) *)
}

let default = { nnodes = 48; nsteps = 6; maxit = 70; nhost = 260 }
let small = { nnodes = 16; nsteps = 3; maxit = 24; nhost = 2 }

let source ?(p = default) () =
  Printf.sprintf
    {|
module adcirc_global
  implicit none
  integer, parameter :: nnodes = %d
  integer, parameter :: ntsteps = %d
  integer, parameter :: nhost = %d
  real(kind=8), dimension(nnodes) :: eta_s, vel_s, rhs_s, sol_s
  real(kind=8), dimension(nnodes) :: depth_s, celer_s, disp_s
  real(kind=8), dimension(nnodes) :: alo_s, adia_s, aup_s
  real(kind=8) :: dt_g, gconst
contains
  subroutine adcirc_init()
    integer :: i
    real(kind=8) :: x, k
    dt_g = 0.1d0
    gconst = 9.81d0
    do i = 1, nnodes
      x = 6.283185307179586d0 * (i - 1) / nnodes
      depth_s(i) = 10.0d0 + 4.0d0 * sin(x)
      eta_s(i) = 0.0d0
      vel_s(i) = 0.0d0
      rhs_s(i) = 0.0d0
      sol_s(i) = 0.0d0
      celer_s(i) = 0.0d0
      disp_s(i) = 0.0d0
      k = 0.20d0 + 0.05d0 * cos(x)
      alo_s(i) = -k
      aup_s(i) = -k
      adia_s(i) = 1.0d0 + 2.0d0 * k + 0.01d0 * sin(2.0d0 * x)
    end do
  end subroutine adcirc_init

  subroutine adcirc_forcing(t, istep)
    ! tidal boundary forcing (constituent mix selected per phase of the
    ! tidal cycle) plus a nonlinear advective feedback term: unconverged
    ! elevations compound across steps
    real(kind=8), intent(in) :: t
    integer, intent(in) :: istep
    integer :: i, im1, ip1, phase
    real(kind=8) :: x, tide
    phase = mod(istep, 4)
    do i = 1, nnodes
      im1 = mod(i + nnodes - 2, nnodes) + 1
      ip1 = mod(i, nnodes) + 1
      x = 6.283185307179586d0 * (i - 1) / nnodes
      select case (phase)
      case (0)
        tide = 0.5d0 * sin(1.4d0 * t + x) + 0.2d0 * sin(2.8d0 * t - 2.0d0 * x)
      case (1, 2)
        tide = 0.5d0 * sin(1.4d0 * t + x) + 0.15d0 * cos(2.8d0 * t - 2.0d0 * x)
      case default
        tide = 0.45d0 * sin(1.4d0 * t + x)
      end select
      rhs_s(i) = tide + eta_s(i) &
        - 0.5d0 * dt_g * vel_s(i) * (eta_s(ip1) - eta_s(im1)) &
        - 0.1d0 * dt_g * vel_s(i) * abs(vel_s(i))
    end do
  end subroutine adcirc_forcing

  subroutine adcirc_update()
    ! recover velocity and wave celerity from the new elevation; a badly
    ! diverged solve drives depth+eta negative and sqrt traps
    integer :: i, im1, ip1
    real(kind=8) :: h
    do i = 1, nnodes
      eta_s(i) = sol_s(i)
    end do
    do i = 1, nnodes
      im1 = mod(i + nnodes - 2, nnodes) + 1
      ip1 = mod(i, nnodes) + 1
      h = depth_s(i) + eta_s(i)
      celer_s(i) = sqrt(gconst * h)
      vel_s(i) = 0.95d0 * vel_s(i) &
        - dt_g * gconst * 0.5d0 * (eta_s(ip1) - eta_s(im1)) &
        - 0.001d0 * vel_s(i) * abs(vel_s(i))
    end do
  end subroutine adcirc_update

  subroutine adcirc_host_work()
    ! wind stress, bottom friction, output interpolation, ... : the
    ! untargeted majority of CPU time; a non-vectorizable sweep
    integer :: i, s
    real(kind=8) :: acc, wf
    do s = 1, nhost
      acc = 0.0d0
      do i = 2, nnodes
        wf = exp(-0.002d0 * abs(vel_s(i)) - 0.001d0 * s)
        acc = 0.9d0 * acc + wf * sin(0.01d0 * (eta_s(i) + depth_s(i)))
        disp_s(i) = disp_s(i - 1) * 0.5d0 + acc * 0.01d0
      end do
    end do
  end subroutine adcirc_host_work
end module adcirc_global

module itpackv
  use adcirc_global
  implicit none
contains
  subroutine pjac(x, b, n, omega, updnrm)
    ! forward relaxation sweep; the x(i-1) recurrence prevents
    ! vectorization (the paper's pjac observation)
    integer, intent(in) :: n
    real(kind=8), dimension(n) :: x, b
    real(kind=8), intent(in) :: omega
    real(kind=8), intent(out) :: updnrm
    integer :: i, im1, ip1
    real(kind=8) :: xnew, upd
    updnrm = 0.0
    do i = 1, n
      im1 = mod(i + n - 2, n) + 1
      ip1 = mod(i, n) + 1
      xnew = (b(i) - alo_s(i) * x(im1) - aup_s(i) * x(ip1)) / adia_s(i)
      upd = omega * (xnew - x(i))
      x(i) = x(i) + upd
      updnrm = updnrm + upd * upd
    end do
  end subroutine pjac

  subroutine peror(r, n, dnrm)
    ! residual norm: local partial sum, then a global reduction whose
    ! cost does not depend on precision
    integer, intent(in) :: n
    real(kind=8), dimension(n), intent(in) :: r
    real(kind=8), intent(out) :: dnrm
    integer :: i
    real(kind=8) :: part
    part = 0.0
    do i = 1, n
      part = part + r(i) * r(i)
    end do
    call mpi_allreduce(part, dnrm, 'sum')
  end subroutine peror

  subroutine jcg(x, b, n, itout)
    ! relaxation driver with ITPACK-flavored adaptive acceleration and
    ! stationary/divergence safeguards
    integer, intent(in) :: n
    integer, intent(out) :: itout
    real(kind=8), dimension(n) :: x, b
    real(kind=8), dimension(n) :: r_w
    real(kind=8) :: dnrm, dnrm0, dnrmold, zeta, omega, qa, cme, updnrm, upstop
    integer :: it, i, im1, ip1, maxit
    maxit = %d
    zeta = 1.0e-24
    upstop = 1.0e-26
    omega = 1.3
    cme = 0.2
    do i = 1, n
      im1 = mod(i + n - 2, n) + 1
      ip1 = mod(i, n) + 1
      r_w(i) = b(i) - alo_s(i) * x(im1) - adia_s(i) * x(i) - aup_s(i) * x(ip1)
    end do
    call peror(r_w, n, dnrm)
    dnrm0 = dnrm + 1.0e-30
    dnrmold = dnrm0
    itout = 0
    do it = 1, maxit
      call pjac(x, b, n, omega, updnrm)
      do i = 1, n
        im1 = mod(i + n - 2, n) + 1
        ip1 = mod(i, n) + 1
        r_w(i) = b(i) - alo_s(i) * x(im1) - adia_s(i) * x(i) - aup_s(i) * x(ip1)
      end do
      call peror(r_w, n, dnrm)
      itout = it
      if (dnrm < zeta) then
        exit
      end if
      ! the iteration has gone stationary: no further progress is possible
      ! at this precision, accept the iterate (fires early at 32 bits)
      if (updnrm <= upstop) then
        exit
      end if
      ! ITPACK-style adaptive acceleration: re-estimate the convergence
      ! rate from the observed residual ratio. 64-bit ratios stay well
      ! below 1; 32-bit residuals floor, the estimate saturates, omega is
      ! pushed to its unstable limit and the divergence guard bails out
      ! with an amplified, unconverged iterate.
      if (mod(it, 5) == 0) then
        qa = dnrm / dnrmold
        if (qa > 1.0) then
          qa = 1.0
        end if
        cme = qa ** 0.2
        omega = 2.6 / (1.0 + sqrt(abs(1.0 - cme)))
        dnrmold = dnrm
      end if
      if (dnrm > 100.0 * dnrm0) then
        exit
      end if
    end do
  end subroutine jcg
end module itpackv

program adcirc_main
  use adcirc_global
  use itpackv
  implicit none
  integer :: istep, iters
  real(kind=8) :: t, etamax
  call adcirc_init()
  t = 0.0d0
  do istep = 1, ntsteps
    t = t + dt_g
    call adcirc_forcing(t, istep)
    call jcg(sol_s, rhs_s, nnodes, iters)
    call adcirc_update()
    call adcirc_host_work()
    etamax = maxval(eta_s) + 0.001d0 * maxval(celer_s)
    print *, 'eta', etamax
    print *, 'jcg_iters', iters
  end do
end program adcirc_main
|}
    p.nnodes p.nsteps p.nhost p.maxit

let target_procs = [ "pjac"; "peror"; "jcg" ]
