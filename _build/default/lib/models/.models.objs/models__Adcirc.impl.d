lib/models/adcirc.ml: Printf
