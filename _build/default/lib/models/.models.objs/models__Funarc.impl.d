lib/models/funarc.ml: Printf
