lib/models/registry.mli:
