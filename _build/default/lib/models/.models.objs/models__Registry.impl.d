lib/models/registry.ml: Adcirc Funarc Lulesh Mom6 Mpas
