lib/models/lulesh.ml: Printf
