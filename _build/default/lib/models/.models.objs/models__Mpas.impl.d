lib/models/mpas.ml: Printf
