lib/models/mom6.ml: Printf
