(** MPAS-A proxy: a periodic 1-D dry dynamical core with the structure of
    the [atm_time_integration] hotspot (Sec. IV-A/IV-B).

    Reproduced structure, keyed to the paper's findings:
    - the {e work routines} ([atm_compute_dyn_tend_work],
      [atm_advance_acoustic_step_work],
      [atm_recover_large_step_variables_work]) hold the tuned variables;
      their loops are clean stencil sweeps that auto-vectorize
      (criterion 1 ✓);
    - a pair of small [flux4]/[flux3] functions is called at high volume
      from the dyn-tend loop; kind-uniform boundaries keep them inlined
      and vectorized, mixed boundaries force wrappers that defeat inlining
      and kill vectorization — the paper's 15–22 % casting overhead and
      the Fig.-6 "critical slowdown" variants (criterion 2);
    - the [atm_srk3] driver is {e not} targeted: state arrays cross the
      driver→work-routine boundary on every call, so lowering the work
      routines makes every RK stage and acoustic substep pay array
      copy-conversions that land {e outside} the hotspot timers — visible
      only to the whole-model-guided search of Fig. 7 (criterion 3);
    - an untuned multi-band radiative-transfer physics step (a vertical
      recurrence, deliberately non-vectorizable) provides the ~85 % of
      CPU time outside the hotspot, matching Table I's shape;
    - correctness: max cell kinetic energy per step, compared to the
      baseline as L2-over-time relative error; the threshold is the error
      of the uniform 32-bit build, as the paper sets it. *)

type params = {
  ncells : int;
  nsteps : int;
  nbands : int;  (** radiation bands in the untuned physics (host cost) *)
  nsub : int;  (** acoustic substeps per RK stage *)
}

let default = { ncells = 64; nsteps = 16; nbands = 32; nsub = 4 }
let small = { ncells = 24; nsteps = 8; nbands = 6; nsub = 2 }

let source ?(p = default) () =
  Printf.sprintf
    {|
module mpas_framework
  implicit none
  integer, parameter :: ncells = %d
  integer, parameter :: nsteps = %d
  integer, parameter :: nbands = %d
  real(kind=8), dimension(ncells) :: rho_s, theta_s, u_s, w_s, ke_s
  real(kind=8), dimension(ncells) :: tr_s, tt_s, tu_s, tw_s
  real(kind=8), dimension(ncells) :: rad_s
  real(kind=8) :: dt_s
contains
  subroutine mpas_init_atmosphere()
    integer :: i
    real(kind=8) :: x
    dt_s = 0.04d0
    do i = 1, ncells
      x = 6.283185307179586d0 * (i - 1) / ncells
      rho_s(i) = 1.0d0 + 0.01d0 * sin(x) + 0.002d0 * cos(3.0d0 * x)
      theta_s(i) = 300.0d0 + 2.0d0 * cos(2.0d0 * x) + 0.5d0 * sin(5.0d0 * x)
      u_s(i) = 1.0d0 * sin(x) + 0.2d0 * cos(4.0d0 * x)
      w_s(i) = 0.05d0 * sin(3.0d0 * x)
      ke_s(i) = 0.0d0
      rad_s(i) = 0.0d0
      tr_s(i) = 0.0d0
      tt_s(i) = 0.0d0
      tu_s(i) = 0.0d0
      tw_s(i) = 0.0d0
    end do
  end subroutine mpas_init_atmosphere

  subroutine mpas_physics_step()
    ! multi-band radiative transfer stand-in: a vertical recurrence per
    ! band; the dominant, untargeted share of model CPU time
    integer :: i, b
    real(kind=8) :: trn, em
    do b = 1, nbands
      rad_s(1) = 0.0d0
      do i = 2, ncells
        trn = exp(-0.0010d0 * (theta_s(i) - 280.0d0) - 0.01d0 * b)
        em = 0.01d0 * theta_s(i)
        rad_s(i) = rad_s(i - 1) * trn + em * (1.0d0 - trn)
      end do
    end do
  end subroutine mpas_physics_step
end module mpas_framework

module atm_time_integration
  use mpas_framework
  implicit none
  real(kind=8), dimension(ncells) :: fth_w, frh_w
  real(kind=8), dimension(ncells) :: du_w, dr_w
contains
  function flux4(qm1, q0, qp1, qp2, ua) result(fl)
    ! 4th-order face flux with upwind dissipation (MPAS flux4 form)
    real(kind=8) :: qm1, q0, qp1, qp2, ua, fl
    fl = ua * (7.0 * (q0 + qp1) - (qm1 + qp2)) / 12.0 &
       - abs(ua) * ((qp2 - qm1) - 3.0 * (qp1 - q0)) / 12.0
  end function flux4

  function flux3(qm1, q0, qp1, qp2, ua) result(fl)
    ! 3rd-order variant: stronger one-sided dissipation
    real(kind=8) :: qm1, q0, qp1, qp2, ua, fl
    fl = ua * (7.0 * (q0 + qp1) - (qm1 + qp2)) / 12.0 &
       - 0.25 * abs(ua) * ((qp2 - qm1) - 3.0 * (qp1 - q0)) / 12.0
  end function flux3

  subroutine atm_compute_dyn_tend_work(rho, theta, u, w, tr, tt, tu, tw, n)
    integer, intent(in) :: n
    real(kind=8), dimension(n), intent(in) :: rho, theta, u, w
    real(kind=8), dimension(n), intent(out) :: tr, tt, tu, tw
    integer :: i, im1, ip1, ip2
    real(kind=8) :: ue, cs2, buoy, dmp
    cs2 = 50.0
    buoy = 0.02
    dmp = 0.02
    do i = 1, n
      im1 = mod(i + n - 2, n) + 1
      ip1 = mod(i, n) + 1
      ip2 = mod(i + 1, n) + 1
      ue = 0.5 * (u(i) + u(ip1))
      fth_w(i) = flux4(theta(im1), theta(i), theta(ip1), theta(ip2), ue)
      frh_w(i) = flux3(rho(im1), rho(i), rho(ip1), rho(ip2), ue)
    end do
    do i = 1, n
      im1 = mod(i + n - 2, n) + 1
      ip1 = mod(i, n) + 1
      tr(i) = -(frh_w(i) - frh_w(im1))
      tt(i) = -(fth_w(i) - fth_w(im1)) - 0.5 * w(i)
      tu(i) = -cs2 * 0.5 * (rho(ip1) - rho(im1)) - dmp * u(i)
      tw(i) = buoy * (theta(i) - 300.0) - dmp * w(i)
    end do
  end subroutine atm_compute_dyn_tend_work

  subroutine atm_advance_acoustic_step_work(rho, u, n, dts)
    integer, intent(in) :: n
    real(kind=8), dimension(n), intent(inout) :: rho, u
    real(kind=8), intent(in) :: dts
    integer :: i, im1, ip1
    real(kind=8) :: cs2
    cs2 = 50.0
    do i = 1, n
      ip1 = mod(i, n) + 1
      du_w(i) = -cs2 * (rho(ip1) - rho(i))
    end do
    do i = 1, n
      u(i) = u(i) + dts * du_w(i)
    end do
    do i = 1, n
      im1 = mod(i + n - 2, n) + 1
      dr_w(i) = -(u(i) - u(im1))
    end do
    do i = 1, n
      rho(i) = rho(i) + dts * dr_w(i)
    end do
  end subroutine atm_advance_acoustic_step_work

  subroutine atm_recover_large_step_variables_work(rho, theta, u, w, ke, n)
    integer, intent(in) :: n
    real(kind=8), dimension(n), intent(in) :: rho, theta, u, w
    real(kind=8), dimension(n), intent(out) :: ke
    integer :: i
    real(kind=8) :: pexn
    do i = 1, n
      pexn = 1.0 + 0.003 * (theta(i) - 300.0)
      ke(i) = 0.5 * rho(i) * pexn * (u(i) * u(i) + w(i) * w(i))
    end do
  end subroutine atm_recover_large_step_variables_work

  subroutine atm_srk3(rho, theta, u, w, ke, tr, tt, tu, tw, n, dt)
    ! split-explicit RK3 driver; NOT a tuning target: every call below
    ! crosses the tuning boundary with whole arrays
    integer, intent(in) :: n
    real(kind=8), dimension(n), intent(inout) :: rho, theta, u, w, ke
    real(kind=8), dimension(n), intent(inout) :: tr, tt, tu, tw
    real(kind=8), intent(in) :: dt
    integer :: rk, sub, i
    real(kind=8) :: dtrk, dts
    do rk = 1, 3
      dtrk = dt / (4 - rk)
      call atm_compute_dyn_tend_work(rho, theta, u, w, tr, tt, tu, tw, n)
      dts = dtrk / %d
      do sub = 1, %d
        call atm_advance_acoustic_step_work(rho, u, n, dts)
      end do
      do i = 1, n
        rho(i) = rho(i) + dtrk * tr(i)
        theta(i) = theta(i) + dtrk * tt(i)
        u(i) = u(i) + dtrk * tu(i)
        w(i) = w(i) + dtrk * tw(i)
      end do
    end do
    call atm_recover_large_step_variables_work(rho, theta, u, w, ke, n)
  end subroutine atm_srk3
end module atm_time_integration

program mpas_main
  use mpas_framework
  use atm_time_integration
  implicit none
  integer :: istep
  real(kind=8) :: kemax
  call mpas_init_atmosphere()
  do istep = 1, nsteps
    call atm_srk3(rho_s, theta_s, u_s, w_s, ke_s, tr_s, tt_s, tu_s, tw_s, ncells, dt_s)
    call mpas_physics_step()
    kemax = maxval(ke_s)
    print *, 'ke', kemax
  end do
end program mpas_main
|}
    p.ncells p.nsteps p.nbands p.nsub p.nsub

let target_procs =
  [
    "flux4";
    "flux3";
    "atm_compute_dyn_tend_work";
    "atm_advance_acoustic_step_work";
    "atm_recover_large_step_variables_work";
  ]
