(** Per-procedure def-use summaries.

    The paper notes (Sec. V) that supporting its criteria (2) and (3)
    "requires tools for IR manipulation/analysis to construct a DAG based
    on def-use and use-def chains". This module provides the variable-level
    summary those recommendations need: for each variable of a scope, the
    statements that define it and the statements that use it, plus the
    maximum loop depth at which each occurs (a static proxy for execution
    frequency). *)

type occurrence = {
  o_loc : Fortran.Loc.t;
  o_loop_depth : int;
  o_proc : string option;
}

type summary = {
  var : string;
  scope : Fortran.Symtab.scope;
  defs : occurrence list;
  uses : occurrence list;
}

val analyze : Fortran.Symtab.t -> summary list
(** Summaries for every non-parameter variable in the program. *)

val for_var : summary list -> scope:Fortran.Symtab.scope -> string -> summary option

val max_use_depth : summary -> int
(** Deepest loop nesting among all uses (0 when never used). *)
