open Fortran

type blocker =
  | Do_while_loop
  | Irregular_control_flow
  | Nested_loop
  | Carried_array_dependence of string
  | Carried_scalar_dependence of string
  | Non_inlinable_call of string

type report = {
  loop_id : int;
  proc : string option;
  loc : Loc.t;
  blockers : blocker list;
  fp_ops : int;
  conv_sites : int;
  reductions : string list;
  inlined_calls : string list;
}

let vectorizable r = r.blockers = []

let pp_blocker ppf = function
  | Do_while_loop -> Format.pp_print_string ppf "do-while loop (unknown trip count)"
  | Irregular_control_flow -> Format.pp_print_string ppf "irregular control flow (exit/cycle/return)"
  | Nested_loop -> Format.pp_print_string ppf "contains a nested loop"
  | Carried_array_dependence a -> Format.fprintf ppf "loop-carried dependence on array %s" a
  | Carried_scalar_dependence s -> Format.fprintf ppf "loop-carried dependence on scalar %s" s
  | Non_inlinable_call p -> Format.fprintf ppf "non-inlinable call to %s" p

let pp_report ppf r =
  Format.fprintf ppf "loop %d%s: %s (fp_ops=%d conv_sites=%d)" r.loop_id
    (match r.proc with Some p -> " in " ^ p | None -> "")
    (if vectorizable r then "VECTORIZED"
     else
       Format.asprintf "not vectorized: %a"
         (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_blocker)
         r.blockers)
    r.fp_ops r.conv_sites

(* ------------------------------------------------------------------ *)

let rec block_stmt_count blk =
  List.fold_left
    (fun n (s : Ast.stmt) ->
      n
      +
      match s.node with
      | Ast.If (arms, els) ->
        1 + List.fold_left (fun m (_, b) -> m + block_stmt_count b) (block_stmt_count els) arms
      | Ast.Select { arms; default; _ } ->
        1
        + List.fold_left (fun m (_, b) -> m + block_stmt_count b) (block_stmt_count default) arms
      | Ast.Do { body; _ } | Ast.Do_while { body; _ } -> 1 + block_stmt_count body
      | Ast.Assign _ | Ast.Call _ | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt
      | Ast.Stop_stmt _ | Ast.Print_stmt _ ->
        1)
    0 blk

let has_loop blk =
  let found = ref false in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Do _ | Ast.Do_while _ -> found := true
      | _ -> ())
    blk;
  !found

(* user-procedure calls appearing anywhere in a block (no dedup) *)
let user_calls st ~in_proc blk =
  let acc = ref [] in
  let rec expr = function
    | Ast.Index (name, args) ->
      List.iter expr args;
      if (not (Builtins.is_intrinsic_function name))
         && Option.is_none (Symtab.lookup_var st ~in_proc name)
      then acc := (name, args) :: !acc
    | Ast.Unop (_, e) -> expr e
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Call (name, args) ->
        List.iter expr args;
        if not (Builtins.is_intrinsic_subroutine name) then acc := (name, args) :: !acc
      | Ast.Assign (lhs, rhs) ->
        (match lhs with Ast.Lvar _ -> () | Ast.Lindex (_, idx) -> List.iter expr idx);
        expr rhs
      | Ast.If (arms, _) -> List.iter (fun (c, _) -> expr c) arms
      | Ast.Select { selector; arms; _ } ->
        expr selector;
        List.iter
          (fun (items, _) ->
            List.iter
              (function
                | Ast.Case_value v -> expr v
                | Ast.Case_range (lo, hi) ->
                  Option.iter expr lo;
                  Option.iter expr hi)
              items)
          arms
      | Ast.Do { from_; to_; step; _ } ->
        expr from_;
        expr to_;
        Option.iter expr step
      | Ast.Do_while { cond; _ } -> expr cond
      | Ast.Print_stmt args -> List.iter expr args
      | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
    blk;
  List.rev !acc

let rec inlinable_rec st ~inline_stmt_limit ~depth (p : Ast.proc) =
  depth < 3
  && (not (has_loop p.proc_body))
  && block_stmt_count p.proc_body <= inline_stmt_limit
  && List.for_all
       (fun (name, _) ->
         name <> p.proc_name
         &&
         match Symtab.find_proc st name with
         | Some callee -> inlinable_rec st ~inline_stmt_limit ~depth:(depth + 1) callee
         | None -> false)
       (user_calls st ~in_proc:(Some p.proc_name) p.proc_body)

let inlinable st ~inline_stmt_limit p = inlinable_rec st ~inline_stmt_limit ~depth:0 p

(* Kind of an expression, or None for non-real / untypeable. *)
let real_kind_of st ~in_proc e =
  match Typecheck.infer st ~in_proc e with
  | Typecheck.Real k -> Some k
  | Typecheck.Integer | Typecheck.Logical | Typecheck.Str -> None
  | exception Typecheck.Error _ -> None

let is_real_literal = function Ast.Real_lit _ -> true | _ -> false

(* Call boundary is kind-uniform: every real actual matches its dummy. *)
let kind_uniform_boundary st ~in_proc callee args =
  match Symtab.find_proc st callee with
  | None -> false
  | Some p ->
    List.length args = List.length p.Ast.params
    && List.for_all2
         (fun actual dummy ->
           match Symtab.lookup_var st ~in_proc:(Some p.Ast.proc_name) dummy with
           | Some { v_base = Ast.Treal dk; _ } -> (
             match real_kind_of st ~in_proc actual with
             | Some ak -> ak = dk
             | None -> false)
           | Some _ -> true
           | None -> false)
         args p.Ast.params

(* Count FP-arithmetic sites and mixed-kind (conversion) sites in a block.
   A conversion site is a binary operation whose real operands have
   different kinds, or a real assignment whose sides differ in kind —
   except when the narrower/differing side is a literal (folded at compile
   time). Integer/real promotions are not counted: they are precision-
   assignment-invariant and cancel out of speedups. *)
let count_sites st ~in_proc blk =
  let fp_ops = ref 0 in
  let conv = ref 0 in
  let rec expr e =
    match e with
    | Ast.Binop (op, a, b) ->
      expr a;
      expr b;
      let ka = real_kind_of st ~in_proc a in
      let kb = real_kind_of st ~in_proc b in
      (match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow ->
        if ka <> None || kb <> None then incr fp_ops
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or -> ());
      (match ka, kb with
      | Some k1, Some k2 when k1 <> k2 ->
        if not (is_real_literal a || is_real_literal b) then incr conv
      | _ -> ())
    | Ast.Unop (_, a) -> expr a
    | Ast.Index (name, args) ->
      List.iter expr args;
      if Builtins.is_intrinsic_function name then
        if Option.is_none (Symtab.lookup_var st ~in_proc name) then incr fp_ops
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Assign (lhs, rhs) ->
        expr rhs;
        let lk =
          match lhs with
          | Ast.Lvar v -> real_kind_of st ~in_proc (Ast.Var v)
          | Ast.Lindex (v, idx) ->
            List.iter expr idx;
            real_kind_of st ~in_proc (Ast.Var v)
        in
        (match lk, real_kind_of st ~in_proc rhs with
        | Some k1, Some k2 when k1 <> k2 -> if not (is_real_literal rhs) then incr conv
        | _ -> ())
      | Ast.Call (_, args) -> List.iter expr args
      | Ast.If (arms, _) -> List.iter (fun (c, _) -> expr c) arms
      | Ast.Select { selector; arms; _ } ->
        expr selector;
        List.iter
          (fun (items, _) ->
            List.iter
              (function
                | Ast.Case_value v -> expr v
                | Ast.Case_range (lo, hi) ->
                  Option.iter expr lo;
                  Option.iter expr hi)
              items)
          arms
      | Ast.Do { from_; to_; step; _ } ->
        expr from_;
        expr to_;
        Option.iter expr step
      | Ast.Do_while { cond; _ } -> expr cond
      | Ast.Print_stmt args -> List.iter expr args
      | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
    blk;
  (!fp_ops, !conv)

(* ------------------------------------------------------------------ *)
(* Scalar and array dependence scan over a loop body.                  *)

(* subscript vectors compared syntactically through the unparser *)
let subscript_key idx = String.concat "," (List.map Unparse.expr idx)

let array_dependences st ~in_proc body =
  let writes : (string, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let reads : (string, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let note tbl name key =
    match Hashtbl.find_opt tbl name with
    | Some l -> l := key :: !l
    | None -> Hashtbl.add tbl name (ref [ key ])
  in
  let is_array name =
    match Symtab.lookup_var st ~in_proc name with
    | Some { v_dims = _ :: _; _ } -> true
    | Some _ | None -> false
  in
  let rec expr = function
    | Ast.Index (name, args) ->
      List.iter expr args;
      if is_array name then note reads name (subscript_key args)
    | Ast.Var name -> if is_array name then note reads name "<whole>"
    | Ast.Unop (_, e) -> expr e
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ -> ()
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Assign (lhs, rhs) ->
        expr rhs;
        (match lhs with
        | Ast.Lvar v -> if is_array v then note writes v "<whole>"
        | Ast.Lindex (v, idx) ->
          List.iter expr idx;
          if is_array v then note writes v (subscript_key idx))
      | Ast.Call (_, args) ->
        (* conservatively, array arguments may be written by the callee *)
        List.iter
          (fun a ->
            expr a;
            match a with
            | Ast.Var v when is_array v -> note writes v "<whole>"
            | _ -> ())
          args
      | Ast.If (arms, _) -> List.iter (fun (c, _) -> expr c) arms
      | Ast.Select { selector; arms; _ } ->
        expr selector;
        List.iter
          (fun (items, _) ->
            List.iter
              (function
                | Ast.Case_value v -> expr v
                | Ast.Case_range (lo, hi) ->
                  Option.iter expr lo;
                  Option.iter expr hi)
              items)
          arms
      | Ast.Do { from_; to_; step; _ } ->
        expr from_;
        expr to_;
        Option.iter expr step
      | Ast.Do_while { cond; _ } -> expr cond
      | Ast.Print_stmt args -> List.iter expr args
      | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
    body;
  Hashtbl.fold
    (fun name wkeys acc ->
      match Hashtbl.find_opt reads name with
      | None -> acc
      | Some rkeys ->
        let wk = List.sort_uniq compare !wkeys in
        let rk = List.sort_uniq compare !rkeys in
        (* dependence-free only when every access uses one identical key *)
        if List.length wk = 1 && rk = wk && List.hd wk <> "<whole>" then acc
        else Carried_array_dependence name :: acc)
    writes []

(* Recognize [s = s + e], [s = s * e], [s = min(s, e)], [s = max(s, e)]. *)
let reduction_pattern (s : Ast.stmt) =
  match s.node with
  | Ast.Assign (Ast.Lvar v, rhs) -> (
    match rhs with
    | Ast.Binop ((Ast.Add | Ast.Mul), Ast.Var v', e) when v' = v ->
      if List.mem v (Ast.expr_vars [] e) then None else Some v
    | Ast.Binop ((Ast.Add | Ast.Mul), e, Ast.Var v') when v' = v ->
      if List.mem v (Ast.expr_vars [] e) then None else Some v
    | Ast.Index (("min" | "max"), [ Ast.Var v'; e ]) when v' = v ->
      if List.mem v (Ast.expr_vars [] e) then None else Some v
    | Ast.Index (("min" | "max"), [ e; Ast.Var v' ]) when v' = v ->
      if List.mem v (Ast.expr_vars [] e) then None else Some v
    | _ -> None)
  | _ -> None

(* Scalars read in an iteration before being assigned in that iteration
   (other than via a recognized reduction) carry values between
   iterations. The scan walks statements in order, tracking definitely-
   assigned scalars; [if] branches merge by intersection.

   A scalar qualifies as a reduction only when every one of its
   assignments matches the reduction pattern and it is never read outside
   those assignments — an accumulator whose running value feeds other
   computation (e.g. funarc's [d1]) is a true recurrence. *)
let scalar_dependences st ~in_proc ~induction body =
  let is_scalar name =
    match Symtab.lookup_var st ~in_proc name with
    | Some { v_dims = []; v_base = Ast.Treal _ | Ast.Tinteger; v_parameter = false; _ } -> true
    | Some _ | None -> false
  in
  let assigned_somewhere = Hashtbl.create 8 in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Assign (Ast.Lvar v, _) when is_scalar v -> Hashtbl.replace assigned_somewhere v ()
      | _ -> ())
    body;
  (* disqualify reduction candidates that are read or re-assigned outside
     their own reduction statement *)
  let disqualified = Hashtbl.create 8 in
  let candidates = Hashtbl.create 8 in
  Ast.iter_stmts
    (fun s ->
      match reduction_pattern s with
      | Some v ->
        Hashtbl.replace candidates v ();
        (* reads of the non-accumulator operand still disqualify others *)
        (match s.Ast.node with
        | Ast.Assign (_, rhs) ->
          List.iter
            (fun r -> if r <> v then Hashtbl.replace disqualified r ())
            (Ast.expr_vars [] rhs)
        | _ -> ())
      | None -> (
        (* reads and non-reduction writes in this statement disqualify *)
        let note_var v = Hashtbl.replace disqualified v () in
        (match s.Ast.node with
        | Ast.Assign (lhs, rhs) ->
          List.iter note_var (Ast.expr_vars [] rhs);
          (match lhs with
          | Ast.Lvar v -> note_var v
          | Ast.Lindex (_, idx) -> List.iter (fun e -> List.iter note_var (Ast.expr_vars [] e)) idx)
        | Ast.Call (_, args) -> List.iter (fun a -> List.iter note_var (Ast.expr_vars [] a)) args
        | Ast.If (arms, _) -> List.iter (fun (c, _) -> List.iter note_var (Ast.expr_vars [] c)) arms
        | Ast.Select { selector; arms; _ } ->
          List.iter note_var (Ast.expr_vars [] selector);
          List.iter
            (fun (items, _) ->
              List.iter
                (function
                  | Ast.Case_value v -> List.iter note_var (Ast.expr_vars [] v)
                  | Ast.Case_range (lo, hi) ->
                    Option.iter (fun e -> List.iter note_var (Ast.expr_vars [] e)) lo;
                    Option.iter (fun e -> List.iter note_var (Ast.expr_vars [] e)) hi)
                items)
            arms
        | Ast.Do { from_; to_; step; _ } ->
          List.iter
            (fun e -> List.iter note_var (Ast.expr_vars [] e))
            (from_ :: to_ :: Option.to_list step)
        | Ast.Do_while { cond; _ } -> List.iter note_var (Ast.expr_vars [] cond)
        | Ast.Print_stmt args -> List.iter (fun a -> List.iter note_var (Ast.expr_vars [] a)) args
        | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())))
    body;
  let valid_reduction v = Hashtbl.mem candidates v && not (Hashtbl.mem disqualified v) in
  let reductions = ref [] in
  let bad = ref [] in
  let module SS = Set.Make (String) in
  let note_read defined v =
    if
      is_scalar v && v <> induction
      && Hashtbl.mem assigned_somewhere v
      && (not (SS.mem v defined))
      && (not (List.mem v !reductions))
      && not (List.mem v !bad)
    then bad := v :: !bad
  in
  let reads_of_expr e = List.sort_uniq compare (Ast.expr_vars [] e) in
  let rec stmt defined (s : Ast.stmt) =
    match reduction_pattern s with
    | Some v when valid_reduction v ->
      if not (List.mem v !reductions) then reductions := v :: !reductions;
      (* operand reads still count *)
      (match s.node with
      | Ast.Assign (_, rhs) ->
        List.iter (fun r -> if r <> v then note_read defined r) (reads_of_expr rhs)
      | _ -> ());
      defined
    | Some _ | None -> (
      match s.node with
      | Ast.Assign (lhs, rhs) ->
        List.iter (note_read defined) (reads_of_expr rhs);
        (match lhs with
        | Ast.Lvar v when is_scalar v -> SS.add v defined
        | Ast.Lvar _ -> defined
        | Ast.Lindex (_, idx) ->
          List.iter (fun e -> List.iter (note_read defined) (reads_of_expr e)) idx;
          defined)
      | Ast.Call (_, args) ->
        (* scalar lvalue arguments may be defined by the callee; scalar
           value reads count as reads *)
        List.fold_left
          (fun defined a ->
            List.iter (note_read defined) (reads_of_expr a);
            match a with
            | Ast.Var v when is_scalar v -> SS.add v defined
            | _ -> defined)
          defined args
      | Ast.If (arms, els) ->
        List.iter (fun (c, _) -> List.iter (note_read defined) (reads_of_expr c)) arms;
        let branch_out =
          List.map (fun (_, blk) -> block defined blk) arms @ [ block defined els ]
        in
        (match branch_out with
        | [] -> defined
        | first :: rest -> List.fold_left SS.inter first rest)
      | Ast.Select { selector; arms; default } ->
        List.iter (note_read defined) (reads_of_expr selector);
        List.iter
          (fun (items, _) ->
            List.iter
              (function
                | Ast.Case_value v -> List.iter (note_read defined) (reads_of_expr v)
                | Ast.Case_range (lo, hi) ->
                  Option.iter (fun e -> List.iter (note_read defined) (reads_of_expr e)) lo;
                  Option.iter (fun e -> List.iter (note_read defined) (reads_of_expr e)) hi)
              items)
          arms;
        let branch_out =
          List.map (fun (_, blk) -> block defined blk) arms @ [ block defined default ]
        in
        (match branch_out with
        | [] -> defined
        | first :: rest -> List.fold_left SS.inter first rest)
      | Ast.Do { body = b; from_; to_; step; var; _ } ->
        List.iter
          (fun e -> List.iter (note_read defined) (reads_of_expr e))
          (from_ :: to_ :: Option.to_list step);
        ignore (block (SS.add var defined) b);
        defined
      | Ast.Do_while { cond; body = b; _ } ->
        List.iter (note_read defined) (reads_of_expr cond);
        ignore (block defined b);
        defined
      | Ast.Print_stmt args ->
        List.iter (fun a -> List.iter (note_read defined) (reads_of_expr a)) args;
        defined
      | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> defined)
  and block defined blk = List.fold_left stmt defined blk in
  ignore (block SS.empty body);
  (List.rev !bad, List.rev !reductions)

(* ------------------------------------------------------------------ *)

let analyze ?(inline_stmt_limit = 16) st : report list =
  let reports = ref [] in
  let analyze_loop ~proc ~loc ~id ~induction body =
    let blockers = ref [] in
    let add b = blockers := b :: !blockers in
    if has_loop body then add Nested_loop;
    let irregular = ref false in
    Ast.iter_stmts
      (fun s ->
        match s.Ast.node with
        | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _
        | Ast.Select _ (* multiway branches defeat if-conversion *) ->
          irregular := true
        | _ -> ())
      body;
    if !irregular then add Irregular_control_flow;
    List.iter add (array_dependences st ~in_proc:proc body);
    let scalar_bad, reductions =
      scalar_dependences st ~in_proc:proc ~induction body
    in
    List.iter (fun v -> add (Carried_scalar_dependence v)) scalar_bad;
    let inlined = ref [] in
    let fp_extra = ref 0 in
    let conv_extra = ref 0 in
    List.iter
      (fun (callee, args) ->
        match Symtab.find_proc st callee with
        | None -> add (Non_inlinable_call callee)
        | Some p ->
          if
            inlinable st ~inline_stmt_limit p
            && kind_uniform_boundary st ~in_proc:proc callee args
          then begin
            inlined := callee :: !inlined;
            let f, c = count_sites st ~in_proc:(Some p.Ast.proc_name) p.Ast.proc_body in
            fp_extra := !fp_extra + f;
            conv_extra := !conv_extra + c
          end
          else add (Non_inlinable_call callee))
      (user_calls st ~in_proc:proc body);
    let fp_ops, conv_sites = count_sites st ~in_proc:proc body in
    reports :=
      { loop_id = id; proc; loc; blockers = List.rev !blockers; fp_ops = fp_ops + !fp_extra;
        conv_sites = conv_sites + !conv_extra; reductions;
        inlined_calls = List.sort_uniq compare !inlined }
      :: !reports
  in
  let rec walk ~proc blk =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.node with
        | Ast.Do { id; var; body; _ } ->
          analyze_loop ~proc ~loc:s.loc ~id ~induction:var body;
          walk ~proc body
        | Ast.Do_while { id; body; _ } ->
          reports :=
            { loop_id = id; proc; loc = s.loc; blockers = [ Do_while_loop ];
              fp_ops = fst (count_sites st ~in_proc:proc body);
              conv_sites = snd (count_sites st ~in_proc:proc body); reductions = [];
              inlined_calls = [] }
            :: !reports;
          walk ~proc body
        | Ast.If (arms, els) ->
          List.iter (fun (_, b) -> walk ~proc b) arms;
          walk ~proc els
        | Ast.Select { arms; default; _ } ->
          List.iter (fun (_, b) -> walk ~proc b) arms;
          walk ~proc default
        | Ast.Assign _ | Ast.Call _ | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt
        | Ast.Stop_stmt _ | Ast.Print_stmt _ ->
          ())
      blk
  in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main m -> walk ~proc:None m.main_body
      | Ast.Module _ -> ());
      List.iter
        (fun (p : Ast.proc) -> walk ~proc:(Some p.proc_name) p.proc_body)
        (Ast.procs_of_unit u))
    (Symtab.program st);
  List.sort (fun a b -> compare a.loop_id b.loop_id) !reports

let report_for reports id = List.find_opt (fun r -> r.loop_id = id) reports
