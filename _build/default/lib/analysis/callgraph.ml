open Fortran

let case_item_exprs items =
  List.concat_map
    (function
      | Ast.Case_value v -> [ v ]
      | Ast.Case_range (lo, hi) -> Option.to_list lo @ Option.to_list hi)
    items


type t = {
  edges : (string option, (string, int) Hashtbl.t) Hashtbl.t;
  redges : (string, (string option, int) Hashtbl.t) Hashtbl.t;
  procs : string list;
}

(* Function references share syntax with array indexing; a name is a call
   iff it does not resolve to a variable and is not an intrinsic. *)
let calls_in_block st ~caller blk =
  let acc : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump name =
    Hashtbl.replace acc name (1 + Option.value ~default:0 (Hashtbl.find_opt acc name))
  in
  let rec expr = function
    | Ast.Index (name, args) ->
      List.iter expr args;
      if (not (Builtins.is_intrinsic_function name))
         && Option.is_none (Symtab.lookup_var st ~in_proc:caller name)
         && Option.is_some (Symtab.find_proc st name)
      then bump name
    | Ast.Unop (_, e) -> expr e
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
  in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Call (name, args) ->
        List.iter expr args;
        if (not (Builtins.is_intrinsic_subroutine name)) && Option.is_some (Symtab.find_proc st name)
        then bump name
      | Ast.Assign (lhs, rhs) ->
        (match lhs with Ast.Lvar _ -> () | Ast.Lindex (_, idx) -> List.iter expr idx);
        expr rhs
      | Ast.If (arms, _) -> List.iter (fun (c, _) -> expr c) arms
      | Ast.Select { selector; arms; _ } ->
        expr selector;
        List.iter (fun (items, _) -> List.iter expr (case_item_exprs items)) arms
      | Ast.Do { from_; to_; step; _ } ->
        expr from_;
        expr to_;
        Option.iter expr step
      | Ast.Do_while { cond; _ } -> expr cond
      | Ast.Print_stmt args -> List.iter expr args
      | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
    blk;
  acc

let build st : t =
  let prog = Symtab.program st in
  let edges = Hashtbl.create 32 in
  let redges = Hashtbl.create 32 in
  let procs = ref [] in
  let record caller blk =
    let cs = calls_in_block st ~caller blk in
    Hashtbl.replace edges caller cs;
    Hashtbl.iter
      (fun callee n ->
        let back =
          match Hashtbl.find_opt redges callee with
          | Some h -> h
          | None ->
            let h = Hashtbl.create 4 in
            Hashtbl.add redges callee h;
            h
        in
        Hashtbl.replace back caller (n + Option.value ~default:0 (Hashtbl.find_opt back caller)))
      cs
  in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main m -> record None m.main_body
      | Ast.Module _ -> ());
      List.iter
        (fun (p : Ast.proc) ->
          procs := p.proc_name :: !procs;
          record (Some p.proc_name) p.proc_body)
        (Ast.procs_of_unit u))
    prog;
  { edges; redges; procs = List.rev !procs }

let callees t caller =
  match Hashtbl.find_opt t.edges caller with
  | None -> []
  | Some h -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare

let callers t callee =
  match Hashtbl.find_opt t.redges callee with
  | None -> []
  | Some h -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare

let reachable t ~roots =
  let seen = Hashtbl.create 16 in
  let rec go name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      List.iter (fun (c, _) -> go c) (callees t (Some name))
    end
  in
  List.iter go roots;
  List.filter (Hashtbl.mem seen) t.procs

let is_recursive t name =
  let seen = Hashtbl.create 8 in
  let rec go n =
    List.exists
      (fun (c, _) ->
        c = name
        ||
        if Hashtbl.mem seen c then false
        else begin
          Hashtbl.add seen c ();
          go c
        end)
      (callees t (Some n))
  in
  go name
