(** Taint-based program reduction (Sec. III-C).

    ROSE generates uncompilable output for unsupported Fortran constructs;
    the paper's key insight is that the transformation only needs a
    {e subset} of the program: (1) the statements declaring target
    variables, (2) statements passing targets to procedure calls, (3)
    statements defining symbols referenced by 1-2 (recursively), (4) the
    imports making those symbols visible, and (5) the enclosing program
    structures. The reduction applies a taint to the targets and
    propagates those rules to a fixed point; tainted statements remain.

    The reduced program is a valid, parseable program that contains every
    target declaration and every call site involving a target, and it
    unparse/reparse round-trips — properties checked by the test suite.
    It exists for transformation, not execution (exactly as in the paper,
    where the reduced source is transformed and re-inserted into the full
    model). *)

type stats = {
  kept_stmts : int;
  total_stmts : int;
  kept_procs : int;
  total_procs : int;
  tainted_vars : int;
}

val reduce :
  Fortran.Symtab.t -> targets:(Fortran.Symtab.scope * string) list -> Fortran.Ast.program * stats
(** [reduce st ~targets] returns the reduced program and reduction
    statistics. [targets] are scope-qualified variable names (the search
    atoms). *)

val pp_stats : Format.formatter -> stats -> unit
