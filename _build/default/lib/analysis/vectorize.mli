(** Loop vectorization analysis — the stand-in for a compiler's
    vectorization report.

    Criterion (1) of the paper's "three key criteria for a tunable hotspot"
    is {e source code that supports compiler auto-vectorization}
    (Sec. V). This module decides, per [do] loop, whether the loop would be
    auto-vectorized, and why not when it would not. The cost model charges
    SIMD rates only inside loops this analysis approves, and the paper's
    recommended static variant filter ("filter out variants that have less
    vectorization than the baseline", Sec. V) is implemented on top of it.

    A loop vectorizes when:
    - it is a counted [do] (not [do while]) with no [exit]/[cycle]/[return];
    - it contains no nested loop (the innermost loop is the candidate);
    - every array it both reads and writes is accessed at syntactically
      identical subscripts (no loop-carried array dependence);
    - every scalar it assigns is either written before it is read in each
      iteration (privatizable) or is a recognized reduction ([s = s + e],
      [s = s * e], [s = min/max(s, e)]);
    - every call in the body is an intrinsic, or a user procedure that is
      inlinable ({!inlinable}) with exactly matching real kinds at the call
      boundary — a mixed-precision boundary forces a wrapper, defeats
      inlining, and kills vectorization (the paper's MPAS-A [flux]
      observation, Sec. IV-B).

    Mixed-precision operations inside a vectorizable loop do not block
    vectorization outright, but each one costs packed conversion
    instructions; [conv_sites]/[fp_ops] quantifies that ratio and the cost
    model disables vectorization above a threshold. *)

type blocker =
  | Do_while_loop
  | Irregular_control_flow  (** [exit], [cycle] or [return] in the body *)
  | Nested_loop
  | Carried_array_dependence of string  (** offending array *)
  | Carried_scalar_dependence of string  (** scalar read before assigned *)
  | Non_inlinable_call of string

type report = {
  loop_id : int;  (** {!Fortran.Ast.stmt_node.Do} id *)
  proc : string option;  (** enclosing procedure, [None] for the main body *)
  loc : Fortran.Loc.t;
  blockers : blocker list;  (** empty = vectorizable *)
  fp_ops : int;  (** static FP-arithmetic sites in the body (inlined callees included) *)
  conv_sites : int;  (** static mixed-kind sites (kind conversions), literals excluded *)
  reductions : string list;  (** recognized reduction scalars *)
  inlined_calls : string list;  (** calls treated as inlined *)
}

val vectorizable : report -> bool

val pp_blocker : Format.formatter -> blocker -> unit
val pp_report : Format.formatter -> report -> unit

val inlinable :
  Fortran.Symtab.t -> inline_stmt_limit:int -> Fortran.Ast.proc -> bool
(** Whether the procedure body is small and simple enough to inline: no
    loops, at most [inline_stmt_limit] statements, only intrinsic or
    (recursively) inlinable calls, and not recursive. *)

val analyze : ?inline_stmt_limit:int -> Fortran.Symtab.t -> report list
(** Reports for every loop in the program, in source order. Inner loops of
    a nest are analyzed in their own right; outer loops report
    {!Nested_loop}. Default [inline_stmt_limit] is [16]. *)

val report_for : report list -> int -> report option
(** Lookup by loop id. *)
