lib/analysis/callgraph.mli: Fortran
