lib/analysis/flowgraph.mli: Format Fortran
