lib/analysis/static_cost.mli: Fortran
