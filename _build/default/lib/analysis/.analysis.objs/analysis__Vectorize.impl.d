lib/analysis/vectorize.ml: Ast Builtins Format Fortran Hashtbl List Loc Option Set String Symtab Typecheck Unparse
