lib/analysis/defuse.ml: Ast Fortran Hashtbl List Loc Option Symtab
