lib/analysis/defuse.mli: Fortran
