lib/analysis/flowgraph.ml: Ast Builtins Format Fortran Hashtbl List Loc Option Symtab Typecheck Unparse
