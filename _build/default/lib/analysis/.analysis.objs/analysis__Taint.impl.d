lib/analysis/taint.ml: Ast Builtins Format Fortran List Option Set Symtab
