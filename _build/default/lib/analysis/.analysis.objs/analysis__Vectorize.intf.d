lib/analysis/vectorize.mli: Format Fortran
