lib/analysis/taint.mli: Format Fortran
