lib/analysis/callgraph.ml: Ast Builtins Fortran Hashtbl List Option Symtab
