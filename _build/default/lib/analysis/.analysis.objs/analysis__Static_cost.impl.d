lib/analysis/static_cost.ml: Flowgraph List Vectorize
