type params = {
  loop_weight : float;
  element_weight : float;
  scalar_cast_cost : float;
  unknown_elements : int;
}

let default_params =
  { loop_weight = 100.0; element_weight = 1.0; scalar_cast_cost = 1.0; unknown_elements = 1000 }

type verdict = {
  penalty : float;
  vector_loops : int;
  mismatched_edges : int;
}

let evaluate ?(params = default_params) ?(conv_ratio_threshold = 0.34) st =
  let graph = Flowgraph.build st in
  let bad = Flowgraph.violations graph in
  let penalty =
    List.fold_left
      (fun acc (e : Flowgraph.edge) ->
        let calls = params.loop_weight ** float_of_int e.Flowgraph.e_loop_depth in
        let size =
          match e.Flowgraph.e_dummy.Flowgraph.n_elements with
          | Some n when e.Flowgraph.e_dummy.Flowgraph.n_is_array -> float_of_int n
          | None when e.Flowgraph.e_dummy.Flowgraph.n_is_array ->
            float_of_int params.unknown_elements
          | Some _ | None -> 0.0
        in
        acc +. (calls *. (params.scalar_cast_cost +. (params.element_weight *. size))))
      0.0 bad
  in
  let reports = Vectorize.analyze st in
  let vector_loops =
    List.length
      (List.filter
         (fun (r : Vectorize.report) ->
           Vectorize.vectorizable r
           &&
           let ratio =
             if r.Vectorize.fp_ops = 0 then 0.0
             else float_of_int r.Vectorize.conv_sites /. float_of_int r.Vectorize.fp_ops
           in
           ratio <= conv_ratio_threshold)
         reports)
  in
  { penalty; vector_loops; mismatched_edges = List.length bad }

let predicts_worse ~baseline ~candidate ~penalty_budget =
  candidate.vector_loops < baseline.vector_loops || candidate.penalty > penalty_budget
