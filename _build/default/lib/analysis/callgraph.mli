(** Static call graph over user procedures.

    Edges record the static number of call sites; intrinsic functions and
    subroutines are excluded. Used by the taint-based program reduction
    (which must pull in the definitions of every referenced procedure), by
    the inlining heuristic of the cost model, and by the static cost model
    of Sec. V (penalties as a function of call volume). *)

type t

val build : Fortran.Symtab.t -> t

val callees : t -> string option -> (string * int) list
(** [callees g (Some p)] lists procedures called from procedure [p] with
    their static call-site counts; [callees g None] does so for the main
    program body. *)

val callers : t -> string -> (string option * int) list

val reachable : t -> roots:string list -> string list
(** All procedures reachable from the given roots (roots included),
    in a deterministic order. *)

val is_recursive : t -> string -> bool
(** Whether the procedure can reach itself through the call graph. *)
