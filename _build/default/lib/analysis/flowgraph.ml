open Fortran

let case_item_exprs items =
  List.concat_map
    (function
      | Ast.Case_value v -> [ v ]
      | Ast.Case_range (lo, hi) -> Option.to_list lo @ Option.to_list hi)
    items


type node = {
  n_var : string;
  n_scope : Symtab.scope;
  n_kind : Ast.real_kind;
  n_is_array : bool;
  n_elements : int option;
}

type edge = {
  e_caller : string option;
  e_callee : string;
  e_actual : node option;
  e_actual_expr : Ast.expr;
  e_dummy : node;
  e_loop_depth : int;
  e_loc : Loc.t;
}

type t = {
  st : Symtab.t;
  node_tbl : (Symtab.scope * string, node) Hashtbl.t;
  all_edges : edge list;
}

let node_key (s : Symtab.scope) v = (s, v)

let mk_node st (info : Symtab.var_info) ~in_proc =
  match info.v_base with
  | Ast.Treal k ->
    Some
      {
        n_var = info.v_name;
        n_scope = info.v_scope;
        n_kind = k;
        n_is_array = info.v_dims <> [];
        n_elements = Typecheck.static_elements st ~in_proc info;
      }
  | Ast.Tinteger | Ast.Tlogical -> None

let build st : t =
  let node_tbl = Hashtbl.create 64 in
  let prog = Symtab.program st in
  (* nodes: every FP variable declaration in the program *)
  let add_scope scope ~in_proc =
    List.iter
      (fun (info : Symtab.var_info) ->
        if not info.v_parameter then
          match mk_node st info ~in_proc with
          | Some n -> Hashtbl.replace node_tbl (node_key scope info.v_name) n
          | None -> ())
      (Symtab.vars_of_scope st scope)
  in
  List.iter
    (fun u ->
      let uname = Ast.unit_name u in
      add_scope (Symtab.Unit_scope uname) ~in_proc:None;
      List.iter
        (fun (p : Ast.proc) ->
          add_scope (Symtab.Proc_scope p.proc_name) ~in_proc:(Some p.proc_name))
        (Ast.procs_of_unit u))
    prog;
  (* edges: every parameter-passing instance with a real dummy *)
  let edges = ref [] in
  let handle_call ~caller ~depth ~loc name args =
    match Symtab.find_proc st name with
    | None -> ()
    | Some p ->
      List.iteri
        (fun i actual ->
          match List.nth_opt p.Ast.params i with
          | None -> ()
          | Some dummy -> (
            match Hashtbl.find_opt node_tbl (node_key (Symtab.Proc_scope name) dummy) with
            | None -> ()  (* non-real dummy *)
            | Some dnode ->
              let anode =
                match actual with
                | Ast.Var v -> (
                  match Symtab.lookup_var st ~in_proc:caller v with
                  | Some info -> Hashtbl.find_opt node_tbl (node_key info.v_scope v)
                  | None -> None)
                | _ -> None
              in
              edges :=
                { e_caller = caller; e_callee = name; e_actual = anode; e_actual_expr = actual;
                  e_dummy = dnode; e_loop_depth = depth; e_loc = loc }
                :: !edges))
        args
  in
  let rec walk_expr ~caller ~depth ~loc e =
    match e with
    | Ast.Index (name, args) ->
      List.iter (walk_expr ~caller ~depth ~loc) args;
      if (not (Builtins.is_intrinsic_function name))
         && Option.is_none (Symtab.lookup_var st ~in_proc:caller name)
      then handle_call ~caller ~depth ~loc name args
    | Ast.Unop (_, a) -> walk_expr ~caller ~depth ~loc a
    | Ast.Binop (_, a, b) ->
      walk_expr ~caller ~depth ~loc a;
      walk_expr ~caller ~depth ~loc b
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
  in
  let rec walk_block ~caller ~depth blk =
    List.iter
      (fun (s : Ast.stmt) ->
        let loc = s.loc in
        match s.node with
        | Ast.Call (name, args) ->
          List.iter (walk_expr ~caller ~depth ~loc) args;
          if not (Builtins.is_intrinsic_subroutine name) then
            handle_call ~caller ~depth ~loc name args
        | Ast.Assign (lhs, rhs) ->
          (match lhs with
          | Ast.Lvar _ -> ()
          | Ast.Lindex (_, idx) -> List.iter (walk_expr ~caller ~depth ~loc) idx);
          walk_expr ~caller ~depth ~loc rhs
        | Ast.If (arms, els) ->
          List.iter
            (fun (c, b) ->
              walk_expr ~caller ~depth ~loc c;
              walk_block ~caller ~depth b)
            arms;
          walk_block ~caller ~depth els
        | Ast.Select { selector; arms; default } ->
          walk_expr ~caller ~depth ~loc selector;
          List.iter
            (fun (items, b) ->
              List.iter (walk_expr ~caller ~depth ~loc) (case_item_exprs items);
              walk_block ~caller ~depth b)
            arms;
          walk_block ~caller ~depth default
        | Ast.Do { from_; to_; step; body; _ } ->
          List.iter (walk_expr ~caller ~depth ~loc) (from_ :: to_ :: Option.to_list step);
          walk_block ~caller ~depth:(depth + 1) body
        | Ast.Do_while { cond; body; _ } ->
          walk_expr ~caller ~depth ~loc cond;
          walk_block ~caller ~depth:(depth + 1) body
        | Ast.Print_stmt args -> List.iter (walk_expr ~caller ~depth ~loc) args
        | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
      blk
  in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main m -> walk_block ~caller:None ~depth:0 m.main_body
      | Ast.Module _ -> ());
      List.iter
        (fun (p : Ast.proc) -> walk_block ~caller:(Some p.proc_name) ~depth:0 p.proc_body)
        (Ast.procs_of_unit u))
    prog;
  { st; node_tbl; all_edges = List.rev !edges }

let nodes t = Hashtbl.fold (fun _ n acc -> n :: acc) t.node_tbl []
let edges t = t.all_edges
let node_of_var t ~scope v = Hashtbl.find_opt t.node_tbl (node_key scope v)

let edge_kinds t (e : edge) =
  let actual_kind =
    match e.e_actual with
    | Some n -> Some n.n_kind
    | None -> (
      match Typecheck.infer t.st ~in_proc:e.e_caller e.e_actual_expr with
      | Typecheck.Real k -> Some k
      | Typecheck.Integer | Typecheck.Logical | Typecheck.Str -> None
      | exception Typecheck.Error _ -> None)
  in
  (actual_kind, e.e_dummy.n_kind)

let violations t =
  List.filter
    (fun e ->
      match edge_kinds t e with
      | Some ak, dk -> ak <> dk
      | None, _ -> false)
    t.all_edges

let pp_edge ppf e =
  Format.fprintf ppf "%s -> %s.%s (depth %d)%s"
    (match e.e_actual with
    | Some n -> n.n_var
    | None -> "<" ^ Unparse.expr e.e_actual_expr ^ ">")
    e.e_callee e.e_dummy.n_var e.e_loop_depth
    (match e.e_caller with Some c -> " in " ^ c | None -> " in main")
