open Fortran

let case_item_exprs items =
  List.concat_map
    (function
      | Ast.Case_value v -> [ v ]
      | Ast.Case_range (lo, hi) -> Option.to_list lo @ Option.to_list hi)
    items


type occurrence = { o_loc : Loc.t; o_loop_depth : int; o_proc : string option }

type summary = {
  var : string;
  scope : Symtab.scope;
  defs : occurrence list;
  uses : occurrence list;
}

type acc = { mutable adefs : occurrence list; mutable auses : occurrence list }

let analyze st : summary list =
  let table : (Symtab.scope * string, acc) Hashtbl.t = Hashtbl.create 64 in
  let get key =
    match Hashtbl.find_opt table key with
    | Some a -> a
    | None ->
      let a = { adefs = []; auses = [] } in
      Hashtbl.add table key a;
      a
  in
  let note ~in_proc ~depth ~loc ~def name =
    match Symtab.lookup_var st ~in_proc name with
    | Some info when not info.v_parameter ->
      let a = get (info.v_scope, name) in
      let o = { o_loc = loc; o_loop_depth = depth; o_proc = in_proc } in
      if def then a.adefs <- o :: a.adefs else a.auses <- o :: a.auses
    | Some _ | None -> ()
  in
  let rec expr ~in_proc ~depth ~loc e =
    match e with
    | Ast.Var v -> note ~in_proc ~depth ~loc ~def:false v
    | Ast.Index (name, args) ->
      List.iter (expr ~in_proc ~depth ~loc) args;
      note ~in_proc ~depth ~loc ~def:false name
    | Ast.Unop (_, a) -> expr ~in_proc ~depth ~loc a
    | Ast.Binop (_, a, b) ->
      expr ~in_proc ~depth ~loc a;
      expr ~in_proc ~depth ~loc b
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ -> ()
  in
  let rec block ~in_proc ~depth blk =
    List.iter
      (fun (s : Ast.stmt) ->
        let loc = s.loc in
        match s.node with
        | Ast.Assign (lhs, rhs) ->
          expr ~in_proc ~depth ~loc rhs;
          (match lhs with
          | Ast.Lvar v -> note ~in_proc ~depth ~loc ~def:true v
          | Ast.Lindex (v, idx) ->
            List.iter (expr ~in_proc ~depth ~loc) idx;
            note ~in_proc ~depth ~loc ~def:true v)
        | Ast.Call (name, args) ->
          ignore name;
          (* a variable actual may be defined by the callee: count as both *)
          List.iter
            (fun a ->
              expr ~in_proc ~depth ~loc a;
              match a with
              | Ast.Var v -> note ~in_proc ~depth ~loc ~def:true v
              | _ -> ())
            args
        | Ast.If (arms, els) ->
          List.iter
            (fun (c, b) ->
              expr ~in_proc ~depth ~loc c;
              block ~in_proc ~depth b)
            arms;
          block ~in_proc ~depth els
        | Ast.Select { selector; arms; default } ->
          expr ~in_proc ~depth ~loc selector;
          List.iter
            (fun (items, b) ->
              List.iter (expr ~in_proc ~depth ~loc) (case_item_exprs items);
              block ~in_proc ~depth b)
            arms;
          block ~in_proc ~depth default
        | Ast.Do { var; from_; to_; step; body; _ } ->
          note ~in_proc ~depth ~loc ~def:true var;
          List.iter (expr ~in_proc ~depth ~loc) (from_ :: to_ :: Option.to_list step);
          block ~in_proc ~depth:(depth + 1) body
        | Ast.Do_while { cond; body; _ } ->
          expr ~in_proc ~depth ~loc cond;
          block ~in_proc ~depth:(depth + 1) body
        | Ast.Print_stmt args -> List.iter (expr ~in_proc ~depth ~loc) args
        | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
      blk
  in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main m -> block ~in_proc:None ~depth:0 m.main_body
      | Ast.Module _ -> ());
      List.iter
        (fun (p : Ast.proc) -> block ~in_proc:(Some p.proc_name) ~depth:0 p.proc_body)
        (Ast.procs_of_unit u))
    (Symtab.program st);
  Hashtbl.fold
    (fun (scope, var) a l ->
      { var; scope; defs = List.rev a.adefs; uses = List.rev a.auses } :: l)
    table []
  |> List.sort compare

let for_var summaries ~scope v = List.find_opt (fun s -> s.scope = scope && s.var = v) summaries
let max_use_depth s = List.fold_left (fun m o -> max m o.o_loop_depth) 0 s.uses
