open Fortran

type stats = {
  kept_stmts : int;
  total_stmts : int;
  kept_procs : int;
  total_procs : int;
  tainted_vars : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "statements %d/%d, procedures %d/%d, tainted vars %d" s.kept_stmts
    s.total_stmts s.kept_procs s.total_procs s.tainted_vars

module Key = struct
  type t = Symtab.scope * string

  let compare = compare
end

module KS = Set.Make (Key)

(* scope-qualified resolution of a name as seen from [in_proc] *)
let qualify st ~in_proc name : Key.t option =
  match Symtab.lookup_var st ~in_proc name with
  | Some info -> Some (info.v_scope, name)
  | None -> None

let stmt_refs st ~in_proc (s : Ast.stmt) =
  let vars = ref [] in
  let procs = ref [] in
  let rec expr e =
    match e with
    | Ast.Var v -> vars := v :: !vars
    | Ast.Index (name, args) ->
      List.iter expr args;
      if Option.is_some (Symtab.lookup_var st ~in_proc name) then vars := name :: !vars
      else if not (Builtins.is_intrinsic_function name) then procs := name :: !procs
    | Ast.Unop (_, a) -> expr a
    | Ast.Binop (_, a, b) ->
      expr a;
      expr b
    | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ -> ()
  in
  (match s.node with
  | Ast.Assign (lhs, rhs) ->
    (match lhs with
    | Ast.Lvar v -> vars := v :: !vars
    | Ast.Lindex (v, idx) ->
      vars := v :: !vars;
      List.iter expr idx);
    expr rhs
  | Ast.Call (name, args) ->
    if not (Builtins.is_intrinsic_subroutine name) then procs := name :: !procs;
    List.iter expr args
  | Ast.If (arms, _) -> List.iter (fun (c, _) -> expr c) arms
  | Ast.Select { selector; arms; _ } ->
    expr selector;
    List.iter
      (fun (items, _) ->
        List.iter
          (function
            | Ast.Case_value v -> expr v
            | Ast.Case_range (lo, hi) ->
              Option.iter expr lo;
              Option.iter expr hi)
          items)
      arms
  | Ast.Do { var; from_; to_; step; _ } ->
    vars := var :: !vars;
    List.iter expr (from_ :: to_ :: Option.to_list step)
  | Ast.Do_while { cond; _ } -> expr cond
  | Ast.Print_stmt args -> List.iter expr args
  | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ());
  (List.filter_map (qualify st ~in_proc) !vars, !procs)

(* Does this statement (not descending) reference a tainted symbol or call
   a tainted procedure? *)
let stmt_tainted st ~in_proc ~tvars ~tprocs s =
  let vars, procs = stmt_refs st ~in_proc s in
  List.exists (fun k -> KS.mem k tvars) vars
  || List.exists (fun p -> List.mem p tprocs) procs

let count_stmts blk =
  let n = ref 0 in
  Ast.iter_stmts (fun _ -> incr n) blk;
  !n

let reduce st ~targets =
  let prog = Symtab.program st in
  let tvars = ref (KS.of_list targets) in
  let tprocs = ref [] in
  (* procedures owning a target variable are tainted from the start *)
  List.iter
    (fun (scope, _) ->
      match scope with
      | Symtab.Proc_scope p -> if not (List.mem p !tprocs) then tprocs := p :: !tprocs
      | Symtab.Unit_scope _ -> ())
    targets;
  let changed = ref true in
  (* fixed point: a statement touching taint adds all its referenced
     symbols and called procedures to the taint *)
  while !changed do
    changed := false;
    let add_var k =
      if not (KS.mem k !tvars) then begin
        tvars := KS.add k !tvars;
        changed := true
      end
    in
    let add_proc p =
      if not (List.mem p !tprocs) then begin
        tprocs := p :: !tprocs;
        changed := true
      end
    in
    let scan ~in_proc blk =
      Ast.iter_stmts
        (fun s ->
          if stmt_tainted st ~in_proc ~tvars:!tvars ~tprocs:!tprocs s then begin
            let vars, procs = stmt_refs st ~in_proc s in
            List.iter add_var vars;
            List.iter add_proc procs;
            (* rule (5): the structure containing a tainted statement is
               itself kept — a procedure whose body touches the taint must
               survive even if nothing tainted calls it *)
            match in_proc with
            | Some p -> add_proc p
            | None -> ()
          end)
        blk
    in
    List.iter
      (fun u ->
        (match u with
        | Ast.Main m -> scan ~in_proc:None m.main_body
        | Ast.Module _ -> ());
        List.iter
          (fun (p : Ast.proc) ->
            (* a tainted procedure taints its dummies and result *)
            if List.mem p.proc_name !tprocs then begin
              List.iter
                (fun d -> add_var (Symtab.Proc_scope p.proc_name, d))
                p.params;
              match p.proc_kind with
              | Ast.Function { result } -> add_var (Symtab.Proc_scope p.proc_name, result)
              | Ast.Subroutine -> ()
            end;
            scan ~in_proc:(Some p.proc_name) p.proc_body)
          (Ast.procs_of_unit u))
      prog
  done;
  let tvars = !tvars and tprocs = !tprocs in
  (* filter blocks: keep statements that are tainted or contain a tainted
     descendant (preserving control structure shells) *)
  let kept = ref 0 in
  let rec filter_block ~in_proc blk =
    List.filter_map
      (fun (s : Ast.stmt) ->
        let self = stmt_tainted st ~in_proc ~tvars ~tprocs s in
        match s.node with
        | Ast.If (arms, els) ->
          let arms' = List.map (fun (c, b) -> (c, filter_block ~in_proc b)) arms in
          let els' = filter_block ~in_proc els in
          if self || List.exists (fun (_, b) -> b <> []) arms' || els' <> [] then begin
            incr kept;
            Some { s with node = Ast.If (arms', els') }
          end
          else None
        | Ast.Do d ->
          let body' = filter_block ~in_proc d.body in
          if self || body' <> [] then begin
            incr kept;
            Some { s with node = Ast.Do { d with body = body' } }
          end
          else None
        | Ast.Do_while d ->
          let body' = filter_block ~in_proc d.body in
          if self || body' <> [] then begin
            incr kept;
            Some { s with node = Ast.Do_while { d with body = body' } }
          end
          else None
        | Ast.Select sel ->
          let arms' = List.map (fun (items, b) -> (items, filter_block ~in_proc b)) sel.arms in
          let default' = filter_block ~in_proc sel.default in
          if self || List.exists (fun (_, b) -> b <> []) arms' || default' <> [] then begin
            incr kept;
            Some { s with node = Ast.Select { sel with arms = arms'; default = default' } }
          end
          else None
        | Ast.Assign _ | Ast.Call _ | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt
        | Ast.Stop_stmt _ | Ast.Print_stmt _ ->
          if self then begin
            incr kept;
            Some s
          end
          else None)
      blk
  in
  let filter_decls scope decls =
    List.filter_map
      (fun (d : Ast.decl) ->
        let names =
          List.filter
            (fun (n, _) -> d.parameter || KS.mem (scope, n) tvars)
            d.names
        in
        if names = [] then None else Some { d with names })
      decls
  in
  let kept_procs = ref 0 in
  let total_procs = ref 0 in
  let total = ref 0 in
  let reduce_proc (p : Ast.proc) =
    incr total_procs;
    total := !total + count_stmts p.proc_body;
    if List.mem p.proc_name tprocs then begin
      incr kept_procs;
      Some
        {
          p with
          proc_decls = filter_decls (Symtab.Proc_scope p.proc_name) p.proc_decls;
          proc_body = filter_block ~in_proc:(Some p.proc_name) p.proc_body;
        }
    end
    else None
  in
  let units =
    List.filter_map
      (fun u ->
        match u with
        | Ast.Module m ->
          let procs = List.filter_map reduce_proc m.mod_procs in
          let decls = filter_decls (Symtab.Unit_scope m.mod_name) m.mod_decls in
          if procs = [] && decls = [] then None
          else Some (Ast.Module { m with mod_procs = procs; mod_decls = decls })
        | Ast.Main m ->
          total := !total + count_stmts m.main_body;
          let procs = List.filter_map reduce_proc m.main_procs in
          let body = filter_block ~in_proc:None m.main_body in
          let decls = filter_decls (Symtab.Unit_scope m.main_name) m.main_decls in
          Some (Ast.Main { m with main_procs = procs; main_body = body; main_decls = decls }))
      prog
  in
  (* rule (4): retain only imports of modules that survived *)
  let surviving =
    List.map Ast.unit_name units
  in
  let units =
    List.map
      (function
        | Ast.Module m ->
          Ast.Module { m with mod_uses = List.filter (fun u -> List.mem u surviving) m.mod_uses }
        | Ast.Main m ->
          Ast.Main { m with main_uses = List.filter (fun u -> List.mem u surviving) m.main_uses })
      units
  in
  ( units,
    {
      kept_stmts = !kept;
      total_stmts = !total;
      kept_procs = !kept_procs;
      total_procs = !total_procs;
      tainted_vars = KS.cardinal tvars;
    } )
