(** Interprocedural floating-point data-flow graph (Sec. III-C).

    Nodes are floating-point variables annotated with their current
    precision; edges represent instances of parameter passing (an actual
    variable associated with a dummy at some call site). The
    transformation maintains the invariant that {e adjacent nodes have
    matching annotations}: after a precision assignment is applied, every
    mismatching edge must be repaired by a wrapper, which introduces a
    temporary node and replaces the mismatching edge with matching ones
    (Fig. 4). {!violations} reports the edges that still break the
    invariant — an empty list is the transformation's postcondition.

    The same graph drives the static cost model of Sec. V
    ({!Static_cost}): each mismatching edge is a casting site whose
    penalty scales with estimated call volume and array element count. *)

type node = {
  n_var : string;  (** variable name *)
  n_scope : Fortran.Symtab.scope;
  n_kind : Fortran.Ast.real_kind;
  n_is_array : bool;
  n_elements : int option;  (** static element count when known *)
}

type edge = {
  e_caller : string option;  (** procedure containing the call site *)
  e_callee : string;
  e_actual : node option;  (** [None] when the actual is a non-variable expression *)
  e_actual_expr : Fortran.Ast.expr;
  e_dummy : node;
  e_loop_depth : int;  (** loop nesting depth of the call site *)
  e_loc : Fortran.Loc.t;
}

type t

val build : Fortran.Symtab.t -> t

val nodes : t -> node list
val edges : t -> edge list

val node_of_var : t -> scope:Fortran.Symtab.scope -> string -> node option

val violations : t -> edge list
(** Edges whose endpoint kinds differ (non-variable actual arguments are
    compared by their inferred expression kind). *)

val edge_kinds : t -> edge -> Fortran.Ast.real_kind option * Fortran.Ast.real_kind
(** (actual kind if real, dummy kind) for an edge. *)

val pp_edge : Format.formatter -> edge -> unit
