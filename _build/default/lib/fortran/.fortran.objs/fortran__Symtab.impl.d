lib/fortran/symtab.ml: Ast Format Hashtbl List Loc Option Printf
