lib/fortran/typecheck.ml: Ast Builtins Format List Loc Option Printf Symtab Token
