lib/fortran/lexer.ml: Array Buffer Format List Loc Option String Token
