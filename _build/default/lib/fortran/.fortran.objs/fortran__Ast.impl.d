lib/fortran/ast.ml: List Loc Option Token
