lib/fortran/typecheck.mli: Ast Format Loc Symtab
