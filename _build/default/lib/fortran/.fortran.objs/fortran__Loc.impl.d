lib/fortran/loc.ml: Format
