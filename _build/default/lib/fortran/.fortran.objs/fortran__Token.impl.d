lib/fortran/token.ml: Format Printf
