lib/fortran/unparse.mli: Ast Format
