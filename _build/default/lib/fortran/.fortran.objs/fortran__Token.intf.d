lib/fortran/token.mli: Format
