lib/fortran/unparse.ml: Ast Buffer Format List Option Printf String
