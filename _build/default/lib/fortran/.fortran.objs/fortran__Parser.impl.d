lib/fortran/parser.ml: Array Ast Format Hashtbl Lexer List Loc Token
