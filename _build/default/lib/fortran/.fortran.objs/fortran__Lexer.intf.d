lib/fortran/lexer.mli: Loc Token
