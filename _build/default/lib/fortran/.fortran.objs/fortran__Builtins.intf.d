lib/fortran/builtins.mli:
