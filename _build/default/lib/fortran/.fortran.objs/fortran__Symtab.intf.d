lib/fortran/symtab.mli: Ast Loc
