lib/fortran/parser.mli: Ast Loc Token
