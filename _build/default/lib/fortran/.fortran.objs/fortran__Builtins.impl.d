lib/fortran/builtins.ml: List
