exception Error of { loc : Loc.t; message : string }

let error loc fmt = Format.kasprintf (fun message -> raise (Error { loc; message })) fmt

type state = {
  toks : (Token.t * Loc.t) array;
  mutable pos : int;
  mutable next_loop_id : int;
  mutable next_proc_id : int;
}

let peek st = fst st.toks.(st.pos)
let peek_loc st = snd st.toks.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.toks then fst st.toks.(st.pos + 1) else Token.Eof

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let expect st tok =
  if Token.equal (peek st) tok then advance st
  else error (peek_loc st) "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek st))

let is_kw st kw = match peek st with Token.Ident s -> s = kw | _ -> false

let expect_kw st kw =
  if is_kw st kw then advance st
  else error (peek_loc st) "expected keyword %S but found %s" kw (Token.to_string (peek st))

let accept_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Token.Ident s ->
    advance st;
    s
  | t -> error (peek_loc st) "expected identifier but found %s" (Token.to_string t)

let skip_newlines st =
  while Token.equal (peek st) Token.Newline do
    advance st
  done

let end_of_stmt st =
  match peek st with
  | Token.Newline ->
    advance st;
    skip_newlines st
  | Token.Eof -> ()
  | t -> error (peek_loc st) "expected end of statement but found %s" (Token.to_string t)

let fresh_loop_id st =
  let id = st.next_loop_id in
  st.next_loop_id <- id + 1;
  id

let fresh_proc_id st =
  let id = st.next_proc_id in
  st.next_proc_id <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  let rec go lhs =
    if Token.equal (peek st) Token.Or_op then begin
      advance st;
      go (Ast.Binop (Ast.Or, lhs, parse_and st))
    end
    else lhs
  in
  go lhs

and parse_and st =
  let lhs = parse_not st in
  let rec go lhs =
    if Token.equal (peek st) Token.And_op then begin
      advance st;
      go (Ast.Binop (Ast.And, lhs, parse_not st))
    end
    else lhs
  in
  go lhs

and parse_not st =
  if Token.equal (peek st) Token.Not_op then begin
    advance st;
    Ast.Unop (Ast.Not, parse_not st)
  end
  else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  let op =
    match peek st with
    | Token.Eq -> Some Ast.Eq
    | Token.Ne -> Some Ast.Ne
    | Token.Lt -> Some Ast.Lt
    | Token.Le -> Some Ast.Le
    | Token.Gt -> Some Ast.Gt
    | Token.Ge -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_additive st)

and parse_additive st =
  let lhs =
    match peek st with
    | Token.Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_multiplicative st)
    | Token.Plus ->
      advance st;
      parse_multiplicative st
    | _ -> parse_multiplicative st
  in
  let rec go lhs =
    match peek st with
    | Token.Plus ->
      advance st;
      go (Ast.Binop (Ast.Add, lhs, parse_multiplicative st))
    | Token.Minus ->
      advance st;
      go (Ast.Binop (Ast.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  go lhs

and parse_multiplicative st =
  let lhs = parse_unary st in
  let rec go lhs =
    match peek st with
    | Token.Star ->
      advance st;
      go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.Slash ->
      advance st;
      go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  match peek st with
  | Token.Minus ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Token.Plus ->
    advance st;
    parse_unary st
  | _ -> parse_power st

and parse_power st =
  let base = parse_primary st in
  if Token.equal (peek st) Token.Pow then begin
    advance st;
    (* [**] is right-associative; its right operand binds unary minus. *)
    Ast.Binop (Ast.Pow, base, parse_unary st)
  end
  else base

and parse_primary st =
  let loc = peek_loc st in
  match peek st with
  | Token.Int_lit i ->
    advance st;
    Ast.Int_lit i
  | Token.Real_lit { text; value; kind } ->
    advance st;
    Ast.Real_lit { text; value; kind }
  | Token.Logical_lit b ->
    advance st;
    Ast.Logical_lit b
  | Token.Str_lit s ->
    advance st;
    Ast.Str_lit s
  | Token.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Token.Rparen;
    e
  | Token.Ident name ->
    advance st;
    if Token.equal (peek st) Token.Lparen then begin
      advance st;
      let args = parse_arg_list st in
      expect st Token.Rparen;
      Ast.Index (name, args)
    end
    else Ast.Var name
  | t -> error loc "expected expression but found %s" (Token.to_string t)

and parse_arg_list st =
  if Token.equal (peek st) Token.Rparen then []
  else
    let rec go acc =
      let e = parse_expr st in
      if Token.equal (peek st) Token.Comma then begin
        advance st;
        go (e :: acc)
      end
      else List.rev (e :: acc)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

let parse_kind_spec st loc =
  (* after "real": optional "(" ["kind" "="] int ")" *)
  if Token.equal (peek st) Token.Lparen then begin
    advance st;
    if is_kw st "kind" then begin
      advance st;
      expect st Token.Assign
    end;
    let k =
      match peek st with
      | Token.Int_lit i -> (
        match Token.kind_of_int i with
        | Some k -> k
        | None -> error loc "unsupported real kind %d (only 4 and 8)" i)
      | t -> error loc "expected kind integer but found %s" (Token.to_string t)
    in
    advance st;
    expect st Token.Rparen;
    k
  end
  else Token.K4

(* Returns [None] when the tokens at point do not start a type spec. *)
let parse_type_spec_opt st =
  let loc = peek_loc st in
  match peek st with
  | Token.Ident "real" ->
    advance st;
    Some (Ast.Treal (parse_kind_spec st loc))
  | Token.Ident "double" ->
    advance st;
    expect_kw st "precision";
    Some (Ast.Treal K8)
  | Token.Ident "integer" ->
    advance st;
    (* allow and ignore an explicit integer kind, e.g. integer(kind=4) *)
    if Token.equal (peek st) Token.Lparen then begin
      let _ = parse_kind_spec st loc in
      ()
    end;
    Some Ast.Tinteger
  | Token.Ident "logical" ->
    advance st;
    Some Ast.Tlogical
  | _ -> None

let parse_dims st =
  expect st Token.Lparen;
  let dims = parse_arg_list st in
  expect st Token.Rparen;
  dims

let parse_decl_attrs st =
  let dims = ref [] in
  let parameter = ref false in
  let intent = ref None in
  while Token.equal (peek st) Token.Comma do
    advance st;
    let loc = peek_loc st in
    match ident st with
    | "dimension" -> dims := parse_dims st
    | "parameter" -> parameter := true
    | "save" -> ()  (* accepted and ignored: module state persists anyway *)
    | "intent" ->
      expect st Token.Lparen;
      let dir_loc = peek_loc st in
      (match ident st with
      | "in" -> intent := Some Ast.In
      | "out" -> intent := Some Ast.Out
      | "inout" -> intent := Some Ast.Inout
      | s -> error dir_loc "unknown intent %S" s);
      expect st Token.Rparen
    | attr -> error loc "unsupported declaration attribute %S" attr
  done;
  (!dims, !parameter, !intent)

let parse_decl st (base : Ast.base_type) =
  let decl_loc = peek_loc st in
  let dims, parameter, intent = parse_decl_attrs st in
  expect st Token.Dcolon;
  let rec names acc =
    let n = ident st in
    (* per-entity array spec: real :: a(10) *)
    let entity_dims = if Token.equal (peek st) Token.Lparen then Some (parse_dims st) else None in
    let init =
      if Token.equal (peek st) Token.Assign then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    let acc = (n, init, entity_dims) :: acc in
    if Token.equal (peek st) Token.Comma then begin
      advance st;
      names acc
    end
    else List.rev acc
  in
  let entries = names [] in
  end_of_stmt st;
  (* Entity-specific dims override the dimension attribute. Entries with
     distinct dims are split into separate decl records by the caller; to
     keep the AST simple we split here. *)
  let groups = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun (n, init, ed) ->
      let d = match ed with Some d -> d | None -> dims in
      let key = List.length d in
      (* group by the actual dim expressions; structural equality suffices *)
      let k = (key, d) in
      (match Hashtbl.find_opt groups k with
      | None ->
        order := k :: !order;
        Hashtbl.add groups k [ (n, init) ]
      | Some l -> Hashtbl.replace groups k ((n, init) :: l)))
    entries;
  List.rev_map
    (fun k ->
      let d = snd k in
      { Ast.base; dims = d; parameter; intent; names = List.rev (Hashtbl.find groups k); decl_loc })
    !order

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec parse_block st ~stop =
  (* [stop] returns true when the tokens at point terminate this block. *)
  let rec go acc =
    skip_newlines st;
    if stop st then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and at_end_kw st kw =
  (* "end do" / "end if" / "endif" / "enddo" *)
  (is_kw st "end" && (match peek2 st with Token.Ident s -> s = kw | _ -> false))
  || is_kw st ("end" ^ kw)

and consume_end_kw st kw =
  if accept_kw st ("end" ^ kw) then ()
  else begin
    expect_kw st "end";
    expect_kw st kw
  end

and parse_stmt st : Ast.stmt =
  let loc = peek_loc st in
  let mk node = { Ast.node; loc } in
  match peek st with
  | Token.Ident "call" ->
    advance st;
    let name = ident st in
    let args =
      if Token.equal (peek st) Token.Lparen then begin
        advance st;
        let a = parse_arg_list st in
        expect st Token.Rparen;
        a
      end
      else []
    in
    end_of_stmt st;
    mk (Ast.Call (name, args))
  | Token.Ident "if" -> parse_if st loc
  | Token.Ident "do" -> parse_do st loc
  | Token.Ident "select" -> parse_select st loc
  | Token.Ident "exit" ->
    advance st;
    end_of_stmt st;
    mk Ast.Exit_stmt
  | Token.Ident "cycle" ->
    advance st;
    end_of_stmt st;
    mk Ast.Cycle_stmt
  | Token.Ident "return" ->
    advance st;
    end_of_stmt st;
    mk Ast.Return_stmt
  | Token.Ident "stop" ->
    advance st;
    let msg =
      match peek st with
      | Token.Str_lit s ->
        advance st;
        Some s
      | _ -> None
    in
    end_of_stmt st;
    mk (Ast.Stop_stmt msg)
  | Token.Ident "print" ->
    advance st;
    expect st Token.Star;
    let args =
      if Token.equal (peek st) Token.Comma then begin
        advance st;
        let rec go acc =
          let e = parse_expr st in
          if Token.equal (peek st) Token.Comma then begin
            advance st;
            go (e :: acc)
          end
          else List.rev (e :: acc)
        in
        go []
      end
      else []
    in
    end_of_stmt st;
    mk (Ast.Print_stmt args)
  | Token.Ident _ ->
    (* assignment: name [ (indices) ] = expr *)
    let name = ident st in
    let lhs =
      if Token.equal (peek st) Token.Lparen then begin
        advance st;
        let idx = parse_arg_list st in
        expect st Token.Rparen;
        Ast.Lindex (name, idx)
      end
      else Ast.Lvar name
    in
    expect st Token.Assign;
    let rhs = parse_expr st in
    end_of_stmt st;
    mk (Ast.Assign (lhs, rhs))
  | t -> error loc "expected statement but found %s" (Token.to_string t)

and parse_if st loc =
  expect_kw st "if";
  expect st Token.Lparen;
  let cond = parse_expr st in
  expect st Token.Rparen;
  if is_kw st "then" then begin
    advance st;
    end_of_stmt st;
    let stop st = at_end_kw st "if" || is_kw st "else" || is_kw st "elseif" in
    let first = parse_block st ~stop in
    let rec arms acc =
      if at_end_kw st "if" then begin
        consume_end_kw st "if";
        end_of_stmt st;
        (List.rev acc, [])
      end
      else if is_kw st "elseif" || (is_kw st "else" && (match peek2 st with Token.Ident "if" -> true | _ -> false))
      then begin
        if accept_kw st "elseif" then ()
        else begin
          expect_kw st "else";
          expect_kw st "if"
        end;
        expect st Token.Lparen;
        let c = parse_expr st in
        expect st Token.Rparen;
        expect_kw st "then";
        end_of_stmt st;
        let blk = parse_block st ~stop in
        arms ((c, blk) :: acc)
      end
      else begin
        expect_kw st "else";
        end_of_stmt st;
        let els = parse_block st ~stop:(fun st -> at_end_kw st "if") in
        consume_end_kw st "if";
        end_of_stmt st;
        (List.rev acc, els)
      end
    in
    let rest, els = arms [ (cond, first) ] in
    { Ast.node = Ast.If (rest, els); loc }
  end
  else begin
    (* one-line logical if: [if (c) stmt] *)
    let body = parse_stmt st in
    { Ast.node = Ast.If ([ (cond, [ body ]) ], []); loc }
  end

and parse_select st loc =
  expect_kw st "select";
  expect_kw st "case";
  expect st Token.Lparen;
  let selector = parse_expr st in
  expect st Token.Rparen;
  end_of_stmt st;
  skip_newlines st;
  let parse_case_items () =
    expect st Token.Lparen;
    let item () =
      (* [:hi] | [lo:] | [lo:hi] | [v] *)
      if Token.equal (peek st) Token.Colon then begin
        advance st;
        let hi = parse_expr st in
        Ast.Case_range (None, Some hi)
      end
      else begin
        let lo = parse_expr st in
        if Token.equal (peek st) Token.Colon then begin
          advance st;
          if Token.equal (peek st) Token.Comma || Token.equal (peek st) Token.Rparen then
            Ast.Case_range (Some lo, None)
          else Ast.Case_range (Some lo, Some (parse_expr st))
        end
        else Ast.Case_value lo
      end
    in
    let rec go acc =
      let it = item () in
      if Token.equal (peek st) Token.Comma then begin
        advance st;
        go (it :: acc)
      end
      else List.rev (it :: acc)
    in
    let items = go [] in
    expect st Token.Rparen;
    items
  in
  let stop st = at_end_kw st "select" || is_kw st "case" in
  let rec arms acc default =
    if at_end_kw st "select" then begin
      consume_end_kw st "select";
      end_of_stmt st;
      (List.rev acc, default)
    end
    else begin
      expect_kw st "case";
      if is_kw st "default" then begin
        advance st;
        end_of_stmt st;
        let blk = parse_block st ~stop in
        arms acc blk
      end
      else begin
        let items = parse_case_items () in
        end_of_stmt st;
        let blk = parse_block st ~stop in
        arms ((items, blk) :: acc) default
      end
    end
  in
  let arms_list, default = arms [] [] in
  { Ast.node = Ast.Select { selector; arms = arms_list; default }; loc }

and parse_do st loc =
  expect_kw st "do";
  (* ids are assigned at loop entry so outer loops precede inner ones *)
  let id = fresh_loop_id st in
  if is_kw st "while" then begin
    advance st;
    expect st Token.Lparen;
    let cond = parse_expr st in
    expect st Token.Rparen;
    end_of_stmt st;
    let body = parse_block st ~stop:(fun st -> at_end_kw st "do") in
    consume_end_kw st "do";
    end_of_stmt st;
    { Ast.node = Ast.Do_while { id; cond; body }; loc }
  end
  else begin
    let var = ident st in
    expect st Token.Assign;
    let from_ = parse_expr st in
    expect st Token.Comma;
    let to_ = parse_expr st in
    let step =
      if Token.equal (peek st) Token.Comma then begin
        advance st;
        Some (parse_expr st)
      end
      else None
    in
    end_of_stmt st;
    let body = parse_block st ~stop:(fun st -> at_end_kw st "do") in
    consume_end_kw st "do";
    end_of_stmt st;
    { Ast.node = Ast.Do { id; var; from_; to_; step; body }; loc }
  end

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)

let parse_uses st =
  let rec go acc =
    skip_newlines st;
    if is_kw st "use" then begin
      advance st;
      let m = ident st in
      end_of_stmt st;
      go (m :: acc)
    end
    else List.rev acc
  in
  go []

let accept_implicit_none st =
  skip_newlines st;
  if is_kw st "implicit" then begin
    advance st;
    expect_kw st "none";
    end_of_stmt st
  end

let parse_decls st =
  let rec go acc =
    skip_newlines st;
    match parse_type_spec_opt st with
    | Some base when not (is_kw st "function") -> go (List.rev_append (parse_decl st base) acc)
    | Some _ -> error (peek_loc st) "typed function declarations must appear after 'contains'"
    | None -> List.rev acc
  in
  go []

let rec parse_proc st : Ast.proc =
  skip_newlines st;
  let proc_loc = peek_loc st in
  let prefix = parse_type_spec_opt st in
  let kind_kw = ident st in
  let proc_id = fresh_proc_id st in
  match kind_kw with
  | "subroutine" ->
    if prefix <> None then error proc_loc "subroutines cannot have a type prefix";
    let proc_name = ident st in
    let params =
      if Token.equal (peek st) Token.Lparen then begin
        advance st;
        let rec go acc =
          if Token.equal (peek st) Token.Rparen then List.rev acc
          else begin
            let p = ident st in
            if Token.equal (peek st) Token.Comma then begin
              advance st;
              go (p :: acc)
            end
            else List.rev (p :: acc)
          end
        in
        let ps = go [] in
        expect st Token.Rparen;
        ps
      end
      else []
    in
    end_of_stmt st;
    accept_implicit_none st;
    let proc_decls = parse_decls st in
    let proc_body = parse_block st ~stop:(fun st -> at_end_kw st "subroutine") in
    consume_end_kw st "subroutine";
    (match peek st with Token.Ident _ -> advance st | _ -> ());
    end_of_stmt st;
    { Ast.proc_id; proc_kind = Ast.Subroutine; proc_name; params; proc_decls; proc_body; proc_loc }
  | "function" ->
    let proc_name = ident st in
    expect st Token.Lparen;
    let rec go acc =
      if Token.equal (peek st) Token.Rparen then List.rev acc
      else begin
        let p = ident st in
        if Token.equal (peek st) Token.Comma then begin
          advance st;
          go (p :: acc)
        end
        else List.rev (p :: acc)
      end
    in
    let params = go [] in
    expect st Token.Rparen;
    let result =
      if is_kw st "result" then begin
        advance st;
        expect st Token.Lparen;
        let r = ident st in
        expect st Token.Rparen;
        r
      end
      else proc_name
    in
    end_of_stmt st;
    accept_implicit_none st;
    let proc_decls = parse_decls st in
    (* A type prefix declares the result variable implicitly. *)
    let proc_decls =
      match prefix with
      | Some base when Ast.find_decl_for proc_decls result = None ->
        { Ast.base; dims = []; parameter = false; intent = None; names = [ (result, None) ];
          decl_loc = proc_loc }
        :: proc_decls
      | Some _ | None -> proc_decls
    in
    let proc_body = parse_block st ~stop:(fun st -> at_end_kw st "function") in
    consume_end_kw st "function";
    (match peek st with Token.Ident _ -> advance st | _ -> ());
    end_of_stmt st;
    { Ast.proc_id; proc_kind = Ast.Function { result }; proc_name; params; proc_decls; proc_body;
      proc_loc }
  | kw -> error proc_loc "expected 'subroutine' or 'function' but found %S" kw

and parse_contains_procs st ~unit_kw =
  skip_newlines st;
  if is_kw st "contains" then begin
    advance st;
    end_of_stmt st;
    let rec go acc =
      skip_newlines st;
      if at_end_kw st unit_kw then List.rev acc else go (parse_proc st :: acc)
    in
    go []
  end
  else []

let parse_module st : Ast.module_unit =
  expect_kw st "module";
  let mod_name = ident st in
  end_of_stmt st;
  let mod_uses = parse_uses st in
  accept_implicit_none st;
  let mod_decls = parse_decls st in
  let mod_procs = parse_contains_procs st ~unit_kw:"module" in
  consume_end_kw st "module";
  (match peek st with Token.Ident _ -> advance st | _ -> ());
  end_of_stmt st;
  { Ast.mod_name; mod_uses; mod_decls; mod_procs }

let parse_main st : Ast.main_unit =
  expect_kw st "program";
  let main_name = ident st in
  end_of_stmt st;
  let main_uses = parse_uses st in
  accept_implicit_none st;
  let main_decls = parse_decls st in
  let stop st = at_end_kw st "program" || is_kw st "contains" in
  let main_body = parse_block st ~stop in
  let main_procs = parse_contains_procs st ~unit_kw:"program" in
  consume_end_kw st "program";
  (match peek st with Token.Ident _ -> advance st | _ -> ());
  end_of_stmt st;
  { Ast.main_name; main_uses; main_decls; main_body; main_procs }

let parse_tokens toks : Ast.program =
  let st = { toks; pos = 0; next_loop_id = 0; next_proc_id = 0 } in
  let rec go acc =
    skip_newlines st;
    match peek st with
    | Token.Eof -> List.rev acc
    | Token.Ident "module" -> go (Ast.Module (parse_module st) :: acc)
    | Token.Ident "program" -> go (Ast.Main (parse_main st) :: acc)
    | t -> error (peek_loc st) "expected 'module' or 'program' but found %s" (Token.to_string t)
  in
  go []

let parse ?(file = "<input>") src = parse_tokens (Lexer.tokenize ~file src)
