(** Abstract syntax for the supported Fortran 90 subset.

    Design notes:
    - Real kinds are restricted to {!Token.K4} / {!Token.K8}: the paper's
      search space uses exactly 32- and 64-bit precision (Sec. III-A).
    - [Do] statements and procedures carry unique integer ids assigned by
      the parser; the vectorization and cost analyses key their per-loop /
      per-procedure facts on these ids.
    - Identifiers are lowercase (Fortran is case-insensitive). *)

type real_kind = Token.real_kind = K4 | K8

type base_type =
  | Treal of real_kind
  | Tinteger
  | Tlogical

type intent = In | Out | Inout

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Pow
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Int_lit of int
  | Real_lit of { text : string; value : float; kind : real_kind }
  | Logical_lit of bool
  | Str_lit of string
  | Var of string
  | Index of string * expr list
      (** array element reference, or a function call — disambiguated by the
          symbol table (Fortran's grammar cannot tell them apart either). *)
  | Unop of unop * expr
  | Binop of binop * expr * expr

type lvalue =
  | Lvar of string
  | Lindex of string * expr list

type stmt = { node : stmt_node; loc : Loc.t }

and stmt_node =
  | Assign of lvalue * expr
  | Call of string * expr list
  | If of (expr * block) list * block
      (** arms are the [if]/[else if] branches in source order; the final
          block is the [else] branch (possibly empty). *)
  | Do of { id : int; var : string; from_ : expr; to_ : expr; step : expr option; body : block }
  | Do_while of { id : int; cond : expr; body : block }
  | Select of { selector : expr; arms : (case_item list * block) list; default : block }
      (** [select case (selector)] with [case (items)] arms and an optional
          [case default] block. *)
  | Exit_stmt
  | Cycle_stmt
  | Return_stmt
  | Stop_stmt of string option
  | Print_stmt of expr list

and case_item =
  | Case_value of expr  (** [case (v)] *)
  | Case_range of expr option * expr option
      (** [case (lo:hi)]; an open bound is [None] ([case (:hi)], [case (lo:)]) *)

and block = stmt list

type decl = {
  base : base_type;
  dims : expr list;  (** [[]] for scalars; extents for [dimension(...)] *)
  parameter : bool;
  intent : intent option;
  names : (string * expr option) list;  (** declared names with optional initializers *)
  decl_loc : Loc.t;
}

type proc_kind =
  | Subroutine
  | Function of { result : string }
      (** [result] is the result-variable name ([result(...)] clause, or the
          function name itself when the clause is absent). *)

type proc = {
  proc_id : int;
  proc_kind : proc_kind;
  proc_name : string;
  params : string list;  (** dummy argument names in order *)
  proc_decls : decl list;
  proc_body : block;
  proc_loc : Loc.t;
}

type module_unit = {
  mod_name : string;
  mod_uses : string list;
  mod_decls : decl list;
  mod_procs : proc list;
}

type main_unit = {
  main_name : string;
  main_uses : string list;
  main_decls : decl list;
  main_body : block;
  main_procs : proc list;
}

type program_unit =
  | Module of module_unit
  | Main of main_unit

type program = program_unit list

(* ------------------------------------------------------------------ *)
(* Small helpers used across analyses and transforms.                  *)

let kind_equal (a : real_kind) (b : real_kind) = a = b

let base_type_equal a b =
  match a, b with
  | Treal ka, Treal kb -> kind_equal ka kb
  | Tinteger, Tinteger | Tlogical, Tlogical -> true
  | (Treal _ | Tinteger | Tlogical), _ -> false

let string_of_base_type = function
  | Treal K4 -> "real(kind=4)"
  | Treal K8 -> "real(kind=8)"
  | Tinteger -> "integer"
  | Tlogical -> "logical"

let is_real = function Treal _ -> true | Tinteger | Tlogical -> false

let procs_of_unit = function
  | Module m -> m.mod_procs
  | Main m -> m.main_procs

let unit_name = function Module m -> m.mod_name | Main m -> m.main_name

let all_procs (p : program) = List.concat_map procs_of_unit p

let find_proc (p : program) name =
  List.find_opt (fun pr -> pr.proc_name = name) (all_procs p)

let find_module (p : program) name =
  List.find_map
    (function Module m when m.mod_name = name -> Some m | Module _ | Main _ -> None)
    p

let main_of (p : program) =
  List.find_map (function Main m -> Some m | Module _ -> None) p

(** Fold over every statement of a block, descending into nested blocks. *)
let rec iter_stmts f (b : block) =
  List.iter
    (fun s ->
      f s;
      match s.node with
      | If (arms, els) ->
        List.iter (fun (_, blk) -> iter_stmts f blk) arms;
        iter_stmts f els
      | Select { arms; default; _ } ->
        List.iter (fun (_, blk) -> iter_stmts f blk) arms;
        iter_stmts f default
      | Do { body; _ } | Do_while { body; _ } -> iter_stmts f body
      | Assign _ | Call _ | Exit_stmt | Cycle_stmt | Return_stmt | Stop_stmt _ | Print_stmt _ ->
        ())
    b

(** Fold over every expression occurring in a block (including index
    expressions, bounds and call arguments). *)
let iter_exprs f (b : block) =
  let rec expr e =
    f e;
    match e with
    | Int_lit _ | Real_lit _ | Logical_lit _ | Str_lit _ | Var _ -> ()
    | Index (_, args) -> List.iter expr args
    | Unop (_, e1) -> expr e1
    | Binop (_, e1, e2) ->
      expr e1;
      expr e2
  in
  iter_stmts
    (fun s ->
      match s.node with
      | Assign (lhs, rhs) ->
        (match lhs with
        | Lvar _ -> ()
        | Lindex (_, idx) -> List.iter expr idx);
        expr rhs
      | Call (_, args) -> List.iter expr args
      | If (arms, _) -> List.iter (fun (c, _) -> expr c) arms
      | Select { selector; arms; _ } ->
        expr selector;
        List.iter
          (fun (items, _) ->
            List.iter
              (function
                | Case_value v -> expr v
                | Case_range (lo, hi) ->
                  Option.iter expr lo;
                  Option.iter expr hi)
              items)
          arms
      | Do { from_; to_; step; _ } ->
        expr from_;
        expr to_;
        Option.iter expr step
      | Do_while { cond; _ } -> expr cond
      | Print_stmt args -> List.iter expr args
      | Exit_stmt | Cycle_stmt | Return_stmt | Stop_stmt _ -> ())
    b

(** All variable names read anywhere in an expression. *)
let rec expr_vars acc = function
  | Int_lit _ | Real_lit _ | Logical_lit _ | Str_lit _ -> acc
  | Var v -> v :: acc
  | Index (v, args) -> List.fold_left expr_vars (v :: acc) args
  | Unop (_, e) -> expr_vars acc e
  | Binop (_, a, b) -> expr_vars (expr_vars acc a) b

let decl_names (d : decl) = List.map fst d.names

(** The declaration block of a procedure, looked up by declared name. *)
let find_decl_for (decls : decl list) name =
  List.find_opt (fun d -> List.mem name (decl_names d)) decls
