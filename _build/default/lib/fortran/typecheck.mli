(** Static typing for the Fortran subset.

    Two services:

    {ol
    {- Expression kind inference, used by the vectorization analysis (to
       find mixed-precision operations inside loops) and by the wrapper
       generator.}
    {- Call-site compatibility checking. Fortran performs implicit kind
       conversion {e only through assignment} — argument association
       requires exactly matching real kinds. A mixed-precision assignment
       therefore makes call sites illegal until Fig.-4-style wrappers are
       inserted; [mismatches] finds every such site.}} *)

exception Error of { loc : Loc.t; message : string }

type ty =
  | Real of Ast.real_kind
  | Integer
  | Logical
  | Str

val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit

val infer : Symtab.t -> in_proc:string option -> Ast.expr -> ty
(** Type of an expression as seen from inside [in_proc] (or the main
    program body). Numeric operators promote [Integer -> Real K4 -> Real K8].
    Raises {!Error} on unresolvable names, arity errors, or type clashes
    (e.g. arithmetic on logicals). *)

type mismatch = {
  mm_caller : string option;  (** procedure containing the call site, [None] = main body *)
  mm_callee : string;
  mm_arg_index : int;  (** 0-based *)
  mm_dummy : string;  (** dummy argument name *)
  mm_actual : Ast.expr;
  mm_actual_kind : Ast.real_kind;
  mm_dummy_kind : Ast.real_kind;
  mm_is_array : bool;
  mm_loc : Loc.t;
}

val mismatches : Symtab.t -> mismatch list
(** Every call site in the program where a real actual argument's kind
    differs from the dummy's. An empty list means the program obeys
    Fortran's argument-association rule and is "compilable". *)

val check_program : Symtab.t -> unit
(** Full program check: infers every expression, validates call arity and
    argument base types, and raises {!Error} on the first kind mismatch
    (strict Fortran semantics). Programs emitted by the transformation
    pipeline must pass this. *)

val static_int : Symtab.t -> in_proc:string option -> Ast.expr -> int option
(** Constant-folds an integer expression using visible [parameter]
    declarations; [None] when the value is not compile-time constant. *)

val static_elements : Symtab.t -> in_proc:string option -> Symtab.var_info -> int option
(** Number of elements of an array variable when all extents are
    compile-time constants; [Some 1] for scalars. *)
