(** Unparser: renders an AST back to compilable free-form Fortran source.

    The tuning pipeline is source-to-source, as in the paper (Sec. III-C):
    a precision assignment is applied to the AST, the AST is unparsed, and
    the resulting text is what a downstream Fortran compiler — here, the
    {!Runtime} interpreter via a re-parse — consumes. Round-tripping
    [parse ∘ unparse] is the identity up to locations and fresh ids; the
    property is checked by the test suite. *)

val program : Ast.program -> string

val program_unit : Ast.program_unit -> string
val proc : Ast.proc -> string
val stmt : Ast.stmt -> string
val expr : Ast.expr -> string
val decl : Ast.decl -> string

val pp_program : Format.formatter -> Ast.program -> unit
