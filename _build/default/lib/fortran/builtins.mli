(** Fortran intrinsic procedures recognized by the frontend and runtime.

    The paper's timing methodology excludes non-targeted model procedures
    but {e includes} time spent in intrinsic or library functions
    (Sec. III-E); the cost model therefore prices intrinsics explicitly,
    and — matching hardware — prices most of them cheaper at binary32
    (e.g. [sqrt], [sin]) while leaving precision-insensitive operations
    (like MPI reductions) flat. *)

type category =
  | Elemental_math
      (** abs, sqrt, exp, log, log10, sin, cos, tan, atan, asin, acos,
          sinh, cosh, tanh, aint, anint *)
  | Minmax  (** min, max — n-ary, promoting *)
  | Mod_like  (** mod, sign, atan2 — binary, promoting *)
  | Conversion  (** real, dble, int, nint, floor *)
  | Array_reduction  (** sum, maxval, minval, dot_product over whole arrays *)
  | Inquiry  (** size, epsilon, huge, tiny — no runtime cost *)

val classify : string -> category option
(** [classify name] returns the category of intrinsic function [name]
    (lowercase), or [None] if [name] is not an intrinsic function. *)

val is_intrinsic_function : string -> bool

val is_intrinsic_subroutine : string -> bool
(** Currently the MPI stand-ins: [mpi_allreduce] (scalar, op in {'sum',
    'max', 'min'}) and [mpi_barrier]. *)

val vectorizable : string -> bool
(** Whether a call to this intrinsic inside a loop still permits
    vectorization of that loop (models SVML-style vector math libraries;
    true for all intrinsic functions, false for the MPI subroutines). *)
