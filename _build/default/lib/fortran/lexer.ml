exception Error of { loc : Loc.t; message : string }

let error loc fmt = Format.kasprintf (fun message -> raise (Error { loc; message })) fmt

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable toks : (Token.t * Loc.t) list;  (* reversed *)
  mutable continuation : bool;  (* a trailing [&] suppresses the next newline *)
}

let here st = Loc.make ~file:st.file ~line:st.line ~col:st.col
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let emit st tok loc = st.toks <- (tok, loc) :: st.toks

let last_significant st =
  match st.toks with [] -> None | (t, _) :: _ -> Some t

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let lower = String.lowercase_ascii

(* The dot-form operators and logical literals. *)
let dot_words =
  [
    "and", Token.And_op;
    "or", Token.Or_op;
    "not", Token.Not_op;
    "eq", Token.Eq;
    "ne", Token.Ne;
    "lt", Token.Lt;
    "le", Token.Le;
    "gt", Token.Gt;
    "ge", Token.Ge;
    "true", Token.Logical_lit true;
    "false", Token.Logical_lit false;
  ]

(* Looking at [.], decide whether a dot-word like [.and.] starts here. *)
let dot_word_at st =
  let n = String.length st.src in
  let rec scan i acc =
    if i >= n then None
    else
      let c = st.src.[i] in
      if c = '.' then Some (lower acc, i)
      else if is_ident_char c then scan (i + 1) (acc ^ String.make 1 c)
      else None
  in
  match scan (st.pos + 1) "" with
  | None -> None
  | Some (word, close) -> (
    match List.assoc_opt word dot_words with
    | Some tok -> Some (tok, close)
    | None -> None)

let read_while st pred =
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some c when pred c ->
      Buffer.add_char b c;
      advance st;
      go ()
    | Some _ | None -> Buffer.contents b
  in
  go ()

(* Numeric literal: integer, or real with fraction / exponent / kind suffix. *)
let lex_number st loc =
  let b = Buffer.create 16 in
  let add_digits () = Buffer.add_string b (read_while st is_digit) in
  add_digits ();
  let is_real = ref false in
  (match peek st with
  | Some '.' when dot_word_at st = None ->
    (* a fraction, not a dot-operator such as [1.and.] *)
    is_real := true;
    Buffer.add_char b '.';
    advance st;
    add_digits ()
  | Some _ | None -> ());
  let kind = ref Token.K4 in
  (match peek st with
  | Some ('e' | 'E' | 'd' | 'D') -> (
    let exp_char = Option.get (peek st) in
    let next = peek_at st 1 in
    let next2 = peek_at st 2 in
    let exponent_follows =
      match next with
      | Some c when is_digit c -> true
      | Some ('+' | '-') -> ( match next2 with Some c -> is_digit c | None -> false)
      | Some _ | None -> false
    in
    if exponent_follows then begin
      is_real := true;
      if exp_char = 'd' || exp_char = 'D' then kind := Token.K8;
      Buffer.add_char b 'e';
      advance st;
      (match peek st with
      | Some (('+' | '-') as sign) ->
        Buffer.add_char b sign;
        advance st
      | Some _ | None -> ());
      add_digits ()
    end)
  | Some _ | None -> ());
  (* kind suffix: [_4] or [_8] *)
  (match peek st, peek_at st 1 with
  | Some '_', Some ('4' | '8') ->
    let k = if peek_at st 1 = Some '8' then Token.K8 else Token.K4 in
    advance st;
    advance st;
    if !is_real then kind := k
  | _ -> ());
  let text = Buffer.contents b in
  if !is_real then begin
    match float_of_string_opt text with
    | Some value ->
      let source_text =
        (* reconstruct a printable spelling close to the source *)
        match !kind with
        | Token.K8 ->
          if String.contains text 'e' then String.map (fun c -> if c = 'e' then 'd' else c) text
          else text ^ "d0"
        | Token.K4 -> text
      in
      emit st (Token.Real_lit { text = source_text; value; kind = !kind }) loc
    | None -> error loc "malformed real literal %S" text
  end
  else
    match int_of_string_opt text with
    | Some i -> emit st (Token.Int_lit i) loc
    | None -> error loc "malformed integer literal %S" text

let lex_string st loc quote =
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error loc "unterminated string literal"
    | Some '\n' -> error loc "newline in string literal"
    | Some c when c = quote ->
      advance st;
      if peek st = Some quote then begin
        (* doubled quote escapes itself *)
        Buffer.add_char b quote;
        advance st;
        go ()
      end
      else emit st (Token.Str_lit (Buffer.contents b)) loc
    | Some c ->
      Buffer.add_char b c;
      advance st;
      go ()
  in
  go ()

let skip_comment st =
  let rec go () =
    match peek st with
    | Some '\n' | None -> ()
    | Some _ ->
      advance st;
      go ()
  in
  go ()

let tokenize ?(file = "<input>") src =
  let st = { src; file; pos = 0; line = 1; col = 1; toks = []; continuation = false } in
  let emit_newline loc =
    if st.continuation then st.continuation <- false
    else
      match last_significant st with
      | None | Some Token.Newline -> ()  (* collapse blank lines *)
      | Some _ -> emit st Token.Newline loc
  in
  let rec loop () =
    let loc = here st in
    match peek st with
    | None ->
      emit_newline loc;
      emit st Token.Eof loc
    | Some (' ' | '\t' | '\r') ->
      advance st;
      loop ()
    | Some '!' ->
      skip_comment st;
      loop ()
    | Some '\n' ->
      advance st;
      emit_newline loc;
      loop ()
    | Some ';' ->
      advance st;
      emit_newline loc;
      loop ()
    | Some '&' ->
      advance st;
      (* trailing continuation: suppress the next newline. A leading [&] on
         the continued line is consumed the same way and is harmless. *)
      st.continuation <- true;
      loop ()
    | Some c when is_digit c ->
      st.continuation <- false;
      lex_number st loc;
      loop ()
    | Some '.' -> (
      st.continuation <- false;
      match dot_word_at st with
      | Some (tok, close_pos) ->
        while st.pos <= close_pos do
          advance st
        done;
        emit st tok loc;
        loop ()
      | None ->
        if match peek_at st 1 with Some c -> is_digit c | None -> false then begin
          lex_number st loc;
          loop ()
        end
        else error loc "unexpected '.'")
    | Some c when is_ident_start c ->
      st.continuation <- false;
      let word = read_while st is_ident_char in
      emit st (Token.Ident (lower word)) loc;
      loop ()
    | Some ('\'' | '"') ->
      st.continuation <- false;
      lex_string st loc (Option.get (peek st));
      loop ()
    | Some c ->
      st.continuation <- false;
      let two cont = advance st; advance st; emit st cont loc; loop () in
      let one cont = advance st; emit st cont loc; loop () in
      (match c, peek_at st 1 with
      | '*', Some '*' -> two Token.Pow
      | '*', _ -> one Token.Star
      | '/', Some '=' -> two Token.Ne
      | '/', Some '/' -> two Token.Concat
      | '/', _ -> one Token.Slash
      | '=', Some '=' -> two Token.Eq
      | '=', _ -> one Token.Assign
      | '<', Some '=' -> two Token.Le
      | '<', _ -> one Token.Lt
      | '>', Some '=' -> two Token.Ge
      | '>', _ -> one Token.Gt
      | '+', _ -> one Token.Plus
      | '-', _ -> one Token.Minus
      | '(', _ -> one Token.Lparen
      | ')', _ -> one Token.Rparen
      | ',', _ -> one Token.Comma
      | ':', Some ':' -> two Token.Dcolon
      | ':', _ -> one Token.Colon
      | _ -> error loc "unexpected character %C" c)
  in
  loop ();
  Array.of_list (List.rev st.toks)
