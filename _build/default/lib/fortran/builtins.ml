type category =
  | Elemental_math
  | Minmax
  | Mod_like
  | Conversion
  | Array_reduction
  | Inquiry

let table =
  [
    "abs", Elemental_math;
    "sqrt", Elemental_math;
    "exp", Elemental_math;
    "log", Elemental_math;
    "sin", Elemental_math;
    "cos", Elemental_math;
    "tan", Elemental_math;
    "atan", Elemental_math;
    "asin", Elemental_math;
    "acos", Elemental_math;
    "sinh", Elemental_math;
    "cosh", Elemental_math;
    "tanh", Elemental_math;
    "log10", Elemental_math;
    "aint", Elemental_math;
    "anint", Elemental_math;
    "min", Minmax;
    "max", Minmax;
    "mod", Mod_like;
    "sign", Mod_like;
    "atan2", Mod_like;
    "real", Conversion;
    "dble", Conversion;
    "int", Conversion;
    "nint", Conversion;
    "floor", Conversion;
    "sum", Array_reduction;
    "maxval", Array_reduction;
    "minval", Array_reduction;
    "dot_product", Array_reduction;
    "size", Inquiry;
    "epsilon", Inquiry;
    "huge", Inquiry;
    "tiny", Inquiry;
  ]

let classify name = List.assoc_opt name table
let is_intrinsic_function name = classify name <> None
let is_intrinsic_subroutine name = name = "mpi_allreduce" || name = "mpi_barrier"
let vectorizable name = is_intrinsic_function name
