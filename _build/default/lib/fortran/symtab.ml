exception Error of { loc : Loc.t; message : string }

let error loc fmt = Format.kasprintf (fun message -> raise (Error { loc; message })) fmt

type var_info = {
  v_name : string;
  v_base : Ast.base_type;
  v_dims : Ast.expr list;
  v_parameter : bool;
  v_intent : Ast.intent option;
  v_init : Ast.expr option;
  v_scope : scope;
  v_loc : Loc.t;
}

and scope =
  | Proc_scope of string
  | Unit_scope of string

type t = {
  prog : Ast.program;
  procs : (string, Ast.proc * string) Hashtbl.t;  (* proc name -> (proc, owner unit) *)
  scope_vars : (scope, (string, var_info) Hashtbl.t * var_info list ref) Hashtbl.t;
  uses : (string, string list) Hashtbl.t;  (* unit name -> transitively used modules *)
  units : (string, Ast.program_unit) Hashtbl.t;
}

let program t = t.prog

let vars_of_decls scope (decls : Ast.decl list) =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      List.iter
        (fun (name, init) ->
          if Hashtbl.mem tbl name then
            error d.decl_loc "duplicate declaration of %S" name;
          let info =
            { v_name = name; v_base = d.base; v_dims = d.dims; v_parameter = d.parameter;
              v_intent = d.intent; v_init = init; v_scope = scope; v_loc = d.decl_loc }
          in
          Hashtbl.add tbl name info;
          order := info :: !order)
        d.names)
    decls;
  (tbl, ref (List.rev !order))

let build (prog : Ast.program) : t =
  let procs = Hashtbl.create 32 in
  let scope_vars = Hashtbl.create 32 in
  let uses = Hashtbl.create 8 in
  let units = Hashtbl.create 8 in
  (* first pass: record units so [use] can be validated transitively *)
  List.iter
    (fun u ->
      let name = Ast.unit_name u in
      if Hashtbl.mem units name then
        error Loc.dummy "duplicate program unit %S" name;
      Hashtbl.add units name u)
    prog;
  let direct_uses u =
    match u with Ast.Module m -> m.mod_uses | Ast.Main m -> m.main_uses
  in
  let rec transitive seen name =
    match Hashtbl.find_opt units name with
    | None -> error Loc.dummy "use of unknown module %S" name
    | Some u ->
      List.fold_left
        (fun seen used ->
          if List.mem used seen then seen else transitive (used :: seen) used)
        seen (direct_uses u)
  in
  List.iter
    (fun u ->
      let name = Ast.unit_name u in
      Hashtbl.add uses name (transitive [] name))
    prog;
  let add_proc owner (p : Ast.proc) =
    if Hashtbl.mem procs p.proc_name then
      error p.proc_loc "duplicate procedure name %S" p.proc_name;
    Hashtbl.add procs p.proc_name (p, owner);
    let scope = Proc_scope p.proc_name in
    let tbl, order = vars_of_decls scope p.proc_decls in
    (* every dummy argument must be declared *)
    List.iter
      (fun dummy ->
        if not (Hashtbl.mem tbl dummy) then
          error p.proc_loc "dummy argument %S of %S has no declaration" dummy p.proc_name)
      p.params;
    (match p.proc_kind with
    | Ast.Function { result } ->
      if not (Hashtbl.mem tbl result) then
        error p.proc_loc "result variable %S of function %S has no declaration" result p.proc_name
    | Ast.Subroutine -> ());
    Hashtbl.add scope_vars scope (tbl, order)
  in
  List.iter
    (fun u ->
      let name = Ast.unit_name u in
      let scope = Unit_scope name in
      let decls = match u with Ast.Module m -> m.mod_decls | Ast.Main m -> m.main_decls in
      Hashtbl.add scope_vars scope (vars_of_decls scope decls);
      List.iter (add_proc name) (Ast.procs_of_unit u))
    prog;
  { prog; procs; scope_vars; uses; units }

let find_in_scope t scope name =
  match Hashtbl.find_opt t.scope_vars scope with
  | None -> None
  | Some (tbl, _) -> Hashtbl.find_opt tbl name

let proc_owner t name =
  match Hashtbl.find_opt t.procs name with
  | Some (_, owner) -> owner
  | None -> invalid_arg (Printf.sprintf "Symtab.proc_owner: unknown procedure %S" name)

let find_proc t name =
  Option.map fst (Hashtbl.find_opt t.procs name)

let all_proc_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.procs [] |> List.sort compare

let unit_of_proc t name =
  match Hashtbl.find_opt t.procs name with
  | None -> None
  | Some (_, owner) -> Hashtbl.find_opt t.units owner

let lookup_var t ~in_proc name =
  let unit_name =
    match in_proc with
    | Some p -> (match Hashtbl.find_opt t.procs p with Some (_, o) -> Some o | None -> None)
    | None -> (
      match Ast.main_of t.prog with Some m -> Some m.main_name | None -> None)
  in
  let in_local =
    match in_proc with Some p -> find_in_scope t (Proc_scope p) name | None -> None
  in
  match in_local with
  | Some _ as r -> r
  | None -> (
    match unit_name with
    | None -> None
    | Some u -> (
      match find_in_scope t (Unit_scope u) name with
      | Some _ as r -> r
      | None ->
        let used = Option.value ~default:[] (Hashtbl.find_opt t.uses u) in
        List.find_map (fun m -> find_in_scope t (Unit_scope m) name) used))

let vars_of_scope t scope =
  match Hashtbl.find_opt t.scope_vars scope with
  | None -> []
  | Some (_, order) -> !order

let fp_vars_of_module t mod_name =
  match Hashtbl.find_opt t.units mod_name with
  | None -> []
  | Some u ->
    let unit_level = vars_of_scope t (Unit_scope mod_name) in
    let proc_level =
      List.concat_map (fun (p : Ast.proc) -> vars_of_scope t (Proc_scope p.proc_name))
        (Ast.procs_of_unit u)
    in
    List.filter
      (fun v -> Ast.is_real v.v_base && not v.v_parameter)
      (unit_level @ proc_level)

let module_of_var (v : var_info) t =
  match v.v_scope with
  | Unit_scope u -> u
  | Proc_scope p -> proc_owner t p
