type real_kind = K4 | K8

type t =
  | Ident of string
  | Int_lit of int
  | Real_lit of { text : string; value : float; kind : real_kind }
  | Str_lit of string
  | Logical_lit of bool
  | Plus
  | Minus
  | Star
  | Slash
  | Pow
  | Concat
  | Assign
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And_op
  | Or_op
  | Not_op
  | Lparen
  | Rparen
  | Comma
  | Dcolon
  | Colon
  | Newline
  | Eof

let equal (a : t) (b : t) =
  match a, b with
  | Real_lit ra, Real_lit rb -> ra.text = rb.text
  | _ -> a = b

let to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Real_lit { text; _ } -> text
  | Str_lit s -> Printf.sprintf "'%s'" s
  | Logical_lit true -> ".true."
  | Logical_lit false -> ".false."
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Pow -> "**"
  | Concat -> "//"
  | Assign -> "="
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And_op -> ".and."
  | Or_op -> ".or."
  | Not_op -> ".not."
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dcolon -> "::"
  | Colon -> ":"
  | Newline -> "<newline>"
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let kind_of_int = function 4 -> Some K4 | 8 -> Some K8 | _ -> None
let int_of_kind = function K4 -> 4 | K8 -> 8
