(** Symbol table: name resolution for a parsed program.

    Builds per-scope variable environments (procedure locals and dummies,
    host module/program variables, and variables imported through [use])
    and a global procedure index. Procedure names must be globally unique
    across the program — the models in this repository satisfy this, and
    it matches how the tuning tool treats procedure names as keys.

    The table also answers the question at the heart of the search-space
    construction (Sec. III-A): {e which floating-point variable
    declarations exist within a target module}. *)

exception Error of { loc : Loc.t; message : string }

type var_info = {
  v_name : string;
  v_base : Ast.base_type;
  v_dims : Ast.expr list;  (** [[]] for scalars *)
  v_parameter : bool;
  v_intent : Ast.intent option;
  v_init : Ast.expr option;
  v_scope : scope;
  v_loc : Loc.t;
}

and scope =
  | Proc_scope of string  (** local to / dummy of the named procedure *)
  | Unit_scope of string  (** module- or program-level variable *)

type t

val build : Ast.program -> t
(** Raises {!Error} on duplicate procedure names, duplicate declarations in
    one scope, a [use] of an unknown module, or a procedure parameter with
    no matching declaration. *)

val program : t -> Ast.program

val lookup_var : t -> in_proc:string option -> string -> var_info option
(** [lookup_var t ~in_proc name] resolves [name] as seen from inside
    procedure [in_proc] (or from the main program body when [None]),
    searching locals, then the enclosing unit, then used modules. *)

val proc_owner : t -> string -> string
(** Name of the module/program unit containing the given procedure. *)

val find_proc : t -> string -> Ast.proc option
val all_proc_names : t -> string list

val unit_of_proc : t -> string -> Ast.program_unit option

val vars_of_scope : t -> scope -> var_info list
(** All variables declared directly in the given scope, in source order. *)

val fp_vars_of_module : t -> string -> var_info list
(** All non-parameter floating-point variable declarations contained in a
    module — module-level variables plus every contained procedure's locals
    and dummies. These are the search atoms of Sec. III-A. *)

val module_of_var : var_info -> t -> string
(** The module/program name whose source text declares this variable. *)
