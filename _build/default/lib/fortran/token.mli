(** Tokens produced by the free-form Fortran lexer.

    Identifiers and keywords are lowercased by the lexer (Fortran is
    case-insensitive); keywords are not distinguished from identifiers at
    the token level — the parser matches keyword spellings contextually,
    which mirrors how Fortran's grammar treats keywords as non-reserved. *)

type real_kind = K4 | K8  (** [real(kind=4)] (binary32) and [real(kind=8)] (binary64) *)

type t =
  | Ident of string  (** lowercased identifier or keyword *)
  | Int_lit of int
  | Real_lit of { text : string; value : float; kind : real_kind }
      (** [text] preserves the source spelling, e.g. ["1.0d0"]. *)
  | Str_lit of string
  | Logical_lit of bool  (** [.true.] / [.false.] *)
  | Plus
  | Minus
  | Star
  | Slash
  | Pow  (** [**] *)
  | Concat  (** [//] *)
  | Assign  (** [=] *)
  | Eq  (** [==] or [.eq.] *)
  | Ne  (** [/=] or [.ne.] *)
  | Lt
  | Le
  | Gt
  | Ge
  | And_op  (** [.and.] *)
  | Or_op  (** [.or.] *)
  | Not_op  (** [.not.] *)
  | Lparen
  | Rparen
  | Comma
  | Dcolon  (** [::] *)
  | Colon
  | Newline  (** end of statement: physical newline or [;] *)
  | Eof

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val kind_of_int : int -> real_kind option
(** [kind_of_int 4 = Some K4], [kind_of_int 8 = Some K8], otherwise [None]. *)

val int_of_kind : real_kind -> int
