open Ast

let bprintf = Printf.bprintf

(* Operator precedence levels, used to parenthesize minimally. Higher binds
   tighter. Mirrors the parser's precedence ladder. *)
let prec_of = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6
  | Pow -> 8

let op_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "**"
  | Eq -> "=="
  | Ne -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> ".and."
  | Or -> ".or."

let rec emit_expr b ~prec e =
  match e with
  | Int_lit i ->
    if i < 0 then bprintf b "(%d)" i else bprintf b "%d" i
  | Real_lit { text; _ } -> Buffer.add_string b text
  | Logical_lit true -> Buffer.add_string b ".true."
  | Logical_lit false -> Buffer.add_string b ".false."
  | Str_lit s -> bprintf b "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Var v -> Buffer.add_string b v
  | Index (v, args) ->
    Buffer.add_string b v;
    Buffer.add_char b '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string b ", ";
        emit_expr b ~prec:0 a)
      args;
    Buffer.add_char b ')'
  | Unop (Neg, e1) ->
    (* unary minus binds between additive and multiplicative *)
    if prec > 5 then begin
      Buffer.add_string b "(-";
      emit_expr b ~prec:6 e1;
      Buffer.add_char b ')'
    end
    else begin
      Buffer.add_char b '-';
      emit_expr b ~prec:6 e1
    end
  | Unop (Not, e1) ->
    Buffer.add_string b ".not. ";
    emit_expr b ~prec:3 e1
  | Binop (op, l, r) ->
    let p = prec_of op in
    let needs_parens = p < prec in
    if needs_parens then Buffer.add_char b '(';
    (* relational operators are non-associative in Fortran (a nested
       comparison must be parenthesized on either side), and [**] is
       right-associative (a left-nested power must be parenthesized) *)
    let left_prec =
      match op with
      | Eq | Ne | Lt | Le | Gt | Ge | Pow -> p + 1
      | Add | Sub | Mul | Div | And | Or -> p
    in
    emit_expr b ~prec:left_prec l;
    bprintf b " %s " (op_text op);
    (* right operand of a left-assoc op needs the next level up; [**] is
       right-assoc so its right operand may repeat at the same level *)
    emit_expr b ~prec:(if op = Pow then p else p + 1) r;
    if needs_parens then Buffer.add_char b ')'

let expr e =
  let b = Buffer.create 64 in
  emit_expr b ~prec:0 e;
  Buffer.contents b

let emit_lvalue b = function
  | Lvar v -> Buffer.add_string b v
  | Lindex (v, idx) -> emit_expr b ~prec:0 (Index (v, idx))

let indent b n = Buffer.add_string b (String.make (2 * n) ' ')

let emit_decl b ~level (d : decl) =
  indent b level;
  Buffer.add_string b (string_of_base_type d.base);
  if d.dims <> [] then begin
    Buffer.add_string b ", dimension(";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string b ", ";
        emit_expr b ~prec:0 e)
      d.dims;
    Buffer.add_char b ')'
  end;
  if d.parameter then Buffer.add_string b ", parameter";
  (match d.intent with
  | Some In -> Buffer.add_string b ", intent(in)"
  | Some Out -> Buffer.add_string b ", intent(out)"
  | Some Inout -> Buffer.add_string b ", intent(inout)"
  | None -> ());
  Buffer.add_string b " :: ";
  List.iteri
    (fun i (n, init) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b n;
      match init with
      | Some e ->
        Buffer.add_string b " = ";
        emit_expr b ~prec:0 e
      | None -> ())
    d.names;
  Buffer.add_char b '\n'

let decl d =
  let b = Buffer.create 64 in
  emit_decl b ~level:0 d;
  Buffer.contents b

let rec emit_stmt b ~level (s : stmt) =
  match s.node with
  | Assign (lhs, rhs) ->
    indent b level;
    emit_lvalue b lhs;
    Buffer.add_string b " = ";
    emit_expr b ~prec:0 rhs;
    Buffer.add_char b '\n'
  | Call (name, args) ->
    indent b level;
    bprintf b "call %s" name;
    if args <> [] then begin
      Buffer.add_char b '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string b ", ";
          emit_expr b ~prec:0 a)
        args;
      Buffer.add_char b ')'
    end;
    Buffer.add_char b '\n'
  | If (arms, els) ->
    List.iteri
      (fun i (cond, blk) ->
        indent b level;
        Buffer.add_string b (if i = 0 then "if (" else "else if (");
        emit_expr b ~prec:0 cond;
        Buffer.add_string b ") then\n";
        emit_block b ~level:(level + 1) blk)
      arms;
    if els <> [] then begin
      indent b level;
      Buffer.add_string b "else\n";
      emit_block b ~level:(level + 1) els
    end;
    indent b level;
    Buffer.add_string b "end if\n"
  | Do { var; from_; to_; step; body; _ } ->
    indent b level;
    bprintf b "do %s = " var;
    emit_expr b ~prec:0 from_;
    Buffer.add_string b ", ";
    emit_expr b ~prec:0 to_;
    (match step with
    | Some e ->
      Buffer.add_string b ", ";
      emit_expr b ~prec:0 e
    | None -> ());
    Buffer.add_char b '\n';
    emit_block b ~level:(level + 1) body;
    indent b level;
    Buffer.add_string b "end do\n"
  | Do_while { cond; body; _ } ->
    indent b level;
    Buffer.add_string b "do while (";
    emit_expr b ~prec:0 cond;
    Buffer.add_string b ")\n";
    emit_block b ~level:(level + 1) body;
    indent b level;
    Buffer.add_string b "end do\n"
  | Select { selector; arms; default } ->
    indent b level;
    Buffer.add_string b "select case (";
    emit_expr b ~prec:0 selector;
    Buffer.add_string b ")\n";
    List.iter
      (fun (items, blk) ->
        indent b level;
        Buffer.add_string b "case (";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string b ", ";
            match item with
            | Case_value v -> emit_expr b ~prec:0 v
            | Case_range (lo, hi) ->
              Option.iter (emit_expr b ~prec:0) lo;
              Buffer.add_char b ':';
              Option.iter (emit_expr b ~prec:0) hi)
          items;
        Buffer.add_string b ")\n";
        emit_block b ~level:(level + 1) blk)
      arms;
    if default <> [] then begin
      indent b level;
      Buffer.add_string b "case default\n";
      emit_block b ~level:(level + 1) default
    end;
    indent b level;
    Buffer.add_string b "end select\n"
  | Exit_stmt ->
    indent b level;
    Buffer.add_string b "exit\n"
  | Cycle_stmt ->
    indent b level;
    Buffer.add_string b "cycle\n"
  | Return_stmt ->
    indent b level;
    Buffer.add_string b "return\n"
  | Stop_stmt None ->
    indent b level;
    Buffer.add_string b "stop\n"
  | Stop_stmt (Some m) ->
    indent b level;
    bprintf b "stop '%s'\n" m
  | Print_stmt args ->
    indent b level;
    Buffer.add_string b "print *";
    List.iter
      (fun a ->
        Buffer.add_string b ", ";
        emit_expr b ~prec:0 a)
      args;
    Buffer.add_char b '\n'

and emit_block b ~level blk = List.iter (emit_stmt b ~level) blk

let stmt s =
  let b = Buffer.create 128 in
  emit_stmt b ~level:0 s;
  Buffer.contents b

let emit_proc b ~level (p : proc) =
  indent b level;
  (match p.proc_kind with
  | Subroutine ->
    bprintf b "subroutine %s(%s)\n" p.proc_name (String.concat ", " p.params)
  | Function { result } ->
    bprintf b "function %s(%s)" p.proc_name (String.concat ", " p.params);
    if result <> p.proc_name then bprintf b " result(%s)" result;
    Buffer.add_char b '\n');
  List.iter (emit_decl b ~level:(level + 1)) p.proc_decls;
  emit_block b ~level:(level + 1) p.proc_body;
  indent b level;
  (match p.proc_kind with
  | Subroutine -> bprintf b "end subroutine %s\n" p.proc_name
  | Function _ -> bprintf b "end function %s\n" p.proc_name)

let proc p =
  let b = Buffer.create 256 in
  emit_proc b ~level:0 p;
  Buffer.contents b

let emit_unit b = function
  | Module m ->
    bprintf b "module %s\n" m.mod_name;
    List.iter (fun u -> bprintf b "  use %s\n" u) m.mod_uses;
    Buffer.add_string b "  implicit none\n";
    List.iter (emit_decl b ~level:1) m.mod_decls;
    if m.mod_procs <> [] then begin
      Buffer.add_string b "contains\n";
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_char b '\n';
          emit_proc b ~level:1 p)
        m.mod_procs
    end;
    bprintf b "end module %s\n" m.mod_name
  | Main m ->
    bprintf b "program %s\n" m.main_name;
    List.iter (fun u -> bprintf b "  use %s\n" u) m.main_uses;
    Buffer.add_string b "  implicit none\n";
    List.iter (emit_decl b ~level:1) m.main_decls;
    emit_block b ~level:1 m.main_body;
    if m.main_procs <> [] then begin
      Buffer.add_string b "contains\n";
      List.iteri
        (fun i p ->
          if i > 0 then Buffer.add_char b '\n';
          emit_proc b ~level:1 p)
        m.main_procs
    end;
    bprintf b "end program %s\n" m.main_name

let program_unit u =
  let b = Buffer.create 1024 in
  emit_unit b u;
  Buffer.contents b

let program (p : program) =
  let b = Buffer.create 4096 in
  List.iteri
    (fun i u ->
      if i > 0 then Buffer.add_char b '\n';
      emit_unit b u)
    p;
  Buffer.contents b

let pp_program ppf p = Format.pp_print_string ppf (program p)
