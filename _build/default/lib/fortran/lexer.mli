(** Free-form Fortran lexer.

    Supports the subset of Fortran 90 free-form lexical structure needed by
    the precision-tuning pipeline: case-insensitive identifiers/keywords,
    integer and real literals (with [e]/[d] exponents and [_4]/[_8] kind
    suffixes), string literals, [!] comments, [&] line continuations, [;]
    statement separators, and the dot-form logical/relational operators. *)

exception Error of { loc : Loc.t; message : string }

val tokenize : ?file:string -> string -> (Token.t * Loc.t) array
(** [tokenize ~file source] lexes [source] into a token stream terminated by
    {!Token.Eof}. Consecutive blank/comment lines collapse into a single
    {!Token.Newline}. Raises {!Error} on malformed input (unterminated
    string, bad numeric literal, unknown character or dot-operator). *)
