type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }
let dummy = { file = "<generated>"; line = 0; col = 0 }
let is_dummy t = t.line = 0
let pp ppf t = Format.fprintf ppf "%s:%d:%d" t.file t.line t.col
let to_string t = Format.asprintf "%a" pp t
