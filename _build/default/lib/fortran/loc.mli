(** Source locations for the Fortran frontend.

    Locations are attached to tokens and statements so that lexer, parser,
    type-checker and interpreter errors can point back into the original
    (or transformed) source text. *)

type t = {
  file : string;  (** logical file name, e.g. ["mpas_proxy.f90"] *)
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

val make : file:string -> line:int -> col:int -> t

val dummy : t
(** A placeholder location used for synthesized nodes (e.g. generated
    wrapper procedures) that have no position in the user's source. *)

val is_dummy : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as ["file:line:col"]. *)

val to_string : t -> string
