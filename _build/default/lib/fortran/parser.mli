(** Recursive-descent parser for the supported Fortran 90 subset.

    Grammar outline (free form, statements separated by newlines or [;]):

    {v
    program        := { module-unit | main-unit }
    module-unit    := "module" name { use } [ "implicit none" ] { decl }
                      [ "contains" { procedure } ] "end" "module" [ name ]
    main-unit      := "program" name { use } [ "implicit none" ] { decl }
                      { statement } [ "contains" { procedure } ]
                      "end" "program" [ name ]
    procedure      := [ type-spec ] ( "subroutine" | "function" ) name
                      "(" params ")" [ "result" "(" name ")" ] ...
    decl           := type-spec { "," attr } "::" name [ "=" expr ] { "," ... }
    type-spec      := "real" [ "(" [ "kind" "=" ] int ")" ]
                    | "double" "precision" | "integer" | "logical"
    v}

    Function calls and array element references share the syntax
    [name(args)]; both parse to {!Ast.Index} and are disambiguated later by
    the symbol table. *)

exception Error of { loc : Loc.t; message : string }

val parse : ?file:string -> string -> Ast.program
(** [parse ~file source] lexes and parses [source]. Raises {!Error} (or
    {!Lexer.Error}) on malformed input. Do-loop and procedure ids are
    assigned densely from 0 in source order. *)

val parse_tokens : (Token.t * Loc.t) array -> Ast.program
