open Fortran

(* Split one declaration record into per-kind groups in original entity
   order (stable), retyping entities the assignment targets. *)
let rewrite_decl asg scope (d : Ast.decl) : Ast.decl list =
  match d.base with
  | Ast.Tinteger | Ast.Tlogical -> [ d ]
  | Ast.Treal declared ->
    if d.parameter then [ d ]
    else begin
      let entity_kind (name, _) =
        match Assignment.lookup asg ~scope name with
        | Some k -> k
        | None -> declared
      in
      let kinds = List.sort_uniq compare (List.map entity_kind d.names) in
      List.map
        (fun k ->
          {
            d with
            base = Ast.Treal k;
            names = List.filter (fun e -> entity_kind e = k) d.names;
          })
        kinds
    end

let apply st asg : Ast.program =
  let prog = Symtab.program st in
  let rewrite_decls scope decls = List.concat_map (rewrite_decl asg scope) decls in
  List.map
    (fun u ->
      match u with
      | Ast.Module m ->
        Ast.Module
          {
            m with
            mod_decls = rewrite_decls (Symtab.Unit_scope m.mod_name) m.mod_decls;
            mod_procs =
              List.map
                (fun (p : Ast.proc) ->
                  { p with
                    proc_decls = rewrite_decls (Symtab.Proc_scope p.proc_name) p.proc_decls })
                m.mod_procs;
          }
      | Ast.Main m ->
        Ast.Main
          {
            m with
            main_decls = rewrite_decls (Symtab.Unit_scope m.main_name) m.main_decls;
            main_procs =
              List.map
                (fun (p : Ast.proc) ->
                  { p with
                    proc_decls = rewrite_decls (Symtab.Proc_scope p.proc_name) p.proc_decls })
                m.main_procs;
          })
    prog

let apply_source st asg = Unparse.program (apply st asg)
