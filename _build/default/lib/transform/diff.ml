type line =
  | Keep of string
  | Remove of string
  | Add of string

let split_lines s = Array.of_list (String.split_on_char '\n' s)

(* classic O(n*m) LCS table; fine at model-source scale *)
let lines a_text b_text : line list =
  let a = split_lines a_text in
  let b = split_lines b_text in
  let n = Array.length a and m = Array.length b in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1) else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i < n && j < m && a.(i) = b.(j) then walk (i + 1) (j + 1) (Keep a.(i) :: acc)
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then
      walk i (j + 1) (Add b.(j) :: acc)
    else if i < n then walk (i + 1) j (Remove a.(i) :: acc)
    else List.rev acc
  in
  walk 0 0 []

let hunks ?(context = 1) a_text b_text =
  let d = Array.of_list (lines a_text b_text) in
  let n = Array.length d in
  let changed i = match d.(i) with Keep _ -> false | Remove _ | Add _ -> true in
  let near i =
    let lo = max 0 (i - context) and hi = min (n - 1) (i + context) in
    let rec any j = j <= hi && (changed j || any (j + 1)) in
    any lo
  in
  let buf = Buffer.create 256 in
  let in_hunk = ref false in
  Array.iteri
    (fun i l ->
      if near i then begin
        if not !in_hunk then begin
          if Buffer.length buf > 0 then Buffer.add_string buf "...\n";
          in_hunk := true
        end;
        (match l with
        | Keep s -> Buffer.add_string buf ("  " ^ s)
        | Remove s -> Buffer.add_string buf ("- " ^ s)
        | Add s -> Buffer.add_string buf ("+ " ^ s));
        Buffer.add_char buf '\n'
      end
      else in_hunk := false)
    d;
  Buffer.contents buf

let declarations st asg =
  let open Fortran in
  let buf = Buffer.create 256 in
  let scope_header = function
    | Symtab.Proc_scope p -> "procedure " ^ p
    | Symtab.Unit_scope u -> "module " ^ u
  in
  let by_scope = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let k = Assignment.kind_of asg a in
      if k <> a.Assignment.a_declared then
        Hashtbl.replace by_scope a.Assignment.a_scope
          (a :: Option.value ~default:[] (Hashtbl.find_opt by_scope a.Assignment.a_scope)))
    (Assignment.atoms asg);
  let scopes = Hashtbl.fold (fun s _ acc -> s :: acc) by_scope [] |> List.sort compare in
  List.iter
    (fun scope ->
      let atoms = List.rev (Hashtbl.find by_scope scope) in
      Buffer.add_string buf (scope_header scope ^ "\n");
      List.iter
        (fun a ->
          let from_k = Token.int_of_kind a.Assignment.a_declared in
          let to_k = Token.int_of_kind (Assignment.kind_of asg a) in
          Buffer.add_string buf
            (Printf.sprintf "- real(kind=%d) :: %s\n+ real(kind=%d) :: %s\n" from_k
               a.Assignment.a_name to_k a.Assignment.a_name))
        atoms)
    scopes;
  ignore st;
  Buffer.contents buf
