open Fortran

type result = {
  program : Ast.program;
  wrapper_map : (string * string) list;
}

(* actual kind at each parameter position; None = non-real or kind matches *)
type site_sig = Ast.real_kind option list

let sig_suffix (s : site_sig) =
  String.concat ""
    (List.map (function Some Ast.K4 -> "4" | Some Ast.K8 -> "8" | None -> "x") s)

type gen_state = {
  st : Symtab.t;
  mutable next_loop_id : int;
  mutable next_proc_id : int;
  wrappers : (string * string, Ast.proc * string) Hashtbl.t;
      (* (callee, suffix) -> (wrapper proc, owner unit) *)
  mutable map : (string * string) list;
}

let max_ids prog =
  let loop_id = ref (-1) in
  let proc_id = ref (-1) in
  List.iter
    (fun u ->
      List.iter
        (fun (p : Ast.proc) -> proc_id := max !proc_id p.proc_id)
        (Ast.procs_of_unit u);
      let scan blk =
        Ast.iter_stmts
          (fun s ->
            match s.Ast.node with
            | Ast.Do { id; _ } | Ast.Do_while { id; _ } -> loop_id := max !loop_id id
            | _ -> ())
          blk
      in
      (match u with Ast.Main m -> scan m.main_body | Ast.Module _ -> ());
      List.iter (fun (p : Ast.proc) -> scan p.proc_body) (Ast.procs_of_unit u))
    prog;
  (!loop_id + 1, !proc_id + 1)

let fresh_loop_id g =
  let id = g.next_loop_id in
  g.next_loop_id <- id + 1;
  id

(* The actual-kind signature of a call site; [None] where no conversion is
   needed. Returns None overall when no position mismatches. *)
let site_signature g ~caller callee args : site_sig option =
  match Symtab.find_proc g.st callee with
  | None -> None
  | Some p ->
    if List.length args <> List.length p.Ast.params then None
    else begin
      let any = ref false in
      let s =
        List.map2
          (fun actual dummy ->
            match Symtab.lookup_var g.st ~in_proc:(Some callee) dummy with
            | Some { v_base = Ast.Treal dk; _ } -> (
              match Typecheck.infer g.st ~in_proc:caller actual with
              | Typecheck.Real ak when ak <> dk ->
                any := true;
                Some ak
              | Typecheck.Real _ -> None
              | Typecheck.Integer ->
                None (* integer actuals bind with conversion in our runtime *)
              | Typecheck.Logical | Typecheck.Str -> None
              | exception Typecheck.Error _ -> None)
            | Some _ | None -> None)
          args p.Ast.params
      in
      if !any then Some s else None
    end

let mk_stmt node = { Ast.node; loc = Loc.dummy }

(* element-wise copy loops: dst(i1,..,ir) = src(i1,..,ir) over dims *)
let copy_loops g ~dst ~src (dims : Ast.expr list) =
  let rank = List.length dims in
  let idx_vars = List.init rank (fun i -> Printf.sprintf "iw%d_" (i + 1)) in
  let indices = List.map (fun v -> Ast.Var v) idx_vars in
  let inner = mk_stmt (Ast.Assign (Ast.Lindex (dst, indices), Ast.Index (src, indices))) in
  let body =
    List.fold_left2
      (fun acc var dim ->
        [ mk_stmt
            (Ast.Do
               { id = fresh_loop_id g; var; from_ = Ast.Int_lit 1; to_ = dim; step = None;
                 body = acc }) ])
      [ inner ]
      (List.rev idx_vars) (List.rev dims)
  in
  (body, idx_vars)

let get_dinfo g callee dummy =
  match Symtab.lookup_var g.st ~in_proc:(Some callee) dummy with
  | Some i -> i
  | None -> failwith ("wrapper generation: dummy " ^ dummy ^ " of " ^ callee ^ " undeclared")

(* Build the wrapper procedure for (callee, signature). *)
let build_wrapper g callee (s : site_sig) : Ast.proc =
  let p = Option.get (Symtab.find_proc g.st callee) in
  let suffix = sig_suffix s in
  let wname = callee ^ "_w" ^ suffix in
  let decls = ref [] in
  let copy_in = ref [] in
  let copy_out = ref [] in
  let max_rank = ref 0 in
  let call_args =
    List.map2
      (fun dummy conv ->
        let dinfo = get_dinfo g callee dummy in
        match conv with
        | None ->
          (* pass through; declare the dummy exactly as the callee does *)
          decls :=
            { Ast.base = dinfo.v_base; dims = dinfo.v_dims; parameter = false;
              intent = dinfo.v_intent; names = [ (dummy, None) ]; decl_loc = Loc.dummy }
            :: !decls;
          Ast.Var dummy
        | Some actual_kind ->
          let dk =
            match dinfo.v_base with
            | Ast.Treal k -> k
            | Ast.Tinteger | Ast.Tlogical -> assert false
          in
          let tmp = dummy ^ "_tmp" in
          (* the wrapper's dummy carries the caller's kind *)
          decls :=
            { Ast.base = Ast.Treal actual_kind; dims = dinfo.v_dims; parameter = false;
              intent = dinfo.v_intent; names = [ (dummy, None) ]; decl_loc = Loc.dummy }
            :: !decls;
          decls :=
            { Ast.base = Ast.Treal dk; dims = dinfo.v_dims; parameter = false; intent = None;
              names = [ (tmp, None) ]; decl_loc = Loc.dummy }
            :: !decls;
          if dinfo.v_dims = [] then begin
            if dinfo.v_intent <> Some Ast.Out then
              copy_in := mk_stmt (Ast.Assign (Ast.Lvar tmp, Ast.Var dummy)) :: !copy_in;
            if dinfo.v_intent <> Some Ast.In then
              copy_out := mk_stmt (Ast.Assign (Ast.Lvar dummy, Ast.Var tmp)) :: !copy_out
          end
          else begin
            max_rank := max !max_rank (List.length dinfo.v_dims);
            if dinfo.v_intent <> Some Ast.Out then begin
              let loops, _ = copy_loops g ~dst:tmp ~src:dummy dinfo.v_dims in
              copy_in := List.rev_append loops !copy_in
            end;
            if dinfo.v_intent <> Some Ast.In then begin
              let loops, _ = copy_loops g ~dst:dummy ~src:tmp dinfo.v_dims in
              copy_out := List.rev_append loops !copy_out
            end
          end;
          Ast.Var tmp)
      p.Ast.params s
  in
  if !max_rank > 0 then
    decls :=
      { Ast.base = Ast.Tinteger; dims = []; parameter = false; intent = None;
        names = List.init !max_rank (fun i -> (Printf.sprintf "iw%d_" (i + 1), None));
        decl_loc = Loc.dummy }
      :: !decls;
  let call_and_result =
    match p.Ast.proc_kind with
    | Ast.Subroutine -> ([ mk_stmt (Ast.Call (callee, call_args)) ], Ast.Subroutine)
    | Ast.Function { result } ->
      let rinfo = get_dinfo g callee result in
      let res = "res_w" in
      decls :=
        { Ast.base = rinfo.v_base; dims = []; parameter = false; intent = None;
          names = [ (res, None) ]; decl_loc = Loc.dummy }
        :: !decls;
      ( [ mk_stmt (Ast.Assign (Ast.Lvar res, Ast.Index (callee, call_args))) ],
        Ast.Function { result = res } )
  in
  let body = List.rev !copy_in @ fst call_and_result @ List.rev !copy_out in
  let proc_id = g.next_proc_id in
  g.next_proc_id <- proc_id + 1;
  {
    Ast.proc_id;
    proc_kind = snd call_and_result;
    proc_name = wname;
    params = p.Ast.params;
    proc_decls = List.rev !decls;
    proc_body = body;
    proc_loc = Loc.dummy;
  }

let wrapper_for g ~caller callee args : string option =
  match site_signature g ~caller callee args with
  | None -> None
  | Some s ->
    let suffix = sig_suffix s in
    let key = (callee, suffix) in
    (match Hashtbl.find_opt g.wrappers key with
    | Some (w, _) -> Some w.Ast.proc_name
    | None ->
      let w = build_wrapper g callee s in
      let owner = Symtab.proc_owner g.st callee in
      Hashtbl.add g.wrappers key (w, owner);
      g.map <- (w.Ast.proc_name, callee) :: g.map;
      Some w.Ast.proc_name)

(* Rewrite every call site of a block, redirecting mismatching sites. *)
let rec rw_expr g ~caller e =
  match e with
  | Ast.Index (name, args) ->
    let args = List.map (rw_expr g ~caller) args in
    if (not (Builtins.is_intrinsic_function name))
       && Option.is_none (Symtab.lookup_var g.st ~in_proc:caller name)
       && Option.is_some (Symtab.find_proc g.st name)
    then
      match wrapper_for g ~caller name args with
      | Some w -> Ast.Index (w, args)
      | None -> Ast.Index (name, args)
    else Ast.Index (name, args)
  | Ast.Unop (op, a) -> Ast.Unop (op, rw_expr g ~caller a)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, rw_expr g ~caller a, rw_expr g ~caller b)
  | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Var _ -> e

let rec rw_stmt g ~caller (s : Ast.stmt) : Ast.stmt =
  let node =
    match s.node with
    | Ast.Assign (lhs, rhs) ->
      let lhs =
        match lhs with
        | Ast.Lvar _ -> lhs
        | Ast.Lindex (v, idx) -> Ast.Lindex (v, List.map (rw_expr g ~caller) idx)
      in
      Ast.Assign (lhs, rw_expr g ~caller rhs)
    | Ast.Call (name, args) ->
      let args = List.map (rw_expr g ~caller) args in
      if Builtins.is_intrinsic_subroutine name then Ast.Call (name, args)
      else (
        match wrapper_for g ~caller name args with
        | Some w -> Ast.Call (w, args)
        | None -> Ast.Call (name, args))
    | Ast.If (arms, els) ->
      Ast.If
        ( List.map (fun (c, b) -> (rw_expr g ~caller c, rw_block g ~caller b)) arms,
          rw_block g ~caller els )
    | Ast.Do d ->
      Ast.Do
        {
          d with
          from_ = rw_expr g ~caller d.from_;
          to_ = rw_expr g ~caller d.to_;
          step = Option.map (rw_expr g ~caller) d.step;
          body = rw_block g ~caller d.body;
        }
    | Ast.Do_while d ->
      Ast.Do_while { d with cond = rw_expr g ~caller d.cond; body = rw_block g ~caller d.body }
    | Ast.Select { selector; arms; default } ->
      Ast.Select
        {
          selector = rw_expr g ~caller selector;
          arms =
            List.map
              (fun (items, b) ->
                ( List.map
                    (function
                      | Ast.Case_value v -> Ast.Case_value (rw_expr g ~caller v)
                      | Ast.Case_range (lo, hi) ->
                        Ast.Case_range
                          (Option.map (rw_expr g ~caller) lo, Option.map (rw_expr g ~caller) hi))
                    items,
                  rw_block g ~caller b ))
              arms;
          default = rw_block g ~caller default;
        }
    | Ast.Print_stmt args -> Ast.Print_stmt (List.map (rw_expr g ~caller) args)
    | (Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _) as n -> n
  in
  { s with node }

and rw_block g ~caller blk = List.map (rw_stmt g ~caller) blk

let insert prog : result =
  let st = Symtab.build prog in
  let next_loop_id, next_proc_id = max_ids prog in
  let g = { st; next_loop_id; next_proc_id; wrappers = Hashtbl.create 8; map = [] } in
  let prog' =
    List.map
      (fun u ->
        match u with
        | Ast.Module m ->
          Ast.Module
            {
              m with
              mod_procs =
                List.map
                  (fun (p : Ast.proc) ->
                    { p with proc_body = rw_block g ~caller:(Some p.proc_name) p.proc_body })
                  m.mod_procs;
            }
        | Ast.Main m ->
          Ast.Main
            {
              m with
              main_body = rw_block g ~caller:None m.main_body;
              main_procs =
                List.map
                  (fun (p : Ast.proc) ->
                    { p with proc_body = rw_block g ~caller:(Some p.proc_name) p.proc_body })
                  m.main_procs;
            })
      prog
  in
  (* append wrappers to their owners *)
  let by_owner : (string, Ast.proc list) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ (w, owner) ->
      Hashtbl.replace by_owner owner (w :: Option.value ~default:[] (Hashtbl.find_opt by_owner owner)))
    g.wrappers;
  let sort_ws ws = List.sort (fun (a : Ast.proc) b -> compare a.proc_name b.proc_name) ws in
  let prog'' =
    List.map
      (fun u ->
        match u with
        | Ast.Module m -> (
          match Hashtbl.find_opt by_owner m.mod_name with
          | Some ws -> Ast.Module { m with mod_procs = m.mod_procs @ sort_ws ws }
          | None -> u)
        | Ast.Main m -> (
          match Hashtbl.find_opt by_owner m.main_name with
          | Some ws -> Ast.Main { m with main_procs = m.main_procs @ sort_ws ws }
          | None -> u))
      prog'
  in
  { program = prog''; wrapper_map = List.rev g.map }

let owner_fn r name = List.assoc_opt name r.wrapper_map
