(** Wrapper synthesis for mixed-precision parameter passing (Fig. 4).

    Fortran performs implicit kind conversion only through assignment, so
    after {!Rewrite.apply} any call site whose actual argument kind no
    longer matches the dummy's is illegal. For each such site this pass:

    - synthesizes (once per [callee × actual-kind-signature]) a wrapper
      procedure in the callee's module, taking arguments at the {e actual}
      kinds, converting into temporaries of the {e dummy} kinds through
      assignments (element-wise copy loops for arrays — the source of the
      MOM6 array-boundary casting overhead), calling the callee, and
      copying back out for writable dummies;
    - redirects the call site to the wrapper.

    On the flow graph this replaces each mismatching edge with matching
    edges through the temporary node, restoring the invariant that
    adjacent nodes carry equal annotations; {!Analysis.Flowgraph.violations}
    on the result is empty and {!Fortran.Typecheck.check_program} passes
    (both are asserted by the test suite). *)

type result = {
  program : Fortran.Ast.program;  (** wrapped program *)
  wrapper_map : (string * string) list;  (** wrapper name → wrapped procedure *)
}

val insert : Fortran.Ast.program -> result
(** Idempotent: a program with no kind mismatches is returned unchanged
    (with an empty [wrapper_map]). Raises {!Fortran.Typecheck.Error} if a
    mismatch cannot be repaired (e.g. an array actual that is not a whole
    variable). *)

val owner_fn : result -> string -> string option
(** [owner_fn r] is the [wrapper_owner] callback for {!Runtime.Interp.run}. *)
