lib/transform/wrappers.ml: Ast Builtins Fortran Hashtbl List Loc Option Printf String Symtab Typecheck
