lib/transform/rewrite.mli: Assignment Fortran
