lib/transform/wrappers.mli: Fortran
