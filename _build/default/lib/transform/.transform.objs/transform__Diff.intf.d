lib/transform/diff.mli: Assignment Fortran
