lib/transform/rewrite.ml: Assignment Ast Fortran List Symtab Unparse
