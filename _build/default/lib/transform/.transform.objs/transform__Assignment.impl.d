lib/transform/assignment.ml: Ast Format Fortran List Map String Symtab
