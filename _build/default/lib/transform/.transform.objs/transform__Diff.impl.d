lib/transform/diff.ml: Array Assignment Buffer Fortran Hashtbl List Option Printf String Symtab Token
