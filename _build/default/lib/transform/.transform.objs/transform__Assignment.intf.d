lib/transform/assignment.mli: Format Fortran
