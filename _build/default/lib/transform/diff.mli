(** Line diffs between program variants (Fig. 3).

    The paper presents variants to domain experts as source-level diffs
    against the original program; interpretability of the transformed
    source is one of the stated reasons for tuning variable declarations
    at the source level (Sec. III-A, III-C). *)

type line =
  | Keep of string
  | Remove of string
  | Add of string

val lines : string -> string -> line list
(** LCS-based line diff between two texts. *)

val hunks : ?context:int -> string -> string -> string
(** Unified-diff-style rendering showing only changed regions with
    [context] lines around them (default 1), using [-]/[+] prefixes. *)

val declarations : Fortran.Symtab.t -> Assignment.t -> string
(** The Fig.-3 view: only the declaration changes implied by an
    assignment, grouped by procedure/module. *)
