(** Source-to-source application of a precision assignment.

    Retypes the targeted variable declarations ([real(kind=8)] ↔
    [real(kind=4)]), splitting multi-entity declarations whose entities
    receive different kinds — exactly the Fig.-3 transformation. Nothing
    else changes: call sites, literals and expressions are untouched, so
    the result may violate Fortran's argument-association rule until
    {!Wrappers.insert} repairs it. *)

val apply : Fortran.Symtab.t -> Assignment.t -> Fortran.Ast.program
(** A new program with declarations retyped per the assignment. Statement
    and loop ids are preserved. *)

val apply_source : Fortran.Symtab.t -> Assignment.t -> string
(** [apply] followed by unparsing — the variant's source text. *)
