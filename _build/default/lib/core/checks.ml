open Search

type check = {
  name : string;
  value : string;
  ok : bool;
}

let mk name fmt ok = { name; value = fmt; ok }
let fnum v = Printf.sprintf "%.3g" v

let best (c : Tuner.campaign) = c.Tuner.summary.Variant.best_speedup

let proc_speedups c proc = Report.per_proc_per_call_speedups c ~proc

(* ------------------------------------------------------------------ *)

let funarc (c : Tuner.campaign) =
  let records = c.Tuner.records in
  let n = List.length records in
  let worse_both =
    List.length
      (List.filter
         (fun (r : Variant.record) ->
           r.Variant.meas.Variant.speedup > 0.0
           && r.Variant.meas.Variant.speedup < 1.0
           && r.Variant.meas.Variant.rel_error > 0.0)
         records)
  in
  let frontier = Variant.frontier records in
  let uniform32_err =
    List.fold_left
      (fun acc (r : Variant.record) ->
        if Transform.Assignment.count_at r.Variant.asg Fortran.Ast.K8 = 0 then
          r.Variant.meas.Variant.rel_error
        else acc)
      nan records
  in
  let good_frontier =
    List.exists
      (fun (r : Variant.record) ->
        Transform.Assignment.fraction_lowered r.Variant.asg >= 0.5
        && r.Variant.meas.Variant.rel_error < uniform32_err
        && r.Variant.meas.Variant.speedup >= 1.25)
      frontier
  in
  [
    mk "2^8 = 256 variants explored" (string_of_int n) (n = 256);
    mk "frontier reaches >= 1.3x" (fnum (best c)) (best c >= 1.3);
    mk "majority-lowered frontier variant beats uniform-32 error at >=1.25x"
      (Printf.sprintf "uniform32 err %.3g" uniform32_err)
      good_frontier;
    mk "substantial share worse on both axes (casting overhead)"
      (Printf.sprintf "%.0f%%" (100.0 *. float_of_int worse_both /. float_of_int (max 1 n)))
      (float_of_int worse_both /. float_of_int (max 1 n) >= 0.25);
  ]

let mpas_hotspot (c : Tuner.campaign) =
  let low_bucket = Report.speedups_in_bucket c ~lo:0.0 ~hi:30.0 in
  let high_pass = Report.passing_speedups_in_bucket c ~lo:89.0 ~hi:100.0 in
  let flux_min =
    Float.min
      (Metrics.Stats.minimum (proc_speedups c "flux4"))
      (Metrics.Stats.minimum (proc_speedups c "flux3"))
  in
  let dyn_uniq = Report.unique_proc_variants c ~proc:"atm_compute_dyn_tend_work" in
  let rec_uniq = Report.unique_proc_variants c ~proc:"atm_recover_large_step_variables_work" in
  [
    mk "best speedup substantial (paper ~1.9x)" (fnum (best c)) (best c >= 1.35);
    mk "<=30% 32-bit variants not faster than baseline"
      (Printf.sprintf "max %.2f" (Metrics.Stats.maximum low_bucket))
      (low_bucket = [] || Metrics.Stats.maximum low_bucket <= 1.05);
    mk ">=90% 32-bit passing variants are the fastest"
      (Printf.sprintf "max %.2f" (Metrics.Stats.maximum high_pass))
      (high_pass <> [] && Metrics.Stats.maximum high_pass >= 1.35)
      ;
    mk "dyn_tend explored more than the quickly-settled recover routine"
      (Printf.sprintf "%d vs %d" dyn_uniq rec_uniq)
      (dyn_uniq >= rec_uniq);
    mk "flux variants with critical per-call slowdown (paper 0.03-0.1x)" (fnum flux_min)
      (flux_min <= 0.2);
    mk "no runtime errors (paper 0%)"
      (Printf.sprintf "%.1f%%" c.Tuner.summary.Variant.error_pct)
      (c.Tuner.summary.Variant.error_pct <= 5.0);
  ]

let adcirc_hotspot (c : Tuner.campaign) =
  let jcg = proc_speedups c "jcg" in
  let pjac = proc_speedups c "pjac" in
  let peror = proc_speedups c "peror" in
  [
    mk "best speedup minimal (paper ~1.1x)" (fnum (best c)) (best c >= 0.9 && best c <= 1.3);
    mk "peror insensitive to precision (allreduce-bound)"
      (Printf.sprintf "median %.2f" (Metrics.Stats.median peror))
      (peror <> [] && Metrics.Stats.median peror >= 0.6 && Metrics.Stats.median peror <= 1.4);
    mk "pjac gains little (loop-carried dependence)"
      (Printf.sprintf "median %.2f" (Metrics.Stats.median pjac))
      (pjac <> [] && Metrics.Stats.median pjac >= 0.5 && Metrics.Stats.median pjac <= 1.6);
    mk "jcg bimodal: fast-but-wrong variants exist"
      (Printf.sprintf "max %.2f" (Metrics.Stats.maximum jcg))
      (jcg <> [] && Metrics.Stats.maximum jcg >= 1.3);
    mk "jcg bimodal: full-length variants exist"
      (Printf.sprintf "min %.2f" (Metrics.Stats.minimum jcg))
      (jcg <> [] && Metrics.Stats.minimum jcg <= 1.0);
    mk "runtime-error class present (paper 29.7%)"
      (Printf.sprintf "%.1f%%" c.Tuner.summary.Variant.error_pct)
      (c.Tuner.summary.Variant.error_pct > 0.0);
  ]

let mom6_hotspot (c : Tuner.campaign) =
  let adjust = proc_speedups c "zonal_flux_adjust" in
  let truncated =
    match c.Tuner.minimal with
    | Some r -> not r.Search.Delta_debug.finished
    | None -> false
  in
  [
    mk "best speedup negligible (paper 1.04x)" (fnum (best c)) (best c <= 1.2);
    mk "runtime errors dominate (paper 51.7%)"
      (Printf.sprintf "%.1f%%" c.Tuner.summary.Variant.error_pct)
      (c.Tuner.summary.Variant.error_pct >= 30.0);
    mk "flux_adjust variants with 10-100x convergence blowup (paper 0.01-0.1x/call)"
      (fnum (Metrics.Stats.minimum adjust))
      (adjust <> [] && Metrics.Stats.minimum adjust <= 0.15);
    mk "search truncated by the 12-hour budget" (string_of_bool truncated) truncated;
    (let max_cast =
       List.fold_left
         (fun acc (r : Variant.record) -> Float.max acc r.Variant.meas.Variant.casting_share)
         0.0 c.Tuner.records
     in
     (* the paper's variant 58 spends 40 % of CPU on casting; our layer
        arrays are an order of magnitude smaller, so the share scales down *)
     mk "variants with heavy array-boundary casting (paper: 40% of CPU)"
       (Printf.sprintf "max %.0f%%" (100.0 *. max_cast))
       (max_cast >= 0.15));
  ]

let mpas_whole_model (c : Tuner.campaign) =
  let heavy = Report.speedups_in_bucket c ~lo:89.0 ~hi:100.0 in
  let light = Report.speedups_in_bucket c ~lo:0.0 ~hi:50.0 in
  [
    mk "best whole-model speedup ~1x or below (paper <1.1x)" (fnum (best c)) (best c <= 1.1);
    mk ">=90% 32-bit variants markedly slower (paper <0.6x)"
      (Printf.sprintf "median %.2f" (Metrics.Stats.median heavy))
      (heavy <> [] && Metrics.Stats.median heavy <= 0.85);
    mk "<=50% 32-bit variants near baseline (paper 0.8-1x)"
      (Printf.sprintf "median %.2f" (Metrics.Stats.median light))
      (light = [] || Metrics.Stats.median light >= 0.55);
  ]

let render checks =
  String.concat ""
    (List.map
       (fun c -> Printf.sprintf "  [%s] %-68s %s\n" (if c.ok then "ok" else "!!") c.name c.value)
       checks)

let all_ok checks = List.for_all (fun c -> c.ok) checks
