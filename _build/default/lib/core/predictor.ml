type t = Metrics.Linreg.model

let feature_names =
  [ "frac_32bit"; "mismatch_edges"; "mismatch_array_elems"; "vector_loops"; "conv_sites" ]

let features (p : Tuner.prepared) asg =
  let prog' = Transform.Rewrite.apply p.Tuner.st asg in
  let st' = Fortran.Symtab.build prog' in
  let graph = Analysis.Flowgraph.build st' in
  let violations = Analysis.Flowgraph.violations graph in
  let array_elems =
    List.fold_left
      (fun acc (e : Analysis.Flowgraph.edge) ->
        if e.Analysis.Flowgraph.e_dummy.Analysis.Flowgraph.n_is_array then
          acc
          + Option.value ~default:100 e.Analysis.Flowgraph.e_dummy.Analysis.Flowgraph.n_elements
        else acc)
      0 violations
  in
  let reports = Analysis.Vectorize.analyze st' in
  let vec = List.length (List.filter Analysis.Vectorize.vectorizable reports) in
  let convs =
    List.fold_left (fun acc (r : Analysis.Vectorize.report) -> acc + r.Analysis.Vectorize.conv_sites)
      0 reports
  in
  [|
    Transform.Assignment.fraction_lowered asg;
    float_of_int (List.length violations);
    float_of_int array_elems;
    float_of_int vec;
    float_of_int convs;
  |]

let measurable (r : Search.Variant.record) =
  r.Search.Variant.meas.Search.Variant.speedup > 0.0

let samples p records =
  let usable = List.filter measurable records in
  ( List.map (fun (r : Search.Variant.record) -> features p r.Search.Variant.asg) usable,
    List.map (fun (r : Search.Variant.record) -> r.Search.Variant.meas.Search.Variant.speedup)
      usable )

let train p records =
  let features, targets = samples p records in
  Metrics.Linreg.fit ~features ~targets

let predict m p asg = Metrics.Linreg.predict m (features p asg)

let r_squared m p records =
  let features, targets = samples p records in
  Metrics.Linreg.r_squared m ~features ~targets

let holdout_report p records =
  let usable = List.filter measurable records in
  let n = List.length usable in
  let cut = n * 3 / 5 in
  let train_set = List.filteri (fun i _ -> i < cut) usable in
  let test_set = List.filteri (fun i _ -> i >= cut) usable in
  match train p train_set with
  | None -> None
  | Some m ->
    Some (r_squared m p train_set, r_squared m p test_set, List.length test_set)
