(** Text rendering of the paper's tables and figures.

    Every experiment renderer prints the same rows/series the paper
    reports; absolute values are the cost model's, so EXPERIMENTS.md
    records them side by side with the paper's (shape, not bit-equality,
    is the reproduction criterion — exactly as the paper's own artifact
    appendix specifies for its non-deterministic searches). *)

val table1 : Tuner.campaign list -> string
(** Table I: targeted module, measured %CPU time and #FP vars, with the
    paper's numbers alongside. *)

val table2 : Tuner.campaign list -> string
(** Table II: variants explored, outcome percentages, best speedup. *)

val scatter :
  ?width:int ->
  ?height:int ->
  ?log_x:bool ->
  ?log_y:bool ->
  xlabel:string ->
  ylabel:string ->
  (float * float * char) list ->
  string
(** ASCII scatter plot; non-finite points are dropped. *)

val figure2 : Tuner.campaign -> string
(** funarc speedup–error scatter with the optimal frontier. *)

val figure3 : Tuner.campaign -> error_budget:float -> string
(** The Fig.-3 diff: the frontier variant maximizing speedup within the
    error budget, rendered as a declaration diff against the original. *)

val figure5 : Tuner.campaign -> string
(** Hotspot variants on speedup–error axes, plus the %-32-bit cluster
    summary the paper's checklist validates. *)

val figure6 : Tuner.campaign -> string
(** Per-procedure variant performance: unique per-procedure precision
    assignments vs. average inclusive CPU time per call. *)

val figure7 : Tuner.campaign -> string
(** The whole-model-guided MPAS-A search (same axes as Fig. 5). *)

val campaign_header : Tuner.campaign -> string
(** One-paragraph summary: search space size, threshold, Eq.-1 n,
    1-minimal result, simulated cluster hours. *)

val per_proc_per_call_speedups : Tuner.campaign -> proc:string -> float list
(** Fig. 6's raw series for one procedure: for each {e unique}
    per-procedure precision assignment among the explored variants, the
    baseline-vs-variant ratio of average inclusive CPU time per call. *)

val unique_proc_variants : Tuner.campaign -> proc:string -> int
(** Number of unique per-procedure precision assignments explored — the
    paper's "how quickly correct/performant variants were found" signal. *)

val passing_speedups_in_bucket : Tuner.campaign -> lo:float -> hi:float -> float list
(** Eq.-1 speedups of passing variants whose %-32-bit fraction lies in
    [lo, hi] (percent). *)

val speedups_in_bucket : Tuner.campaign -> lo:float -> hi:float -> float list
(** Same, over all variants that produced a speedup (pass or fail). *)
