open Search

let buf_add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* ASCII scatter                                                       *)

let scatter ?(width = 64) ?(height = 18) ?(log_x = false) ?(log_y = false) ~xlabel ~ylabel points =
  let finite (x, y, _) =
    Float.is_finite x && Float.is_finite y
    && ((not log_x) || x > 0.0)
    && ((not log_y) || y > 0.0)
  in
  let points = List.filter finite points in
  if points = [] then Printf.sprintf "  (no plottable points)  x=%s y=%s\n" xlabel ylabel
  else begin
    let tx x = if log_x then log10 x else x in
    let ty y = if log_y then log10 y else y in
    let xs = List.map (fun (x, _, _) -> tx x) points in
    let ys = List.map (fun (_, y, _) -> ty y) points in
    let pad lo hi = if hi -. lo < 1e-9 then (lo -. 0.5, hi +. 0.5) else (lo, hi) in
    let xmin, xmax = pad (Metrics.Stats.minimum xs) (Metrics.Stats.maximum xs) in
    let ymin, ymax = pad (Metrics.Stats.minimum ys) (Metrics.Stats.maximum ys) in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun (x, y, c) ->
        let px =
          int_of_float ((tx x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1) +. 0.5)
        in
        let py =
          int_of_float ((ty y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1) +. 0.5)
        in
        let row = height - 1 - max 0 (min (height - 1) py) in
        let col = max 0 (min (width - 1) px) in
        grid.(row).(col) <- c)
      points;
    let b = Buffer.create 2048 in
    let fmt v islog = if islog then Printf.sprintf "1e%+.1f" v else Printf.sprintf "%.3g" v in
    Buffer.add_string b
      (Printf.sprintf "  %s: [%s, %s]   %s: [%s, %s]\n" xlabel (fmt xmin log_x) (fmt xmax log_x)
         ylabel (fmt ymin log_y) (fmt ymax log_y));
    Array.iter
      (fun row ->
        Buffer.add_string b "  |";
        Array.iter (Buffer.add_char b) row;
        Buffer.add_char b '\n')
      grid;
    Buffer.add_string b ("  +" ^ String.make width '-' ^ "> " ^ xlabel ^ "\n");
    Buffer.contents b
  end

(* ------------------------------------------------------------------ *)

let status_char = function
  | Variant.Pass -> 'o'
  | Variant.Fail -> 'x'
  | Variant.Timeout -> 'T'
  | Variant.Error -> 'E'

let err_for_plot e = if Float.is_finite e then Float.max e 1e-12 else nan

let pct32 (r : Variant.record) = 100.0 *. Variant.fraction_lowered r

let campaign_header (c : Tuner.campaign) =
  let p = c.prepared in
  let m = p.Tuner.model in
  let b = Buffer.create 512 in
  buf_add b
    (Printf.sprintf "%s: target %s (%s); %d FP atoms; threshold %.3g on %s; Eq.1 n=%d\n"
       m.Models.Registry.title m.Models.Registry.target_module
       (String.concat ", " m.Models.Registry.target_procs)
       (List.length p.Tuner.atoms) p.Tuner.threshold m.Models.Registry.metric_desc p.Tuner.eq1_n);
  buf_add b
    (Printf.sprintf
       "  baseline: model cost %.3g, hotspot %.3g (%.1f%% of CPU); simulated cluster time %.1f h\n"
       p.Tuner.baseline_cost p.Tuner.baseline_hotspot
       (100.0 *. p.Tuner.baseline_hotspot /. p.Tuner.baseline_cost)
       c.Tuner.simulated_hours);
  (match c.Tuner.minimal with
  | Some r ->
    buf_add b
      (Printf.sprintf "  1-minimal variant: %d of %d atoms kept at 64 bits%s (search %s, %d evals)\n"
         (List.length r.Search.Delta_debug.high_set)
         (List.length p.Tuner.atoms)
         (match r.Search.Delta_debug.high_set with
         | [] -> ""
         | l ->
           ": "
           ^ String.concat ", "
               (List.map Transform.Assignment.atom_id
                  (if List.length l > 6 then
                     let rec take n = function
                       | [] -> []
                       | x :: r -> if n = 0 then [] else x :: take (n - 1) r
                     in
                     take 6 l
                   else l))
           ^ if List.length l > 6 then ", ..." else "")
         (if r.Search.Delta_debug.finished then "finished"
          else "truncated by the 12-hour budget")
         r.Search.Delta_debug.evaluations)
  | None -> ());
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)

let table1 campaigns =
  let b = Buffer.create 512 in
  buf_add b "TABLE I: Summary statistics for targeted hotspots\n";
  buf_add b
    "  Model    Targeted Module       %CPU (ours)  %CPU (paper)  #FP vars (ours)  #FP vars (paper)\n";
  List.iter
    (fun (c : Tuner.campaign) ->
      let p = c.Tuner.prepared in
      let m = p.Tuner.model in
      let share = 100.0 *. p.Tuner.baseline_hotspot /. p.Tuner.baseline_cost in
      let paper_share, paper_vars =
        match m.Models.Registry.paper with
        | Some pn -> (Printf.sprintf "%.0f%%" pn.Models.Registry.p_cpu_share,
                      string_of_int pn.Models.Registry.p_fp_vars)
        | None -> ("-", "-")
      in
      buf_add b
        (Printf.sprintf "  %-8s %-21s %8.1f%%  %12s  %15d  %16s\n" m.Models.Registry.title
           m.Models.Registry.target_module share paper_share
           (List.length p.Tuner.atoms) paper_vars))
    campaigns;
  Buffer.contents b

let table2 campaigns =
  let b = Buffer.create 512 in
  buf_add b "TABLE II: Summary metrics for variants explored (ours | paper)\n";
  buf_add b "  Model    Total      Pass          Fail          Timeout       Error         Speedup\n";
  List.iter
    (fun (c : Tuner.campaign) ->
      let m = c.Tuner.prepared.Tuner.model in
      let s = c.Tuner.summary in
      let fmt v pv = Printf.sprintf "%5.1f|%5.1f%%" v pv in
      let row =
        match m.Models.Registry.paper with
        | Some pn ->
          Printf.sprintf "  %-8s %3d|%3d  %s  %s  %s  %s  %.2f|%.2fx\n" m.Models.Registry.title
            s.Variant.total pn.Models.Registry.p_variants
            (fmt s.Variant.pass_pct pn.Models.Registry.p_pass_pct)
            (fmt s.Variant.fail_pct pn.Models.Registry.p_fail_pct)
            (fmt s.Variant.timeout_pct pn.Models.Registry.p_timeout_pct)
            (fmt s.Variant.error_pct pn.Models.Registry.p_error_pct)
            s.Variant.best_speedup pn.Models.Registry.p_best_speedup
        | None ->
          Printf.sprintf "  %-8s %3d      %5.1f%%        %5.1f%%        %5.1f%%        %5.1f%%        %.2fx\n"
            m.Models.Registry.title s.Variant.total s.Variant.pass_pct s.Variant.fail_pct
            s.Variant.timeout_pct s.Variant.error_pct s.Variant.best_speedup
      in
      buf_add b row)
    campaigns;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)

let speedup_error_points records =
  List.filter_map
    (fun (r : Variant.record) ->
      if r.Variant.meas.Variant.speedup > 0.0 then
        Some (r.Variant.meas.Variant.speedup, err_for_plot r.Variant.meas.Variant.rel_error,
              status_char r.Variant.meas.Variant.status)
      else None)
    records

let figure2 (c : Tuner.campaign) =
  let b = Buffer.create 2048 in
  buf_add b "FIGURE 2: funarc mixed-precision variants (speedup vs relative error)\n";
  buf_add b "  legend: o = within budget, x = over budget\n";
  buf_add b
    (scatter ~log_y:true ~xlabel:"speedup" ~ylabel:"rel.error"
       (speedup_error_points c.Tuner.records));
  buf_add b "  optimal frontier (increasing error):\n";
  List.iter
    (fun (r : Variant.record) ->
      buf_add b
        (Printf.sprintf "    speedup %.3f  error %.3g  lowered: %s\n" r.Variant.meas.Variant.speedup
           r.Variant.meas.Variant.rel_error
           (match Transform.Assignment.lowered r.Variant.asg with
           | [] -> "(none: baseline)"
           | l -> String.concat ", " (List.map Transform.Assignment.atom_id l))))
    (Variant.frontier c.Tuner.records);
  Buffer.contents b

let figure3 (c : Tuner.campaign) ~error_budget =
  let chosen =
    List.fold_left
      (fun acc (r : Variant.record) ->
        if r.Variant.meas.Variant.status = Variant.Pass
           && r.Variant.meas.Variant.rel_error <= error_budget
        then
          match acc with
          | Some (best : Variant.record) when best.Variant.meas.Variant.speedup >= r.Variant.meas.Variant.speedup ->
            acc
          | Some _ | None -> Some r
        else acc)
      None c.Tuner.records
  in
  let b = Buffer.create 1024 in
  buf_add b
    (Printf.sprintf "FIGURE 3: diff of the variant maximizing speedup within error budget %.1g\n"
       error_budget);
  (match chosen with
  | None -> buf_add b "  (no variant within the budget)\n"
  | Some r ->
    buf_add b
      (Printf.sprintf "  chosen variant: speedup %.3f, error %.3g\n" r.Variant.meas.Variant.speedup
         r.Variant.meas.Variant.rel_error);
    buf_add b (Transform.Diff.declarations c.Tuner.prepared.Tuner.st r.Variant.asg));
  Buffer.contents b

let cluster_line records ~lo ~hi label =
  let bucket =
    List.filter (fun r -> pct32 r >= lo && pct32 r <= hi) records
  in
  let speedups =
    List.filter_map
      (fun (r : Variant.record) ->
        if r.Variant.meas.Variant.speedup > 0.0 then Some r.Variant.meas.Variant.speedup else None)
      bucket
  in
  if bucket = [] then Printf.sprintf "    %s: no variants\n" label
  else
    Printf.sprintf "    %s: %d variants, speedup min %.2f / median %.2f / max %.2f\n" label
      (List.length bucket) (Metrics.Stats.minimum speedups) (Metrics.Stats.median speedups)
      (Metrics.Stats.maximum speedups)

let figure5_like title (c : Tuner.campaign) =
  let b = Buffer.create 2048 in
  buf_add b (title ^ "\n");
  buf_add b "  legend: o = pass, x = fail, T = timeout, E = error (T/E carry no speedup)\n";
  buf_add b (scatter ~log_y:true ~xlabel:"speedup" ~ylabel:"rel.error" (speedup_error_points c.Tuner.records));
  buf_add b "  clusters by fraction of variables at 32 bits:\n";
  buf_add b (cluster_line c.Tuner.records ~lo:0.0 ~hi:30.0 "<=30% 32-bit");
  buf_add b (cluster_line c.Tuner.records ~lo:30.0 ~hi:50.0 "30-50% 32-bit");
  buf_add b (cluster_line c.Tuner.records ~lo:50.0 ~hi:89.0 "50-89% 32-bit");
  buf_add b (cluster_line c.Tuner.records ~lo:89.0 ~hi:100.0 ">=90% 32-bit");
  let max_cast =
    List.fold_left
      (fun acc (r : Variant.record) -> Float.max acc r.Variant.meas.Variant.casting_share)
      0.0 c.Tuner.records
  in
  buf_add b
    (Printf.sprintf "  heaviest casting overhead among variants: %.0f%% of model CPU time\n"
       (100.0 *. max_cast));
  Buffer.contents b

let figure5 c =
  figure5_like
    (Printf.sprintf "FIGURE 5 (%s): hotspot variants on speedup-error axes"
       c.Tuner.prepared.Tuner.model.Models.Registry.title)
    c

let figure7 c =
  figure5_like "FIGURE 7 (MPAS-A, whole-model-guided): variants on speedup-error axes" c

let base_per_call_of (p : Tuner.prepared) proc =
  let incl = Runtime.Timers.inclusive_of p.Tuner.baseline_timers proc in
  let calls = Runtime.Timers.calls_of p.Tuner.baseline_timers proc in
  if calls = 0 then nan else incl /. float_of_int calls

let per_proc_per_call_speedups (c : Tuner.campaign) ~proc =
  let base = base_per_call_of c.Tuner.prepared proc in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Variant.record) ->
      let sigp = Transform.Assignment.restrict_signature r.Variant.asg ~proc in
      if Hashtbl.mem seen sigp then None
      else begin
        Hashtbl.add seen sigp ();
        match List.find_opt (fun (n, _, _) -> n = proc) r.Variant.meas.Variant.proc_stats with
        | Some (_, incl, calls) when calls > 0 && Float.is_finite base && incl > 0.0 ->
          Some (base /. (incl /. float_of_int calls))
        | Some _ | None -> None
      end)
    c.Tuner.records

let unique_proc_variants (c : Tuner.campaign) ~proc =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : Variant.record) ->
      Hashtbl.replace seen (Transform.Assignment.restrict_signature r.Variant.asg ~proc) ())
    c.Tuner.records;
  Hashtbl.length seen

let speedups_in_bucket (c : Tuner.campaign) ~lo ~hi =
  List.filter_map
    (fun (r : Variant.record) ->
      if pct32 r >= lo && pct32 r <= hi && r.Variant.meas.Variant.speedup > 0.0 then
        Some r.Variant.meas.Variant.speedup
      else None)
    c.Tuner.records

let passing_speedups_in_bucket (c : Tuner.campaign) ~lo ~hi =
  List.filter_map
    (fun (r : Variant.record) ->
      if pct32 r >= lo && pct32 r <= hi && r.Variant.meas.Variant.status = Variant.Pass then
        Some r.Variant.meas.Variant.speedup
      else None)
    c.Tuner.records

let figure6 (c : Tuner.campaign) =
  let p = c.Tuner.prepared in
  let m = p.Tuner.model in
  let b = Buffer.create 2048 in
  buf_add b
    (Printf.sprintf "FIGURE 6 (%s): per-procedure variant performance (avg CPU time per call)\n"
       m.Models.Registry.title);
  let hotspot = p.Tuner.baseline_hotspot in
  List.iter
    (fun proc ->
      let share =
        100.0 *. Runtime.Timers.exclusive_of p.Tuner.baseline_timers proc /. hotspot
      in
      let sp = per_proc_per_call_speedups c ~proc in
      buf_add b
        (Printf.sprintf
           "  %-38s (%4.1f%% of hotspot): %3d unique variants; per-call speedup min %.3g / median %.3g / max %.3g\n"
           proc share
           (unique_proc_variants c ~proc)
           (Metrics.Stats.minimum sp) (Metrics.Stats.median sp) (Metrics.Stats.maximum sp)))
    m.Models.Registry.fig6_procs;
  (* one combined log-axis strip plot: per-call speedups of all fig6 procs *)
  let pts =
    List.concat (List.mapi
      (fun idx proc ->
        List.map
          (fun s -> (s, float_of_int (idx + 1), Char.chr (Char.code 'a' + (idx mod 26))))
          (per_proc_per_call_speedups c ~proc))
      m.Models.Registry.fig6_procs)
  in
  buf_add b "  strip plot (x: per-call speedup, log; y: procedure a,b,c,... in listed order):\n";
  buf_add b (scatter ~height:(2 + (2 * List.length m.Models.Registry.fig6_procs)) ~log_x:true
               ~xlabel:"per-call speedup" ~ylabel:"procedure" pts);
  Buffer.contents b
