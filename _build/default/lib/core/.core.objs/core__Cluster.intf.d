lib/core/cluster.mli: Models
