lib/core/cluster.ml: List Models
