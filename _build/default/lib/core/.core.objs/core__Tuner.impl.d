lib/core/tuner.ml: Analysis Array Brute_force Cluster Config Delta_debug Float Format Fortran Hashtbl Hierarchical List Metrics Models Option Printf Random_walk Runtime Search Trace Transform Variant
