lib/core/export.mli: Tuner
