lib/core/checks.mli: Tuner
