lib/core/report.mli: Tuner
