lib/core/tuner.mli: Analysis Config Fortran Models Runtime Search Transform
