lib/core/predictor.ml: Analysis Fortran List Metrics Option Search Transform Tuner
