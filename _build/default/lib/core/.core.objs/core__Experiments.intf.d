lib/core/experiments.mli: Config Tuner
