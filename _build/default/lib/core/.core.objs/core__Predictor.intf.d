lib/core/predictor.mli: Search Transform Tuner
