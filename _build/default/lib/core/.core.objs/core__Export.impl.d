lib/core/export.ml: Buffer Float Fun List Models Printf Search String Transform Tuner Variant
