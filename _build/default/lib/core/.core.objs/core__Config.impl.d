lib/core/config.ml: Runtime
