lib/core/report.ml: Array Buffer Char Float Hashtbl List Metrics Models Printf Runtime Search String Transform Tuner Variant
