lib/core/checks.ml: Float Fortran List Metrics Printf Report Search String Transform Tuner Variant
