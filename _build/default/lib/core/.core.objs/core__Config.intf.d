lib/core/config.mli: Runtime
