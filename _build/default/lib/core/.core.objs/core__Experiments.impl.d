lib/core/experiments.ml: Config List Models Printf Runtime Search Tuner
