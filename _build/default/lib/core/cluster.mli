(** Simulated batch execution on the paper's cluster setup.

    The paper parallelizes transformation, compilation and execution of
    variants over 20 dedicated Derecho nodes under a 12-hour job limit
    (Sec. IV-A). The cost model's abstract time units are mapped to wall
    seconds through the paper's own baseline wall times (MPAS-A ≈ 90 s,
    ADCIRC ≈ 200 s, MOM6 ≈ 60 s), plus a fixed per-variant transform +
    compile overhead; this bookkeeping reproduces the resource accounting
    (and MOM6's failure to finish inside the job limit). *)

type t = {
  nodes : int;  (** 20 in the paper *)
  job_hours : float;  (** 12 in the paper *)
  per_variant_overhead_s : float;  (** transform + compile + queue, per variant *)
  baseline_wall_s : float;  (** wall seconds of one baseline model run *)
}

val for_model : Models.Registry.t -> t
(** Paper-faithful constants for each model (funarc gets a 1-node,
    laptop-scale setup). *)

val variant_seconds : t -> baseline_cost:float -> variant_cost:float -> float
(** Wall seconds to transform, compile and run one variant whose modeled
    cost is [variant_cost]. *)

val campaign_hours : t -> baseline_cost:float -> variant_costs:float list -> float
(** Simulated wall-clock hours for a whole search, with variants spread
    across the nodes. *)

val over_budget : t -> float -> bool
