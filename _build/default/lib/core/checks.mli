(** Validation criteria from the paper's Artifact Appendix.

    The paper's artifact cannot be validated bit-for-bit ("because of the
    inherent non-determinism of a performance-guided search, one cannot
    expect bit-for-bit reproducibility. Instead, the results of each
    experiment should be validated by visual inspection of generated
    plots, ensuring that they possess the following properties"). Each
    check below encodes one of those properties as a predicate over a
    campaign; the test suite asserts the load-bearing ones and the
    benchmark prints all of them. *)

type check = {
  name : string;
  value : string;  (** the measured quantity, rendered *)
  ok : bool;
}

val mpas_hotspot : Tuner.campaign -> check list
(** Best speedup high; ≤30 %-lowered variants not faster than baseline;
    ≥90 %-lowered passing variants fastest; dyn-tend/flux procedures
    explored with many more unique variants than the quickly-settled work
    routines; flux variants with large per-call slowdowns. *)

val adcirc_hotspot : Tuner.campaign -> check list
(** Best speedup modest (~1.1×); peror/pjac insensitive to precision;
    jcg iteration counts bimodal (fast-wrong vs full-length). *)

val mom6_hotspot : Tuner.campaign -> check list
(** Best speedup negligible; runtime errors dominate the failure classes;
    flux-adjust variants with order-of-magnitude per-call slowdowns;
    search truncated by the variant budget. *)

val mpas_whole_model : Tuner.campaign -> check list
(** Best speedup ≈ 1 or below; heavily-lowered variants markedly slower —
    the two Fig.-7 clusters. *)

val funarc : Tuner.campaign -> check list
(** 2⁸ variants explored; frontier reaches ≥1.3×; a majority-lowered
    frontier variant has less error than uniform 32-bit; a substantial
    share of variants is worse than the original on both axes. *)

val render : check list -> string
val all_ok : check list -> bool
