type t = {
  nodes : int;
  job_hours : float;
  per_variant_overhead_s : float;
  baseline_wall_s : float;
}

let for_model (m : Models.Registry.t) =
  match m.name with
  | "funarc" -> { nodes = 1; job_hours = 12.0; per_variant_overhead_s = 5.0; baseline_wall_s = 2.0 }
  | "mpas" -> { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 600.0; baseline_wall_s = 90.0 }
  | "adcirc" ->
    { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 600.0; baseline_wall_s = 200.0 }
  | "mom6" ->
    (* MOM6's larger search space keeps every node busy; heavier build *)
    { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 900.0; baseline_wall_s = 60.0 }
  | _ -> { nodes = 20; job_hours = 12.0; per_variant_overhead_s = 600.0; baseline_wall_s = 60.0 }

let variant_seconds t ~baseline_cost ~variant_cost =
  let scale = if baseline_cost > 0.0 then t.baseline_wall_s /. baseline_cost else 0.0 in
  t.per_variant_overhead_s +. (variant_cost *. scale)

let campaign_hours t ~baseline_cost ~variant_costs =
  let total =
    List.fold_left
      (fun acc c -> acc +. variant_seconds t ~baseline_cost ~variant_cost:c)
      0.0 variant_costs
  in
  total /. float_of_int t.nodes /. 3600.0

let over_budget t hours = hours > t.job_hours
