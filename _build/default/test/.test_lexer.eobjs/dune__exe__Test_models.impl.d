test/test_models.ml: Alcotest Ast Float Fortran List Metrics Models Parser Runtime String Symtab Transform Typecheck Unparse
