test/test_metrics.ml: Alcotest Array Float List Metrics Option QCheck QCheck_alcotest
