test/test_taint.ml: Alcotest Analysis Ast Fortran List Models Option Parser Symtab Transform Unparse
