test/test_symtab.ml: Alcotest Ast Fortran List Option Parser Symtab
