test/test_analysis.ml: Alcotest Analysis Fortran List Option Parser Printf String Symtab
