test/test_typecheck.ml: Alcotest Ast Format Fortran List Models Option Parser Printf Symtab Typecheck
