test/test_search.ml: Alcotest Brute_force Ddmin Delta_debug Fortran Hierarchical List Option Printf QCheck QCheck_alcotest Random_walk Search Trace Transform Variant
