test/test_parser.ml: Alcotest Ast Fortran Lexer List Option Parser Printf
