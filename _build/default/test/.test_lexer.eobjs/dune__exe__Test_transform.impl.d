test/test_transform.ml: Alcotest Analysis Ast Float Fortran List Option Parser Runtime String Symtab Transform Typecheck Unparse
