test/test_runtime.ml: Alcotest Ast Float Fortran List Metrics Models Parser Printf QCheck QCheck_alcotest Runtime String Symtab Typecheck
