test/test_lexer.ml: Alcotest Array Char Float Fortran Lexer List Loc Printf QCheck QCheck_alcotest String Token
