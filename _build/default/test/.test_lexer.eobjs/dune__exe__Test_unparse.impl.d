test/test_unparse.ml: Alcotest Ast Fortran Models Parser Printf QCheck QCheck_alcotest Unparse
