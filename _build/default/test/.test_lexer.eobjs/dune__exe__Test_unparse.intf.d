test/test_unparse.mli:
