test/test_tuner.ml: Alcotest Array Core Float Fortran List Models Search String Transform
