test/test_experiments.ml: Alcotest Core Lazy List Search String
