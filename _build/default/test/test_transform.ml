(* Transformation tests: precision assignments, declaration rewriting,
   wrapper synthesis (the Fig.-4 invariant), diffs. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let fixture =
  {|
module m
  implicit none
  real(kind=8), dimension(4) :: shared
contains
  subroutine sink(v, s, flagged)
    real(kind=8), dimension(4), intent(inout) :: v
    real(kind=8), intent(in) :: s
    logical :: flagged
    integer :: i
    if (flagged) then
      do i = 1, 4
        v(i) = v(i) + s
      end do
    end if
  end subroutine sink

  function gain(x) result(y)
    real(kind=8) :: x, y
    y = 2.0d0 * x
  end function gain

  subroutine drive()
    real(kind=8) :: amp
    real(kind=8) :: tmp
    amp = 1.5d0
    tmp = gain(amp)
    call sink(shared, tmp, .true.)
  end subroutine drive
end module m

program p
  use m
  implicit none
  call drive
  print *, 'v', shared(1)
end program p
|}

let st () = Symtab.build (Parser.parse fixture)

let atoms () = Transform.Assignment.atoms_of_module (st ()) "m"

let atom_named atoms id =
  List.find (fun a -> Transform.Assignment.atom_id a = id) atoms

let assignment_tests =
  [
    t "atoms enumerate module FP declarations" (fun () ->
        let ids = List.sort compare (List.map Transform.Assignment.atom_id (atoms ())) in
        Alcotest.(check (list string)) "ids"
          [ "drive/amp"; "drive/tmp"; "gain/x"; "gain/y"; "m::shared"; "sink/s"; "sink/v" ]
          ids);
    t "exclude removes by name" (fun () ->
        let a = Transform.Assignment.atoms_of_module (st ()) "m" ~exclude:[ "tmp"; "y" ] in
        Alcotest.(check bool) "no tmp" true
          (not (List.exists (fun x -> Transform.Assignment.atom_id x = "drive/tmp") a)));
    t "atoms_of_target filters procedures" (fun () ->
        let a =
          Transform.Assignment.atoms_of_target (st ()) ~module_:"m" ~procs:(Some [ "gain" ])
        in
        Alcotest.(check (list string)) "gain + module level" [ "gain/x"; "gain/y"; "m::shared" ]
          (List.sort compare (List.map Transform.Assignment.atom_id a)));
    t "uniform and original" (fun () ->
        let a = atoms () in
        Alcotest.(check int) "all lowered" (List.length a)
          (Transform.Assignment.count_at (Transform.Assignment.uniform a Ast.K4) Ast.K4);
        Alcotest.(check int) "none lowered" 0
          (List.length (Transform.Assignment.lowered (Transform.Assignment.original a))));
    t "of_lowered and fraction" (fun () ->
        let a = atoms () in
        let two = [ atom_named a "drive/amp"; atom_named a "gain/x" ] in
        let asg = Transform.Assignment.of_lowered a ~lowered:two in
        Alcotest.(check int) "two lowered" 2 (List.length (Transform.Assignment.lowered asg));
        Alcotest.(check bool) "fraction" true
          (Float.abs (Transform.Assignment.fraction_lowered asg -. (2.0 /. 7.0)) < 1e-9));
    t "set flips one atom" (fun () ->
        let a = atoms () in
        let asg = Transform.Assignment.original a in
        let amp = atom_named a "drive/amp" in
        let asg' = Transform.Assignment.set asg amp Ast.K4 in
        Alcotest.(check bool) "amp is k4" true (Transform.Assignment.kind_of asg' amp = Ast.K4);
        Alcotest.(check bool) "signature changed" false
          (Transform.Assignment.equal asg asg'));
    t "signature distinguishes assignments" (fun () ->
        let a = atoms () in
        let s1 = Transform.Assignment.signature (Transform.Assignment.original a) in
        let s2 = Transform.Assignment.signature (Transform.Assignment.uniform a Ast.K4) in
        Alcotest.(check int) "lengths equal" (String.length s1) (String.length s2);
        Alcotest.(check bool) "differ" true (s1 <> s2));
    t "restrict_signature covers only the procedure" (fun () ->
        let a = atoms () in
        let asg = Transform.Assignment.original a in
        Alcotest.(check int) "gain has 2 atoms" 2
          (String.length (Transform.Assignment.restrict_signature asg ~proc:"gain")));
  ]

let rewrite_tests =
  [
    t "retypes only the targeted declarations" (fun () ->
        let st = st () in
        let a = atoms () in
        let asg =
          Transform.Assignment.of_lowered a ~lowered:[ atom_named a "drive/amp" ]
        in
        let prog' = Transform.Rewrite.apply st asg in
        let st' = Symtab.build prog' in
        (match Symtab.lookup_var st' ~in_proc:(Some "drive") "amp" with
        | Some { Symtab.v_base = Ast.Treal Ast.K4; _ } -> ()
        | _ -> Alcotest.fail "amp should be k4");
        match Symtab.lookup_var st' ~in_proc:(Some "drive") "tmp" with
        | Some { Symtab.v_base = Ast.Treal Ast.K8; _ } -> ()
        | _ -> Alcotest.fail "tmp should stay k8");
    t "splits multi-entity declarations by assigned kind" (fun () ->
        let src =
          "program p\n implicit none\n real(kind=8) :: a, b, c\n a = 1.0d0\n b = 2.0d0\n c = 3.0d0\nend program p\n"
        in
        let st = Symtab.build (Parser.parse src) in
        let ats = Transform.Assignment.atoms_of_module st "p" in
        let b = List.find (fun x -> x.Transform.Assignment.a_name = "b") ats in
        let asg = Transform.Assignment.of_lowered ats ~lowered:[ b ] in
        let text = Transform.Rewrite.apply_source st asg in
        Alcotest.(check bool) "k4 line for b" true
          (let rec contains s sub i =
             i + String.length sub <= String.length s
             && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
           in
           contains text "real(kind=4) :: b" 0);
        (* result must reparse *)
        ignore (Parser.parse text));
    t "parameters never retype" (fun () ->
        let src =
          "program p\n implicit none\n real(kind=8), parameter :: c = 1.0d0\n real(kind=8) :: x\n x = c\nend program p\n"
        in
        let st = Symtab.build (Parser.parse src) in
        let ats = Transform.Assignment.atoms_of_module st "p" in
        Alcotest.(check int) "only x is an atom" 1 (List.length ats));
    t "rewrite preserves statement structure" (fun () ->
        let st = st () in
        let a = atoms () in
        let asg = Transform.Assignment.uniform a Ast.K4 in
        let before = Unparse.program (Symtab.program st) in
        let after = Unparse.program (Transform.Rewrite.apply st asg) in
        (* only declaration lines differ *)
        let changed =
          List.filter
            (function Transform.Diff.Keep _ -> false | _ -> true)
            (Transform.Diff.lines before after)
        in
        List.iter
          (function
            | Transform.Diff.Keep _ -> ()
            | Transform.Diff.Remove l | Transform.Diff.Add l ->
              Alcotest.(check bool) ("decl line: " ^ l) true
                (let l = String.trim l in
                 String.length l >= 4 && String.sub l 0 4 = "real"))
          changed);
  ]

(* ------------------------------------------------------------------ *)

let lower_and_wrap ids =
  let st = st () in
  let a = atoms () in
  let lowered = List.map (atom_named a) ids in
  let asg = Transform.Assignment.of_lowered a ~lowered in
  let prog' = Transform.Rewrite.apply st asg in
  Transform.Wrappers.insert prog'

let wrapper_tests =
  [
    t "clean program is untouched" (fun () ->
        let w = Transform.Wrappers.insert (Parser.parse fixture) in
        Alcotest.(check int) "no wrappers" 0 (List.length w.Transform.Wrappers.wrapper_map));
    t "scalar mismatch produces a wrapper and typechecks" (fun () ->
        let w = lower_and_wrap [ "gain/x"; "gain/y" ] in
        Alcotest.(check int) "one wrapper" 1 (List.length w.Transform.Wrappers.wrapper_map);
        let st' = Symtab.build w.Transform.Wrappers.program in
        Typecheck.check_program st';
        (* flow-graph invariant restored *)
        Alcotest.(check int) "no violations" 0
          (List.length (Analysis.Flowgraph.violations (Analysis.Flowgraph.build st'))));
    t "wrapper names encode the boundary signature" (fun () ->
        let w = lower_and_wrap [ "gain/x"; "gain/y" ] in
        match w.Transform.Wrappers.wrapper_map with
        | [ (wname, "gain") ] -> Alcotest.(check string) "name" "gain_w8" wname
        | _ -> Alcotest.fail "expected gain wrapper");
    t "call sites are redirected" (fun () ->
        let w = lower_and_wrap [ "gain/x"; "gain/y" ] in
        let drive = Option.get (Ast.find_proc w.Transform.Wrappers.program "drive") in
        let text = Unparse.proc drive in
        Alcotest.(check bool) "redirected" true
          (let rec contains s sub i =
             i + String.length sub <= String.length s
             && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
           in
           contains text "gain_w8(amp)" 0));
    t "array mismatch generates element-wise copy loops" (fun () ->
        let w = lower_and_wrap [ "sink/v"; "sink/s" ] in
        let wrapper =
          Option.get (Ast.find_proc w.Transform.Wrappers.program "sink_w88x")
        in
        let loops = ref 0 in
        Ast.iter_stmts
          (fun s -> match s.Ast.node with Ast.Do _ -> incr loops | _ -> ())
          wrapper.Ast.proc_body;
        (* intent(inout) array: one copy-in and one copy-out loop *)
        Alcotest.(check int) "two copy loops" 2 !loops;
        Typecheck.check_program (Symtab.build w.Transform.Wrappers.program));
    t "intent(in) scalars skip copy-out" (fun () ->
        let w = lower_and_wrap [ "sink/s" ] in
        let wrapper = Option.get (Ast.find_proc w.Transform.Wrappers.program "sink_wx8x") in
        let assigns_to_dummy = ref 0 in
        Ast.iter_stmts
          (fun s ->
            match s.Ast.node with
            | Ast.Assign (Ast.Lvar "s", _) -> incr assigns_to_dummy
            | _ -> ())
          wrapper.Ast.proc_body;
        Alcotest.(check int) "no copy-out to s" 0 !assigns_to_dummy);
    t "wrapped program executes with the same result" (fun () ->
        let base_out = Runtime.Interp.run (st ()) in
        let w = lower_and_wrap [ "gain/x"; "gain/y" ] in
        let st' = Symtab.build w.Transform.Wrappers.program in
        let out = Runtime.Interp.run ~wrapper_owner:(Transform.Wrappers.owner_fn w) st' in
        (match out.Runtime.Interp.status with
        | Runtime.Interp.Finished -> ()
        | s -> Alcotest.failf "variant failed: %a" Runtime.Interp.pp_status s);
        let v0 = List.hd (Runtime.Interp.series base_out "v") in
        let v1 = List.hd (Runtime.Interp.series out "v") in
        Alcotest.(check bool) "close result" true (Float.abs (v0 -. v1) /. v0 < 1e-6));
    t "unparse + reparse of wrapped program is stable" (fun () ->
        let w = lower_and_wrap [ "sink/v"; "sink/s"; "gain/x"; "gain/y" ] in
        let text = Unparse.program w.Transform.Wrappers.program in
        let again = Parser.parse text in
        Alcotest.(check string) "fixpoint" text (Unparse.program again);
        Typecheck.check_program (Symtab.build again));
    t "insert is idempotent" (fun () ->
        let w = lower_and_wrap [ "gain/x"; "gain/y" ] in
        let w2 = Transform.Wrappers.insert w.Transform.Wrappers.program in
        Alcotest.(check int) "no further wrappers" 0
          (List.length w2.Transform.Wrappers.wrapper_map));
    t "owner_fn maps wrappers to wrapped procedures" (fun () ->
        let w = lower_and_wrap [ "gain/x"; "gain/y" ] in
        Alcotest.(check (option string)) "gain" (Some "gain")
          (Transform.Wrappers.owner_fn w "gain_w8");
        Alcotest.(check (option string)) "not a wrapper" None
          (Transform.Wrappers.owner_fn w "drive"));
  ]

let diff_tests =
  [
    t "lines classifies changes" (fun () ->
        let d = Transform.Diff.lines "a\nb\nc" "a\nx\nc" in
        Alcotest.(check int) "keep 2" 2
          (List.length (List.filter (function Transform.Diff.Keep _ -> true | _ -> false) d));
        Alcotest.(check int) "one removed" 1
          (List.length (List.filter (function Transform.Diff.Remove _ -> true | _ -> false) d));
        Alcotest.(check int) "one added" 1
          (List.length (List.filter (function Transform.Diff.Add _ -> true | _ -> false) d)));
    t "hunks show only changed regions" (fun () ->
        let a = String.concat "\n" (List.init 30 (fun i -> "line" ^ string_of_int i)) in
        let b =
          String.concat "\n"
            (List.init 30 (fun i -> if i = 15 then "LINE15" else "line" ^ string_of_int i))
        in
        let h = Transform.Diff.hunks a b in
        Alcotest.(check bool) "mentions change" true (String.length h < String.length a));
    t "declarations diff lists retyped atoms by scope" (fun () ->
        let st = st () in
        let a = atoms () in
        let asg = Transform.Assignment.of_lowered a ~lowered:[ atom_named a "drive/amp" ] in
        let d = Transform.Diff.declarations st asg in
        Alcotest.(check bool) "mentions drive" true
          (let rec contains s sub i =
             i + String.length sub <= String.length s
             && (String.sub s i (String.length sub) = sub || contains s sub (i + 1))
           in
           contains d "procedure drive" 0 && contains d "+ real(kind=4) :: amp" 0));
  ]

let () =
  Alcotest.run "transform"
    [
      ("assignments", assignment_tests);
      ("rewrite", rewrite_tests);
      ("wrappers", wrapper_tests);
      ("diff", diff_tests);
    ]
