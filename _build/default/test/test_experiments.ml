(* End-to-end experiment tests: the campaigns reproduce the paper's
   qualitative results (the artifact-appendix checklists) and the report
   renderers produce sane output. These run full-size campaigns and take
   tens of seconds. *)

let t name f = Alcotest.test_case name `Slow f

let funarc = lazy (Core.Experiments.funarc_campaign ())
let mpas = lazy (Core.Experiments.hotspot_campaign "mpas")
let adcirc = lazy (Core.Experiments.hotspot_campaign "adcirc")
let mom6 = lazy (Core.Experiments.hotspot_campaign "mom6")
let mpas_whole = lazy (Core.Experiments.whole_model_campaign ())

let assert_checks name checks =
  let failed = List.filter (fun (c : Core.Checks.check) -> not c.Core.Checks.ok) checks in
  if failed <> [] then
    Alcotest.failf "%s failed checks:\n%s" name (Core.Checks.render failed)

let checklist_tests =
  [
    t "funarc reproduces the Sec. II-B walkthrough" (fun () ->
        assert_checks "funarc" (Core.Checks.funarc (Lazy.force funarc)));
    t "MPAS-A hotspot campaign matches the artifact checklist" (fun () ->
        assert_checks "mpas" (Core.Checks.mpas_hotspot (Lazy.force mpas)));
    t "ADCIRC hotspot campaign matches the artifact checklist" (fun () ->
        assert_checks "adcirc" (Core.Checks.adcirc_hotspot (Lazy.force adcirc)));
    t "MOM6 hotspot campaign matches the artifact checklist" (fun () ->
        assert_checks "mom6" (Core.Checks.mom6_hotspot (Lazy.force mom6)));
    t "whole-model MPAS-A campaign matches the artifact checklist" (fun () ->
        assert_checks "mpas-whole" (Core.Checks.mpas_whole_model (Lazy.force mpas_whole)));
  ]

let shape_tests =
  [
    t "Table II orderings: MPAS wins, MOM6 errors dominate" (fun () ->
        let s c = (Lazy.force c).Core.Tuner.summary in
        Alcotest.(check bool) "mpas best speedup highest" true
          ((s mpas).Search.Variant.best_speedup > (s adcirc).Search.Variant.best_speedup
          && (s mpas).Search.Variant.best_speedup > (s mom6).Search.Variant.best_speedup);
        Alcotest.(check bool) "mom6 error class largest" true
          ((s mom6).Search.Variant.error_pct >= (s adcirc).Search.Variant.error_pct
          && (s mom6).Search.Variant.error_pct > (s mpas).Search.Variant.error_pct));
    t "Table I orderings: hotspot shares follow the paper" (fun () ->
        let share c =
          let p = (Lazy.force c).Core.Tuner.prepared in
          p.Core.Tuner.baseline_hotspot /. p.Core.Tuner.baseline_cost
        in
        Alcotest.(check bool) "mpas >= adcirc >= mom6" true
          (share mpas >= share adcirc && share adcirc >= share mom6));
    t "hotspot-guided beats whole-model-guided for MPAS-A" (fun () ->
        Alcotest.(check bool) "fig5 vs fig7" true
          ((Lazy.force mpas).Core.Tuner.summary.Search.Variant.best_speedup
          > (Lazy.force mpas_whole).Core.Tuner.summary.Search.Variant.best_speedup));
    t "every campaign found a 1-minimal variant or hit its budget" (fun () ->
        List.iter
          (fun c ->
            match (Lazy.force c).Core.Tuner.minimal with
            | Some _ -> ()
            | None -> Alcotest.fail "expected a delta-debug result")
          [ mpas; adcirc; mom6; mpas_whole ]);
    t "MOM6 search truncates like the paper's 12-hour limit" (fun () ->
        match (Lazy.force mom6).Core.Tuner.minimal with
        | Some r -> Alcotest.(check bool) "truncated" false r.Search.Delta_debug.finished
        | None -> Alcotest.fail "expected a result");
  ]

let report_tests =
  [
    t "tables render with every model row" (fun () ->
        let campaigns = [ Lazy.force mpas; Lazy.force adcirc; Lazy.force mom6 ] in
        let t1 = Core.Report.table1 campaigns in
        let t2 = Core.Report.table2 campaigns in
        List.iter
          (fun needle ->
            let contains s sub =
              let n = String.length sub in
              let rec go i =
                i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) (needle ^ " in tables") true
              (contains t1 needle && contains t2 needle))
          [ "MPAS-A"; "ADCIRC"; "MOM6" ]);
    t "figures render non-trivially" (fun () ->
        let lengthy s = String.length s > 200 in
        Alcotest.(check bool) "fig2" true (lengthy (Core.Report.figure2 (Lazy.force funarc)));
        Alcotest.(check bool) "fig5" true (lengthy (Core.Report.figure5 (Lazy.force mpas)));
        Alcotest.(check bool) "fig6" true (lengthy (Core.Report.figure6 (Lazy.force adcirc)));
        Alcotest.(check bool) "fig7" true (lengthy (Core.Report.figure7 (Lazy.force mpas_whole))));
    t "figure 3 picks a within-budget frontier variant" (fun () ->
        let c = Lazy.force funarc in
        let s = Core.Report.figure3 c ~error_budget:c.Core.Tuner.prepared.Core.Tuner.threshold in
        let contains sub =
          let n = String.length sub in
          let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool) "has a diff" true (contains "+ real(kind=4)");
        (* the paper's chosen variant keeps the accumulator s1 in 64 bits *)
        Alcotest.(check bool) "does not lower s1" true (not (contains "+ real(kind=4) :: s1")));
    t "scatter clamps weird inputs" (fun () ->
        let s =
          Core.Report.scatter ~log_y:true ~xlabel:"x" ~ylabel:"y"
            [ (1.0, 0.0, 'o'); (nan, 1.0, 'x'); (2.0, 1.0, 'o') ]
        in
        Alcotest.(check bool) "renders" true (String.length s > 0));
    t "ablation: static filter rejects variants for free" (fun () ->
        let a =
          Core.Experiments.ablation_static_filter
            ~config:{ Core.Config.default with Core.Config.max_variants = Some 40 } ()
        in
        let filtered =
          List.filter
            (fun (r : Search.Variant.record) ->
              r.Search.Variant.meas.Search.Variant.detail = "static-filter")
            a.Core.Experiments.treated_campaign.Core.Tuner.records
        in
        (* the filter fires on this search, and filtered variants consume no
           simulated cluster run time *)
        Alcotest.(check bool) "filter fires" true (filtered <> []);
        List.iter
          (fun (r : Search.Variant.record) ->
            Alcotest.(check (Alcotest.float 1e-9)) "zero dynamic cost" 0.0
              r.Search.Variant.meas.Search.Variant.model_time)
          filtered);
    t "ablation: no-SIMD machine kills the MPAS speedup" (fun () ->
        let a =
          Core.Experiments.ablation_no_simd
            ~config:{ Core.Config.default with Core.Config.max_variants = Some 40 } ()
        in
        Alcotest.(check bool) "scalar machine finds less" true
          (a.Core.Experiments.treated_campaign.Core.Tuner.summary.Search.Variant.best_speedup
          < a.Core.Experiments.baseline_campaign.Core.Tuner.summary.Search.Variant.best_speedup));
  ]

let () =
  Alcotest.run "experiments"
    [ ("checklists", checklist_tests); ("shapes", shape_tests); ("reports", report_tests) ]
