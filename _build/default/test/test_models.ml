(* Model tests: every bundled model runs, produces its correctness series,
   and exhibits the precision pathology the paper reports for it. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let build (m : Models.Registry.t) =
  let st = Symtab.build (Parser.parse ~file:(m.name ^ ".f90") m.Models.Registry.source) in
  Typecheck.check_program st;
  st

let atoms_of st (m : Models.Registry.t) =
  Transform.Assignment.atoms_of_target st ~module_:m.Models.Registry.target_module
    ~procs:(Some m.Models.Registry.target_procs) ~exclude:m.Models.Registry.exclude_atoms

let run_variant st asg =
  let prog' = Transform.Rewrite.apply st asg in
  let w = Transform.Wrappers.insert prog' in
  let text = Unparse.program w.Transform.Wrappers.program in
  let st' = Symtab.build (Parser.parse ~file:"variant.f90" text) in
  Typecheck.check_program st';
  Runtime.Interp.run ~wrapper_owner:(Transform.Wrappers.owner_fn w) st'

let uniform32 st m = run_variant st (Transform.Assignment.uniform (atoms_of st m) Ast.K4)

let hotspot (m : Models.Registry.t) (out : Runtime.Interp.outcome) =
  List.fold_left
    (fun acc p -> acc +. Runtime.Timers.exclusive_of out.Runtime.Interp.timers p)
    0.0 m.Models.Registry.target_procs

let common_tests =
  List.concat_map
    (fun (m : Models.Registry.t) ->
      [
        t (m.Models.Registry.name ^ " baseline finishes") (fun () ->
            let out = Runtime.Interp.run (build m) in
            match out.Runtime.Interp.status with
            | Runtime.Interp.Finished -> ()
            | s -> Alcotest.failf "baseline: %a" Runtime.Interp.pp_status s);
        t (m.Models.Registry.name ^ " metric series is finite and non-empty") (fun () ->
            let out = Runtime.Interp.run (build m) in
            let s = Runtime.Interp.series out m.Models.Registry.metric_key in
            Alcotest.(check bool) "non-empty" true (s <> []);
            List.iter
              (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v))
              s);
        t (m.Models.Registry.name ^ " has a non-trivial search space") (fun () ->
            let st = build m in
            Alcotest.(check bool) "atoms" true (List.length (atoms_of st m) >= 8));
        t (m.Models.Registry.name ^ " hotspot is a strict minority of CPU time") (fun () ->
            let st = build m in
            let out = Runtime.Interp.run st in
            let share = hotspot m out /. out.Runtime.Interp.cost in
            match m.Models.Registry.name with
            | "funarc" -> Alcotest.(check bool) "funarc is all hotspot" true (share > 0.9)
            | "lulesh" ->
              (* the proxy-app contrast: hotspot-dominated by design *)
              Alcotest.(check bool) "lulesh majority" true (share > 0.7)
            | _ -> Alcotest.(check bool) "minority" true (share > 0.02 && share < 0.5));
        t (m.Models.Registry.name ^ " baseline is deterministic") (fun () ->
            let st = build m in
            let a = Runtime.Interp.run st and b = Runtime.Interp.run st in
            Alcotest.(check (float 0.0)) "cost" a.Runtime.Interp.cost b.Runtime.Interp.cost;
            Alcotest.(check bool) "records" true
              (a.Runtime.Interp.records = b.Runtime.Interp.records));
      ])
    (Models.Registry.funarc :: Models.Registry.lulesh :: Models.Registry.all)

let lulesh_tests =
  [
    t "hotspot dominates the runtime (the Sec.-I contrast)" (fun () ->
        let m = Models.Registry.lulesh in
        let out = Runtime.Interp.run (build m) in
        Alcotest.(check bool) "majority hotspot" true
          (hotspot m out /. out.Runtime.Interp.cost > 0.7));
    t "uniform 32-bit passes with a large speedup" (fun () ->
        let m = Models.Registry.lulesh in
        let st = build m in
        let base = Runtime.Interp.run st in
        let out32 = uniform32 st m in
        (match out32.Runtime.Interp.status with
        | Runtime.Interp.Finished -> ()
        | s -> Alcotest.failf "u32: %a" Runtime.Interp.pp_status s);
        let err =
          Metrics.Error.series_rel_error_l2
            ~baseline:(Runtime.Interp.series base "etot")
            (Runtime.Interp.series out32 "etot")
        in
        Alcotest.(check bool) "within threshold" true (err <= 1.0e-5);
        Alcotest.(check bool) "big speedup" true
          (base.Runtime.Interp.cost /. out32.Runtime.Interp.cost > 1.7));
    t "blast wave stays physical" (fun () ->
        let out = Runtime.Interp.run (build Models.Registry.lulesh) in
        List.iter
          (fun e -> Alcotest.(check bool) "positive energy" true (e > 0.0))
          (Runtime.Interp.series out "etot"));
  ]

let funarc_tests =
  [
    t "arc length matches the known value" (fun () ->
        let out = Runtime.Interp.run (build Models.Registry.funarc) in
        let v = List.hd (Runtime.Interp.series out "result") in
        Alcotest.(check bool) "5.7954..." true (Float.abs (v -. 5.7954521) < 1e-4));
    t "uniform 32-bit gives ~1.3-1.4x with small error" (fun () ->
        let st = build Models.Registry.funarc in
        let base = Runtime.Interp.run st in
        let out32 = uniform32 st Models.Registry.funarc in
        let speedup = base.Runtime.Interp.cost /. out32.Runtime.Interp.cost in
        Alcotest.(check bool) "speedup band" true (speedup > 1.2 && speedup < 1.6);
        let err =
          Metrics.Error.rel_error
            ~baseline:(List.hd (Runtime.Interp.series base "result"))
            (List.hd (Runtime.Interp.series out32 "result"))
        in
        Alcotest.(check bool) "small but nonzero error" true (err > 0.0 && err < 1e-5));
  ]

let mpas_tests =
  [
    t "uniform 32-bit hotspot speedup approaches 2x" (fun () ->
        let m = Models.Registry.mpas in
        let st = build m in
        let base = Runtime.Interp.run st in
        let out32 = uniform32 st m in
        let sp = hotspot m base /. hotspot m out32 in
        Alcotest.(check bool) "1.6-2.3x" true (sp > 1.6 && sp < 2.3));
    t "uniform 32-bit slows the whole model (criterion 3)" (fun () ->
        let m = Models.Registry.mpas in
        let st = build m in
        let base = Runtime.Interp.run st in
        let out32 = uniform32 st m in
        Alcotest.(check bool) "boundary casts dominate" true
          (base.Runtime.Interp.cost /. out32.Runtime.Interp.cost < 0.95));
    t "flux boundary mismatch devastates dyn_tend (criterion 2)" (fun () ->
        let m = Models.Registry.mpas in
        let st = build m in
        let atoms = atoms_of st m in
        let flux_only =
          List.filter
            (fun a ->
              match a.Transform.Assignment.a_scope with
              | Symtab.Proc_scope ("flux4" | "flux3") -> true
              | _ -> false)
            atoms
        in
        let base = Runtime.Interp.run st in
        let out = run_variant st (Transform.Assignment.of_lowered atoms ~lowered:flux_only) in
        let per_call o p =
          Runtime.Timers.inclusive_of o.Runtime.Interp.timers p
          /. float_of_int (max 1 (Runtime.Timers.calls_of o.Runtime.Interp.timers p))
        in
        let slowdown = per_call out "flux4" /. per_call base "flux4" in
        Alcotest.(check bool) "order-of-magnitude flux slowdown" true (slowdown > 4.0));
  ]

let adcirc_tests =
  [
    t "uniform 32-bit solves in fewer jcg iterations (fast-but-wrong)" (fun () ->
        let m = Models.Registry.adcirc in
        let st = build m in
        let base = Runtime.Interp.run st in
        let out32 = uniform32 st m in
        let iters o = Metrics.Stats.mean (Runtime.Interp.series o "jcg_iters") in
        Alcotest.(check bool) "fewer iterations" true (iters out32 < iters base);
        (* the elevation leaves the tight regression band *)
        let err =
          Metrics.Error.series_rel_error_l2
            ~baseline:(Runtime.Interp.series base "eta")
            (Runtime.Interp.series out32 "eta")
        in
        (match m.Models.Registry.threshold with
        | Models.Registry.Fixed thr ->
          Alcotest.(check bool) "over threshold" true (err > thr)
        | Models.Registry.From_uniform32 _ -> Alcotest.fail "adcirc threshold should be fixed"));
    t "keeping the solve chain in 64-bit stays within threshold" (fun () ->
        let m = Models.Registry.adcirc in
        let st = build m in
        let atoms = atoms_of st m in
        let keep =
          [ "pjac/x"; "pjac/b"; "pjac/updnrm"; "pjac/xnew"; "pjac/upd"; "peror/r"; "peror/part";
            "peror/dnrm"; "jcg/x"; "jcg/b"; "jcg/r_w"; "jcg/dnrm"; "jcg/updnrm" ]
        in
        let lowered =
          List.filter (fun a -> not (List.mem (Transform.Assignment.atom_id a) keep)) atoms
        in
        let base = Runtime.Interp.run st in
        let out = run_variant st (Transform.Assignment.of_lowered atoms ~lowered) in
        let err =
          Metrics.Error.series_rel_error_l2
            ~baseline:(Runtime.Interp.series base "eta")
            (Runtime.Interp.series out "eta")
        in
        Alcotest.(check bool) "within tight threshold" true (err <= 5.0e-8));
    t "peror cost is dominated by the precision-blind allreduce" (fun () ->
        let m = Models.Registry.adcirc in
        let st = build m in
        let base = Runtime.Interp.run st in
        let out32 = uniform32 st m in
        let per_call o =
          Runtime.Timers.inclusive_of o.Runtime.Interp.timers "peror"
          /. float_of_int (max 1 (Runtime.Timers.calls_of o.Runtime.Interp.timers "peror"))
        in
        let ratio = per_call base /. per_call out32 in
        Alcotest.(check bool) "within 20% of parity" true (ratio > 0.8 && ratio < 1.25));
  ]

let mom6_tests =
  [
    t "uniform 32-bit overflows on rescaled transports" (fun () ->
        let m = Models.Registry.mom6 in
        let st = build m in
        match (uniform32 st m).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error msg ->
          Alcotest.(check bool) "overflow" true
            (String.length msg >= 8 && String.sub msg 0 8 = "overflow"
            || String.length msg > 0)
        | s -> Alcotest.failf "expected overflow, got %a" Runtime.Interp.pp_status s);
    t "lowering the Newton state blows up flux_adjust iterations" (fun () ->
        let m = Models.Registry.mom6 in
        let st = build m in
        let atoms = atoms_of st m in
        let newton =
          [ "zonal_flux_adjust/err"; "zonal_flux_adjust/dsum"; "zonal_flux_adjust/du" ]
        in
        let lowered =
          List.filter (fun a -> List.mem (Transform.Assignment.atom_id a) newton) atoms
        in
        let base = Runtime.Interp.run st in
        let out = run_variant st (Transform.Assignment.of_lowered atoms ~lowered) in
        (match out.Runtime.Interp.status with
        | Runtime.Interp.Finished -> ()
        | s -> Alcotest.failf "variant: %a" Runtime.Interp.pp_status s);
        let per_call o =
          Runtime.Timers.inclusive_of o.Runtime.Interp.timers "zonal_flux_adjust"
          /. float_of_int
               (max 1 (Runtime.Timers.calls_of o.Runtime.Interp.timers "zonal_flux_adjust"))
        in
        Alcotest.(check bool) "order-of-magnitude blowup" true
          (per_call out /. per_call base > 2.5));
    t "small workload variant also runs" (fun () ->
        let m =
          { Models.Registry.mom6 with
            Models.Registry.source = Models.Mom6.source ~p:Models.Mom6.small () }
        in
        let out = Runtime.Interp.run (build m) in
        match out.Runtime.Interp.status with
        | Runtime.Interp.Finished -> ()
        | s -> Alcotest.failf "small mom6: %a" Runtime.Interp.pp_status s);
  ]

let registry_tests =
  [
    t "find is total over published names" (fun () ->
        List.iter
          (fun n -> ignore (Models.Registry.find n))
          [ "funarc"; "mpas"; "mpas-a"; "adcirc"; "mom6" ]);
    t "find rejects unknown names" (fun () ->
        match Models.Registry.find "wrf" with
        | _ -> Alcotest.fail "expected Not_found"
        | exception Not_found -> ());
    t "fig6 procedures exist in their models" (fun () ->
        List.iter
          (fun (m : Models.Registry.t) ->
            let st = build m in
            List.iter
              (fun p ->
                Alcotest.(check bool) (m.Models.Registry.name ^ "/" ^ p) true
                  (Symtab.find_proc st p <> None))
              m.Models.Registry.fig6_procs)
          (Models.Registry.funarc :: Models.Registry.all));
    t "target procedures exist in their models" (fun () ->
        List.iter
          (fun (m : Models.Registry.t) ->
            let st = build m in
            List.iter
              (fun p ->
                Alcotest.(check bool) (m.Models.Registry.name ^ "/" ^ p) true
                  (Symtab.find_proc st p <> None))
              m.Models.Registry.target_procs)
          (Models.Registry.funarc :: Models.Registry.all));
  ]

let () =
  Alcotest.run "models"
    [
      ("all models", common_tests);
      ("funarc", funarc_tests);
      ("lulesh", lulesh_tests);
      ("mpas", mpas_tests);
      ("adcirc", adcirc_tests);
      ("mom6", mom6_tests);
      ("registry", registry_tests);
    ]
