(* Lexer unit and property tests. *)

open Fortran

let toks src = Array.to_list (Array.map fst (Lexer.tokenize src))

let strip_trailing l =
  (* drop the trailing Newline/Eof for compact comparisons *)
  List.filter (function Token.Newline | Token.Eof -> false | _ -> true) l

let check_tokens name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let got = strip_trailing (toks src) in
      Alcotest.(check (list string))
        name
        (List.map Token.to_string expected)
        (List.map Token.to_string got))

let expect_error name src =
  Alcotest.test_case name `Quick (fun () ->
      match Lexer.tokenize src with
      | _ -> Alcotest.failf "expected Lexer.Error for %S" src
      | exception Lexer.Error _ -> ())

let real ?(kind = Token.K4) text value = Token.Real_lit { text; value; kind }

let basic_tests =
  [
    check_tokens "identifiers lowercase" "Foo BAR_9 z"
      [ Token.Ident "foo"; Token.Ident "bar_9"; Token.Ident "z" ];
    check_tokens "integer literal" "42" [ Token.Int_lit 42 ];
    check_tokens "simple real" "1.5" [ real "1.5" 1.5 ];
    check_tokens "real no fraction digits" "1." [ real "1." 1.0 ];
    check_tokens "real leading dot" ".5" [ real ".5" 0.5 ];
    check_tokens "exponent e" "2e3" [ real "2e3" 2000.0 ];
    check_tokens "exponent with sign" "1.5e-3" [ real "1.5e-3" 0.0015 ];
    check_tokens "d exponent is kind 8" "1.5d0" [ real ~kind:Token.K8 "1.5d0" 1.5 ];
    check_tokens "d exponent negative" "2.5d-2" [ real ~kind:Token.K8 "2.5d-2" 0.025 ];
    check_tokens "kind suffix 8" "1.0_8" [ real ~kind:Token.K8 "1.0d0" 1.0 ];
    check_tokens "kind suffix 4" "1.25_4" [ real "1.25" 1.25 ];
    check_tokens "operators" "a + b - c * d / e ** f"
      [ Token.Ident "a"; Token.Plus; Token.Ident "b"; Token.Minus; Token.Ident "c"; Token.Star;
        Token.Ident "d"; Token.Slash; Token.Ident "e"; Token.Pow; Token.Ident "f" ];
    check_tokens "relational symbols" "a == b /= c < d <= e > f >= g"
      [ Token.Ident "a"; Token.Eq; Token.Ident "b"; Token.Ne; Token.Ident "c"; Token.Lt;
        Token.Ident "d"; Token.Le; Token.Ident "e"; Token.Gt; Token.Ident "f"; Token.Ge;
        Token.Ident "g" ];
    check_tokens "dot operators" "a .and. b .or. .not. c"
      [ Token.Ident "a"; Token.And_op; Token.Ident "b"; Token.Or_op; Token.Not_op; Token.Ident "c" ];
    check_tokens "dot relational forms" "a .eq. b .ne. c .lt. d .le. e .gt. f .ge. g"
      [ Token.Ident "a"; Token.Eq; Token.Ident "b"; Token.Ne; Token.Ident "c"; Token.Lt;
        Token.Ident "d"; Token.Le; Token.Ident "e"; Token.Gt; Token.Ident "f"; Token.Ge;
        Token.Ident "g" ];
    check_tokens "logical literals" ".true. .false."
      [ Token.Logical_lit true; Token.Logical_lit false ];
    check_tokens "case-insensitive dot ops" "A .AND. B"
      [ Token.Ident "a"; Token.And_op; Token.Ident "b" ];
    check_tokens "string single quotes" "'hello'" [ Token.Str_lit "hello" ];
    check_tokens "string double quotes" "\"world\"" [ Token.Str_lit "world" ];
    check_tokens "doubled quote escape" "'it''s'" [ Token.Str_lit "it's" ];
    check_tokens "punctuation" "( ) , :: :"
      [ Token.Lparen; Token.Rparen; Token.Comma; Token.Dcolon; Token.Colon ];
    check_tokens "assignment vs equality" "a = b == c"
      [ Token.Ident "a"; Token.Assign; Token.Ident "b"; Token.Eq; Token.Ident "c" ];
    check_tokens "comment skipped" "a ! the rest is noise + * /" [ Token.Ident "a" ];
    check_tokens "concat operator" "a // b" [ Token.Ident "a"; Token.Concat; Token.Ident "b" ];
    check_tokens "number then dot-op" "1.and.2"
      [ Token.Int_lit 1; Token.And_op; Token.Int_lit 2 ];
  ]

let newline_tests =
  [
    Alcotest.test_case "statements separated by newline" `Quick (fun () ->
        let got = toks "a\nb" in
        Alcotest.(check int) "token count" 5 (List.length got);
        match got with
        | [ Token.Ident "a"; Token.Newline; Token.Ident "b"; Token.Newline; Token.Eof ] -> ()
        | _ -> Alcotest.fail "unexpected token stream");
    Alcotest.test_case "blank lines collapse" `Quick (fun () ->
        let got = toks "a\n\n\n\nb" in
        Alcotest.(check int) "token count" 5 (List.length got));
    Alcotest.test_case "semicolon acts as newline" `Quick (fun () ->
        match toks "a; b" with
        | [ Token.Ident "a"; Token.Newline; Token.Ident "b"; Token.Newline; Token.Eof ] -> ()
        | _ -> Alcotest.fail "unexpected token stream");
    Alcotest.test_case "continuation suppresses newline" `Quick (fun () ->
        match toks "a + &\n  b" with
        | [ Token.Ident "a"; Token.Plus; Token.Ident "b"; Token.Newline; Token.Eof ] -> ()
        | _ -> Alcotest.fail "unexpected token stream");
    Alcotest.test_case "continuation with leading ampersand" `Quick (fun () ->
        match toks "a + &\n  & b" with
        | [ Token.Ident "a"; Token.Plus; Token.Ident "b"; Token.Newline; Token.Eof ] -> ()
        | _ -> Alcotest.fail "unexpected token stream");
    Alcotest.test_case "locations track lines" `Quick (fun () ->
        let arr = Lexer.tokenize ~file:"t.f90" "a\nbb" in
        let _, loc = arr.(2) in
        Alcotest.(check int) "line of bb" 2 loc.Loc.line;
        Alcotest.(check string) "file" "t.f90" loc.Loc.file);
    Alcotest.test_case "leading newline produces no token" `Quick (fun () ->
        match toks "\n\na" with
        | [ Token.Ident "a"; Token.Newline; Token.Eof ] -> ()
        | _ -> Alcotest.fail "unexpected token stream");
  ]

let error_tests =
  [
    expect_error "unterminated string" "'abc";
    expect_error "newline in string" "'ab\nc'";
    expect_error "unknown character" "a $ b";
    expect_error "lone dot" "a . b";
    expect_error "unknown dot word" "a .xor. b";
  ]

(* property: every valid identifier survives lexing as a single token *)
let ident_roundtrip =
  QCheck.Test.make ~name:"identifier lexes to itself" ~count:200
    QCheck.(
      map
        (fun (c, rest) ->
          String.make 1 (Char.chr (Char.code 'a' + (abs c mod 26)))
          ^ String.concat ""
              (List.map
                 (fun i ->
                   let i = abs i mod 37 in
                   if i < 26 then String.make 1 (Char.chr (Char.code 'a' + i))
                   else if i < 36 then string_of_int (i - 26)
                   else "_")
                 rest))
        (pair int (small_list int)))
    (fun name ->
      match toks name with
      | [ Token.Ident n; Token.Newline; Token.Eof ] -> n = name
      | _ -> false)

let float_literal_value =
  QCheck.Test.make ~name:"positive float literal value parses exactly" ~count:300
    QCheck.(map Float.abs (float_bound_exclusive 1e30))
    (fun f ->
      QCheck.assume (Float.is_finite f && f > 1e-30);
      let text = Printf.sprintf "%.17g" f in
      (* only decimal or e-notation spellings are valid Fortran *)
      QCheck.assume (String.contains text '.' || String.contains text 'e');
      match toks text with
      | [ Token.Real_lit { value; _ }; Token.Newline; Token.Eof ] -> value = f
      | [ Token.Int_lit _; Token.Newline; Token.Eof ] -> not (String.contains text '.')
      | _ -> false)

let () =
  Alcotest.run "lexer"
    [
      ("tokens", basic_tests);
      ("newlines", newline_tests);
      ("errors", error_tests);
      ( "properties",
        [ QCheck_alcotest.to_alcotest ident_roundtrip;
          QCheck_alcotest.to_alcotest float_literal_value ] );
    ]
