(* Parser unit tests: statements, declarations, program units, errors. *)

open Fortran

(* wrap a statement list into a minimal program for parsing *)
let parse_main body_src =
  let src = Printf.sprintf "program t\n  implicit none\n%s\nend program t\n" body_src in
  match Parser.parse src with
  | [ Ast.Main m ] -> m
  | _ -> Alcotest.fail "expected a single main unit"

let parse_main_with_decls decls body =
  let src = Printf.sprintf "program t\n  implicit none\n%s\n%s\nend program t\n" decls body in
  match Parser.parse src with
  | [ Ast.Main m ] -> m
  | _ -> Alcotest.fail "expected a single main unit"

let first_stmt body_src =
  match (parse_main body_src).Ast.main_body with
  | s :: _ -> s.Ast.node
  | [] -> Alcotest.fail "no statements parsed"

let t name f = Alcotest.test_case name `Quick f

let expect_parse_error name src =
  t name (fun () ->
      match Parser.parse src with
      | _ -> Alcotest.failf "expected Parser.Error for %S" src
      | exception Parser.Error _ -> ()
      | exception Lexer.Error _ -> ())

let stmt_tests =
  [
    t "scalar assignment" (fun () ->
        match first_stmt "x = 1" with
        | Ast.Assign (Ast.Lvar "x", Ast.Int_lit 1) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "array element assignment" (fun () ->
        match first_stmt "a(i, j + 1) = 2.5" with
        | Ast.Assign (Ast.Lindex ("a", [ Ast.Var "i"; Ast.Binop (Ast.Add, Ast.Var "j", Ast.Int_lit 1) ]),
                      Ast.Real_lit _) ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    t "call without arguments" (fun () ->
        match first_stmt "call go" with
        | Ast.Call ("go", []) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "call with arguments" (fun () ->
        match first_stmt "call f(x, 3)" with
        | Ast.Call ("f", [ Ast.Var "x"; Ast.Int_lit 3 ]) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "block if-else" (fun () ->
        match first_stmt "if (a > 0) then\n x = 1\nelse\n x = 2\nend if" with
        | Ast.If ([ (Ast.Binop (Ast.Gt, _, _), [ _ ]) ], [ _ ]) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "else if chains" (fun () ->
        match first_stmt "if (a > 0) then\n x = 1\nelse if (a < 0) then\n x = 2\nelse\n x = 3\nend if" with
        | Ast.If ([ _; _ ], [ _ ]) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "elseif single keyword" (fun () ->
        match first_stmt "if (a > 0) then\n x = 1\nelseif (a < 0) then\n x = 2\nendif" with
        | Ast.If ([ _; _ ], []) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "one-line logical if" (fun () ->
        match first_stmt "if (done) exit" with
        | Ast.If ([ (Ast.Var "done", [ { Ast.node = Ast.Exit_stmt; _ } ]) ], []) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "counted do loop" (fun () ->
        match first_stmt "do i = 1, 10\n x = x + 1\nend do" with
        | Ast.Do { var = "i"; from_ = Ast.Int_lit 1; to_ = Ast.Int_lit 10; step = None; body = [ _ ]; _ } ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    t "do loop with step" (fun () ->
        match first_stmt "do i = 10, 1, -2\n x = 1\nend do" with
        | Ast.Do { step = Some (Ast.Unop (Ast.Neg, Ast.Int_lit 2)); _ } -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "do while" (fun () ->
        match first_stmt "do while (x < 10)\n x = x + 1\nend do" with
        | Ast.Do_while { cond = Ast.Binop (Ast.Lt, _, _); body = [ _ ]; _ } -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "enddo accepted" (fun () ->
        match first_stmt "do i = 1, 2\n x = 1\nenddo" with
        | Ast.Do _ -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "print with values" (fun () ->
        match first_stmt "print *, 'k', x, 1.5" with
        | Ast.Print_stmt [ Ast.Str_lit "k"; Ast.Var "x"; Ast.Real_lit _ ] -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "bare print" (fun () ->
        match first_stmt "print *" with
        | Ast.Print_stmt [] -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "stop with message" (fun () ->
        match first_stmt "stop 'bad'" with
        | Ast.Stop_stmt (Some "bad") -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "select case with values, ranges, default" (fun () ->
        match first_stmt
                "select case (k)\ncase (1)\n x = 1\ncase (2, 3:5, :0)\n x = 2\ncase default\n x = 3\nend select"
        with
        | Ast.Select { selector = Ast.Var "k"; arms = [ (a1, [ _ ]); (a2, [ _ ]) ]; default = [ _ ] }
          -> (
          (match a1 with
          | [ Ast.Case_value (Ast.Int_lit 1) ] -> ()
          | _ -> Alcotest.fail "first arm items");
          match a2 with
          | [ Ast.Case_value (Ast.Int_lit 2);
              Ast.Case_range (Some (Ast.Int_lit 3), Some (Ast.Int_lit 5));
              Ast.Case_range (None, Some (Ast.Int_lit 0)) ] ->
            ()
          | _ -> Alcotest.fail "second arm items")
        | _ -> Alcotest.fail "unexpected AST");
    t "select case open upper range" (fun () ->
        match first_stmt "select case (k)\ncase (7:)\n x = 1\nend select" with
        | Ast.Select { arms = [ ([ Ast.Case_range (Some (Ast.Int_lit 7), None) ], _) ]; default = []; _ }
          ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    t "return cycle exit" (fun () ->
        let m = parse_main "return\ncycle\nexit" in
        match List.map (fun s -> s.Ast.node) m.Ast.main_body with
        | [ Ast.Return_stmt; Ast.Cycle_stmt; Ast.Exit_stmt ] -> ()
        | _ -> Alcotest.fail "unexpected AST");
  ]

let expr_tests =
  [
    t "precedence mul over add" (fun () ->
        match first_stmt "x = a + b * c" with
        | Ast.Assign (_, Ast.Binop (Ast.Add, Ast.Var "a", Ast.Binop (Ast.Mul, _, _))) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "left associativity of subtraction" (fun () ->
        match first_stmt "x = a - b - c" with
        | Ast.Assign (_, Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, _, _), Ast.Var "c")) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "power is right associative" (fun () ->
        match first_stmt "x = a ** b ** c" with
        | Ast.Assign (_, Ast.Binop (Ast.Pow, Ast.Var "a", Ast.Binop (Ast.Pow, _, _))) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "unary minus applies to the multiplicative term" (fun () ->
        match first_stmt "x = -a * b" with
        | Ast.Assign (_, Ast.Binop (Ast.Mul, Ast.Unop (Ast.Neg, Ast.Var "a"), Ast.Var "b"))
        | Ast.Assign (_, Ast.Unop (Ast.Neg, Ast.Binop (Ast.Mul, _, _))) ->
          (* both groupings are semantically identical for * *)
          ()
        | _ -> Alcotest.fail "unexpected AST");
    t "power binds unary minus on the right" (fun () ->
        match first_stmt "x = a ** (-b)" with
        | Ast.Assign (_, Ast.Binop (Ast.Pow, _, Ast.Unop (Ast.Neg, _))) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "and binds tighter than or" (fun () ->
        match first_stmt "x = a .or. b .and. c" with
        | Ast.Assign (_, Ast.Binop (Ast.Or, Ast.Var "a", Ast.Binop (Ast.And, _, _))) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "comparison inside logical" (fun () ->
        match first_stmt "x = a < b .and. c > d" with
        | Ast.Assign (_, Ast.Binop (Ast.And, Ast.Binop (Ast.Lt, _, _), Ast.Binop (Ast.Gt, _, _))) ->
          ()
        | _ -> Alcotest.fail "unexpected AST");
    t "function call in expression" (fun () ->
        match first_stmt "x = f(a, b) + 1" with
        | Ast.Assign (_, Ast.Binop (Ast.Add, Ast.Index ("f", [ _; _ ]), Ast.Int_lit 1)) -> ()
        | _ -> Alcotest.fail "unexpected AST");
    t "parenthesized grouping" (fun () ->
        match first_stmt "x = (a + b) * c" with
        | Ast.Assign (_, Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, _, _), _)) -> ()
        | _ -> Alcotest.fail "unexpected AST");
  ]

let decl_tests =
  [
    t "real kind 8 declaration" (fun () ->
        let m = parse_main_with_decls "real(kind=8) :: x, y" "x = 1.0" in
        match m.Ast.main_decls with
        | [ { Ast.base = Ast.Treal Ast.K8; names = [ ("x", None); ("y", None) ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "real short kind form" (fun () ->
        let m = parse_main_with_decls "real(4) :: x" "x = 1.0" in
        match m.Ast.main_decls with
        | [ { Ast.base = Ast.Treal Ast.K4; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "bare real is kind 4" (fun () ->
        let m = parse_main_with_decls "real :: x" "x = 1.0" in
        match m.Ast.main_decls with
        | [ { Ast.base = Ast.Treal Ast.K4; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "double precision" (fun () ->
        let m = parse_main_with_decls "double precision :: x" "x = 1.0" in
        match m.Ast.main_decls with
        | [ { Ast.base = Ast.Treal Ast.K8; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "integer with kind ignored" (fun () ->
        let m = parse_main_with_decls "integer(kind=4) :: i" "i = 1" in
        match m.Ast.main_decls with
        | [ { Ast.base = Ast.Tinteger; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "dimension attribute" (fun () ->
        let m = parse_main_with_decls "real(kind=8), dimension(10, 20) :: a" "a(1, 1) = 0.0" in
        match m.Ast.main_decls with
        | [ { Ast.dims = [ Ast.Int_lit 10; Ast.Int_lit 20 ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "parameter with initializer" (fun () ->
        let m = parse_main_with_decls "integer, parameter :: n = 5" "print *, n" in
        match m.Ast.main_decls with
        | [ { Ast.parameter = true; names = [ ("n", Some (Ast.Int_lit 5)) ]; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
    t "intent attributes" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine s(a, b, c)\n  real(kind=8), intent(in) :: a\n  real(kind=8), intent(out) :: b\n  real(kind=8), intent(inout) :: c\n  b = a + c\n end subroutine s\nend module m\n"
        in
        match Parser.parse src with
        | [ Ast.Module { Ast.mod_procs = [ p ]; _ } ] ->
          let intent n = (Option.get (Ast.find_decl_for p.Ast.proc_decls n)).Ast.intent in
          Alcotest.(check bool) "a in" true (intent "a" = Some Ast.In);
          Alcotest.(check bool) "b out" true (intent "b" = Some Ast.Out);
          Alcotest.(check bool) "c inout" true (intent "c" = Some Ast.Inout)
        | _ -> Alcotest.fail "unexpected units");
    t "per-entity array spec splits the declaration" (fun () ->
        let m = parse_main_with_decls "real(kind=8) :: x, a(7)" "x = 0.0" in
        let names =
          List.concat_map (fun (d : Ast.decl) -> List.map fst d.Ast.names) m.Ast.main_decls
        in
        Alcotest.(check (list string)) "names" [ "x"; "a" ] (List.sort compare names |> List.rev);
        let a_decl = Option.get (Ast.find_decl_for m.Ast.main_decls "a") in
        (match a_decl.Ast.dims with
        | [ Ast.Int_lit 7 ] -> ()
        | _ -> Alcotest.fail "a should have dims (7)");
        let x_decl = Option.get (Ast.find_decl_for m.Ast.main_decls "x") in
        Alcotest.(check int) "x scalar" 0 (List.length x_decl.Ast.dims));
    t "logical declaration" (fun () ->
        let m = parse_main_with_decls "logical :: done" "done = .true." in
        match m.Ast.main_decls with
        | [ { Ast.base = Ast.Tlogical; _ } ] -> ()
        | _ -> Alcotest.fail "unexpected decls");
  ]

let unit_tests =
  [
    t "module with contains" (fun () ->
        let src =
          "module m\n  implicit none\n  real(kind=8) :: g\ncontains\n  subroutine s(a)\n    real(kind=8) :: a\n    g = a\n  end subroutine s\nend module m\n"
        in
        match Parser.parse src with
        | [ Ast.Module m ] ->
          Alcotest.(check string) "name" "m" m.Ast.mod_name;
          Alcotest.(check int) "procs" 1 (List.length m.Ast.mod_procs)
        | _ -> Alcotest.fail "unexpected units");
    t "use statements recorded" (fun () ->
        let src = "module a\n implicit none\nend module a\nprogram p\n use a\n implicit none\nend program p\n" in
        match Parser.parse src with
        | [ Ast.Module _; Ast.Main m ] -> Alcotest.(check (list string)) "uses" [ "a" ] m.Ast.main_uses
        | _ -> Alcotest.fail "unexpected units");
    t "function with result clause" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function f(x) result(y)\n  real(kind=8) :: x, y\n  y = x\n end function f\nend module m\n"
        in
        match Parser.parse src with
        | [ Ast.Module { Ast.mod_procs = [ { Ast.proc_kind = Ast.Function { result = "y" }; _ } ]; _ } ] ->
          ()
        | _ -> Alcotest.fail "unexpected units");
    t "typed function prefix declares the result" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n real(kind=8) function f(x)\n  real(kind=8) :: x\n  f = x\n end function f\nend module m\n"
        in
        match Parser.parse src with
        | [ Ast.Module { Ast.mod_procs = [ p ]; _ } ] -> (
          match p.Ast.proc_kind, Ast.find_decl_for p.Ast.proc_decls "f" with
          | Ast.Function { result = "f" }, Some { Ast.base = Ast.Treal Ast.K8; _ } -> ()
          | _ -> Alcotest.fail "result not declared by prefix")
        | _ -> Alcotest.fail "unexpected units");
    t "loop ids are dense and unique" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine s()\n  integer :: i, j\n  do i = 1, 2\n   do j = 1, 2\n    i = i\n   end do\n  end do\n  do while (i < 3)\n   i = i + 1\n  end do\n end subroutine s\nend module m\n"
        in
        let prog = Parser.parse src in
        let ids = ref [] in
        List.iter
          (fun (p : Ast.proc) ->
            Ast.iter_stmts
              (fun s ->
                match s.Ast.node with
                | Ast.Do { id; _ } | Ast.Do_while { id; _ } -> ids := id :: !ids
                | _ -> ())
              p.Ast.proc_body)
          (Ast.all_procs prog);
        let sorted = List.sort_uniq compare !ids in
        Alcotest.(check int) "three unique loop ids" 3 (List.length sorted);
        Alcotest.(check (list int)) "dense from 0" [ 0; 1; 2 ] sorted);
    t "main with contained procedure" (fun () ->
        let src =
          "program p\n implicit none\n call go\ncontains\n subroutine go()\n  return\n end subroutine go\nend program p\n"
        in
        match Parser.parse src with
        | [ Ast.Main m ] -> Alcotest.(check int) "procs" 1 (List.length m.Ast.main_procs)
        | _ -> Alcotest.fail "unexpected units");
  ]

let error_tests =
  [
    expect_parse_error "missing end do" "program t\n do i = 1, 2\n  x = 1\nend program t\n";
    expect_parse_error "missing end if" "program t\n if (x > 0) then\n  x = 1\nend program t\n";
    expect_parse_error "unsupported real kind" "program t\n real(kind=16) :: x\nend program t\n";
    expect_parse_error "subroutine with type prefix"
      "module m\ncontains\n real(kind=8) subroutine s()\n end subroutine s\nend module m\n";
    expect_parse_error "garbage toplevel" "subroutine orphan()\nend subroutine orphan\n";
    expect_parse_error "unknown attribute" "program t\n real(kind=8), volatile :: x\nend program t\n";
    expect_parse_error "missing expression" "program t\n x = \nend program t\n";
  ]

let () =
  Alcotest.run "parser"
    [
      ("statements", stmt_tests);
      ("expressions", expr_tests);
      ("declarations", decl_tests);
      ("program units", unit_tests);
      ("errors", error_tests);
    ]
