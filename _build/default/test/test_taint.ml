(* Taint-based program reduction tests (Sec. III-C). *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let fixture =
  {|
module unrelated
  implicit none
  real(kind=8) :: junk
contains
  subroutine noise()
    junk = junk + 1.0d0
  end subroutine noise
end module unrelated

module hot
  implicit none
  integer, parameter :: n = 4
  real(kind=8), dimension(n) :: state
contains
  subroutine kernel(dt)
    real(kind=8), intent(in) :: dt
    integer :: i
    do i = 1, n
      state(i) = state(i) + dt * helper(state(i))
    end do
  end subroutine kernel

  function helper(x) result(y)
    real(kind=8) :: x, y
    y = x * 0.5d0
  end function helper

  subroutine untouched()
    integer :: k
    k = 0
  end subroutine untouched
end module hot

program main
  use unrelated
  use hot
  implicit none
  real(kind=8) :: dt
  integer :: step
  dt = 0.1d0
  call noise
  do step = 1, 3
    call kernel(dt)
  end do
  print *, 'state1', state(1)
end program main
|}

let reduce targets =
  let st = Symtab.build (Parser.parse fixture) in
  Analysis.Taint.reduce st ~targets

let kernel_targets =
  [ (Symtab.Proc_scope "kernel", "dt"); (Symtab.Unit_scope "hot", "state") ]

let tests =
  [
    t "target declarations survive" (fun () ->
        let reduced, _ = reduce kernel_targets in
        let st' = Symtab.build reduced in
        Alcotest.(check bool) "dt declared" true
          (Symtab.lookup_var st' ~in_proc:(Some "kernel") "dt" <> None);
        Alcotest.(check bool) "state declared" true
          (Symtab.lookup_var st' ~in_proc:(Some "kernel") "state" <> None));
    t "reduced program parses and round-trips" (fun () ->
        let reduced, _ = reduce kernel_targets in
        let text = Unparse.program reduced in
        let again = Parser.parse text in
        Alcotest.(check string) "fixpoint" text (Unparse.program again));
    t "statements shrink" (fun () ->
        let _, stats = reduce kernel_targets in
        Alcotest.(check bool) "kept < total" true
          (stats.Analysis.Taint.kept_stmts < stats.Analysis.Taint.total_stmts);
        Alcotest.(check bool) "kept > 0" true (stats.Analysis.Taint.kept_stmts > 0));
    t "called procedures are pulled in" (fun () ->
        let reduced, _ = reduce kernel_targets in
        Alcotest.(check bool) "helper kept" true (Ast.find_proc reduced "helper" <> None));
    t "unrelated procedure dropped" (fun () ->
        let reduced, _ = reduce kernel_targets in
        Alcotest.(check bool) "untouched gone" true (Ast.find_proc reduced "untouched" = None));
    t "unrelated module dropped entirely" (fun () ->
        let reduced, _ = reduce kernel_targets in
        Alcotest.(check bool) "noise gone" true (Ast.find_proc reduced "noise" = None);
        Alcotest.(check bool) "module gone" true (Ast.find_module reduced "unrelated" = None));
    t "imports filtered to surviving modules" (fun () ->
        let reduced, _ = reduce kernel_targets in
        match Ast.main_of reduced with
        | Some m -> Alcotest.(check (list string)) "uses" [ "hot" ] m.Ast.main_uses
        | None -> Alcotest.fail "main should survive");
    t "call sites passing targets survive" (fun () ->
        let reduced, _ = reduce kernel_targets in
        let main = Option.get (Ast.main_of reduced) in
        let calls = ref [] in
        Ast.iter_stmts
          (fun s ->
            match s.Ast.node with
            | Ast.Call (name, _) -> calls := name :: !calls
            | _ -> ())
          main.Ast.main_body;
        Alcotest.(check bool) "kernel call kept" true (List.mem "kernel" !calls);
        Alcotest.(check bool) "noise call dropped" true (not (List.mem "noise" !calls)));
    t "empty target set keeps only the main shell" (fun () ->
        let reduced, stats = reduce [] in
        Alcotest.(check int) "no tainted vars" 0 stats.Analysis.Taint.tainted_vars;
        Alcotest.(check int) "no kept stmts" 0 stats.Analysis.Taint.kept_stmts;
        ignore (Unparse.program reduced));
    t "select shells survive when a branch is tainted" (fun () ->
        let src =
          "module h\n implicit none\n real(kind=8) :: target_v\n integer :: mode\ncontains\n subroutine go()\n  select case (mode)\n  case (1)\n   target_v = target_v + 1.0d0\n  case default\n   mode = 0\n  end select\n end subroutine go\nend module h\nprogram p\n use h\n implicit none\n call go\nend program p\n"
        in
        let st = Fortran.Symtab.build (Fortran.Parser.parse src) in
        let reduced, _ =
          Analysis.Taint.reduce st ~targets:[ (Fortran.Symtab.Unit_scope "h", "target_v") ]
        in
        let go = Option.get (Fortran.Ast.find_proc reduced "go") in
        let has_select = ref false in
        Fortran.Ast.iter_stmts
          (fun s ->
            match s.Fortran.Ast.node with
            | Fortran.Ast.Select _ -> has_select := true
            | _ -> ())
          go.Fortran.Ast.proc_body;
        Alcotest.(check bool) "select kept" true !has_select;
        ignore (Fortran.Parser.parse (Fortran.Unparse.program reduced)));
    t "reduction of every bundled model parses" (fun () ->
        List.iter
          (fun (m : Models.Registry.t) ->
            let st = Symtab.build (Parser.parse m.Models.Registry.source) in
            let atoms =
              Transform.Assignment.atoms_of_target st ~module_:m.Models.Registry.target_module
                ~procs:(Some m.Models.Registry.target_procs)
                ~exclude:m.Models.Registry.exclude_atoms
            in
            let targets =
              List.map
                (fun a -> (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name))
                atoms
            in
            let reduced, stats = Analysis.Taint.reduce st ~targets in
            Alcotest.(check bool)
              (m.Models.Registry.name ^ " reduces")
              true
              (stats.Analysis.Taint.kept_stmts <= stats.Analysis.Taint.total_stmts);
            ignore (Parser.parse (Unparse.program reduced)))
          (Models.Registry.funarc :: Models.Registry.all));
  ]

let () = Alcotest.run "taint" [ ("reduction", tests) ]
