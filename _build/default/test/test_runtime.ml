(* Runtime tests: binary32 emulation, noise, timers, and the interpreter's
   semantics + cost accounting. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let run ?budget src =
  let st = Symtab.build (Parser.parse src) in
  Typecheck.check_program st;
  Runtime.Interp.run ?budget st

let run_unchecked ?budget src =
  Runtime.Interp.run ?budget (Symtab.build (Parser.parse src))

let series out key = Runtime.Interp.series out key

let first out key =
  match series out key with
  | v :: _ -> v
  | [] -> Alcotest.failf "no '%s' record" key

let prog body = Printf.sprintf "program t\n implicit none\n%s\nend program t\n" body

let float_eq = Alcotest.float 1e-12

(* ------------------------------------------------------------------ *)

let fp32_tests =
  [
    t "round is idempotent" (fun () ->
        let x = Runtime.Fp32.round 0.1 in
        Alcotest.(check float_eq) "fix" x (Runtime.Fp32.round x));
    t "exact values unchanged" (fun () ->
        List.iter
          (fun v -> Alcotest.(check float_eq) "exact" v (Runtime.Fp32.round v))
          [ 0.0; 1.0; -2.5; 0.25; 1024.0; Float.of_int (1 lsl 20) ]);
    t "0.1 is not representable" (fun () ->
        Alcotest.(check bool) "repr" false (Runtime.Fp32.is_representable 0.1));
    t "overflow becomes infinity" (fun () ->
        Alcotest.(check bool) "inf" true (Float.is_integer (Runtime.Fp32.round 1e39) = false
                                          && Runtime.Fp32.round 1e39 = infinity));
    t "max_finite survives" (fun () ->
        Alcotest.(check bool) "finite" true (Float.is_finite Runtime.Fp32.max_finite);
        Alcotest.(check bool) "fix" true
          (Runtime.Fp32.round Runtime.Fp32.max_finite = Runtime.Fp32.max_finite));
    t "of_kind K8 is identity" (fun () ->
        Alcotest.(check float_eq) "id" 0.1 (Runtime.Fp32.of_kind Ast.K8 0.1));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"rounding error bounded by half ulp" ~count:500
         QCheck.(float_bound_exclusive 1e30)
         (fun x ->
           QCheck.assume (Float.is_finite x && Float.abs x > 1e-30);
           let r = Runtime.Fp32.round x in
           Float.abs (r -. x) <= Float.abs x *. (1.0 /. 16777216.0)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"round is monotone" ~count:500
         QCheck.(pair (float_bound_exclusive 1e30) (float_bound_exclusive 1e30))
         (fun (a, b) ->
           let lo, hi = if a <= b then (a, b) else (b, a) in
           Runtime.Fp32.round lo <= Runtime.Fp32.round hi));
  ]

let noise_tests =
  [
    t "deterministic for equal seeds" (fun () ->
        Alcotest.(check float_eq) "same"
          (Runtime.Noise.factor ~seed:7 ~run:3 ~rel_std:0.05)
          (Runtime.Noise.factor ~seed:7 ~run:3 ~rel_std:0.05));
    t "different runs differ" (fun () ->
        Alcotest.(check bool) "differ" true
          (Runtime.Noise.factor ~seed:7 ~run:0 ~rel_std:0.05
          <> Runtime.Noise.factor ~seed:7 ~run:1 ~rel_std:0.05));
    t "zero std is exactly 1" (fun () ->
        Alcotest.(check float_eq) "one" 1.0 (Runtime.Noise.factor ~seed:9 ~run:4 ~rel_std:0.0));
    t "clamped to [0.5, 2.0]" (fun () ->
        for run = 0 to 200 do
          let f = Runtime.Noise.factor ~seed:1 ~run ~rel_std:0.5 in
          Alcotest.(check bool) "bounds" true (f >= 0.5 && f <= 2.0)
        done);
    t "sample std close to requested" (fun () ->
        let fs = List.init 3000 (fun run -> Runtime.Noise.factor ~seed:3 ~run ~rel_std:0.05) in
        let sd = Metrics.Stats.stddev fs in
        Alcotest.(check bool) "about 5%" true (sd > 0.03 && sd < 0.07));
  ]

let timer_tests =
  [
    t "nested attribution" (fun () ->
        let tm = Runtime.Timers.create () in
        Runtime.Timers.enter tm "outer" ~now:0.0;
        Runtime.Timers.charge tm 10.0;
        Runtime.Timers.enter tm "inner" ~now:10.0;
        Runtime.Timers.charge tm 5.0;
        Runtime.Timers.exit_ tm ~now:15.0;
        Runtime.Timers.charge tm 2.0;
        Runtime.Timers.exit_ tm ~now:17.0;
        let snap = Runtime.Timers.snapshot tm in
        Alcotest.(check float_eq) "outer exclusive" 12.0
          (Runtime.Timers.exclusive_of snap "outer");
        Alcotest.(check float_eq) "outer inclusive" 17.0
          (Runtime.Timers.inclusive_of snap "outer");
        Alcotest.(check float_eq) "inner exclusive" 5.0 (Runtime.Timers.exclusive_of snap "inner");
        Alcotest.(check int) "calls" 1 (Runtime.Timers.calls_of snap "inner"));
    t "repeated calls accumulate" (fun () ->
        let tm = Runtime.Timers.create () in
        let now = ref 0.0 in
        for _ = 1 to 3 do
          Runtime.Timers.enter tm "p" ~now:!now;
          Runtime.Timers.charge tm 4.0;
          now := !now +. 4.0;
          Runtime.Timers.exit_ tm ~now:!now
        done;
        let snap = Runtime.Timers.snapshot tm in
        Alcotest.(check int) "3 calls" 3 (Runtime.Timers.calls_of snap "p");
        Alcotest.(check float_eq) "inclusive" 12.0 (Runtime.Timers.inclusive_of snap "p"));
    t "charge outside any frame is dropped" (fun () ->
        let tm = Runtime.Timers.create () in
        Runtime.Timers.charge tm 5.0;
        Alcotest.(check int) "empty" 0 (List.length (Runtime.Timers.snapshot tm)));
  ]

(* ------------------------------------------------------------------ *)

let semantics_tests =
  [
    t "integer division truncates" (fun () ->
        let out = run (prog " integer :: i\n i = 7 / 2\n print *, 'v', i") in
        Alcotest.(check float_eq) "3" 3.0 (first out "v"));
    t "real to integer assignment truncates" (fun () ->
        let out = run (prog " integer :: i\n real(kind=8) :: x\n x = 3.9d0\n i = x\n print *, 'v', i") in
        Alcotest.(check float_eq) "3" 3.0 (first out "v"));
    t "mod and sign intrinsics" (fun () ->
        let out =
          run
            (prog
               " integer :: m\n real(kind=8) :: s\n m = mod(7, 3)\n s = sign(2.5d0, -1.0d0)\n print *, 'm', m\n print *, 's', s")
        in
        Alcotest.(check float_eq) "mod" 1.0 (first out "m");
        Alcotest.(check float_eq) "sign" (-2.5) (first out "s"));
    t "min max n-ary" (fun () ->
        let out =
          run (prog " real(kind=8) :: v\n v = max(1.0d0, min(5.0d0, 3.0d0), 2.0d0)\n print *, 'v', v")
        in
        Alcotest.(check float_eq) "3" 3.0 (first out "v"));
    t "small integer powers are exact" (fun () ->
        let out = run (prog " real(kind=8) :: v\n v = 3.0d0 ** 2\n print *, 'v', v") in
        Alcotest.(check float_eq) "9" 9.0 (first out "v"));
    t "k4 store rounds to binary32" (fun () ->
        let out = run (prog " real(kind=4) :: x\n x = 0.1d0\n print *, 'v', x") in
        Alcotest.(check float_eq) "rounded" (Runtime.Fp32.round 0.1) (first out "v"));
    t "k4 arithmetic rounds every operation" (fun () ->
        let out =
          run
            (prog
               " real(kind=4) :: a, b\n a = 1.0\n b = 3.0\n a = a / b\n print *, 'v', a")
        in
        Alcotest.(check float_eq) "f32 third" (Runtime.Fp32.round (1.0 /. 3.0)) (first out "v"));
    t "k8 arithmetic stays double" (fun () ->
        let out =
          run (prog " real(kind=8) :: a\n a = 1.0d0 / 3.0d0\n print *, 'v', a")
        in
        Alcotest.(check float_eq) "double third" (1.0 /. 3.0) (first out "v"));
    t "column-major array order" (fun () ->
        (* a(i,j) with dims (2,3): a(2,1) is element 2, a(1,2) is element 3 —
           observable via sequential sum after writes *)
        let out =
          run
            (prog
               " real(kind=8), dimension(2, 3) :: a\n integer :: i, j\n do j = 1, 3\n  do i = 1, 2\n   a(i, j) = 10.0d0 * i + j\n  end do\n end do\n print *, 'v', a(2, 3)")
        in
        Alcotest.(check float_eq) "a(2,3)" 23.0 (first out "v"));
    t "do loop with negative step" (fun () ->
        let out =
          run
            (prog
               " integer :: i, count\n count = 0\n do i = 10, 1, -3\n  count = count + 1\n end do\n print *, 'v', count")
        in
        Alcotest.(check float_eq) "4 iterations" 4.0 (first out "v"));
    t "zero-trip do loop" (fun () ->
        let out =
          run
            (prog
               " integer :: i, count\n count = 0\n do i = 5, 1\n  count = count + 1\n end do\n print *, 'v', count")
        in
        Alcotest.(check float_eq) "0 iterations" 0.0 (first out "v"));
    t "exit and cycle" (fun () ->
        let out =
          run
            (prog
               " integer :: i, s\n s = 0\n do i = 1, 10\n  if (mod(i, 2) == 0) cycle\n  if (i > 6) exit\n  s = s + i\n end do\n print *, 'v', s")
        in
        (* 1 + 3 + 5 = 9 *)
        Alcotest.(check float_eq) "9" 9.0 (first out "v"));
    t "do while" (fun () ->
        let out =
          run
            (prog
               " integer :: n\n n = 1\n do while (n < 100)\n  n = n * 2\n end do\n print *, 'v', n")
        in
        Alcotest.(check float_eq) "128" 128.0 (first out "v"));
    t "select case dispatch" (fun () ->
        let out =
          run
            (prog
               " integer :: k, i\n real(kind=8) :: x\n x = 0.0d0\n do i = 1, 6\n  k = mod(i, 4)\n  select case (k)\n  case (0)\n   x = x + 1.0d0\n  case (1, 2)\n   x = x + 10.0d0\n  case (3:)\n   x = x + 100.0d0\n  case default\n   x = x - 1.0d0\n  end select\n end do\n print *, 'v', x")
        in
        Alcotest.(check float_eq) "141" 141.0 (first out "v"));
    t "select case falls to default" (fun () ->
        let out =
          run
            (prog
               " integer :: k\n real(kind=8) :: x\n k = 9\n select case (k)\n case (1:5)\n  x = 1.0d0\n case default\n  x = 2.0d0\n end select\n print *, 'v', x")
        in
        Alcotest.(check float_eq) "default" 2.0 (first out "v"));
    t "select case without match or default is a no-op" (fun () ->
        let out =
          run
            (prog
               " integer :: k\n real(kind=8) :: x\n x = 5.0d0\n k = 3\n select case (k)\n case (1)\n  x = 0.0d0\n end select\n print *, 'v', x")
        in
        Alcotest.(check float_eq) "unchanged" 5.0 (first out "v"));
    t "hyperbolic and log10 intrinsics" (fun () ->
        let out =
          run
            (prog
               " real(kind=8) :: a, b, c\n a = tanh(0.5d0)\n b = log10(1000.0d0)\n c = cosh(0.0d0)\n print *, 'a', a\n print *, 'b', b\n print *, 'c', c")
        in
        Alcotest.(check float_eq) "tanh" (tanh 0.5) (first out "a");
        Alcotest.(check float_eq) "log10" 3.0 (first out "b");
        Alcotest.(check float_eq) "cosh" 1.0 (first out "c"));
    t "atan2 aint anint" (fun () ->
        let out =
          run
            (prog
               " real(kind=8) :: a, b, c\n a = atan2(1.0d0, 1.0d0)\n b = aint(2.7d0)\n c = anint(2.7d0)\n print *, 'a', a\n print *, 'b', b\n print *, 'c', c")
        in
        Alcotest.(check float_eq) "atan2" (Float.atan2 1.0 1.0) (first out "a");
        Alcotest.(check float_eq) "aint" 2.0 (first out "b");
        Alcotest.(check float_eq) "anint" 3.0 (first out "c"));
    t "dot_product over arrays" (fun () ->
        let out =
          run
            (prog
               " real(kind=8), dimension(3) :: a, b\n integer :: i\n do i = 1, 3\n  a(i) = i * 1.0d0\n  b(i) = 2.0d0\n end do\n print *, 'v', dot_product(a, b)")
        in
        Alcotest.(check float_eq) "12" 12.0 (first out "v"));
    t "epsilon huge tiny" (fun () ->
        let out =
          run
            (prog
               " real(kind=4) :: x4\n real(kind=8) :: x8\n x4 = 1.0\n x8 = 1.0d0\n print *, 'e4', epsilon(x4)\n print *, 'e8', epsilon(x8)\n print *, 'h4', huge(x4)")
        in
        Alcotest.(check float_eq) "eps4" 1.1920928955078125e-07 (first out "e4");
        Alcotest.(check float_eq) "eps8" epsilon_float (first out "e8");
        Alcotest.(check float_eq) "huge4" Runtime.Fp32.max_finite (first out "h4"));
    t "sum maxval minval size" (fun () ->
        let out =
          run
            (prog
               " real(kind=8), dimension(4) :: a\n integer :: i\n do i = 1, 4\n  a(i) = i * 1.0d0\n end do\n print *, 's', sum(a)\n print *, 'mx', maxval(a)\n print *, 'mn', minval(a)\n print *, 'sz', size(a)")
        in
        Alcotest.(check float_eq) "sum" 10.0 (first out "s");
        Alcotest.(check float_eq) "max" 4.0 (first out "mx");
        Alcotest.(check float_eq) "min" 1.0 (first out "mn");
        Alcotest.(check float_eq) "size" 4.0 (first out "sz"));
    t "parameters are compile-time constants" (fun () ->
        let out =
          run
            (prog
               " integer, parameter :: n = 6\n real(kind=8), parameter :: c = 2.5d0\n print *, 'v', n * c")
        in
        Alcotest.(check float_eq) "15" 15.0 (first out "v"));
    t "module variable initializers run" (fun () ->
        let src =
          "module m\n implicit none\n real(kind=8) :: g = 4.5d0\nend module m\nprogram p\n use m\n implicit none\n print *, 'v', g\nend program p\n"
        in
        Alcotest.(check float_eq) "4.5" 4.5 (first (run src) "v"));
  ]

let call_tests =
  [
    t "scalar arguments pass by reference" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine swap(a, b)\n  real(kind=8) :: a, b, t\n  t = a\n  a = b\n  b = t\n end subroutine swap\nend module m\nprogram p\n use m\n implicit none\n real(kind=8) :: x, y\n x = 1.0d0\n y = 2.0d0\n call swap(x, y)\n print *, 'x', x\n print *, 'y', y\nend program p\n"
        in
        let out = run src in
        Alcotest.(check float_eq) "x" 2.0 (first out "x");
        Alcotest.(check float_eq) "y" 1.0 (first out "y"));
    t "whole arrays share storage" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine fill(v, n)\n  integer :: n, i\n  real(kind=8), dimension(n) :: v\n  do i = 1, n\n   v(i) = 7.0d0\n  end do\n end subroutine fill\nend module m\nprogram p\n use m\n implicit none\n real(kind=8), dimension(3) :: a\n call fill(a, 3)\n print *, 'v', a(2)\nend program p\n"
        in
        Alcotest.(check float_eq) "7" 7.0 (first (run src) "v"));
    t "array element actual copies back" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine bump(x)\n  real(kind=8), intent(inout) :: x\n  x = x + 1.0d0\n end subroutine bump\nend module m\nprogram p\n use m\n implicit none\n real(kind=8), dimension(2) :: a\n a(1) = 5.0d0\n call bump(a(1))\n print *, 'v', a(1)\nend program p\n"
        in
        Alcotest.(check float_eq) "6" 6.0 (first (run src) "v"));
    t "expression actuals are copies" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function twice(x) result(y)\n  real(kind=8) :: x, y\n  y = 2.0d0 * x\n end function twice\nend module m\nprogram p\n use m\n implicit none\n print *, 'v', twice(3.0d0 + 1.0d0)\nend program p\n"
        in
        Alcotest.(check float_eq) "8" 8.0 (first (run src) "v"));
    t "function result via result clause" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function sq(x) result(y)\n  real(kind=8) :: x, y\n  y = x * x\n end function sq\nend module m\nprogram p\n use m\n implicit none\n print *, 'v', sq(4.0d0)\nend program p\n"
        in
        Alcotest.(check float_eq) "16" 16.0 (first (run src) "v"));
    t "local arrays sized by dummy integers" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function total(n) result(s)\n  integer :: n, i\n  real(kind=8) :: s\n  real(kind=8), dimension(n) :: w\n  do i = 1, n\n   w(i) = 1.0d0\n  end do\n  s = sum(w)\n end function total\nend module m\nprogram p\n use m\n implicit none\n print *, 'v', total(5)\nend program p\n"
        in
        Alcotest.(check float_eq) "5" 5.0 (first (run src) "v"));
    t "mpi_allreduce stand-in" (fun () ->
        let out =
          run
            (prog
               " real(kind=8) :: a, b\n a = 3.5d0\n call mpi_allreduce(a, b, 'sum')\n print *, 'v', b")
        in
        Alcotest.(check float_eq) "3.5" 3.5 (first out "v"));
    t "kind-mismatched binding is a runtime error" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine s(a)\n  real(kind=8) :: a\n  a = a + 1.0d0\n end subroutine s\nend module m\nprogram p\n use m\n implicit none\n real(kind=4) :: x\n x = 1.0\n call s(x)\nend program p\n"
        in
        match (run_unchecked src).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error _ -> ()
        | s -> Alcotest.failf "expected runtime error, got %a" Runtime.Interp.pp_status s);
  ]

let failure_tests =
  [
    t "f32 overflow traps" (fun () ->
        let src = prog " real(kind=4) :: x\n x = 1.0e30\n x = x * x\n print *, 'v', x" in
        match (run src).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error m ->
          Alcotest.(check bool) "overflow message" true
            (String.length m > 0 && String.sub m 0 8 = "overflow")
        | s -> Alcotest.failf "expected trap, got %a" Runtime.Interp.pp_status s);
    t "division by zero traps" (fun () ->
        let src = prog " real(kind=8) :: x\n x = 1.0d0\n x = x / 0.0d0" in
        match (run src).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error _ -> ()
        | s -> Alcotest.failf "expected trap, got %a" Runtime.Interp.pp_status s);
    t "sqrt of negative traps as NaN" (fun () ->
        let src = prog " real(kind=8) :: x\n x = sqrt(-1.0d0)" in
        match (run src).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error _ -> ()
        | s -> Alcotest.failf "expected trap, got %a" Runtime.Interp.pp_status s);
    t "array bounds are checked" (fun () ->
        let src = prog " real(kind=8), dimension(3) :: a\n integer :: i\n i = 4\n a(i) = 1.0d0" in
        match (run src).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error _ -> ()
        | s -> Alcotest.failf "expected bounds error, got %a" Runtime.Interp.pp_status s);
    t "stop reports its message" (fun () ->
        let src = prog " stop 'unstable'" in
        match (run src).Runtime.Interp.status with
        | Runtime.Interp.Stopped "unstable" -> ()
        | s -> Alcotest.failf "expected stop, got %a" Runtime.Interp.pp_status s);
    t "budget exhaustion times out" (fun () ->
        let src =
          prog
            " integer :: i\n real(kind=8) :: s\n s = 0.0d0\n do i = 1, 1000000\n  s = s + 1.0d0\n end do"
        in
        match (run ~budget:100.0 src).Runtime.Interp.status with
        | Runtime.Interp.Timed_out -> ()
        | s -> Alcotest.failf "expected timeout, got %a" Runtime.Interp.pp_status s);
    t "runaway recursion is caught" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n function loopy(x) result(y)\n  real(kind=8) :: x, y\n  y = loopy(x + 1.0d0)\n end function loopy\nend module m\nprogram p\n use m\n implicit none\n print *, 'v', loopy(0.0d0)\nend program p\n"
        in
        match (run src).Runtime.Interp.status with
        | Runtime.Interp.Runtime_error _ -> ()
        | s -> Alcotest.failf "expected depth error, got %a" Runtime.Interp.pp_status s);
  ]

(* ------------------------------------------------------------------ *)
(* Cost-model behavior observable through total cost                    *)

let cost_of src = (run src).Runtime.Interp.cost

let cost_tests =
  [
    t "runs are deterministic" (fun () ->
        let src = Models.Funarc.source ~n:200 () in
        let a = run src and b = run src in
        Alcotest.(check float_eq) "same cost" a.Runtime.Interp.cost b.Runtime.Interp.cost;
        Alcotest.(check bool) "same records" true
          (a.Runtime.Interp.records = b.Runtime.Interp.records));
    t "vectorizable loop is cheaper than a recurrence" (fun () ->
        let clean =
          prog
            " real(kind=8), dimension(64) :: a\n integer :: i\n do i = 1, 64\n  a(i) = a(i) * 1.5d0 + 2.0d0\n end do"
        in
        let carried =
          prog
            " real(kind=8), dimension(64) :: a\n integer :: i\n do i = 2, 64\n  a(i) = a(i - 1) * 1.5d0 + 2.0d0\n end do"
        in
        Alcotest.(check bool) "vectorized cheaper" true (cost_of clean < cost_of carried));
    t "uniform k4 loop is cheaper than uniform k8" (fun () ->
        let mk kind =
          prog
            (Printf.sprintf
               " real(kind=%s), dimension(64) :: a\n integer :: i\n do i = 1, 64\n  a(i) = a(i) * 1.5 + sqrt(a(i) + 2.0)\n end do"
               kind)
        in
        Alcotest.(check bool) "k4 cheaper" true (cost_of (mk "4") < cost_of (mk "8")));
    t "lightly mixed loop sits between uniform kinds" (fun () ->
        let mk decl =
          prog
            (Printf.sprintf
               " %s\n integer :: i\n do i = 1, 64\n  a(i) = (a(i) + a(i) + a(i) * 1.5 + a(i) * a(i)) * w\n end do\n print *, 'v', w"
               decl)
        in
        let k8 = cost_of (mk "real(kind=8), dimension(64) :: a\n real(kind=8) :: w") in
        let k4 = cost_of (mk "real(kind=4), dimension(64) :: a\n real(kind=4) :: w") in
        let mixed = cost_of (mk "real(kind=4), dimension(64) :: a\n real(kind=8) :: w") in
        Alcotest.(check bool) "k4 < mixed" true (k4 < mixed);
        Alcotest.(check bool) "mixed < k8" true (mixed < k8));
    t "heavily mixed loop devectorizes and loses to both uniform kinds" (fun () ->
        let mk decl =
          prog
            (Printf.sprintf
               " %s\n integer :: i\n do i = 1, 64\n  a(i) = a(i) * w + sqrt(a(i))\n end do\n print *, 'v', w"
               decl)
        in
        let k8 = cost_of (mk "real(kind=8), dimension(64) :: a\n real(kind=8) :: w") in
        let k4 = cost_of (mk "real(kind=4), dimension(64) :: a\n real(kind=4) :: w") in
        let mixed = cost_of (mk "real(kind=4), dimension(64) :: a\n real(kind=8) :: w") in
        (* the casting-overhead phenomenon behind funarc's "67% worse on
           both axes" (Sec. II-B) *)
        Alcotest.(check bool) "worse than k8" true (mixed > k8);
        Alcotest.(check bool) "worse than k4" true (mixed > k4));
    t "f32 math intrinsics are cheaper even scalar" (fun () ->
        (* a loop-carried chain stays scalar for both kinds *)
        let mk kind lit =
          prog
            (Printf.sprintf
               " real(kind=%s) :: x\n integer :: i\n x = 0.5%s\n do i = 1, 100\n  x = sin(x) + 1.0%s\n end do\n print *, 'v', x"
               kind lit lit)
        in
        Alcotest.(check bool) "sin f32 cheaper" true (cost_of (mk "4" "") < cost_of (mk "8" "d0")));
    t "timing excludes nothing: intrinsics charged to caller" (fun () ->
        let src =
          "module m\n implicit none\ncontains\n subroutine heavy()\n  real(kind=8) :: x\n  integer :: i\n  x = 0.5d0\n  do i = 1, 50\n   x = sin(x)\n  end do\n end subroutine heavy\nend module m\nprogram p\n use m\n implicit none\n call heavy\nend program p\n"
        in
        let out = run src in
        let excl = Runtime.Timers.exclusive_of out.Runtime.Interp.timers "heavy" in
        Alcotest.(check bool) "sin cost attributed" true (excl > 50.0 *. 5.0));
  ]

let () =
  Alcotest.run "runtime"
    [
      ("fp32", fp32_tests);
      ("noise", noise_tests);
      ("timers", timer_tests);
      ("semantics", semantics_tests);
      ("calls", call_tests);
      ("failures", failure_tests);
      ("cost model", cost_tests);
    ]
