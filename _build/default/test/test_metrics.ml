(* Metrics tests: statistics, the correctness metric, Eq.-1 speedup. *)

let t name f = Alcotest.test_case name `Quick f
let feq = Alcotest.float 1e-12

let stats_tests =
  [
    t "mean" (fun () -> Alcotest.(check feq) "2" 2.0 (Metrics.Stats.mean [ 1.0; 2.0; 3.0 ]));
    t "mean of empty" (fun () -> Alcotest.(check feq) "0" 0.0 (Metrics.Stats.mean []));
    t "median odd" (fun () ->
        Alcotest.(check feq) "3" 3.0 (Metrics.Stats.median [ 5.0; 1.0; 3.0 ]));
    t "median even averages the middle pair" (fun () ->
        Alcotest.(check feq) "2.5" 2.5 (Metrics.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]));
    t "stddev" (fun () ->
        Alcotest.(check feq) "2" 2.0 (Metrics.Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]));
    t "rel_stddev" (fun () ->
        Alcotest.(check feq) "0.4" 0.4
          (Metrics.Stats.rel_stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]));
    t "percentile endpoints" (fun () ->
        let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
        Alcotest.(check feq) "p0" 10.0 (Metrics.Stats.percentile 0.0 xs);
        Alcotest.(check feq) "p100" 40.0 (Metrics.Stats.percentile 100.0 xs);
        Alcotest.(check feq) "p50" 25.0 (Metrics.Stats.percentile 50.0 xs));
    t "fraction_in" (fun () ->
        Alcotest.(check feq) "half" 0.5
          (Metrics.Stats.fraction_in (fun x -> x > 2.0) [ 1.0; 2.0; 3.0; 4.0 ]));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"median lies within [min, max]" ~count:200
         QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (float_bound_exclusive 100.0))
         (fun xs ->
           let m = Metrics.Stats.median xs in
           m >= Metrics.Stats.minimum xs && m <= Metrics.Stats.maximum xs));
  ]

let error_tests =
  [
    t "relative error basic" (fun () ->
        Alcotest.(check feq) "0.1" 0.1 (Metrics.Error.rel_error ~baseline:10.0 9.0));
    t "zero baseline falls back to absolute" (fun () ->
        Alcotest.(check feq) "2" 2.0 (Metrics.Error.rel_error ~baseline:0.0 2.0));
    t "NaN is infinitely wrong" (fun () ->
        Alcotest.(check bool) "inf" true
          (Metrics.Error.rel_error ~baseline:1.0 Float.nan = infinity));
    t "l2 norm" (fun () -> Alcotest.(check feq) "5" 5.0 (Metrics.Error.l2 [ 3.0; 4.0 ]));
    t "series error of identical series is zero" (fun () ->
        Alcotest.(check feq) "0" 0.0
          (Metrics.Error.series_rel_error_l2 ~baseline:[ 1.0; 2.0 ] [ 1.0; 2.0 ]));
    t "series error accumulates per-step errors" (fun () ->
        Alcotest.(check feq) "l2 of (0.1, 0.1)" (Metrics.Error.l2 [ 0.1; 0.1 ])
          (Metrics.Error.series_rel_error_l2 ~baseline:[ 1.0; 2.0 ] [ 1.1; 2.2 ]));
    t "short variant series is infinite error" (fun () ->
        Alcotest.(check bool) "inf" true
          (Metrics.Error.series_rel_error_l2 ~baseline:[ 1.0; 2.0; 3.0 ] [ 1.0 ] = infinity));
    t "longer variant series compares the prefix" (fun () ->
        Alcotest.(check feq) "0" 0.0
          (Metrics.Error.series_rel_error_l2 ~baseline:[ 1.0 ] [ 1.0; 99.0 ]));
    t "within handles NaN" (fun () ->
        Alcotest.(check bool) "nan fails" false (Metrics.Error.within ~threshold:1.0 Float.nan);
        Alcotest.(check bool) "under passes" true (Metrics.Error.within ~threshold:1.0 0.5));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"l2 dominates max component" ~count:200
         QCheck.(small_list (float_bound_exclusive 10.0))
         (fun xs ->
           let l2 = Metrics.Error.l2 xs in
           List.for_all (fun x -> l2 >= Float.abs x -. 1e-12) xs));
  ]

let speedup_tests =
  [
    t "median over median" (fun () ->
        Alcotest.(check feq) "2" 2.0
          (Metrics.Speedup.of_times ~baseline:[ 10.0; 12.0; 11.0 ] ~variant:[ 5.0; 6.0; 5.5 ]));
    t "empty variant is zero" (fun () ->
        Alcotest.(check feq) "0" 0.0 (Metrics.Speedup.of_times ~baseline:[ 1.0 ] ~variant:[]));
    t "outlier-tolerant" (fun () ->
        (* one pathological baseline run does not swing the metric *)
        let s = Metrics.Speedup.of_times ~baseline:[ 10.0; 10.0; 500.0 ] ~variant:[ 10.0 ] in
        Alcotest.(check feq) "1" 1.0 s);
    t "choose_n from relative std" (fun () ->
        Alcotest.(check int) "quiet" 1 (Metrics.Speedup.choose_n ~rel_std:0.01);
        Alcotest.(check int) "noisy" 7 (Metrics.Speedup.choose_n ~rel_std:0.09));
  ]

let linreg_tests =
  [
    t "recovers an exact linear relation" (fun () ->
        let features = List.init 12 (fun i -> [| float_of_int i; float_of_int (i * i) |]) in
        let targets = List.map (fun f -> 3.0 +. (2.0 *. f.(0)) -. (0.5 *. f.(1))) features in
        match Metrics.Linreg.fit ~features ~targets with
        | None -> Alcotest.fail "fit failed"
        | Some m ->
          Alcotest.(check (float 1e-3)) "r2 = 1" 1.0
            (Metrics.Linreg.r_squared m ~features ~targets);
          Alcotest.(check (float 1e-3)) "predict" (3.0 +. 20.0 -. 50.0)
            (Metrics.Linreg.predict m [| 10.0; 100.0 |]));
    t "too few samples yields None" (fun () ->
        Alcotest.(check bool) "none" true
          (Metrics.Linreg.fit ~features:[ [| 1.0; 2.0 |] ] ~targets:[ 3.0 ] = None));
    t "constant feature tolerated via ridge" (fun () ->
        let features = List.init 10 (fun i -> [| float_of_int i; 7.0 |]) in
        let targets = List.map (fun f -> 1.0 +. f.(0)) features in
        match Metrics.Linreg.fit ~features ~targets with
        | None -> Alcotest.fail "fit failed on constant column"
        | Some m ->
          Alcotest.(check bool) "r2 high" true
            (Metrics.Linreg.r_squared m ~features ~targets > 0.99));
    t "r_squared can be negative on garbage models" (fun () ->
        let features = List.init 8 (fun i -> [| float_of_int i |]) in
        let targets = List.map (fun f -> 5.0 *. f.(0)) features in
        let m = Option.get (Metrics.Linreg.fit ~features ~targets) in
        (* evaluate against anti-correlated targets *)
        let bad_targets = List.map (fun f -> -5.0 *. f.(0)) features in
        Alcotest.(check bool) "negative" true
          (Metrics.Linreg.r_squared m ~features ~targets:bad_targets < 0.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"exact linear data is fit exactly" ~count:100
         QCheck.(triple (float_bound_exclusive 5.0) (float_bound_exclusive 5.0)
                   (list_of_size (QCheck.Gen.int_range 6 20) (float_bound_exclusive 50.0)))
         (fun (w0, w1, xs) ->
           let features = List.map (fun x -> [| x |]) xs in
           let targets = List.map (fun x -> w0 +. (w1 *. x)) xs in
           match Metrics.Linreg.fit ~features ~targets with
           | None -> List.length (List.sort_uniq compare xs) <= 1
           | Some m -> Metrics.Linreg.r_squared m ~features ~targets > 0.999));
  ]

let () =
  Alcotest.run "metrics"
    [ ("stats", stats_tests); ("error", error_tests); ("speedup", speedup_tests);
      ("linreg", linreg_tests) ]
