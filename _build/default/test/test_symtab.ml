(* Symbol table tests: scoping, use-chains, search-space enumeration. *)

open Fortran

let t name f = Alcotest.test_case name `Quick f

let fixture =
  {|
module consts
  implicit none
  real(kind=8) :: gravity
  integer, parameter :: n = 4
end module consts

module phys
  use consts
  implicit none
  real(kind=8), dimension(n) :: field
  real(kind=4) :: coeff
contains
  subroutine step(dt)
    real(kind=8), intent(in) :: dt
    real(kind=8) :: gravity
    integer :: i
    gravity = 2.0d0
    do i = 1, n
      field(i) = field(i) + dt * gravity * coeff
    end do
  end subroutine step

  function total() result(s)
    real(kind=8) :: s
    s = sum(field)
  end function total
end module phys

program driver
  use phys
  implicit none
  real(kind=8) :: dt
  dt = 0.5d0
  call step(dt)
  print *, 'total', total()
end program driver
|}

let st () = Symtab.build (Parser.parse fixture)

let scope_tests =
  [
    t "local shadows module variable" (fun () ->
        let st = st () in
        match Symtab.lookup_var st ~in_proc:(Some "step") "gravity" with
        | Some { Symtab.v_scope = Symtab.Proc_scope "step"; _ } -> ()
        | _ -> Alcotest.fail "expected the local gravity");
    t "module variable visible in procedure" (fun () ->
        let st = st () in
        match Symtab.lookup_var st ~in_proc:(Some "step") "field" with
        | Some { Symtab.v_scope = Symtab.Unit_scope "phys"; v_dims = [ _ ]; _ } -> ()
        | _ -> Alcotest.fail "expected phys.field");
    t "used-module variable visible transitively" (fun () ->
        let st = st () in
        (* driver uses phys which uses consts *)
        match Symtab.lookup_var st ~in_proc:None "gravity" with
        | Some { Symtab.v_scope = Symtab.Unit_scope "consts"; _ } -> ()
        | _ -> Alcotest.fail "expected consts.gravity");
    t "parameter resolved with its initializer" (fun () ->
        let st = st () in
        match Symtab.lookup_var st ~in_proc:(Some "step") "n" with
        | Some { Symtab.v_parameter = true; v_init = Some (Ast.Int_lit 4); _ } -> ()
        | _ -> Alcotest.fail "expected parameter n");
    t "unknown variable yields None" (fun () ->
        Alcotest.(check bool) "nope" true
          (Symtab.lookup_var (st ()) ~in_proc:(Some "step") "nonexistent" = None));
    t "dummy argument resolves locally" (fun () ->
        match Symtab.lookup_var (st ()) ~in_proc:(Some "step") "dt" with
        | Some { Symtab.v_intent = Some Ast.In; _ } -> ()
        | _ -> Alcotest.fail "expected the dt dummy");
  ]

let proc_tests =
  [
    t "find_proc and owner" (fun () ->
        let st = st () in
        Alcotest.(check bool) "step exists" true (Symtab.find_proc st "step" <> None);
        Alcotest.(check string) "owner" "phys" (Symtab.proc_owner st "step"));
    t "all_proc_names sorted" (fun () ->
        Alcotest.(check (list string)) "procs" [ "step"; "total" ] (Symtab.all_proc_names (st ())));
    t "unit_of_proc" (fun () ->
        match Symtab.unit_of_proc (st ()) "total" with
        | Some (Ast.Module m) -> Alcotest.(check string) "phys" "phys" m.Ast.mod_name
        | _ -> Alcotest.fail "expected module phys");
  ]

let search_space_tests =
  [
    t "fp_vars_of_module counts non-parameter reals" (fun () ->
        let vars = Symtab.fp_vars_of_module (st ()) "phys" in
        let names = List.sort compare (List.map (fun v -> v.Symtab.v_name) vars) in
        (* field, coeff (module level) + dt, gravity (step) + s (total) *)
        Alcotest.(check (list string)) "names" [ "coeff"; "dt"; "field"; "gravity"; "s" ] names);
    t "parameters excluded from the search space" (fun () ->
        let vars = Symtab.fp_vars_of_module (st ()) "consts" in
        Alcotest.(check (list string)) "only gravity" [ "gravity" ]
          (List.map (fun v -> v.Symtab.v_name) vars));
    t "module_of_var" (fun () ->
        let st = st () in
        let v = Option.get (Symtab.lookup_var st ~in_proc:(Some "step") "dt") in
        Alcotest.(check string) "owner module" "phys" (Symtab.module_of_var v st));
    t "vars_of_scope preserves declaration order" (fun () ->
        let vars = Symtab.vars_of_scope (st ()) (Symtab.Proc_scope "step") in
        Alcotest.(check (list string)) "order" [ "dt"; "gravity"; "i" ]
          (List.map (fun v -> v.Symtab.v_name) vars));
  ]

let expect_build_error name src =
  t name (fun () ->
      match Symtab.build (Parser.parse src) with
      | _ -> Alcotest.fail "expected Symtab.Error"
      | exception Symtab.Error _ -> ())

let error_tests =
  [
    expect_build_error "duplicate declaration in one scope"
      "program p\n implicit none\n real(kind=8) :: x\n real(kind=4) :: x\nend program p\n";
    expect_build_error "duplicate procedure names"
      "module a\n implicit none\ncontains\n subroutine s()\n  return\n end subroutine s\nend module a\nmodule b\n implicit none\ncontains\n subroutine s()\n  return\n end subroutine s\nend module b\n";
    expect_build_error "use of unknown module" "program p\n use nosuch\n implicit none\nend program p\n";
    expect_build_error "dummy without declaration"
      "module m\n implicit none\ncontains\n subroutine s(a)\n  return\n end subroutine s\nend module m\n";
    expect_build_error "function result without declaration"
      "module m\n implicit none\ncontains\n function f(x) result(y)\n  real(kind=8) :: x\n  x = 1.0d0\n end function f\nend module m\n";
    expect_build_error "duplicate program units"
      "module m\n implicit none\nend module m\nmodule m\n implicit none\nend module m\n";
  ]

let () =
  Alcotest.run "symtab"
    [
      ("scoping", scope_tests);
      ("procedures", proc_tests);
      ("search space", search_space_tests);
      ("errors", error_tests);
    ]
