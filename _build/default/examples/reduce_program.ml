(* Taint-based program reduction (Sec. III-C).

   ROSE chokes on unsupported Fortran constructs, so the paper's tool
   reduces the program to the minimal subset the transformation needs
   before unparsing/reparsing. This example reduces the ADCIRC proxy to
   the statements relevant to its itpackv search space and shows the
   reduction statistics.

     dune exec examples/reduce_program.exe                               *)

let () =
  let model = Models.Registry.adcirc in
  let prog = Fortran.Parser.parse ~file:"adcirc.f90" model.Models.Registry.source in
  let st = Fortran.Symtab.build prog in
  let atoms =
    Transform.Assignment.atoms_of_target st ~module_:model.Models.Registry.target_module
      ~procs:(Some model.Models.Registry.target_procs)
      ~exclude:model.Models.Registry.exclude_atoms
  in
  let targets =
    List.map (fun a -> (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name)) atoms
  in
  let reduced, stats = Analysis.Taint.reduce st ~targets in
  Format.printf "reduction: %a@." Analysis.Taint.pp_stats stats;
  (* the reduced program still parses, type-checks and round-trips *)
  let text = Fortran.Unparse.program reduced in
  let st' = Fortran.Symtab.build (Fortran.Parser.parse ~file:"reduced.f90" text) in
  Fortran.Typecheck.check_program st';
  print_endline "reduced program (what the transformation front end must handle):";
  print_string text
