examples/static_screening.ml: Analysis Core Format Fortran List Models Printf Transform
