examples/tune_hotspot.mli:
