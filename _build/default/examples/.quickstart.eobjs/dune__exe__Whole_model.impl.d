examples/whole_model.ml: Core Printf Search
