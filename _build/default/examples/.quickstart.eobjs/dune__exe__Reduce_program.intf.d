examples/reduce_program.mli:
