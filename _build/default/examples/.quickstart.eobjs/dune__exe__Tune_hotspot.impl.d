examples/tune_hotspot.ml: Array Core List Models Printf Search Sys Transform
