examples/whole_model.mli:
