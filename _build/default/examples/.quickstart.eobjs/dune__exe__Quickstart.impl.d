examples/quickstart.ml: Core List Models Printf Search String Transform
