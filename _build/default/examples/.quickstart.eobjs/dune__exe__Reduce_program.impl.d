examples/reduce_program.ml: Analysis Format Fortran List Models Transform
