examples/quickstart.mli:
