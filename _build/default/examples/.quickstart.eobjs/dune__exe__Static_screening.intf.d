examples/static_screening.mli:
