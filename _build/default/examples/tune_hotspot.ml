(* Tune a weather-model hotspot with the delta-debugging search.

   Reproduces one Sec. IV-B campaign: the MPAS-A atmosphere proxy, tuned
   on its atm_time_integration work routines, guided by hotspot CPU time.

     dune exec examples/tune_hotspot.exe [mpas|adcirc|mom6]              *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "mpas" in
  let model = Models.Registry.find name in
  Printf.printf "tuning %s (%s)\n\n" model.Models.Registry.title
    model.Models.Registry.description;
  let campaign = Core.Tuner.run_delta_debug model in
  print_string (Core.Report.campaign_header campaign);
  print_newline ();
  print_string (Core.Report.table2 [ campaign ]);
  print_newline ();
  print_string (Core.Report.figure5 campaign);
  print_newline ();
  print_string (Core.Report.figure6 campaign);
  (* the 1-minimal variant as a reviewable source diff *)
  match campaign.Core.Tuner.minimal with
  | Some r ->
    Printf.printf "\n1-minimal variant (%d of %d atoms stay 64-bit):\n"
      (List.length r.Search.Delta_debug.high_set)
      (List.length campaign.Core.Tuner.prepared.Core.Tuner.atoms);
    print_string
      (Transform.Diff.declarations campaign.Core.Tuner.prepared.Core.Tuner.st
         r.Search.Delta_debug.minimal)
  | None -> ()
