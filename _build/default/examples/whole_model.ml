(* The Sec. IV-C experiment: guide the MPAS-A search by whole-model time.

   The same hotspot that tunes to ~2x under hotspot-guided search slows
   the whole model down, because state arrays cross the driver-to-work-
   routine boundary on every call and pay copy-conversion wrappers that
   hotspot timers never see (criterion 3 of Sec. V).

     dune exec examples/whole_model.exe                                  *)

let () =
  let hotspot = Core.Experiments.hotspot_campaign "mpas" in
  let whole = Core.Experiments.whole_model_campaign () in
  Printf.printf "hotspot-guided:     best Eq.1 speedup %.2fx over hotspot CPU time\n"
    hotspot.Core.Tuner.summary.Search.Variant.best_speedup;
  Printf.printf "whole-model-guided: best Eq.1 speedup %.2fx over whole-model time\n\n"
    whole.Core.Tuner.summary.Search.Variant.best_speedup;
  print_string (Core.Report.figure7 whole);
  print_newline ();
  print_string (Core.Checks.render (Core.Checks.mpas_whole_model whole))
