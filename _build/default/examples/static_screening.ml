(* Static variant screening without dynamic evaluation (Sec. V).

   The paper recommends statically rejecting variants that (a) vectorize
   fewer loops than the baseline, or (b) pass too much mixed-precision
   data across procedure boundaries (a casting-penalty cost model over
   the interprocedural FP flow graph). This example screens a handful of
   MOM6 variants and shows what the filter sees: the vectorization
   report, the flow-graph violations, and the penalty score.

     dune exec examples/static_screening.exe                             *)

let () =
  let model = Models.Registry.mom6 in
  let prog = Fortran.Parser.parse ~file:"mom6.f90" model.Models.Registry.source in
  let st = Fortran.Symtab.build prog in
  let atoms =
    Transform.Assignment.atoms_of_target st ~module_:model.Models.Registry.target_module
      ~procs:(Some model.Models.Registry.target_procs)
      ~exclude:model.Models.Registry.exclude_atoms
  in

  (* the baseline's compiler-style vectorization report *)
  print_endline "== baseline vectorization report (hotspot loops) ==";
  List.iter
    (fun (r : Analysis.Vectorize.report) ->
      match r.Analysis.Vectorize.proc with
      | Some p when List.mem p model.Models.Registry.target_procs ->
        Format.printf "  %a@." Analysis.Vectorize.pp_report r
      | Some _ | None -> ())
    (Analysis.Vectorize.analyze st);

  let baseline = Analysis.Static_cost.evaluate st in
  Printf.printf "\nbaseline: %d vector loops, casting penalty %.0f\n" baseline.vector_loops
    baseline.penalty;

  (* screen candidate assignments *)
  let screen label asg =
    let prog' = Transform.Rewrite.apply st asg in
    let st' = Fortran.Symtab.build prog' in
    let v = Analysis.Static_cost.evaluate st' in
    let graph = Analysis.Flowgraph.build st' in
    let violations = Analysis.Flowgraph.violations graph in
    let rejected =
      Analysis.Static_cost.predicts_worse ~baseline ~candidate:v
        ~penalty_budget:Core.Config.default.Core.Config.static_penalty_budget
    in
    Printf.printf "%-34s vec loops %2d  mismatched edges %3d  penalty %10.0f  -> %s\n" label
      v.vector_loops (List.length violations) v.penalty
      (if rejected then "REJECT statically" else "evaluate dynamically");
    match violations with
    | e :: _ -> Format.printf "    e.g. %a@." Analysis.Flowgraph.pp_edge e
    | [] -> ()
  in
  screen "baseline (all 64-bit)" (Transform.Assignment.original atoms);
  screen "uniform 32-bit" (Transform.Assignment.uniform atoms Fortran.Ast.K4);
  let arrays, scalars =
    List.partition (fun a -> a.Transform.Assignment.a_is_array) atoms
  in
  screen "arrays lowered, scalars kept" (Transform.Assignment.of_lowered atoms ~lowered:arrays);
  screen "scalars lowered, arrays kept" (Transform.Assignment.of_lowered atoms ~lowered:scalars);
  let half = List.filteri (fun i _ -> i mod 2 = 0) atoms in
  screen "alternate atoms lowered" (Transform.Assignment.of_lowered atoms ~lowered:half)
