(* Quickstart: tune the funarc motivating example end to end.

   This walks the paper's Sec. II-B example through the public API:
   parse the program, build the search space, explore all 2^8 variants,
   and pick a mixed-precision variant from the optimal frontier.

     dune exec examples/quickstart.exe                                   *)

let () =
  (* 1. the target program: funarc, an arc-length computation *)
  let model = Models.Registry.funarc in
  print_endline "== target program ==";
  print_string model.Models.Registry.source;

  (* 2. one-time preprocessing: parse, profile the baseline, resolve the
        correctness threshold (Fig. 1's entry) *)
  let prepared = Core.Tuner.prepare model in
  Printf.printf "\nsearch space: %d FP variable declarations (the atoms):\n  %s\n"
    (List.length prepared.Core.Tuner.atoms)
    (String.concat ", " (List.map Transform.Assignment.atom_id prepared.Core.Tuner.atoms));
  Printf.printf "baseline modeled cost: %.0f units; error threshold: %.2g\n"
    prepared.Core.Tuner.baseline_cost prepared.Core.Tuner.threshold;

  (* 3. explore the whole 2^8 design space *)
  let campaign = Core.Tuner.run_brute_force model in
  Printf.printf "\nexplored %d variants\n" campaign.Core.Tuner.summary.Search.Variant.total;

  (* 4. the speedup-error trade-off (Fig. 2) *)
  print_string (Core.Report.figure2 campaign);

  (* 5. pick the frontier variant within the error budget and show its
        source diff (Fig. 3) *)
  print_string (Core.Report.figure3 campaign ~error_budget:prepared.Core.Tuner.threshold)
