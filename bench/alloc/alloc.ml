(* Microbenchmark for the compiled backend: minor words and wall time
   per loop iteration for isolated statement shapes. Allocation counts
   are deterministic, so this is the measurement to trust when the
   machine's timing is noisy; the guiding budget is ~2 words/iteration
   for straight-line statements (the loop counter's Vint beyond the
   small-int cache) and ~10-60 words per procedure call. *)
let build src =
  let prog = Fortran.Parser.parse src in
  let st = Fortran.Symtab.build prog in
  ignore (Fortran.Typecheck.check_program st);
  let machine = Core.Config.default.Core.Config.machine in
  let ir = Runtime.Lower.lower ~machine st in
  Runtime.Compile.compile ir

let probe label iters src =
  let t = build src in
  ignore (Runtime.Compile.run t);
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  ignore (Runtime.Compile.run t);
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  Printf.printf "%-28s %6.2f w/iter  %7.1f ns/iter\n" label
    (dw /. float_of_int iters) (1e9 *. dt /. float_of_int iters)

(* body runs 100 * 10000 = 1e6 times; init (10k) is 1% noise *)
let tmpl body =
  Printf.sprintf {|
module m
contains
  subroutine k(a, b, n)
    integer :: n, i, rep, rep2
    real(kind=8), dimension(n) :: a, b
    real(kind=8) :: x, x2
    x = 0.5d0
    do rep = 1, 100
    do i = 2, n
%s
    end do
    end do
  end subroutine k
  subroutine s0()
  end subroutine s0
  subroutine s2(u, v)
    real(kind=8) :: u, v
    u = v
  end subroutine s2
  real(kind=8) function f1(v)
    real(kind=8) :: v
    f1 = v
  end function f1
  real(kind=8) function f0()
    f0 = 1.0d0
  end function f0
  subroutine s1r(u)
    real(kind=8) :: u
  end subroutine s1r
  subroutine s1v(u)
    real(kind=8), intent(in) :: u
  end subroutine s1v
  subroutine sa(arr, m)
    integer :: m
    real(kind=8), dimension(m) :: arr
    arr(1) = arr(2)
  end subroutine sa
end module m
program p
  use m
  integer, parameter :: n = 10000
  real(kind=8), dimension(n) :: a, b
  integer :: j
  do j = 1, n
    a(j) = 1.0d0 + j * 1.0d-7
    b(j) = 2.0d0
  end do
  call k(a, b, n)
end program p
|} body

let () =
  let iters = 100 * 9999 in
  probe "truly empty" iters (tmpl "");
  probe "scalar self-assign" iters (tmpl "      x = x");
  probe "arr store a(i)=b(i)" iters (tmpl "      a(i) = b(i)");
  probe "arr fma" iters (tmpl "      a(i) = a(i-1) * 1.0000001d0 + b(i)");
  probe "scalar assign x=b(i)" iters (tmpl "      x = b(i)");
  probe "scalar arith x=x*c+d" iters (tmpl "      x = x * 1.0000001d0 + 0.5d0");
  probe "if-compare" iters (tmpl "      if (b(i) > 1.0d0) then\n      x = x\n      end if");
  probe "sqrt" iters (tmpl "      a(i) = sqrt(b(i))");
  probe "min2" iters (tmpl "      a(i) = min(a(i), b(i))");
  probe "atan2" iters (tmpl "      a(i) = atan2(a(i), b(i))");
  probe "pow" iters (tmpl "      a(i) = b(i) ** 2");
  probe "int mod" iters (tmpl "      if (mod(i, 2) == 0) then\n      x = x\n      end if");
  probe "nested do" (100*9999*4) (tmpl "      do rep2 = 1, 4\n      x2 = x\n      end do");
  probe "exit-check loop" iters (tmpl "      if (b(i) > 9.9d9) then\n      exit\n      end if");
  probe "call sub0" iters (tmpl "      call s0()");
  probe "call sub2(x, b(i))" iters (tmpl "      call s2(x, b(i))");
  probe "call fn y=f1(b(i))" iters (tmpl "      x = f1(b(i))");
  probe "call sub arr" iters (tmpl "      call sa(a, n)");
  probe "fn0 x=f0()" iters (tmpl "      x = f0()");
  probe "sub var-arg" iters (tmpl "      call s1r(x)");
  probe "sub lit-arg" iters (tmpl "      call s1v(1.5d0)");
  probe "sub elem-arg" iters (tmpl "      call s1v(b(i))")
