(* Per-model profiling harness: ms and minor words per evaluation on
   the compiled and lowered backends (usage: profile.exe MODEL [N]),
   followed by per-variant pipeline phase timings with warm caches —
   the configuration a search campaign actually runs. *)
let () =
  let name = try Sys.argv.(1) with _ -> "mpas" in
  let n = try int_of_string Sys.argv.(2) with _ -> 100 in
  let model = Models.Registry.find name in
  let p = Core.Tuner.prepare model in
  let asg = Transform.Assignment.uniform p.Core.Tuner.atoms Fortran.Ast.K8 in
  let st = p.Core.Tuner.st in
  let machine = Core.Config.default.Core.Config.machine in
  let ir = Runtime.Lower.lower ~machine st in
  let t = Runtime.Compile.compile ir in
  (* warmup *)
  ignore (Runtime.Compile.run t);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do ignore (Runtime.Compile.run t) done;
  let dt = Unix.gettimeofday () -. t0 in
  let w0 = Gc.minor_words () in
  ignore (Runtime.Compile.run t);
  let alloc = Gc.minor_words () -. w0 in
  Printf.printf "compiled: %.3f ms/eval, %.0f minor words/eval\n" (1000.0 *. dt /. float_of_int n) alloc;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do ignore (Runtime.Lower.run ir) done;
  let dt = Unix.gettimeofday () -. t0 in
  let w0 = Gc.minor_words () in
  ignore (Runtime.Lower.run ir);
  let alloc = Gc.minor_words () -. w0 in
  Printf.printf "lowered:  %.3f ms/eval, %.0f minor words/eval\n" (1000.0 *. dt /. float_of_int n) alloc;
  (* per-variant pipeline phase costs (all-hit caches, like a search) *)
  let cache = Runtime.Lower.Cache.create () in
  let ccache = Runtime.Compile.Cache.create () in
  let phase label f =
    let x = f () in
    let t0 = Unix.gettimeofday () in
    let m = max 1 (n / 4) in
    for _ = 1 to m do ignore (f ()) done;
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "%-10s %.3f ms\n" label (1000.0 *. dt /. float_of_int m);
    x
  in
  let prog' = phase "rewrite" (fun () -> Transform.Rewrite.apply st asg) in
  let w = phase "wrappers" (fun () -> Transform.Wrappers.insert prog') in
  let st' = phase "symtab" (fun () -> Fortran.Symtab.build w.Transform.Wrappers.program) in
  ignore (phase "typecheck" (fun () -> Fortran.Typecheck.check_program st'));
  let ir' =
    phase "lower" (fun () ->
        Runtime.Lower.lower ~cache ~machine
          ~wrapper_owner:(Transform.Wrappers.owner_fn w) st')
  in
  ignore (phase "compile" (fun () -> Runtime.Compile.compile ~cache:ccache ir'))
