(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, prints the artifact-appendix validation checks, runs
   the Sec.-V ablations, and finishes with Bechamel micro-benchmarks of the
   pipeline stages behind each table/figure.

   Usage:
     main.exe                 run everything
     main.exe --table 1       only Table I (and II with --table 2)
     main.exe --figure 5      only that figure (2, 3, 5, 6, 7)
     main.exe --checks        only the validation checklists
     main.exe --ablation      only the ablations
     main.exe --bechamel      only the micro-benchmarks
     main.exe --quick         small workloads everywhere (CI mode)
     main.exe --workers N     evaluation worker domains (0 = sequential;
                              default: cores - 1); results are identical
                              across N, only wall clock changes
     main.exe --seed N        base seed for the injected run-to-run noise
                              (default 42); printed in the header and in
                              any regression-guard failure so every run
                              is reproducible
     main.exe --json PATH     write per-campaign wall clock, evaluation
                              counts, per-evaluation mean/max ms and
                              summaries as JSON (forces the five
                              campaigns)
     main.exe --check-against PATH
                              compare per-campaign wall clock and
                              per-evaluation mean against a committed
                              baseline JSON and exit non-zero on a >2x
                              regression of either (forces the campaigns)
     main.exe --no-compile    evaluate variants with the IR-walking
                              evaluator instead of the closure-compiled
                              backend (results are identical, only slower)
     main.exe --verify-roundtrip
                              cross-check every evaluation's direct-AST
                              fast path against the unparse->reparse
                              pipeline (slow; aborts on any mismatch)
     main.exe --kill-resume   journal determinism check: run a campaign
                              uninterrupted, run it again with an
                              injected preemption ("kill"), resume from
                              the journal, and require record-for-record
                              and summary-identical results with zero
                              re-evaluations of the journaled prefix
     main.exe --shards S      run the sharded campaigns (mpas_whole,
                              mpas_joint) on the work-stealing shard
                              scheduler with S simulated node-shards;
                              results are identical, only the simulated
                              makespan accounting is added
     main.exe --predict       predictive-search comparison: every
                              delta-debug campaign (five models +
                              mpas_joint) at --predict off/rank/prune;
                              requires rank's minimal set bit-identical
                              to off's everywhere, >=25% fewer dynamic
                              evaluations to the minimal set on >=3
                              campaigns, and (exhaustively, on the
                              funarc 2^8 space) that prune at the
                              default margin never skips a variant
                              that would pass; emitted into --json as
                              the "predict" section
     main.exe --scaling       shards x workers scaling curve on the
                              whole-model campaign: run the same search
                              at (1,0) (2,2) (2,4) (4,4), require every
                              point bit-identical in records and summary,
                              require >= 2x simulated-makespan improvement
                              at 4x4 over 1x0, and emit the curve into
                              the --json trajectory
     main.exe --fleet         cross-campaign dedup check: K=3 identical
                              campaigns multiplexed through the service
                              scheduler with the shared evaluation memo;
                              requires every job's journal (shared
                              provenance lines stripped), minimal set and
                              summary (trace line stripped) byte-identical
                              to a solo run, and >= 40% fewer fleet-wide
                              fresh evaluations than 3 solo runs; emitted
                              into --json as the "fleet" section          *)

let pf = Printf.printf

type selection = {
  mutable tables : int list;
  mutable figures : int list;
  mutable checks : bool;
  mutable ablation : bool;
  mutable bechamel : bool;
  mutable all : bool;
  mutable quick : bool;
  mutable workers : int option;
  mutable seed : int;
  mutable json : string option;
  mutable check_against : string option;
  mutable verify_roundtrip : bool;
  mutable no_compile : bool;
  mutable kill_resume : bool;
  mutable shards : int option;
  mutable scaling : bool;
  mutable predict_check : bool;
  mutable fleet : bool;
}

let parse_args () =
  let sel =
    { tables = []; figures = []; checks = false; ablation = false; bechamel = false; all = true;
      quick = false; workers = None; seed = Core.Config.default.Core.Config.seed;
      json = None; check_against = None; verify_roundtrip = false; no_compile = false;
      kill_resume = false; shards = None; scaling = false; predict_check = false;
      fleet = false }
  in
  let rec go = function
    | [] -> ()
    | "--table" :: n :: rest ->
      sel.tables <- int_of_string n :: sel.tables;
      sel.all <- false;
      go rest
    | "--figure" :: n :: rest ->
      sel.figures <- int_of_string n :: sel.figures;
      sel.all <- false;
      go rest
    | "--checks" :: rest ->
      sel.checks <- true;
      sel.all <- false;
      go rest
    | "--ablation" :: rest ->
      sel.ablation <- true;
      sel.all <- false;
      go rest
    | "--bechamel" :: rest ->
      sel.bechamel <- true;
      sel.all <- false;
      go rest
    | "--quick" :: rest ->
      sel.quick <- true;
      go rest
    | "--workers" :: n :: rest ->
      sel.workers <- Some (int_of_string n);
      go rest
    | "--seed" :: n :: rest ->
      sel.seed <- int_of_string n;
      go rest
    | "--json" :: path :: rest ->
      sel.json <- Some path;
      sel.all <- false;  (* `--json` alone = the five campaigns, no extras *)
      go rest
    | "--check-against" :: path :: rest ->
      sel.check_against <- Some path;
      sel.all <- false;
      go rest
    | "--verify-roundtrip" :: rest ->
      sel.verify_roundtrip <- true;
      go rest
    | "--no-compile" :: rest ->
      sel.no_compile <- true;
      go rest
    | "--kill-resume" :: rest ->
      sel.kill_resume <- true;
      sel.all <- false;
      go rest
    | "--shards" :: n :: rest ->
      sel.shards <- Some (int_of_string n);
      go rest
    | "--scaling" :: rest ->
      sel.scaling <- true;
      sel.all <- false;
      go rest
    | "--predict" :: rest ->
      sel.predict_check <- true;
      sel.all <- false;
      go rest
    | "--fleet" :: rest ->
      sel.fleet <- true;
      sel.all <- false;
      go rest
    | arg :: _ -> failwith ("unknown argument " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  sel

let want_table sel n = sel.all || List.mem n sel.tables
let want_figure sel n = sel.all || List.mem n sel.figures

(* ------------------------------------------------------------------ *)
(* Bench-regression guard: compare per-campaign wall clock and
   per-evaluation mean against a committed BENCH_*.json baseline.      *)

(* minimal scan for the {"name": ..., "wall_seconds": ..., ...,
   "eval_ms_mean": ...} triples written by [Core.Export.bench_json];
   no JSON dependency needed.  eval_ms_mean is optional so baselines
   recorded before it existed still parse, and a malformed entry is
   skipped (reported by name when one was read) rather than aborting
   the whole guard.  The scan keys on those three substrings only, so
   baselines gain new fields (e.g. the summary trace line's "shared"
   counter, or a "fleet" section) without breaking older readers. *)
let baseline_walls path =
  let s =
    try
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      pf "bench-regression guard: cannot read baseline %s (%s); skipping the guard\n%!" path msg;
      ""
  in
  let find pat from =
    let n = String.length s and m = String.length pat in
    let rec go i = if i + m > n then None else if String.sub s i m = pat then Some (i + m) else go (i + 1) in
    go from
  in
  let number from =
    let l = ref from in
    while !l < String.length s && String.contains "0123456789.eE+-" s.[!l] do incr l done;
    if !l = from then None
    else
      match float_of_string_opt (String.sub s from (!l - from)) with
      | Some v -> Some (v, !l)
      | None -> None
  in
  let rec scan from acc malformed =
    match find "{\"name\": \"" from with
    | None -> (List.rev acc, List.rev malformed)
    | Some i -> (
      match String.index_from_opt s i '"' with
      | None -> (List.rev acc, List.rev malformed)
      | Some j -> (
        let name = String.sub s i (j - i) in
        (* stay inside this entry: the next {"name": ... opens the next one *)
        let bound =
          match find "{\"name\": \"" j with Some b -> b | None -> String.length s
        in
        match
          Option.bind (find "\"wall_seconds\": " j) (fun k ->
              if k < bound then number k else None)
        with
        | None ->
          (* an entry without a parseable wall clock predates the
             bench_json format (or is damaged): skip it, keep scanning *)
          scan (max j (bound - 10)) acc (name :: malformed)
        | Some (wall, l) ->
          (* eval_ms_mean precedes the embedded summary, so the first
             occurrence after wall_seconds — if it lies before the next
             entry — belongs to this campaign *)
          let eval_ms, l =
            match find "\"eval_ms_mean\": " l with
            | Some k when k < bound -> (
              match number k with
              | Some (v, l') -> (Some v, l')
              | None -> (None, l) (* "null" *))
            | _ -> (None, l)
          in
          scan l ((name, (wall, eval_ms)) :: acc) malformed))
  in
  scan 0 [] []

let check_against ~seed path entries =
  let baseline, malformed = baseline_walls path in
  if malformed <> [] then
    pf "bench-regression guard: skipping malformed baseline entries: %s\n%!"
      (String.concat ", " malformed);
  if baseline = [] then
    pf
      "bench-regression guard: no parseable campaign entries in %s (baseline predates the \
       bench_json format?); skipping the guard\n%!"
      path
  else begin
    let skipped_missing = ref [] and skipped_eval = ref [] in
    let slowdowns =
      List.concat_map
        (fun (name, wall, (c : Core.Tuner.campaign)) ->
          match List.assoc_opt name baseline with
          | None ->
            skipped_missing := name :: !skipped_missing;
            []
          | Some (base_wall, base_eval) ->
            let wall_bad =
              if base_wall > 0.0 && wall > 2.0 *. base_wall then
                [ Printf.sprintf "  %s: %.2fs vs baseline %.2fs (%.1fx slower)" name wall
                    base_wall (wall /. base_wall) ]
              else []
            in
            let eval_bad =
              let ms = c.Core.Tuner.eval_ms_mean in
              match base_eval with
              | None ->
                skipped_eval := name :: !skipped_eval;
                []
              | Some base when base > 0.0 && ms > 2.0 *. base ->
                [ Printf.sprintf "  %s: eval_ms_mean %.3fms vs baseline %.3fms (%.1fx slower)"
                    name ms base (ms /. base) ]
              | Some _ -> []
            in
            wall_bad @ eval_bad)
        entries
    in
    if !skipped_missing <> [] then
      pf "bench-regression guard: campaigns not in the baseline, skipped: %s\n%!"
        (String.concat ", " (List.rev !skipped_missing));
    if !skipped_eval <> [] then
      pf
        "bench-regression guard: baseline predates eval_ms_mean, per-evaluation check \
         skipped for: %s\n%!"
        (String.concat ", " (List.rev !skipped_eval));
    if slowdowns = [] then
      pf "bench-regression guard: all compared campaigns within 2x of %s\n%!" path
    else begin
      pf "bench-regression guard FAILED against %s (seed=%d):\n%s\n%!" path seed
        (String.concat "\n" slowdowns);
      exit 1
    end
  end

(* ------------------------------------------------------------------ *)
(* The campaigns (computed lazily so partial selections stay cheap)    *)

let wall_clocks : (string, float) Hashtbl.t = Hashtbl.create 8

let timed ?key label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Option.iter (fun k -> Hashtbl.replace wall_clocks k dt) key;
  pf "  [%s: %.1fs]\n%!" label dt;
  r

let rec main () =
  let sel = parse_args () in
  let config =
    let c =
      if sel.quick then { Core.Config.default with Core.Config.max_variants = Some 40 }
      else Core.Config.default
    in
    { c with
      Core.Config.verify_roundtrip = sel.verify_roundtrip;
      seed = sel.seed;
      compile = not sel.no_compile;
    }
  in
  let workers = sel.workers in
  let funarc =
    lazy (timed ~key:"funarc" "funarc brute force" (fun () -> Core.Experiments.funarc_campaign ~config ()))
  in
  let mpas =
    lazy
      (timed ~key:"mpas" "MPAS-A search" (fun () ->
           Core.Experiments.hotspot_campaign ~config ?workers "mpas"))
  in
  let adcirc =
    lazy
      (timed ~key:"adcirc" "ADCIRC search" (fun () ->
           Core.Experiments.hotspot_campaign ~config ?workers "adcirc"))
  in
  let mom6 =
    lazy
      (timed ~key:"mom6" "MOM6 search" (fun () ->
           Core.Experiments.hotspot_campaign ~config ?workers "mom6"))
  in
  let shards = sel.shards in
  let mpas_whole =
    lazy
      (timed ~key:"mpas_whole" "MPAS-A whole-model search" (fun () ->
           Core.Experiments.whole_model_campaign ~config ?workers ?shards ()))
  in
  let mpas_joint =
    lazy
      (timed ~key:"mpas_joint" "MPAS-A joint multi-hotspot search" (fun () ->
           Core.Experiments.joint_campaign ~config ?workers ?shards ()))
  in
  let hotspot_campaigns () = [ Lazy.force mpas; Lazy.force adcirc; Lazy.force mom6 ] in

  pf "prose-ml benchmark harness — reproduction of the SC'24 FPPT case study\n";
  pf "=======================================================================\n";
  pf "seed %d\n\n" sel.seed;

  if want_table sel 1 then begin
    pf "%s\n" (Core.Report.table1 (hotspot_campaigns ()));
    List.iter (fun c -> pf "%s" (Core.Report.campaign_header c)) (hotspot_campaigns ());
    pf "\n"
  end;
  if want_table sel 2 then begin
    pf "%s\n" (Core.Report.table2 (hotspot_campaigns ()))
  end;
  if want_figure sel 2 then pf "%s\n" (Core.Report.figure2 (Lazy.force funarc));
  if want_figure sel 3 then
    pf "%s\n"
      (Core.Report.figure3 (Lazy.force funarc)
         ~error_budget:
           (match Models.Registry.funarc.Models.Registry.threshold with
           | Models.Registry.Fixed f -> f
           | Models.Registry.From_uniform32 _ -> 4.0e-4));
  if want_figure sel 5 then
    List.iter (fun c -> pf "%s\n" (Core.Report.figure5 c)) (hotspot_campaigns ());
  if want_figure sel 6 then
    List.iter (fun c -> pf "%s\n" (Core.Report.figure6 c)) (hotspot_campaigns ());
  if want_figure sel 7 then pf "%s\n" (Core.Report.figure7 (Lazy.force mpas_whole));

  if sel.all || sel.checks then begin
    pf "VALIDATION CHECKS (paper artifact appendix criteria)\n";
    pf "funarc (Sec. II-B):\n%s" (Core.Checks.render (Core.Checks.funarc (Lazy.force funarc)));
    pf "MPAS-A + Sec. IV-B:\n%s"
      (Core.Checks.render (Core.Checks.mpas_hotspot (Lazy.force mpas)));
    pf "ADCIRC + Sec. IV-B:\n%s"
      (Core.Checks.render (Core.Checks.adcirc_hotspot (Lazy.force adcirc)));
    pf "MOM6 + Sec. IV-B:\n%s"
      (Core.Checks.render (Core.Checks.mom6_hotspot (Lazy.force mom6)));
    pf "MPAS-A + Sec. IV-C:\n%s\n"
      (Core.Checks.render (Core.Checks.mpas_whole_model (Lazy.force mpas_whole)))
  end;

  if sel.all || sel.ablation then begin
    pf "%s\n"
      (Core.Experiments.render_ablation (timed "ablation: static filter" (fun () ->
           Core.Experiments.ablation_static_filter ~config ())));
    pf "%s\n"
      (Core.Experiments.render_ablation (timed "ablation: no SIMD" (fun () ->
           Core.Experiments.ablation_no_simd ~config ())));
    pf "%s\n"
      (Core.Experiments.render_ablation (timed "ablation: search strategy" (fun () ->
           Core.Experiments.ablation_search ~config ())));
    pf "%s\n"
      (Core.Experiments.render_ablation (timed "ablation: clustered search" (fun () ->
           Core.Experiments.ablation_hierarchical ~config ())));
    (* the [42]-style static performance predictor, trained on each
       campaign's own exploration: plenty of samples on the funarc
       brute-force space, sample-starved on a 21-variant search — which is
       exactly the premise of learning-based variant filtering *)
    (* the Sec.-I contrast: a hotspot-dominated proxy app tunes trivially *)
    (let c = timed "contrast: LULESH proxy app" (fun () ->
         Core.Tuner.run_delta_debug ~config Models.Registry.lulesh)
     in
     let s = c.Core.Tuner.summary in
     pf
       "CONTRAST CASE (Sec. I): LULESH proxy app — %d variants, pass %.0f%%, best %.2fx, \
        hotspot %.0f%% of CPU\n\
       \  The canonical FPPT cycle succeeds immediately on hotspot-dominated mini-apps;\n\
       \  the pathologies of Table II only appear at weather/climate-model structure.\n\n"
       s.Search.Variant.total s.Search.Variant.pass_pct s.Search.Variant.best_speedup
       (100.0
       *. c.Core.Tuner.prepared.Core.Tuner.baseline_hotspot
       /. c.Core.Tuner.prepared.Core.Tuner.baseline_cost));
    pf "ABLATION: static speedup prediction (Wang & Rubio-Gonzalez direction, Sec. V)\n";
    pf "  features: %s\n" (String.concat ", " Core.Predictor.feature_names);
    List.iter
      (fun c ->
        let name =
          (Lazy.force c).Core.Tuner.prepared.Core.Tuner.model.Models.Registry.title
        in
        match
          Core.Predictor.holdout_report (Lazy.force c).Core.Tuner.prepared
            (Lazy.force c).Core.Tuner.records
        with
        | Some (train_r2, test_r2, n_test) ->
          pf "  %-8s train R^2 %5.2f, held-out R^2 %5.2f (%d variants held out)\n" name train_r2
            test_r2 n_test
        | None -> pf "  %-8s too few samples to fit\n" name)
      [ funarc; mpas; mom6 ];
    pf "\n"
  end;

  if sel.all || sel.bechamel then bechamel_suite ();
  if sel.kill_resume then kill_resume_suite ~config ?workers ();
  let scaling = if sel.scaling then Some (scaling_suite ~config ()) else None in
  let predict =
    if sel.predict_check || sel.json <> None then
      Some (predict_suite ~config ?workers ())
    else None
  in
  let fleet = if sel.fleet || sel.json <> None then Some (fleet_suite ()) else None in

  (* perf trajectory: per-campaign wall clock + evaluation counts (forces
     the six campaigns, so `--json` or `--check-against` alone is a
     meaningful selection) *)
  if sel.json <> None || sel.check_against <> None then begin
    let effective =
      match sel.workers with Some w -> w | None -> Core.Tuner.default_workers ()
    in
    let entries =
      List.map
        (fun (key, c) ->
          let c = Lazy.force c in
          (key, Option.value ~default:0.0 (Hashtbl.find_opt wall_clocks key), c))
        [ ("funarc", funarc); ("mpas", mpas); ("adcirc", adcirc); ("mom6", mom6);
          ("mpas_whole", mpas_whole); ("mpas_joint", mpas_joint) ]
    in
    Option.iter
      (fun path ->
        Core.Export.write_file ~path
          (Core.Export.bench_json ?scaling ?predict ?fleet ~workers:effective entries);
        pf "wrote %s\n%!" path)
      sel.json;
    Option.iter (fun path -> check_against ~seed:sel.seed path entries) sel.check_against
  end

(* ------------------------------------------------------------------ *)
(* Kill-and-resume determinism check: the journal's headline invariant.
   An uninterrupted campaign and one preempted mid-search ("killed" with
   its journal intact) then resumed must agree record for record and in
   the summary, with the journaled prefix served entirely from cache.   *)

and kill_resume_suite ~config ?workers () =
  pf "KILL-AND-RESUME DETERMINISM CHECK\n";
  let failures = ref 0 in
  let key_of (r : Search.Variant.record) =
    (r.Search.Variant.index, Transform.Assignment.signature r.Search.Variant.asg,
     r.Search.Variant.meas)
  in
  let fresh_dir =
    let n = ref 0 in
    fun () ->
      incr n;
      Printf.sprintf "%s/prose_kill_resume_%d_%d" (Filename.get_temp_dir_name ())
        (Unix.getpid ()) !n
  in
  let rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let check name ~boundary
      (run :
        ?journal:string * Core.Cluster.Faults.spec ->
        ?resume:string ->
        unit ->
        Core.Tuner.campaign) =
    let base = timed (name ^ " uninterrupted") (fun () -> run ?journal:None ?resume:None ()) in
    let dir = fresh_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let faults =
      { Core.Cluster.Faults.none with Core.Cluster.Faults.preempt_at_hours = Some boundary }
    in
    let killed =
      timed (name ^ " preempted") (fun () -> run ~journal:(dir, faults) ?resume:None ())
    in
    if not killed.Core.Tuner.interrupted then begin
      pf "  FAIL %s: the preemption boundary (%.3f h) never fired\n" name boundary;
      incr failures
    end
    else begin
      let resumed = timed (name ^ " resumed") (fun () -> run ?journal:None ~resume:dir ()) in
      let ok_records =
        compare (List.map key_of base.Core.Tuner.records)
          (List.map key_of resumed.Core.Tuner.records)
        = 0
      in
      let ok_summary = compare base.Core.Tuner.summary resumed.Core.Tuner.summary = 0 in
      let ok_hours =
        compare base.Core.Tuner.simulated_hours resumed.Core.Tuner.simulated_hours = 0
      in
      let ok_fresh =
        resumed.Core.Tuner.trace_stats.Search.Trace.misses
        = List.length resumed.Core.Tuner.records - resumed.Core.Tuner.preloaded
      in
      if ok_records && ok_summary && ok_hours && ok_fresh then
        pf "  OK   %s: %d records (%d journaled before the kill, %d fresh after resume)\n" name
          (List.length resumed.Core.Tuner.records)
          resumed.Core.Tuner.preloaded
          resumed.Core.Tuner.trace_stats.Search.Trace.misses
      else begin
        pf "  FAIL %s: records %b, summary %b, hours %b, zero-reeval %b\n" name ok_records
          ok_summary ok_hours ok_fresh;
        incr failures
      end
    end
  in
  check "funarc brute force" ~boundary:0.05 (fun ?journal ?resume () ->
      match resume with
      | Some dir -> Core.Tuner.resume ~config ~journal:dir ()
      | None -> (
        match journal with
        | Some (dir, faults) -> Core.Tuner.run_brute_force ~config ~journal:dir ~faults Models.Registry.funarc
        | None -> Core.Tuner.run_brute_force ~config Models.Registry.funarc));
  check "MPAS-A delta debug" ~boundary:0.05 (fun ?journal ?resume () ->
      match resume with
      | Some dir -> Core.Tuner.resume ~config ?workers ~journal:dir ()
      | None -> (
        match journal with
        | Some (dir, faults) ->
          Core.Tuner.run_delta_debug ~config ?workers ~journal:dir ~faults Models.Registry.mpas
        | None -> Core.Tuner.run_delta_debug ~config ?workers Models.Registry.mpas));
  if !failures > 0 then begin
    pf "kill-and-resume check FAILED (%d)\n%!" !failures;
    exit 1
  end
  else pf "kill-and-resume check passed\n%!"

(* ------------------------------------------------------------------ *)
(* Predictive-search comparison: every delta-debug campaign at --predict
   off / rank / prune.  rank must reproduce off's minimal set bit for
   bit everywhere (it only reorders the trajectory) and reach it with
   >= 25% fewer dynamic evaluations on at least 3 of the 6 campaigns;
   prune, checked exhaustively on the funarc 2^8 space at the default
   margin, must never skip a variant that would dynamically pass.      *)

and predict_suite ~config ?workers () =
  pf "PREDICTIVE SEARCH COMPARISON (static error-amplification steering, lib/sensitivity)\n";
  (* the suite runs at its own fixed bench seed and with the variant
     budget lifted: the savings figures are part of the published
     comparison, so they must not drift with the CLI --seed (which keeps
     steering the rest of the harness), and the longest off-mode
     trajectory must not be truncated mid-search *)
  let config =
    { config with Core.Config.seed = 99; max_variants = Some 100_000 }
  in
  let is_static (r : Search.Variant.record) =
    let d = r.Search.Variant.meas.Search.Variant.detail in
    String.length d >= 6 && String.sub d 0 6 = "static"
  in
  let dynamic_evals c =
    List.length (List.filter (fun r -> not (is_static r)) c.Core.Tuner.records)
  in
  let pruned_count (c : Core.Tuner.campaign) =
    List.length
      (List.filter
         (fun (r : Search.Variant.record) ->
           let d = r.Search.Variant.meas.Search.Variant.detail in
           String.length d >= 8 && String.sub d 0 8 = "static: ")
         c.Core.Tuner.records)
  in
  let minimal_sig (c : Core.Tuner.campaign) =
    Option.map
      (fun m -> Transform.Assignment.signature m.Search.Delta_debug.minimal)
      c.Core.Tuner.minimal
  in
  (* dynamic evaluations spent before the search first lands on the
     variant it will declare minimal (statically pruned records are free) *)
  let evals_to_minimal (c : Core.Tuner.campaign) =
    match minimal_sig c with
    | None -> dynamic_evals c
    | Some target ->
      let rec go n = function
        | [] -> n
        | (r : Search.Variant.record) :: rest ->
          let n = if is_static r then n else n + 1 in
          if Transform.Assignment.signature r.Search.Variant.asg = target then n else go n rest
      in
      go 0 c.Core.Tuner.records
  in
  let runners =
    [
      ("funarc", fun cfg -> Core.Tuner.run_delta_debug ~config:cfg Models.Registry.funarc);
      ("mpas", fun cfg -> Core.Experiments.hotspot_campaign ~config:cfg ?workers "mpas");
      ("adcirc", fun cfg -> Core.Experiments.hotspot_campaign ~config:cfg ?workers "adcirc");
      ("mom6", fun cfg -> Core.Experiments.hotspot_campaign ~config:cfg ?workers "mom6");
      ("lulesh", fun cfg -> Core.Experiments.hotspot_campaign ~config:cfg ?workers "lulesh");
      ("mpas_joint", fun cfg -> Core.Experiments.joint_campaign ~config:cfg ?workers ());
    ]
  in
  let failures = ref 0 in
  let improved = ref 0 in
  let points =
    List.concat_map
      (fun (name, run) ->
        let mode m = { config with Core.Config.predict = m } in
        let off = timed (name ^ " predict=off") (fun () -> run (mode Core.Config.Predict_off)) in
        let rank =
          timed (name ^ " predict=rank") (fun () -> run (mode Core.Config.Predict_rank))
        in
        let prune =
          timed (name ^ " predict=prune") (fun () -> run (mode Core.Config.Predict_prune))
        in
        let off_sig = minimal_sig off in
        let point m (c : Core.Tuner.campaign) =
          {
            Core.Export.pr_campaign = name;
            pr_mode = m;
            pr_evals_to_minimal = evals_to_minimal c;
            pr_dynamic_evals = dynamic_evals c;
            pr_pruned = pruned_count c;
            pr_sim_hours = c.Core.Tuner.simulated_hours;
            pr_sim_hours_saved = off.Core.Tuner.simulated_hours -. c.Core.Tuner.simulated_hours;
            pr_minimal_identical = minimal_sig c = off_sig;
          }
        in
        let p_off = point "off" off and p_rank = point "rank" rank
        and p_prune = point "prune" prune in
        List.iter
          (fun p ->
            pf "  %-10s %-5s %3d evals to minimal / %3d dynamic, %2d pruned, %7.3f sim h \
                (saved %7.3f), minimal %s\n"
              name p.Core.Export.pr_mode p.Core.Export.pr_evals_to_minimal
              p.Core.Export.pr_dynamic_evals p.Core.Export.pr_pruned p.Core.Export.pr_sim_hours
              p.Core.Export.pr_sim_hours_saved
              (if p.Core.Export.pr_minimal_identical then "identical" else "DIFFERENT"))
          [ p_off; p_rank; p_prune ];
        if not p_rank.Core.Export.pr_minimal_identical then begin
          pf "  FAIL %s: rank's minimal set differs from off's\n" name;
          incr failures
        end;
        if
          float_of_int p_rank.Core.Export.pr_evals_to_minimal
          <= 0.75 *. float_of_int p_off.Core.Export.pr_evals_to_minimal
        then incr improved;
        [ p_off; p_rank; p_prune ])
      runners
  in
  pf "  rank saved >=25%% of evaluations-to-minimal on %d of %d campaigns\n" !improved
    (List.length runners);
  if !improved < 3 then begin
    pf "  FAIL: expected >=25%% savings on at least 3 campaigns\n";
    incr failures
  end;
  (* exhaustive prune-safety check on the funarc 2^8 space: at the default
     margin, no variant that dynamically passes may be pruned *)
  let brute =
    timed "funarc exhaustive prune safety" (fun () ->
        Core.Tuner.run_brute_force ~config Models.Registry.funarc)
  in
  let prepared =
    Core.Tuner.prepare ~config:{ config with Core.Config.predict = Core.Config.Predict_prune }
      Models.Registry.funarc
  in
  (match prepared.Core.Tuner.scorer with
  | None ->
    pf "  FAIL funarc: the static analysis declined the program (no scorer)\n";
    incr failures
  | Some sc ->
    let wrong =
      List.filter
        (fun (r : Search.Variant.record) ->
          r.Search.Variant.meas.Search.Variant.status = Search.Variant.Pass
          && Sensitivity.Score.prune sc r.Search.Variant.asg)
        brute.Core.Tuner.records
    in
    let passers =
      List.length
        (List.filter
           (fun (r : Search.Variant.record) ->
             r.Search.Variant.meas.Search.Variant.status = Search.Variant.Pass)
           brute.Core.Tuner.records)
    in
    if wrong = [] then
      pf "  prune safety: 0 of %d passing variants would be pruned at the default margin\n"
        passers
    else begin
      pf "  FAIL funarc: %d passing variant(s) would be statically pruned\n" (List.length wrong);
      incr failures
    end);
  if !failures > 0 then begin
    pf "predictive-search check FAILED (%d)\n%!" !failures;
    exit 1
  end
  else pf "predictive-search check passed\n%!";
  points

(* ------------------------------------------------------------------ *)
(* Shard-scheduler scaling curve: the same whole-model campaign at
   several shards x workers points.  Every point must agree record for
   record and summary-bit-identically with the sequential (1, 0) point
   — sharding is an execution strategy, not part of the experiment —
   and the simulated work-stealing makespan at 4x4 must beat the
   sequential makespan by at least 2x.                                 *)

and scaling_suite ~config () =
  pf "SHARD-SCHEDULER SCALING CURVE (mpas whole-model, simulated cluster makespan)\n";
  let grid = [ (1, 0); (2, 2); (2, 4); (4, 4) ] in
  let key_of (r : Search.Variant.record) =
    (r.Search.Variant.index, Transform.Assignment.signature r.Search.Variant.asg,
     r.Search.Variant.meas)
  in
  let runs =
    List.map
      (fun (s, w) ->
        let c =
          timed (Printf.sprintf "mpas_whole shards=%d workers=%d" s w) (fun () ->
              Core.Experiments.whole_model_campaign ~config ~workers:w ~shards:s ())
        in
        ((s, w), c))
      grid
  in
  let base = snd (List.hd runs) in
  let base_summary = Core.Export.summary_json base in
  let base_keys = List.map key_of base.Core.Tuner.records in
  let failures = ref 0 in
  let sim_of (c : Core.Tuner.campaign) =
    match c.Core.Tuner.sched with
    | Some s -> s.Core.Tuner.sched_sim_hours
    | None -> nan
  in
  let base_sim = sim_of base in
  List.iter
    (fun ((s, w), (c : Core.Tuner.campaign)) ->
      let ok_records = List.map key_of c.Core.Tuner.records = base_keys in
      let ok_summary = Core.Export.summary_json c = base_summary in
      let sim = sim_of c in
      let speedup = base_sim /. sim in
      let st = Option.get c.Core.Tuner.sched in
      pf "  %dx%d: %2d slots, simulated %.3f h (%.2fx vs 1x0), %d steals, %d rounds, %d+%d evals\n"
        s w st.Core.Tuner.sched_slots sim speedup st.Core.Tuner.sched_steals
        st.Core.Tuner.sched_rounds st.Core.Tuner.sched_batched st.Core.Tuner.sched_serial;
      if not (ok_records && ok_summary) then begin
        pf "  FAIL %dx%d: records identical %b, summary identical %b\n" s w ok_records ok_summary;
        incr failures
      end;
      if (s, w) = (4, 4) && not (speedup >= 2.0) then begin
        pf "  FAIL 4x4: simulated speedup %.2fx < 2x over the sequential 1x0 point\n" speedup;
        incr failures
      end)
    runs;
  if !failures > 0 then begin
    pf "scaling check FAILED (%d)\n%!" !failures;
    exit 1
  end
  else pf "scaling check passed: every point bit-identical, >= 2x simulated speedup at 4x4\n%!";
  List.filter_map (fun (_, (c : Core.Tuner.campaign)) -> c.Core.Tuner.sched) runs

(* ------------------------------------------------------------------ *)
(* Fleet-dedup check: K identical campaigns multiplexed through the
   service scheduler with the cross-campaign evaluation memo.  Each
   job's journal (shared provenance lines stripped), minimal set and
   summary (trace line stripped) must be byte-identical to a solo run
   of the same campaign, and the fleet-wide count of fresh dynamic
   evaluations must undercut K solo runs by at least 40% — the memo
   turns the duplicated work into journaled, provenance-annotated
   replays.                                                            *)

and fleet_suite () =
  pf "FLEET DEDUP CHECK (shared cross-campaign evaluation memo)\n";
  let k = 3 in
  (* the suite runs at the jobs' own spec-derived config (the memo keys
     on the config digest), so the CLI --seed steering the rest of the
     harness does not move these published numbers *)
  let spec =
    {
      Service.Job.sp_model = "funarc";
      sp_algo = "delta_debug";
      sp_seed = 42;
      sp_workers = 0;
      sp_max_variants = None;
      sp_whole_model = false;
      sp_quota_hours = None;
      sp_faults = None;
      sp_tenant = "bench";
      sp_priority = 1;
    }
  in
  let config = Service.Job.config_of_spec spec in
  let tmp =
    Printf.sprintf "%s/prose_fleet_%d" (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  let rec rm_rf dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then rm_rf p else Sys.remove p)
        (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  Fun.protect ~finally:(fun () -> if Sys.getenv_opt "PROSE_FLEET_KEEP" = None then rm_rf tmp) @@ fun () ->
  let slurp path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let strip sub s =
    String.split_on_char '\n' s
    |> List.filter (fun l ->
           let n = String.length sub and m = String.length l in
           let rec at i = i + n <= m && (String.sub l i n = sub || at (i + 1)) in
           not (at 0))
    |> String.concat "\n"
  in
  (* solo baseline (journaled): all K jobs are identical, so one solo run
     stands in for all three *)
  let solo_dir = Filename.concat tmp "solo" in
  Unix.mkdir solo_dir 0o755;
  let solo =
    timed "funarc solo (journaled)" (fun () ->
        Core.Tuner.run_delta_debug ~config ~journal:solo_dir Models.Registry.funarc)
  in
  let solo_misses = solo.Core.Tuner.trace_stats.Search.Trace.misses in
  let solo_journal = slurp (Persist.Journal.file ~dir:solo_dir) in
  let solo_summary = strip "\"trace\"" (Core.Export.summary_json solo) in
  let solo_minimal =
    Option.map (fun r -> Service.Sched.minimal_text solo r) solo.Core.Tuner.minimal
  in
  (* the fleet: K identical jobs, round-robin slices, shared memo *)
  let root = Filename.concat tmp "fleet" in
  Unix.mkdir root 0o755;
  let store = Service.Store.open_ ~root in
  let memo = Service.Memo.create () in
  let sched = Service.Sched.create ~slice_records:8 ~memo ~find_model:Models.Registry.find store in
  let ids =
    List.init k (fun _ ->
        match Service.Store.submit store ~find_model:Models.Registry.find spec with
        | Ok j -> j.Service.Job.id
        | Error m -> failwith ("fleet submit rejected: " ^ m))
  in
  let fleet_misses = ref 0 and fleet_shared = ref 0 in
  timed "funarc fleet (3 jobs, shared memo)" (fun () ->
      let rec go () =
        match Service.Sched.step sched with
        | Service.Sched.Idle -> ()
        | Service.Sched.Sliced { si_fresh; si_shared; _ } ->
          fleet_misses := !fleet_misses + si_fresh;
          fleet_shared := !fleet_shared + si_shared;
          go ()
      in
      go ());
  let failures = ref 0 in
  let identical =
    List.for_all
      (fun id ->
        let dir = Service.Store.campaign_dir store id in
        let journal = strip "\"kind\":\"shared\"" (slurp (Persist.Journal.file ~dir)) in
        let summary = strip "\"trace\"" (slurp (Service.Store.summary_file store id)) in
        let minimal =
          let p = Service.Store.minimal_file store id in
          if Sys.file_exists p then Some (slurp p) else None
        in
        let ok =
          journal = solo_journal && summary = solo_summary && minimal = solo_minimal
        in
        if not ok then
          pf "  FAIL %s: journal identical %b, summary identical %b, minimal identical %b\n" id
            (journal = solo_journal) (summary = solo_summary) (minimal = solo_minimal);
        ok)
      ids
  in
  if not identical then incr failures;
  let solo_fleet = k * solo_misses in
  let saved_pct =
    if solo_fleet = 0 then 0.0
    else 100.0 *. (1.0 -. (float_of_int !fleet_misses /. float_of_int solo_fleet))
  in
  pf "  %d jobs: %d fresh evaluations fleet-wide vs %d for %d solo runs (%d memo-shared, \
      %.0f%% saved)\n"
    k !fleet_misses solo_fleet k !fleet_shared saved_pct;
  if saved_pct < 40.0 then begin
    pf "  FAIL: expected >= 40%% fewer fresh evaluations than %d solo runs\n" k;
    incr failures
  end;
  if !failures > 0 then begin
    pf "fleet-dedup check FAILED (%d)\n%!" !failures;
    exit 1
  end
  else pf "fleet-dedup check passed: every job byte-identical to solo, %.0f%% saved\n%!" saved_pct;
  [
    {
      Core.Export.fl_jobs = k;
      fl_solo_misses = solo_fleet;
      fl_fleet_misses = !fleet_misses;
      fl_fleet_shared = !fleet_shared;
      fl_saved_pct = saved_pct;
      fl_identical = identical;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per table/figure, measuring the
   pipeline stage that regenerates it, on small workloads.             *)

and bechamel_suite () =
  let open Bechamel in
  pf "BECHAMEL MICRO-BENCHMARKS (pipeline stages behind each table/figure)\n";
  (* small-model fixtures *)
  let small_mpas =
    { Models.Registry.mpas with Models.Registry.source = Models.Mpas.source ~p:Models.Mpas.small () }
  in
  let small_adcirc =
    { Models.Registry.adcirc with
      Models.Registry.source = Models.Adcirc.source ~p:Models.Adcirc.small () }
  in
  let small_mom6 =
    { Models.Registry.mom6 with Models.Registry.source = Models.Mom6.source ~p:Models.Mom6.small () }
  in
  let funarc_small =
    { Models.Registry.funarc with Models.Registry.source = Models.Funarc.source ~n:100 () }
  in
  let prep m = Core.Tuner.prepare m in
  let p_funarc = prep funarc_small in
  let p_mpas = prep small_mpas in
  let p_adcirc = prep small_adcirc in
  let p_mom6 = prep small_mom6 in
  let lowered_half (p : Core.Tuner.prepared) =
    let atoms = p.Core.Tuner.atoms in
    let half = List.filteri (fun i _ -> i mod 2 = 0) atoms in
    Transform.Assignment.of_lowered atoms ~lowered:half
  in
  let prog_mpas = Fortran.Symtab.program p_mpas.Core.Tuner.st in
  let text_mpas = Fortran.Unparse.program prog_mpas in
  let tests =
    [
      (* Table I: profiling a baseline run with GPTL-style timers *)
      Test.make ~name:"table1/baseline-profile-mpas"
        (Staged.stage (fun () -> ignore (Runtime.Interp.run p_mpas.Core.Tuner.st)));
      (* Table II: one full variant evaluation per model *)
      Test.make ~name:"table2/variant-eval-mpas"
        (Staged.stage (fun () -> ignore (Core.Tuner.evaluate p_mpas (lowered_half p_mpas))));
      Test.make ~name:"table2/variant-eval-adcirc"
        (Staged.stage (fun () -> ignore (Core.Tuner.evaluate p_adcirc (lowered_half p_adcirc))));
      Test.make ~name:"table2/variant-eval-mom6"
        (Staged.stage (fun () -> ignore (Core.Tuner.evaluate p_mom6 (lowered_half p_mom6))));
      (* Figure 2: one funarc brute-force point *)
      Test.make ~name:"figure2/variant-eval-funarc"
        (Staged.stage (fun () -> ignore (Core.Tuner.evaluate p_funarc (lowered_half p_funarc))));
      (* Figure 3: transformation + wrapper insertion + diff *)
      Test.make ~name:"figure3/transform-and-diff"
        (Staged.stage (fun () ->
             let asg = lowered_half p_funarc in
             let prog' = Transform.Rewrite.apply p_funarc.Core.Tuner.st asg in
             let w = Transform.Wrappers.insert prog' in
             ignore (Transform.Diff.declarations p_funarc.Core.Tuner.st asg);
             ignore w));
      (* Figures 5/7: the search step (one delta-debug oracle call) *)
      Test.make ~name:"figure5/oracle-call-mpas"
        (Staged.stage (fun () ->
             ignore
               (Search.Delta_debug.accepted
                  { Search.Delta_debug.error_threshold = p_mpas.Core.Tuner.threshold;
                    perf_floor = 0.95 }
                  (Core.Tuner.evaluate p_mpas (lowered_half p_mpas)))));
      (* Figure 6: per-procedure timer attribution *)
      Test.make ~name:"figure6/timer-snapshot"
        (Staged.stage (fun () ->
             let out = Runtime.Interp.run p_adcirc.Core.Tuner.st in
             ignore (Runtime.Timers.inclusive_of out.Runtime.Interp.timers "jcg")));
      (* frontend stages used everywhere *)
      Test.make ~name:"frontend/parse-mpas"
        (Staged.stage (fun () -> ignore (Fortran.Parser.parse ~file:"b.f90" text_mpas)));
      Test.make ~name:"frontend/typecheck-mpas"
        (Staged.stage (fun () -> Fortran.Typecheck.check_program p_mpas.Core.Tuner.st));
      Test.make ~name:"analysis/vectorize-mpas"
        (Staged.stage (fun () -> ignore (Analysis.Vectorize.analyze p_mpas.Core.Tuner.st)));
      Test.make ~name:"analysis/flowgraph-mpas"
        (Staged.stage (fun () -> ignore (Analysis.Flowgraph.build p_mpas.Core.Tuner.st)));
    ]
  in
  let grouped = Test.make_grouped ~name:"prose" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      pf "  %-40s %12.0f ns/run\n" name ns)
    (List.sort compare rows)

let () = main ()
