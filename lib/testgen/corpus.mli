(** Replayable counterexample corpus.

    An entry is a pair of files in the corpus directory:

    - [<name>.f90] — the (minimized) program text, replayable by hand
      with any Fortran tooling;
    - [<name>.repro] — a sidecar with the oracle that failed, the
      provenance of the case ([seed=… case=…]), and the lowered-atom
      list of the precision assignment, one [key: value] line each.

    [dune runtest] replays every entry through all oracles
    (see [test/test_corpus.ml]), so a checked-in bug stays fixed. *)

type entry = {
  name : string;  (** file stem, e.g. [fz_equiv_s42_c17] *)
  case : Gen.case;
  oracle : string;  (** name of the oracle that failed at capture time *)
  origin : string;  (** provenance, e.g. ["seed=42 case=17"] *)
}

val save : dir:string -> entry -> string
(** Write (or overwrite) the entry's two files, creating [dir] if
    needed; returns the path of the [.f90] file. *)

val load : dir:string -> entry list
(** All entries in [dir], sorted by name; an absent directory is an
    empty corpus. Raises [Failure] on a [.f90] without a [.repro]
    sidecar or a malformed sidecar. *)
