(** Generator of well-typed random Fortran-90 subset programs.

    Every generated program is a module ([mfz]) of declarations, kinds,
    module variables and procedures with calls, plus a main program that
    uses it — drawn from the same grammar the frontend supports
    (declarations with initializers and attributes, counted and while
    loops, conditionals, [select case], intrinsics from
    {!Fortran.Builtins}, MPI stand-ins). The construction is typed: every
    expression is generated at a requested type, every call site matches
    its callee's dummy kinds and shapes, loop counters are reserved names
    the rest of the program cannot touch — so
    {!Fortran.Typecheck.check_program} accepts every output by
    construction, and any rejection is a frontend bug, not generator
    noise.

    Termination is structural (counted loops with literal bounds, while
    loops over reserved monotone counters), but the execution oracles
    additionally run under a cost budget, so even a minimizer-mangled
    program cannot hang the harness.

    Generators are plain [Random.State.t -> 'a] functions, i.e.
    {!QCheck.Gen.t} values: a case is reproduced exactly by seeding the
    state from [(seed, index)]. *)

type case = {
  source : string;
      (** canonical program text: [unparse (parse (unparse ast))] *)
  lowered : string list;
      (** {!Transform.Assignment.atom_id}s assigned [real(kind=4)]; the
          remaining atoms keep their declared kind *)
}

val module_name : string
(** The generated module's name ([mfz]); the search space of a case is
    {!Transform.Assignment.atoms_of_module} over it. *)

val program : Fortran.Ast.program QCheck.Gen.t
(** Raw generated AST (fresh ids are not assigned; callers normally want
    {!case}, which round-trips through the parser). *)

val case : case QCheck.Gen.t
(** A canonicalized program plus a random precision assignment over its
    module atoms. *)

val case_at : seed:int -> index:int -> case
(** The deterministic case stream: [case] run on a state seeded from
    [(seed, index)]. *)

val assignment_of :
  Fortran.Symtab.t -> string list -> Transform.Assignment.t
(** Reconstruct the precision assignment of a case from its [lowered]
    atom-id list (unknown ids are ignored, so a minimized program with
    fewer atoms still replays). *)
