open Fortran

type id = Roundtrip | Typecheck | Rewrite | Equiv | Compiled | Sensitivity

type violation = {
  oracle : id;
  detail : string;
}

let all = [ Roundtrip; Typecheck; Rewrite; Equiv; Compiled; Sensitivity ]

let name = function
  | Roundtrip -> "roundtrip"
  | Typecheck -> "typecheck"
  | Rewrite -> "rewrite"
  | Equiv -> "equiv"
  | Compiled -> "compiled"
  | Sensitivity -> "sensitivity"

let of_name s =
  match String.lowercase_ascii s with
  | "roundtrip" -> Some Roundtrip
  | "typecheck" -> Some Typecheck
  | "rewrite" -> Some Rewrite
  | "equiv" -> Some Equiv
  | "compiled" -> Some Compiled
  | "sensitivity" -> Some Sensitivity
  | _ -> None

let budget = 1e6

let machine = Runtime.Machine.default

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys) else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
    | [], [] -> None
  in
  go 1 (la, lb)

(* The wrapped variant shared by the rewrite and equiv oracles. *)
let transform (c : Gen.case) =
  let st = Symtab.build (Parser.parse ~file:"fuzz.f90" c.Gen.source) in
  let asg = Gen.assignment_of st c.Gen.lowered in
  let rewritten = Transform.Rewrite.apply st asg in
  let w = Transform.Wrappers.insert rewritten in
  (st, asg, rewritten, w)

let check_roundtrip (c : Gen.case) =
  let prog = Parser.parse ~file:"fuzz.f90" c.Gen.source in
  let text = Unparse.program prog in
  if String.equal text c.Gen.source then []
  else
    let detail =
      match first_diff c.Gen.source text with
      | Some (i, a, b) ->
        Printf.sprintf "unparse(parse(src)) <> src at line %d: %S vs %S" i a b
      | None -> "texts differ only in length"
    in
    [ { oracle = Roundtrip; detail } ]

let check_typecheck (c : Gen.case) =
  let st = Symtab.build (Parser.parse ~file:"fuzz.f90" c.Gen.source) in
  match Typecheck.check_program st with
  | exception Typecheck.Error { message; _ } ->
    [
      {
        oracle = Typecheck;
        detail = Printf.sprintf "generated program rejected: %s" message;
      };
    ]
  | () -> (
    let text = Unparse.program (Symtab.program st) in
    let st2 = Symtab.build (Parser.parse ~file:"fuzz_rt.f90" text) in
    match Typecheck.check_program st2 with
    | exception Typecheck.Error { message; _ } ->
      [
        {
          oracle = Typecheck;
          detail = Printf.sprintf "accepted before round trip, rejected after: %s" message;
        };
      ]
    | () -> [])

let check_rewrite (c : Gen.case) =
  let st, asg, _, w = transform c in
  let atoms = Transform.Assignment.atoms_of_module st Gen.module_name in
  let st_rw = Symtab.build w.Transform.Wrappers.program in
  let decl_violations =
    List.filter_map
      (fun (a : Transform.Assignment.atom) ->
        let want = Transform.Assignment.kind_of asg a in
        let got =
          List.find_opt
            (fun (v : Symtab.var_info) -> String.equal v.Symtab.v_name a.Transform.Assignment.a_name)
            (Symtab.vars_of_scope st_rw a.Transform.Assignment.a_scope)
        in
        match got with
        | None ->
          Some
            {
              oracle = Rewrite;
              detail =
                Printf.sprintf "atom %s lost its declaration after rewrite"
                  (Transform.Assignment.atom_id a);
            }
        | Some v when v.Symtab.v_base <> Ast.Treal want ->
          Some
            {
              oracle = Rewrite;
              detail =
                Printf.sprintf "atom %s assigned real(%d) but declared %s after rewrite"
                  (Transform.Assignment.atom_id a)
                  (match want with Ast.K4 -> 4 | Ast.K8 -> 8)
                  (Ast.string_of_base_type v.Symtab.v_base);
            }
        | Some _ -> None)
      atoms
  in
  let site_violations =
    match Typecheck.mismatches st_rw with
    | [] -> (
      match Typecheck.check_program st_rw with
      | exception Typecheck.Error { message; _ } ->
        [
          {
            oracle = Rewrite;
            detail = Printf.sprintf "wrapped variant fails typecheck: %s" message;
          };
        ]
      | () -> [])
    | ms ->
      [
        {
          oracle = Rewrite;
          detail =
            Printf.sprintf "%d kind mismatch(es) survive wrapper insertion; first: %s arg %d"
              (List.length ms)
              (List.hd ms).Typecheck.mm_callee
              (List.hd ms).Typecheck.mm_arg_index;
        };
      ]
  in
  decl_violations @ site_violations

let pp_outcome (o : Runtime.Interp.outcome) =
  Format.asprintf "%a cost=%.17g records=%d printed=%d timers=%d"
    Runtime.Interp.pp_status o.Runtime.Interp.status o.Runtime.Interp.cost
    (List.length o.Runtime.Interp.records)
    (List.length o.Runtime.Interp.printed)
    (List.length o.Runtime.Interp.timers)

let check_equiv (c : Gen.case) =
  let _, _, _, w = transform c in
  let owner = Transform.Wrappers.owner_fn w in
  (* reference: the historical unparse→reparse round trip, tree-walked *)
  let text = Unparse.program w.Transform.Wrappers.program in
  let st_rt = Symtab.build (Parser.parse ~file:"fuzz_variant.f90" text) in
  let ref_out = Runtime.Interp.run ~machine ~budget ~wrapper_owner:owner st_rt in
  (* fast path: lowered directly from the transformed AST *)
  let st_d = Symtab.build w.Transform.Wrappers.program in
  let fast_out =
    Runtime.Lower.run ~budget (Runtime.Lower.lower ~wrapper_owner:owner ~machine st_d)
  in
  if compare ref_out fast_out = 0 then []
  else
    [
      {
        oracle = Equiv;
        detail =
          Printf.sprintf "interp: %s / lower: %s" (pp_outcome ref_out) (pp_outcome fast_out);
      };
    ]

(* Three-way bit-identity: the tree-walker on the unparse→reparse round
   trip, the slot-resolved evaluator, and the closure-compiled backend
   must produce the same outcome on the same wrapped variant. *)
let check_compiled (c : Gen.case) =
  let _, _, _, w = transform c in
  let owner = Transform.Wrappers.owner_fn w in
  let text = Unparse.program w.Transform.Wrappers.program in
  let st_rt = Symtab.build (Parser.parse ~file:"fuzz_variant.f90" text) in
  let ref_out = Runtime.Interp.run ~machine ~budget ~wrapper_owner:owner st_rt in
  let st_d = Symtab.build w.Transform.Wrappers.program in
  let lowered = Runtime.Lower.lower ~wrapper_owner:owner ~machine st_d in
  let lower_out = Runtime.Lower.run ~budget lowered in
  let compiled_out = Runtime.Compile.run ~budget (Runtime.Compile.compile lowered) in
  if compare ref_out lower_out = 0 && compare lower_out compiled_out = 0 then []
  else
    [
      {
        oracle = Compiled;
        detail =
          Printf.sprintf "interp: %s / lower: %s / compiled: %s" (pp_outcome ref_out)
            (pp_outcome lower_out) (pp_outcome compiled_out);
      };
    ]

(* Soundness of the error-amplification analysis: for every demotable
   atom the mirror did NOT poison, the static per-atom bound must cover
   the observed deviation of that atom's singleton-demotion variant —
   sample by sample, against the actual rewrite→wrapper→run pipeline the
   tuner uses. A poisoned atom makes no claim (its sound bound is
   infinite); a timed-out variant makes no claim (the mirror does not
   model cost). The mirror must also finish whenever the interpreter
   does, with a bit-identical output series. *)
let check_sensitivity (c : Gen.case) =
  let st = Symtab.build (Parser.parse ~file:"fuzz.f90" c.Gen.source) in
  let atoms = Transform.Assignment.atoms_of_module st Gen.module_name in
  let base_out = Runtime.Lower.run ~budget (Runtime.Lower.lower ~machine st) in
  if base_out.Runtime.Interp.status <> Runtime.Interp.Finished then []
  else
    match Sensitivity.Absint.analyze ~atoms st with
    | None ->
      [
        {
          oracle = Sensitivity;
          detail = "mirror analysis failed on a program the interpreter finishes";
        };
      ]
    | Some r when r.Sensitivity.Absint.r_status <> Sensitivity.Absint.Finished ->
      [
        {
          oracle = Sensitivity;
          detail =
            "mirror did not finish on a program the interpreter finishes";
        };
      ]
    | Some r ->
      let base_records = base_out.Runtime.Interp.records in
      let samples = r.Sensitivity.Absint.r_samples in
      if
        List.length samples <> List.length base_records
        || not
             (List.for_all2
                (fun (s : Sensitivity.Absint.sample) (k, v) ->
                  String.equal s.Sensitivity.Absint.s_key k
                  && Int64.bits_of_float s.Sensitivity.Absint.s_value = Int64.bits_of_float v)
                samples base_records)
      then
        [
          {
            oracle = Sensitivity;
            detail = "mirror output series is not bit-identical to the interpreter's";
          };
        ]
      else begin
        let index_of = Sensitivity.Absint.atom_indices atoms in
        List.concat_map
          (fun (a : Transform.Assignment.atom) ->
            match
              Hashtbl.find_opt index_of (a.Transform.Assignment.a_scope, a.Transform.Assignment.a_name)
            with
            | None -> []  (* declared 32-bit: demotion is the identity *)
            | Some i when r.Sensitivity.Absint.r_poisoned.(i) -> []
            | Some i -> (
              let asg = Transform.Assignment.of_lowered atoms ~lowered:[ a ] in
              let rewritten = Transform.Rewrite.apply st asg in
              let w = Transform.Wrappers.insert rewritten in
              let owner = Transform.Wrappers.owner_fn w in
              let st_v = Symtab.build w.Transform.Wrappers.program in
              let out =
                Runtime.Lower.run ~budget:(budget *. 10.0)
                  (Runtime.Lower.lower ~wrapper_owner:owner ~machine st_v)
              in
              match out.Runtime.Interp.status with
              | Runtime.Interp.Timed_out -> []  (* cost is not modeled; no claim *)
              | Runtime.Interp.Finished ->
                let vrecords = out.Runtime.Interp.records in
                if List.length vrecords <> List.length base_records then
                  [
                    {
                      oracle = Sensitivity;
                      detail =
                        Printf.sprintf
                          "unpoisoned atom %s: singleton demotion changed the record count \
                           (%d vs %d)"
                          (Transform.Assignment.atom_id a)
                          (List.length vrecords) (List.length base_records);
                    };
                  ]
                else
                  List.concat
                    (List.map2
                       (fun (s : Sensitivity.Absint.sample) (k, v') ->
                         let bound =
                           Option.value ~default:0.0
                             (Sensitivity.Absint.IMap.find_opt i s.Sensitivity.Absint.s_err)
                         in
                         let dev = Float.abs (v' -. s.Sensitivity.Absint.s_value) in
                         if
                           String.equal s.Sensitivity.Absint.s_key k
                           && dev <= (bound *. (1.0 +. 1e-12)) +. 1e-300
                         then []
                         else
                           [
                             {
                               oracle = Sensitivity;
                               detail =
                                 Printf.sprintf
                                   "atom %s: observed deviation %.17g exceeds static bound \
                                    %.17g on sample '%s' (base %.17g, variant %.17g)"
                                   (Transform.Assignment.atom_id a)
                                   dev bound k s.Sensitivity.Absint.s_value v';
                             };
                           ])
                       samples vrecords)
              | _ ->
                [
                  {
                    oracle = Sensitivity;
                    detail =
                      Printf.sprintf
                        "unpoisoned atom %s: singleton demotion did not finish (%s)"
                        (Transform.Assignment.atom_id a)
                        (Format.asprintf "%a" Runtime.Interp.pp_status
                           out.Runtime.Interp.status);
                  };
                ]))
          atoms
      end

let guarded oracle f c =
  try f c
  with e ->
    [
      {
        oracle;
        detail = Printf.sprintf "unexpected exception: %s" (Printexc.to_string e);
      };
    ]

let check ~ids c =
  List.concat_map
    (fun oracle ->
      if not (List.mem oracle ids) then []
      else
        match oracle with
        | Roundtrip -> guarded Roundtrip check_roundtrip c
        | Typecheck -> guarded Typecheck check_typecheck c
        | Rewrite -> guarded Rewrite check_rewrite c
        | Equiv -> guarded Equiv check_equiv c
        | Compiled -> guarded Compiled check_compiled c
        | Sensitivity -> guarded Sensitivity check_sensitivity c)
    all
