(** Pipeline invariants checked on every generated case.

    Six oracles, each a whole-pipeline differential check:

    - {b roundtrip}: the canonical source is a fixpoint of
      unparse ∘ parse — pretty-printing what the parser read reproduces
      the text byte for byte.
    - {b typecheck}: {!Fortran.Typecheck.check_program} accepts the
      program (it is well-typed by construction), and still accepts it
      after an unparse→reparse round trip.
    - {b rewrite}: after {!Transform.Rewrite.apply} of the case's
      precision assignment, every search atom's declaration carries
      exactly its assigned kind, and {!Transform.Wrappers.insert} leaves
      a program with no kind mismatches that typechecks.
    - {b equiv}: {!Runtime.Interp.run} on the unparse→reparse round trip
      of the wrapped variant and {!Runtime.Lower.run} on its direct
      lowering produce bit-identical outcomes — status, cost, timers,
      records, printed lines and breakdown — under a fixed cost budget.
    - {b compiled}: three-way bit-identity — {!Runtime.Interp.run},
      {!Runtime.Lower.run} and {!Runtime.Compile.run} (the
      closure-compiled backend) all agree on the same wrapped variant,
      outcome for outcome.
    - {b sensitivity}: {!Sensitivity.Absint} soundness — the mirror
      analysis finishes with a bit-identical output series whenever the
      interpreter finishes, and for every atom it did not poison, the
      static per-atom error bound covers the observed deviation of that
      atom's singleton-demotion variant on every output sample (run
      through the same rewrite→wrapper→run pipeline the tuner uses).

    Unexpected exceptions anywhere in a check are themselves violations:
    a generated program may legally trap at runtime (both paths must
    agree on the trap), but the frontend and transformer must never
    raise on a well-typed input. *)

type id = Roundtrip | Typecheck | Rewrite | Equiv | Compiled | Sensitivity

type violation = {
  oracle : id;
  detail : string;  (** human-readable account of the disagreement *)
}

val all : id list
(** In pipeline order: roundtrip, typecheck, rewrite, equiv, compiled,
    sensitivity. *)

val name : id -> string
val of_name : string -> id option

val budget : float
(** Cost budget for the execution oracle — bounds every run, so even a
    diverging (minimizer-mangled) program terminates with [Timed_out]
    identically on both paths. *)

val check : ids:id list -> Gen.case -> violation list
(** Run the selected oracles on a case, in pipeline order. *)
