(* Typed random-program generation.

   Every helper generates at a requested type against an explicit
   environment of visible variables and callable procedures, so the
   output is well-typed by construction (see gen.mli). The module keeps
   name pools disjoint by prefix: module globals [g*]/[ga*], parameters
   [np]/[cf8], procedure dummies [a*], locals [v*]/[m*], loop counters
   [i1]/[i2], while-loop counters [w*], function results [res_]. *)

open Fortran

type case = {
  source : string;
  lowered : string list;
}

let module_name = "mfz"

(* ------------------------------------------------------------------ *)
(* Randomness helpers over the raw state (QCheck.Gen.t is exactly
   [Random.State.t -> 'a], so these compose with QCheck directly).      *)

let rint st n = if n <= 0 then 0 else Random.State.int st n
let range st lo hi = lo + rint st (hi - lo + 1)
let pick st l = List.nth l (rint st (List.length l))
let flip st p = Random.State.float st 1.0 < p

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type vinfo = {
  vn : string;
  base : Ast.base_type;
  dims : int list;  (* literal extents; [] = scalar *)
  writable : bool;  (* false: parameters, intent(in) dummies, loop vars *)
}

type proc_sig = {
  ps_name : string;
  ps_dummies : (string * Ast.base_type * int list * Ast.intent option) list;
  ps_result : Ast.base_type option;  (* None = subroutine *)
}

type env = {
  st : Random.State.t;
  vars : vinfo list;  (* innermost-first, deduped by name *)
  procs : proc_sig list;  (* procedures generated so far (no recursion) *)
  loops : (string * int) list;  (* active do variables with upper bounds *)
  free : string list;  (* loop variables not currently in use *)
  in_proc : bool;
  in_loop : bool;
  depth : int;  (* remaining block-nesting budget *)
}

(* while-loop counters, allocated per scope while its body is generated *)
type scope_state = { mutable counters : string list }

let alloc_counter st_ (s : scope_state) =
  ignore st_;
  if List.length s.counters >= 2 then None
  else begin
    let w = Printf.sprintf "w%d" (List.length s.counters + 1) in
    s.counters <- s.counters @ [ w ];
    Some w
  end

let dedupe vars =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v.vn then false
      else begin
        Hashtbl.add seen v.vn ();
        true
      end)
    vars

let scalars env pred = List.filter (fun v -> v.dims = [] && pred v) env.vars
let arrays env pred = List.filter (fun v -> v.dims <> [] && pred v) env.vars

let mk node = { Ast.node; loc = Loc.dummy }

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)

let lit_table =
  [ ("0.5", 0.5); ("1.5", 1.5); ("2.0", 2.0); ("0.25", 0.25); ("3.0", 3.0); ("1.0e-2", 0.01) ]

let real_lit_of (text4, v) k =
  match k with
  | Ast.K4 -> Ast.Real_lit { text = text4; value = v; kind = Ast.K4 }
  | Ast.K8 ->
    let text8 =
      if String.contains text4 'e' then
        String.map (fun c -> if c = 'e' then 'd' else c) text4
      else text4 ^ "d0"
    in
    Ast.Real_lit { text = text8; value = v; kind = Ast.K8 }

let real_lit st k = real_lit_of (pick st lit_table) k
let half_lit k = real_lit_of ("0.5", 0.5) k
let two_lit k = real_lit_of ("2.0", 2.0) k

(* ------------------------------------------------------------------ *)
(* Typed expression generation                                         *)

let rec gen_int env fuel : Ast.expr =
  let st = env.st in
  let leaf () =
    let vs = scalars env (fun v -> v.base = Ast.Tinteger) in
    if vs <> [] && flip st 0.5 then Ast.Var (pick st vs).vn else Ast.Int_lit (range st 0 9)
  in
  if fuel <= 0 then leaf ()
  else
    match rint st 10 with
    | 0 | 1 | 2 -> leaf ()
    | 3 ->
      Ast.Binop
        (pick st [ Ast.Add; Ast.Sub; Ast.Mul ], gen_int env (fuel - 1), gen_int env (fuel - 1))
    | 4 ->
      (* division and modulus with a non-zero denominator by construction *)
      let den =
        Ast.Binop (Ast.Add, Ast.Index ("abs", [ gen_int env (fuel - 1) ]), Ast.Int_lit 1)
      in
      let num = gen_int env (fuel - 1) in
      if flip st 0.5 then Ast.Binop (Ast.Div, num, den) else Ast.Index ("mod", [ num; den ])
    | 5 -> Ast.Index ("abs", [ gen_int env (fuel - 1) ])
    | 6 ->
      Ast.Index (pick st [ "min"; "max" ], [ gen_int env (fuel - 1); gen_int env (fuel - 1) ])
    | 7 ->
      Ast.Index
        (pick st [ "int"; "nint"; "floor" ], [ gen_real env (fuel - 1) (pick st [ Ast.K4; Ast.K8 ]) ])
    | 8 -> (
      match arrays env (fun _ -> true) with
      | [] -> leaf ()
      | arrs -> Ast.Index ("size", [ Ast.Var (pick st arrs).vn ]))
    | _ -> Ast.Binop (Ast.Pow, Ast.Int_lit (range st 0 3), Ast.Int_lit (range st 0 2))

and gen_real env fuel k : Ast.expr =
  let st = env.st in
  let leaf () =
    let vs = scalars env (fun v -> v.base = Ast.Treal k) in
    if vs <> [] && flip st 0.7 then Ast.Var (pick st vs).vn else real_lit st k
  in
  if fuel <= 0 then leaf ()
  else
    match rint st 14 with
    | 0 | 1 -> leaf ()
    | 2 | 3 -> (
      let op = pick st [ Ast.Add; Ast.Sub; Ast.Mul ] in
      let l = gen_real env (fuel - 1) k in
      let r =
        match k with
        | Ast.K8 -> (
          match rint st 3 with
          | 0 -> gen_real env (fuel - 1) Ast.K8
          | 1 -> gen_real env (fuel - 1) Ast.K4
          | _ -> gen_int env (fuel - 1))
        | Ast.K4 -> if flip st 0.3 then gen_int env (fuel - 1) else gen_real env (fuel - 1) Ast.K4
      in
      match flip st 0.5 with
      | true -> Ast.Binop (op, l, r)
      | false -> Ast.Binop (op, r, l))
    | 4 ->
      let num = gen_real env (fuel - 1) k in
      let den =
        Ast.Binop (Ast.Add, Ast.Index ("abs", [ gen_real env (fuel - 1) k ]), half_lit k)
      in
      Ast.Binop (Ast.Div, num, den)
    | 5 -> Ast.Unop (Ast.Neg, gen_real env (fuel - 1) k)
    | 6 -> Ast.Binop (Ast.Pow, gen_real env (fuel - 1) k, Ast.Int_lit (range st 0 2))
    | 7 -> (
      match rint st 4 with
      | 0 -> Ast.Index (pick st [ "sin"; "cos"; "tanh"; "atan" ], [ gen_real env (fuel - 1) k ])
      | 1 -> Ast.Index ("sqrt", [ Ast.Index ("abs", [ gen_real env (fuel - 1) k ]) ])
      | 2 ->
        Ast.Index
          ( "log",
            [ Ast.Binop (Ast.Add, Ast.Index ("abs", [ gen_real env (fuel - 1) k ]), half_lit k) ]
          )
      | _ -> Ast.Index ("exp", [ Ast.Index ("min", [ gen_real env (fuel - 1) k; two_lit k ]) ]))
    | 8 ->
      Ast.Index
        (pick st [ "min"; "max" ], [ gen_real env (fuel - 1) k; gen_real env (fuel - 1) k ])
    | 9 -> (
      match rint st 3 with
      | 0 -> Ast.Index ("sign", [ gen_real env (fuel - 1) k; gen_real env (fuel - 1) k ])
      | 1 -> Ast.Index ("atan2", [ gen_real env (fuel - 1) k; gen_real env (fuel - 1) k ])
      | _ ->
        Ast.Index
          ( "mod",
            [
              gen_real env (fuel - 1) k;
              Ast.Binop (Ast.Add, Ast.Index ("abs", [ gen_real env (fuel - 1) k ]), half_lit k);
            ] ))
    | 10 -> (
      match k with
      | Ast.K4 ->
        Ast.Index
          ( "real",
            [ (if flip st 0.5 then gen_real env (fuel - 1) Ast.K8 else gen_int env (fuel - 1)) ]
          )
      | Ast.K8 ->
        if flip st 0.5 then
          Ast.Index
            ( "dble",
              [ (if flip st 0.5 then gen_real env (fuel - 1) Ast.K4 else gen_int env (fuel - 1)) ]
            )
        else Ast.Index ("real", [ gen_real env (fuel - 1) Ast.K4; Ast.Int_lit 8 ])
    )
    | 11 -> (
      match arrays env (fun v -> v.base = Ast.Treal k) with
      | [] -> leaf ()
      | arrs ->
        let a = pick st arrs in
        Ast.Index (a.vn, List.map (fun d -> gen_index env (fuel - 1) d) a.dims))
    | 12 -> (
      match arrays env (fun v -> v.base = Ast.Treal k) with
      | [] -> leaf ()
      | arrs -> (
        let a = pick st arrs in
        match rint st 4 with
        | 0 -> Ast.Index ("sum", [ Ast.Var a.vn ])
        | 1 -> Ast.Index ("maxval", [ Ast.Var a.vn ])
        | 2 -> Ast.Index ("minval", [ Ast.Var a.vn ])
        | _ -> Ast.Index ("dot_product", [ Ast.Var a.vn; Ast.Var a.vn ])))
    | _ -> (
      match List.filter (fun p -> p.ps_result = Some (Ast.Treal k)) env.procs with
      | [] -> (
        match scalars env (fun v -> v.base = Ast.Treal k) with
        | [] -> leaf ()
        | vs -> Ast.Index (pick st [ "epsilon"; "tiny" ], [ Ast.Var (pick st vs).vn ]))
      | fs ->
        let p = pick st fs in
        Ast.Index (p.ps_name, List.map (gen_fun_actual env (fuel - 1)) p.ps_dummies))

and gen_logical env fuel : Ast.expr =
  let st = env.st in
  let leaf () =
    let vs = scalars env (fun v -> v.base = Ast.Tlogical) in
    if vs <> [] && flip st 0.6 then Ast.Var (pick st vs).vn else Ast.Logical_lit (flip st 0.5)
  in
  if fuel <= 0 then leaf ()
  else
    match rint st 8 with
    | 0 | 1 -> leaf ()
    | 2 | 3 | 4 -> (
      let cmp = pick st [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
      match rint st 3 with
      | 0 -> Ast.Binop (cmp, gen_int env (fuel - 1), gen_int env (fuel - 1))
      | 1 ->
        let k = pick st [ Ast.K4; Ast.K8 ] in
        Ast.Binop (cmp, gen_real env (fuel - 1) k, gen_real env (fuel - 1) k)
      | _ ->
        Ast.Binop
          ( cmp,
            gen_real env (fuel - 1) (pick st [ Ast.K4; Ast.K8 ]),
            gen_real env (fuel - 1) (pick st [ Ast.K4; Ast.K8 ]) ))
    | 5 ->
      Ast.Binop (pick st [ Ast.And; Ast.Or ], gen_logical env (fuel - 1), gen_logical env (fuel - 1))
    | 6 -> Ast.Unop (Ast.Not, gen_logical env (fuel - 1))
    | _ -> leaf ()

(* An always-in-bounds subscript for extent [d]. *)
and gen_index env fuel d : Ast.expr =
  let st = env.st in
  let fits = List.filter (fun (_, b) -> b <= d) env.loops in
  if fits <> [] && flip st 0.4 then Ast.Var (fst (pick st fits))
  else if flip st 0.75 then Ast.Int_lit (range st 1 d)
  else
    Ast.Binop
      ( Ast.Add,
        Ast.Int_lit 1,
        Ast.Index ("mod", [ Ast.Index ("abs", [ gen_int env fuel ]); Ast.Int_lit d ]) )

(* Function-call actuals: exact kind match for real dummies (argument
   association has no implicit conversion), whole arrays for array
   dummies. *)
and gen_fun_actual env fuel (_, base, dims, _) : Ast.expr =
  let st = env.st in
  match base, dims with
  | Ast.Treal dk, [] -> (
    match scalars env (fun v -> v.base = Ast.Treal dk) with
    | [] -> real_lit st dk
    | vs -> if flip st 0.3 then real_lit st dk else Ast.Var (pick st vs).vn)
  | Ast.Treal dk, _ -> (
    match arrays env (fun v -> v.base = Ast.Treal dk && v.dims = dims) with
    | [] -> assert false (* module arrays cover every generated dummy shape *)
    | vs -> Ast.Var (pick st vs).vn)
  | Ast.Tinteger, _ -> gen_int env fuel
  | Ast.Tlogical, _ -> gen_logical env fuel

(* Subroutine actuals additionally honor writability for out/inout. *)
let gen_actual env (dummy : string * Ast.base_type * int list * Ast.intent option) : Ast.expr =
  let st = env.st in
  let _, base, dims, intent = dummy in
  match base, dims, intent with
  | Ast.Treal dk, [], Some Ast.In ->
    if flip st 0.4 then gen_real env 2 dk else gen_fun_actual env 2 dummy
  | Ast.Treal dk, [], _ -> (
    match scalars env (fun v -> v.base = Ast.Treal dk && v.writable) with
    | [] -> real_lit st dk
    | ws -> Ast.Var (pick st ws).vn)
  | _ -> gen_fun_actual env 2 dummy

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec gen_stmt env sstate : Ast.stmt list =
  let st = env.st in
  let assign_scalar () =
    match scalars env (fun v -> v.writable) with
    | [] -> []
    | ws ->
      let v = pick st ws in
      let rhs =
        match v.base with
        | Ast.Treal k ->
          if flip st 0.75 then gen_real env 3 k
          else if flip st 0.5 then gen_real env 3 (if k = Ast.K4 then Ast.K8 else Ast.K4)
          else gen_int env 3
        | Ast.Tinteger ->
          if flip st 0.85 then gen_int env 3 else gen_real env 3 (pick st [ Ast.K4; Ast.K8 ])
        | Ast.Tlogical -> gen_logical env 3
      in
      [ mk (Ast.Assign (Ast.Lvar v.vn, rhs)) ]
  in
  let assign_elem () =
    match arrays env (fun v -> v.writable) with
    | [] -> assign_scalar ()
    | arrs ->
      let a = pick st arrs in
      let k = match a.base with Ast.Treal k -> k | Ast.Tinteger | Ast.Tlogical -> Ast.K8 in
      let idx = List.map (fun d -> gen_index env 2 d) a.dims in
      let rhs =
        if flip st 0.8 then gen_real env 3 k
        else gen_real env 3 (if k = Ast.K4 then Ast.K8 else Ast.K4)
      in
      [ mk (Ast.Assign (Ast.Lindex (a.vn, idx), rhs)) ]
  in
  let if_stmt () =
    let benv = { env with depth = env.depth - 1 } in
    let arms =
      List.init (range st 1 2) (fun _ -> (gen_logical env 2, gen_block benv sstate))
    in
    let els = if flip st 0.5 then gen_block benv sstate else [] in
    [ mk (Ast.If (arms, els)) ]
  in
  let do_stmt () =
    match env.free with
    | [] -> assign_scalar ()
    | v :: rest ->
      let to_, bound = if flip st 0.2 then (Ast.Var "np", 3) else
        let b = range st 2 4 in
        (Ast.Int_lit b, b)
      in
      let step = if flip st 0.3 then Some (Ast.Int_lit (pick st [ 1; 2 ])) else None in
      let benv =
        { env with
          free = rest;
          loops = (v, bound) :: env.loops;
          in_loop = true;
          depth = env.depth - 1;
        }
      in
      [ mk (Ast.Do { id = 0; var = v; from_ = Ast.Int_lit 1; to_; step; body = gen_block benv sstate }) ]
  in
  let while_stmt () =
    match alloc_counter st sstate with
    | None -> do_stmt ()
    | Some w ->
      let bound = range st 1 3 in
      let benv = { env with in_loop = true; depth = env.depth - 1 } in
      (* the counter increments first, so any [cycle] in the rest of the
         body cannot make the loop diverge *)
      let inc = mk (Ast.Assign (Ast.Lvar w, Ast.Binop (Ast.Add, Ast.Var w, Ast.Int_lit 1))) in
      let body = inc :: gen_block benv sstate in
      [ mk (Ast.Do_while { id = 0; cond = Ast.Binop (Ast.Lt, Ast.Var w, Ast.Int_lit bound); body }) ]
  in
  let select_stmt () =
    let benv = { env with depth = env.depth - 1 } in
    if flip st 0.8 then begin
      let selector = gen_int env 2 in
      let arms =
        List.init (range st 1 3) (fun _ ->
            let items =
              match rint st 4 with
              | 0 -> [ Ast.Case_value (Ast.Int_lit (range st 0 5)) ]
              | 1 ->
                [
                  Ast.Case_value (Ast.Int_lit (range st 0 3));
                  Ast.Case_value (Ast.Int_lit (range st 4 7));
                ]
              | 2 ->
                let lo = range st 0 4 in
                [ Ast.Case_range (Some (Ast.Int_lit lo), Some (Ast.Int_lit (lo + range st 0 3))) ]
              | _ ->
                [
                  (if flip st 0.5 then Ast.Case_range (None, Some (Ast.Int_lit 0))
                   else Ast.Case_range (Some (Ast.Int_lit 8), None));
                ]
            in
            (items, gen_block benv sstate))
      in
      let default = if flip st 0.6 then gen_block benv sstate else [] in
      [ mk (Ast.Select { selector; arms; default }) ]
    end
    else begin
      let selector = gen_logical env 2 in
      let arms = [ ([ Ast.Case_value (Ast.Logical_lit true) ], gen_block benv sstate) ] in
      let arms =
        if flip st 0.5 then
          arms @ [ ([ Ast.Case_value (Ast.Logical_lit false) ], gen_block benv sstate) ]
        else arms
      in
      let default = if flip st 0.4 then gen_block benv sstate else [] in
      [ mk (Ast.Select { selector; arms; default }) ]
    end
  in
  let call_stmt () =
    match List.filter (fun p -> p.ps_result = None) env.procs with
    | [] -> assign_scalar ()
    | subs ->
      let p = pick st subs in
      [ mk (Ast.Call (p.ps_name, List.map (gen_actual env) p.ps_dummies)) ]
  in
  let mpi_stmt () =
    if flip st 0.3 then [ mk (Ast.Call ("mpi_barrier", [])) ]
    else
      match scalars env (fun v -> v.writable && Ast.is_real v.base) with
      | [] -> []
      | ws ->
        let recv = pick st ws in
        let k = match recv.base with Ast.Treal k -> k | _ -> Ast.K8 in
        let send = gen_real env 2 (if flip st 0.7 then k else pick st [ Ast.K4; Ast.K8 ]) in
        [
          mk
            (Ast.Call
               ("mpi_allreduce", [ send; Ast.Var recv.vn; Ast.Str_lit (pick st [ "sum"; "max"; "min" ]) ]));
        ]
  in
  let print_stmt () =
    let key = pick st [ "k0"; "k1"; "k2"; "k3" ] in
    let n = range st 1 2 in
    let exprs =
      List.init n (fun _ ->
          if flip st 0.7 then gen_real env 2 (pick st [ Ast.K4; Ast.K8 ]) else gen_int env 2)
    in
    [ mk (Ast.Print_stmt (Ast.Str_lit key :: exprs)) ]
  in
  let exit_cycle () = [ mk (if flip st 0.5 then Ast.Exit_stmt else Ast.Cycle_stmt) ] in
  let candidates =
    [
      (12, assign_scalar);
      (6, assign_elem);
      (4, print_stmt);
      (2, mpi_stmt);
    ]
    @ (if env.depth > 0 then [ (4, if_stmt); (5, do_stmt); (3, while_stmt); (3, select_stmt) ] else [])
    @ (if env.procs <> [] then [ (5, call_stmt) ] else [])
    @ (if env.in_loop then [ (3, exit_cycle) ] else [])
    @ (if env.in_proc then [ (1, fun () -> [ mk Ast.Return_stmt ]) ] else [])
    @ (if (not env.in_proc) && not env.in_loop then [ (1, fun () -> [ mk (Ast.Stop_stmt (Some "fz")) ]) ] else [])
  in
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 candidates in
  let rec choose r = function
    | [] -> assign_scalar ()
    | (w, f) :: rest -> if r < w then f () else choose (r - w) rest
  in
  choose (rint st total) candidates

and gen_block env sstate : Ast.block =
  let n = range env.st 1 3 in
  List.concat (List.init n (fun _ -> gen_stmt env sstate))

let gen_body env sstate : Ast.block =
  let n = range env.st 2 5 in
  List.concat (List.init n (fun _ -> gen_stmt env sstate))

(* ------------------------------------------------------------------ *)
(* Declarations and program units                                      *)

let mk_decl ?(param = false) ?(intent = None) ?(dims = []) base names =
  { Ast.base; dims; parameter = param; intent; names; decl_loc = Loc.dummy }

(* Module skeleton: both real kinds at both scalar and array shapes are
   always present, so every call-site and expression generator has a
   matching variable available. *)
let gen_module_decls st =
  let maybe_init k p = if flip st p then Some (real_lit st k) else None in
  let scalar_group k names p_init =
    let entities = List.map (fun n -> (n, maybe_init k p_init)) names in
    if flip st 0.6 then [ mk_decl (Ast.Treal k) entities ]
    else List.map (fun e -> mk_decl (Ast.Treal k) [ e ]) entities
  in
  let arr name k d =
    let dim = if d = 3 && flip st 0.3 then Ast.Var "np" else Ast.Int_lit d in
    mk_decl (Ast.Treal k) ~dims:[ dim ] [ (name, None) ]
  in
  let decls =
    [ mk_decl Ast.Tinteger ~param:true [ ("np", Some (Ast.Int_lit 3)) ] ]
    @ (if flip st 0.5 then
         [ mk_decl (Ast.Treal Ast.K8) ~param:true [ ("cf8", Some (real_lit st Ast.K8)) ] ]
       else [])
    @ scalar_group Ast.K4 [ "g41"; "g42" ] 0.4
    @ scalar_group Ast.K8 [ "g81"; "g82" ] 0.4
    @ [
        mk_decl Ast.Tinteger [ ("gi1", if flip st 0.4 then Some (Ast.Int_lit (range st 0 5)) else None) ];
        mk_decl Ast.Tlogical [ ("gl1", if flip st 0.3 then Some (Ast.Logical_lit true) else None) ];
        arr "ga43" Ast.K4 3;
        arr "ga44" Ast.K4 4;
        arr "ga83" Ast.K8 3;
        arr "ga84" Ast.K8 4;
      ]
  in
  let vinfos =
    List.concat_map
      (fun (d : Ast.decl) ->
        List.map
          (fun (n, _) ->
            {
              vn = n;
              base = d.Ast.base;
              dims =
                List.map
                  (function Ast.Int_lit i -> i | _ -> 3 (* dimension(np) with np = 3 *))
                  d.Ast.dims;
              writable = not d.Ast.parameter;
            })
          d.Ast.names)
      decls
  in
  (decls, vinfos)

(* Locals for a procedure or the main body; [prefix] keeps the name pools
   of different scopes disjoint. *)
let gen_locals st ~prefix =
  let n = rint st 4 in
  let entities =
    List.init n (fun i ->
        let name = Printf.sprintf "%s%d" prefix (i + 1) in
        let base =
          pick st [ Ast.Treal Ast.K4; Ast.Treal Ast.K8; Ast.Treal Ast.K8; Ast.Tinteger; Ast.Tlogical ]
        in
        (name, base))
  in
  (* group same-base scalars into multi-entity declarations half the time
     (the Fig.-3 split transformation needs them) *)
  let grouped =
    if flip st 0.5 then begin
      let bases = List.sort_uniq compare (List.map snd entities) in
      List.map
        (fun b ->
          mk_decl b (List.filter_map (fun (n, b') -> if b' = b then Some (n, None) else None) entities))
        bases
    end
    else List.map (fun (n, b) -> mk_decl b [ (n, None) ]) entities
  in
  let arr_local =
    if flip st 0.3 then
      let k = pick st [ Ast.K4; Ast.K8 ] in
      [ (Printf.sprintf "%sa1" prefix, k) ]
    else []
  in
  let decls =
    grouped
    @ List.map (fun (n, k) -> mk_decl (Ast.Treal k) ~dims:[ Ast.Int_lit 3 ] [ (n, None) ]) arr_local
    @ [ mk_decl Ast.Tinteger [ ("i1", None); ("i2", None) ] ]
  in
  let vinfos =
    List.map (fun (n, b) -> { vn = n; base = b; dims = []; writable = true }) entities
    @ List.map (fun (n, k) -> { vn = n; base = Ast.Treal k; dims = [ 3 ]; writable = true }) arr_local
    @ List.map (fun n -> { vn = n; base = Ast.Tinteger; dims = []; writable = false }) [ "i1"; "i2" ]
  in
  (decls, vinfos)

let counter_decl (sstate : scope_state) =
  if sstate.counters = [] then []
  else [ mk_decl Ast.Tinteger (List.map (fun w -> (w, None)) sstate.counters) ]

(* Rename one dummy to an identically-shaped writable module variable, so
   slot resolution has shadowing to get right. *)
let maybe_shadow st module_vars dummies =
  if dummies = [] || not (flip st 0.15) then dummies
  else begin
    let i = rint st (List.length dummies) in
    List.mapi
      (fun j ((_, base, dims, intent) as d) ->
        if j <> i then d
        else
          match
            List.find_opt (fun mv -> mv.base = base && mv.dims = dims && mv.writable) module_vars
          with
          | Some mv -> (mv.vn, base, dims, intent)
          | None -> d)
      dummies
  end

let gen_proc st ~module_vars ~sigs idx : Ast.proc * proc_sig =
  let pname = Printf.sprintf "p%d" (idx + 1) in
  let is_fun = flip st 0.4 in
  let ndum = rint st 4 in
  let dummies =
    List.init ndum (fun j ->
        let dn = Printf.sprintf "a%d" (j + 1) in
        match rint st 5 with
        | 0 ->
          (dn, Ast.Treal (pick st [ Ast.K4; Ast.K8 ]), [],
           pick st [ Some Ast.In; Some Ast.Out; Some Ast.Inout; None ])
        | 1 -> (dn, Ast.Tinteger, [], pick st [ Some Ast.In; None ])
        | 2 ->
          (dn, Ast.Treal (pick st [ Ast.K4; Ast.K8 ]), [ pick st [ 3; 4 ] ],
           pick st [ Some Ast.In; Some Ast.Inout; None ])
        | 3 -> (dn, Ast.Treal (pick st [ Ast.K4; Ast.K8 ]), [], Some Ast.In)
        | _ -> (dn, Ast.Tlogical, [], None))
  in
  let dummies = maybe_shadow st module_vars dummies in
  let result = if is_fun then Some (pick st [ Ast.Treal Ast.K4; Ast.Treal Ast.K8; Ast.Tinteger ]) else None in
  let dummy_decls =
    List.map
      (fun (dn, base, dims, intent) ->
        mk_decl base ~intent ~dims:(List.map (fun d -> Ast.Int_lit d) dims) [ (dn, None) ])
      dummies
  in
  let dummy_vinfos =
    List.map
      (fun (dn, base, dims, intent) ->
        { vn = dn; base; dims; writable = intent <> Some Ast.In })
      dummies
  in
  let local_decls, local_vinfos = gen_locals st ~prefix:"v" in
  let res_decl, res_vinfo =
    match result with
    | Some base -> ([ mk_decl base [ ("res_", None) ] ], [ { vn = "res_"; base; dims = []; writable = true } ])
    | None -> ([], [])
  in
  let sstate = { counters = [] } in
  let env =
    {
      st;
      vars = dedupe (dummy_vinfos @ local_vinfos @ res_vinfo @ module_vars);
      procs = sigs;
      loops = [];
      free = [ "i1"; "i2" ];
      in_proc = true;
      in_loop = false;
      depth = 3;
    }
  in
  let body = gen_body env sstate in
  let body =
    match result with
    | Some (Ast.Treal k) -> body @ [ mk (Ast.Assign (Ast.Lvar "res_", gen_real env 3 k)) ]
    | Some Ast.Tinteger -> body @ [ mk (Ast.Assign (Ast.Lvar "res_", gen_int env 3)) ]
    | Some Ast.Tlogical -> body @ [ mk (Ast.Assign (Ast.Lvar "res_", gen_logical env 3)) ]
    | None -> body
  in
  let proc =
    {
      Ast.proc_id = 0;
      proc_kind =
        (match result with Some _ -> Ast.Function { result = "res_" } | None -> Ast.Subroutine);
      proc_name = pname;
      params = List.map (fun (dn, _, _, _) -> dn) dummies;
      proc_decls = dummy_decls @ local_decls @ counter_decl sstate @ res_decl;
      proc_body = body;
      proc_loc = Loc.dummy;
    }
  in
  (proc, { ps_name = pname; ps_dummies = dummies; ps_result = result })

let gen_main st ~module_vars ~sigs : Ast.main_unit =
  let local_decls, local_vinfos = gen_locals st ~prefix:"m" in
  let sstate = { counters = [] } in
  let env =
    {
      st;
      vars = dedupe (local_vinfos @ module_vars);
      procs = sigs;
      loops = [];
      free = [ "i1"; "i2" ];
      in_proc = false;
      in_loop = false;
      depth = 3;
    }
  in
  let body = gen_body env sstate in
  let tail_call =
    match List.filter (fun p -> p.ps_result = None) sigs with
    | [] -> []
    | subs when flip st 0.7 ->
      let p = pick st subs in
      [ mk (Ast.Call (p.ps_name, List.map (gen_actual env) p.ps_dummies)) ]
    | _ -> []
  in
  let chk =
    mk (Ast.Print_stmt [ Ast.Str_lit "chk"; gen_real env 3 Ast.K8; Ast.Var "g41" ])
  in
  {
    Ast.main_name = "fzmain";
    main_uses = [ module_name ];
    main_decls = local_decls @ counter_decl sstate;
    main_body = body @ tail_call @ [ chk ];
    main_procs = [];
  }

let gen_program st : Ast.program =
  let mod_decls, module_vars = gen_module_decls st in
  let nproc = rint st 4 in
  let procs, sigs =
    List.fold_left
      (fun (procs, sigs) idx ->
        let p, s = gen_proc st ~module_vars ~sigs idx in
        (procs @ [ p ], sigs @ [ s ]))
      ([], [])
      (List.init nproc Fun.id)
  in
  let main = gen_main st ~module_vars ~sigs in
  [
    Ast.Module { mod_name = module_name; mod_uses = []; mod_decls; mod_procs = procs };
    Ast.Main main;
  ]

(* ------------------------------------------------------------------ *)
(* Cases                                                               *)

let program = gen_program

let case st : case =
  let ast = gen_program st in
  let text0 = Unparse.program ast in
  (* canonicalize: the parser assigns dense ids and real locations *)
  let prog = Parser.parse ~file:"fuzz.f90" text0 in
  let source = Unparse.program prog in
  let symtab = Symtab.build prog in
  let atoms = Transform.Assignment.atoms_of_module symtab module_name in
  let lowered =
    List.filter_map
      (fun (a : Transform.Assignment.atom) ->
        let p = if a.Transform.Assignment.a_declared = Ast.K8 then 0.45 else 0.1 in
        if flip st p then Some (Transform.Assignment.atom_id a) else None)
      atoms
  in
  { source; lowered }

let case_at ~seed ~index = case (Random.State.make [| 0x5eed; seed; index |])

let assignment_of symtab lowered =
  let atoms = Transform.Assignment.atoms_of_module symtab module_name in
  let low =
    List.filter (fun a -> List.mem (Transform.Assignment.atom_id a) lowered) atoms
  in
  Transform.Assignment.of_lowered atoms ~lowered:low
