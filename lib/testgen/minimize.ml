open Fortran

(* Pre-order statement traversal. [filter_stmts] and [count_stmts] walk
   children unconditionally so their counters assign identical indices,
   whether or not an enclosing statement survives. *)

let rec filter_block ctr keep b = List.filter_map (filter_stmt ctr keep) b

and filter_stmt ctr keep (s : Ast.stmt) =
  let i = !ctr in
  incr ctr;
  let node =
    match s.Ast.node with
    | Ast.If (arms, els) ->
      Ast.If
        ( List.map (fun (c, b) -> (c, filter_block ctr keep b)) arms,
          filter_block ctr keep els )
    | Ast.Do d -> Ast.Do { d with body = filter_block ctr keep d.body }
    | Ast.Do_while d -> Ast.Do_while { d with body = filter_block ctr keep d.body }
    | Ast.Select sel ->
      Ast.Select
        {
          sel with
          arms = List.map (fun (it, b) -> (it, filter_block ctr keep b)) sel.arms;
          default = filter_block ctr keep sel.default;
        }
    | other -> other
  in
  if keep i then Some { s with Ast.node = node } else None

let map_bodies f (prog : Ast.program) =
  List.map
    (function
      | Ast.Module m ->
        Ast.Module
          {
            m with
            Ast.mod_procs =
              List.map (fun p -> { p with Ast.proc_body = f p.Ast.proc_body }) m.Ast.mod_procs;
          }
      | Ast.Main m ->
        Ast.Main
          {
            m with
            Ast.main_body = f m.Ast.main_body;
            main_procs =
              List.map (fun p -> { p with Ast.proc_body = f p.Ast.proc_body }) m.Ast.main_procs;
          })
    prog

let count_stmts prog =
  let ctr = ref 0 in
  ignore (map_bodies (fun b -> filter_block ctr (fun _ -> true) b) prog);
  !ctr

let keep_stmts prog keep =
  let ctr = ref 0 in
  map_bodies (fun b -> filter_block ctr keep b) prog

(* ------------------------------------------------------------------ *)
(* Static reference scan, to rule out reductions that would only "fail"
   by breaking name resolution.                                        *)

let used_names prog =
  let used = Hashtbl.create 64 in
  let add n = Hashtbl.replace used n () in
  let rec deep e =
    (match e with Ast.Var n | Ast.Index (n, _) -> add n | _ -> ());
    match e with
    | Ast.Index (_, args) -> List.iter deep args
    | Ast.Unop (_, e1) -> deep e1
    | Ast.Binop (_, a, b) ->
      deep a;
      deep b
    | _ -> ()
  in
  let block b =
    Ast.iter_exprs (fun e -> match e with Ast.Var n | Ast.Index (n, _) -> add n | _ -> ()) b;
    Ast.iter_stmts
      (fun s ->
        match s.Ast.node with
        | Ast.Assign (Ast.Lvar n, _) | Ast.Assign (Ast.Lindex (n, _), _) -> add n
        | Ast.Call (n, _) -> add n
        | Ast.Do { var; _ } -> add var
        | _ -> ())
      b
  in
  let decl (d : Ast.decl) =
    List.iter deep d.Ast.dims;
    List.iter (fun (_, init) -> Option.iter deep init) d.Ast.names
  in
  let proc (p : Ast.proc) =
    List.iter decl p.Ast.proc_decls;
    block p.Ast.proc_body
  in
  List.iter
    (function
      | Ast.Module m ->
        List.iter decl m.Ast.mod_decls;
        List.iter proc m.Ast.mod_procs
      | Ast.Main m ->
        List.iter decl m.Ast.main_decls;
        block m.Ast.main_body;
        List.iter proc m.Ast.main_procs)
    prog;
  used

let drop_proc prog name =
  List.map
    (function
      | Ast.Module m ->
        Ast.Module
          {
            m with
            Ast.mod_procs =
              List.filter (fun p -> not (String.equal p.Ast.proc_name name)) m.Ast.mod_procs;
          }
      | u -> u)
    prog

let drop_entity prog ~scope_proc name =
  let prune decls =
    List.filter_map
      (fun (d : Ast.decl) ->
        let names = List.filter (fun (n, _) -> not (String.equal n name)) d.Ast.names in
        if names = [] then None else Some { d with Ast.names })
      decls
  in
  List.map
    (function
      | Ast.Module m when scope_proc = None ->
        Ast.Module { m with Ast.mod_decls = prune m.Ast.mod_decls }
      | Ast.Module m ->
        Ast.Module
          {
            m with
            Ast.mod_procs =
              List.map
                (fun p ->
                  if Some p.Ast.proc_name = scope_proc then
                    { p with Ast.proc_decls = prune p.Ast.proc_decls }
                  else p)
                m.Ast.mod_procs;
          }
      | Ast.Main m when scope_proc = None ->
        Ast.Main { m with Ast.main_decls = prune m.Ast.main_decls }
      | u -> u)
    prog

(* ------------------------------------------------------------------ *)

let canonical prog =
  Unparse.program (Parser.parse ~file:"min.f90" (Unparse.program prog))

let minimize ~ids (c : Gen.case) : Gen.case =
  let fails (c : Gen.case) =
    match Oracle.check ~ids c with [] -> false | _ :: _ -> true
  in
  (* 1. fewest lowered atoms that still trigger the failure *)
  let c =
    let test lowered = fails { c with Gen.lowered } in
    if test c.Gen.lowered then { c with Gen.lowered = Search.Ddmin.minimize ~test c.Gen.lowered }
    else c
  in
  let parse (c : Gen.case) = Parser.parse ~file:"min.f90" c.Gen.source in
  (* 2. fewest statements *)
  let c =
    let prog = parse c in
    let n = count_stmts prog in
    let rebuild ks =
      let set = Hashtbl.create (List.length ks) in
      List.iter (fun k -> Hashtbl.replace set k ()) ks;
      { c with Gen.source = canonical (keep_stmts prog (Hashtbl.mem set)) }
    in
    let test ks = try fails (rebuild ks) with _ -> false in
    let full = List.init n Fun.id in
    if test full then rebuild (Search.Ddmin.minimize ~test full) else c
  in
  (* 3. + 4. prune unreferenced procedures, then unused declaration
     entities, to a fixpoint; each removal must preserve the failure *)
  let try_case c' = if fails c' then Some c' else None in
  let step (c : Gen.case) =
    let prog = parse c in
    let used = used_names prog in
    let dead_procs =
      List.filter
        (fun p -> not (Hashtbl.mem used p.Ast.proc_name))
        (Ast.all_procs prog)
    in
    let by_proc =
      List.find_map
        (fun (p : Ast.proc) ->
          try try_case { c with Gen.source = canonical (drop_proc prog p.Ast.proc_name) }
          with _ -> None)
        dead_procs
    in
    match by_proc with
    | Some c' -> Some c'
    | None ->
      let keep_always (p : Ast.proc) =
        p.Ast.params
        @ (match p.Ast.proc_kind with Ast.Function { result } -> [ result ] | Ast.Subroutine -> [])
      in
      let candidates =
        List.concat_map
          (function
            | Ast.Module m ->
              List.map (fun (n, _) -> (None, n)) (List.concat_map (fun d -> d.Ast.names) m.Ast.mod_decls)
              @ List.concat_map
                  (fun (p : Ast.proc) ->
                    let pinned = keep_always p in
                    List.filter_map
                      (fun (n, _) ->
                        if List.mem n pinned then None else Some (Some p.Ast.proc_name, n))
                      (List.concat_map (fun d -> d.Ast.names) p.Ast.proc_decls))
                  m.Ast.mod_procs
            | Ast.Main m ->
              List.map (fun (n, _) -> (None, n)) (List.concat_map (fun d -> d.Ast.names) m.Ast.main_decls))
          prog
      in
      List.find_map
        (fun (scope_proc, n) ->
          if Hashtbl.mem used n then None
          else
            try try_case { c with Gen.source = canonical (drop_entity prog ~scope_proc n) }
            with _ -> None)
        candidates
  in
  let rec fixpoint c rounds =
    if rounds = 0 then c
    else match step c with Some c' -> fixpoint c' (rounds - 1) | None -> c
  in
  fixpoint c 64
