(** Structural shrinking of failing cases.

    Four reduction passes, each validated by re-running the oracles so
    the result still fails (at least one of) the oracles it failed
    originally:

    + {!Search.Ddmin.minimize} over the lowered-atom list — most
      transformer/equivalence bugs need only one or two lowered atoms;
    + {!Search.Ddmin.minimize} over the program's statements (pre-order
      indexed; dropping a compound statement drops its body);
    + removal of procedures no surviving statement references;
    + removal of declaration entities no surviving code references
      (dummies and function results are kept — they are part of
      signatures).

    Every candidate program is re-canonicalized through
    unparse→parse→unparse, and candidates are only accepted on the
    strength of an oracle re-run, so a pass can never "fix" the bug or
    swap it for a different failure class: reductions that break name
    resolution are excluded statically, and anything else that stops
    failing is simply rejected. *)

val minimize : ids:Oracle.id list -> Gen.case -> Gen.case
(** [minimize ~ids c] requires [Oracle.check ~ids c <> []] and returns a
    case, no larger than [c], for which that still holds. *)
