type entry = {
  name : string;
  case : Gen.case;
  oracle : string;
  origin : string;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let save ~dir (e : entry) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let f90 = Filename.concat dir (e.name ^ ".f90") in
  write_file f90 e.case.Gen.source;
  let sidecar =
    Printf.sprintf "oracle: %s\norigin: %s\nlowered: %s\n" e.oracle e.origin
      (String.concat " " e.case.Gen.lowered)
  in
  write_file (Filename.concat dir (e.name ^ ".repro")) sidecar;
  f90

let parse_sidecar path =
  let fields =
    List.filter_map
      (fun line ->
        match String.index_opt line ':' with
        | None -> None
        | Some i ->
          Some
            ( String.sub line 0 i,
              String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))
      (String.split_on_char '\n' (read_file path))
  in
  let get k =
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> failwith (Printf.sprintf "%s: missing %S field" path k)
  in
  let lowered =
    match List.assoc_opt "lowered" fields with
    | None | Some "" -> []
    | Some v -> String.split_on_char ' ' v
  in
  (get "oracle", get "origin", lowered)

let load ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun f ->
           if Filename.check_suffix f ".f90" then begin
             let name = Filename.chop_suffix f ".f90" in
             let sidecar = Filename.concat dir (name ^ ".repro") in
             if not (Sys.file_exists sidecar) then
               failwith (Printf.sprintf "%s: no .repro sidecar" (Filename.concat dir f));
             let oracle, origin, lowered = parse_sidecar sidecar in
             let source = read_file (Filename.concat dir f) in
             Some { name; case = { Gen.source; lowered }; oracle; origin }
           end
           else None)
