exception Error of { loc : Loc.t; message : string }

let error loc fmt = Format.kasprintf (fun message -> raise (Error { loc; message })) fmt

type ty =
  | Real of Ast.real_kind
  | Integer
  | Logical
  | Str

let ty_equal a b =
  match a, b with
  | Real ka, Real kb -> ka = kb
  | Integer, Integer | Logical, Logical | Str, Str -> true
  | (Real _ | Integer | Logical | Str), _ -> false

let pp_ty ppf = function
  | Real Ast.K4 -> Format.pp_print_string ppf "real(4)"
  | Real Ast.K8 -> Format.pp_print_string ppf "real(8)"
  | Integer -> Format.pp_print_string ppf "integer"
  | Logical -> Format.pp_print_string ppf "logical"
  | Str -> Format.pp_print_string ppf "character"

let ty_of_base = function
  | Ast.Treal k -> Real k
  | Ast.Tinteger -> Integer
  | Ast.Tlogical -> Logical

(* Numeric promotion for arithmetic operators. *)
let promote loc a b =
  match a, b with
  | Integer, Integer -> Integer
  | Real k, Integer | Integer, Real k -> Real k
  | Real Ast.K8, Real _ | Real _, Real Ast.K8 -> Real Ast.K8
  | Real Ast.K4, Real Ast.K4 -> Real Ast.K4
  | (Logical | Str), _ | _, (Logical | Str) ->
    error loc "arithmetic on non-numeric operand"

let rec infer (st : Symtab.t) ~in_proc (e : Ast.expr) : ty =
  let loc = Loc.dummy in
  match e with
  | Ast.Int_lit _ -> Integer
  | Ast.Real_lit { kind; _ } -> Real kind
  | Ast.Logical_lit _ -> Logical
  | Ast.Str_lit _ -> Str
  | Ast.Var v -> (
    match Symtab.lookup_var st ~in_proc v with
    | Some info -> ty_of_base info.v_base
    | None -> error loc "undeclared variable %S%s" v (ctx in_proc))
  | Ast.Index (name, args) -> infer_index st ~in_proc name args
  | Ast.Unop (Ast.Neg, e1) -> (
    match infer st ~in_proc e1 with
    | (Integer | Real _) as t -> t
    | Logical | Str -> error loc "negation of non-numeric value")
  | Ast.Unop (Ast.Not, e1) -> (
    match infer st ~in_proc e1 with
    | Logical -> Logical
    | Integer | Real _ | Str -> error loc ".not. of non-logical value")
  | Ast.Binop (op, a, b) -> (
    let ta = infer st ~in_proc a in
    let tb = infer st ~in_proc b in
    match op with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Pow -> promote loc ta tb
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let _ = promote loc ta tb in
      Logical
    | Ast.And | Ast.Or ->
      if ty_equal ta Logical && ty_equal tb Logical then Logical
      else error loc "logical operator on non-logical operands")

and ctx = function
  | Some p -> Printf.sprintf " in procedure %S" p
  | None -> " in main program"

and infer_index st ~in_proc name args =
  let loc = Loc.dummy in
  match Symtab.lookup_var st ~in_proc name with
  | Some info when info.v_dims <> [] ->
    if List.length args <> List.length info.v_dims then
      error loc "array %S has rank %d but %d subscripts given" name
        (List.length info.v_dims) (List.length args);
    List.iter
      (fun a ->
        match infer st ~in_proc a with
        | Integer -> ()
        | Real _ | Logical | Str -> error loc "non-integer subscript of %S" name)
      args;
    ty_of_base info.v_base
  | Some _ -> error loc "subscripting scalar variable %S" name
  | None -> infer_call st ~in_proc name args

and infer_call st ~in_proc name args =
  let loc = Loc.dummy in
  let arg_tys = List.map (infer st ~in_proc) args in
  match Builtins.classify name with
  | Some cat -> infer_intrinsic st ~in_proc name cat args arg_tys
  | None -> (
    match Symtab.find_proc st name with
    | Some ({ proc_kind = Ast.Function { result }; _ } as p) ->
      if List.length args <> List.length p.params then
        error loc "function %S expects %d arguments, got %d" name (List.length p.params)
          (List.length args);
      (match Symtab.lookup_var st ~in_proc:(Some name) result with
      | Some info -> ty_of_base info.v_base
      | None -> error loc "function %S has no result declaration" name)
    | Some { proc_kind = Ast.Subroutine; _ } ->
      error loc "subroutine %S used as a function" name
    | None -> error loc "unknown function or array %S%s" name (ctx in_proc))

and infer_intrinsic st ~in_proc name cat args arg_tys =
  let loc = Loc.dummy in
  let arity_exn n =
    if List.length args <> n then
      error loc "intrinsic %S expects %d argument(s), got %d" name n (List.length args)
  in
  match cat with
  | Builtins.Elemental_math -> (
    arity_exn 1;
    match arg_tys with
    | [ Real k ] -> Real k
    | [ Integer ] -> if name = "abs" then Integer else error loc "%S of integer" name
    | _ -> error loc "%S of non-numeric value" name)
  | Builtins.Minmax ->
    if List.length args < 2 then error loc "%S needs at least 2 arguments" name;
    List.fold_left (fun acc t -> promote loc acc t) Integer arg_tys
  | Builtins.Mod_like -> (
    arity_exn 2;
    match arg_tys with
    | [ a; b ] -> promote loc a b
    | _ -> assert false)
  | Builtins.Conversion -> (
    match name with
    | "dble" ->
      arity_exn 1;
      Real Ast.K8
    | "real" -> (
      match args, arg_tys with
      | [ _ ], [ (Integer | Real _) ] -> Real Ast.K4
      | [ _; Ast.Int_lit k ], [ (Integer | Real _); Integer ] -> (
        match Token.kind_of_int k with
        | Some k -> Real k
        | None -> error loc "real(): unsupported kind %d" k)
      | _ -> error loc "real() expects (x) or (x, kind)")
    | "int" | "nint" | "floor" ->
      arity_exn 1;
      Integer
    | _ -> assert false)
  | Builtins.Array_reduction -> (
    let array_ty arr =
      match Symtab.lookup_var st ~in_proc arr with
      | Some info when info.v_dims <> [] -> ty_of_base info.v_base
      | Some _ -> error loc "%S of a scalar" name
      | None -> error loc "%S of unknown array %S" name arr
    in
    match name, args with
    | "dot_product", [ Ast.Var a; Ast.Var b ] -> (
      match array_ty a, array_ty b with
      | Real ka, Real kb -> Real (if ka = Ast.K8 || kb = Ast.K8 then Ast.K8 else Ast.K4)
      | Integer, Integer -> Integer
      | _ -> error loc "dot_product of mixed base types")
    | "dot_product", _ -> error loc "dot_product expects two whole-array arguments"
    | _, [ Ast.Var arr ] ->
      arity_exn 1;
      array_ty arr
    | _, _ -> error loc "%S expects a whole-array argument" name)
  | Builtins.Inquiry -> (
    match name with
    | "size" -> Integer
    | "epsilon" | "huge" | "tiny" -> (
      arity_exn 1;
      match arg_tys with
      | [ Real k ] -> Real k
      | _ -> error loc "%S of non-real value" name)
    | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Constant folding of integer expressions (array extents).            *)

let rec static_int st ~in_proc (e : Ast.expr) : int option =
  match e with
  | Ast.Int_lit i -> Some i
  | Ast.Var v -> (
    match Symtab.lookup_var st ~in_proc v with
    | Some { v_parameter = true; v_init = Some init; _ } -> static_int st ~in_proc init
    | Some _ | None -> None)
  | Ast.Unop (Ast.Neg, e1) -> Option.map (fun i -> -i) (static_int st ~in_proc e1)
  | Ast.Binop (op, a, b) -> (
    match static_int st ~in_proc a, static_int st ~in_proc b with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Pow ->
        if y < 0 then None
        else
          let rec pow acc n = if n = 0 then acc else pow (acc * x) (n - 1) in
          Some (pow 1 y)
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or -> None)
    | _ -> None)
  | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Index _ | Ast.Unop (Ast.Not, _) ->
    None

let static_elements st ~in_proc (v : Symtab.var_info) =
  if v.v_dims = [] then Some 1
  else
    List.fold_left
      (fun acc d ->
        match acc, static_int st ~in_proc d with
        | Some n, Some e when e >= 0 -> Some (n * e)
        | _ -> None)
      (Some 1) v.v_dims

(* ------------------------------------------------------------------ *)
(* Call-site kind compatibility (the wrapper obligation).               *)


let case_item_exprs items =
  List.concat_map
    (function
      | Ast.Case_value v -> [ v ]
      | Ast.Case_range (lo, hi) -> Option.to_list lo @ Option.to_list hi)
    items

type mismatch = {
  mm_caller : string option;
  mm_callee : string;
  mm_arg_index : int;
  mm_dummy : string;
  mm_actual : Ast.expr;
  mm_actual_kind : Ast.real_kind;
  mm_dummy_kind : Ast.real_kind;
  mm_is_array : bool;
  mm_loc : Loc.t;
}

(* Visit every call site (both [call] statements and function references
   inside expressions) of every user procedure. *)
let iter_call_sites st f =
  let prog = Symtab.program st in
  let visit_expr ~caller loc e0 =
    let rec go e =
      match e with
      | Ast.Index (name, args) ->
        List.iter go args;
        if (not (Builtins.is_intrinsic_function name))
           && Option.is_none (Symtab.lookup_var st ~in_proc:caller name)
        then
          (* a function call *)
          (match Symtab.find_proc st name with
          | Some p -> f ~caller ~callee:p ~args ~loc
          | None -> ())
      | Ast.Unop (_, a) -> go a
      | Ast.Binop (_, a, b) ->
        go a;
        go b
      | Ast.Int_lit _ | Ast.Real_lit _ | Ast.Logical_lit _ | Ast.Str_lit _ | Ast.Var _ -> ()
    in
    go e0
  in
  let visit_block ~caller blk =
    Ast.iter_stmts
      (fun s ->
        match s.Ast.node with
        | Ast.Call (name, args) ->
          List.iter (visit_expr ~caller s.Ast.loc) args;
          if not (Builtins.is_intrinsic_subroutine name) then (
            match Symtab.find_proc st name with
            | Some p -> f ~caller ~callee:p ~args ~loc:s.Ast.loc
            | None -> ())
        | Ast.Assign (lhs, rhs) ->
          (match lhs with
          | Ast.Lvar _ -> ()
          | Ast.Lindex (_, idx) -> List.iter (visit_expr ~caller s.Ast.loc) idx);
          visit_expr ~caller s.Ast.loc rhs
        | Ast.If (arms, _) -> List.iter (fun (c, _) -> visit_expr ~caller s.Ast.loc c) arms
        | Ast.Select { selector; arms; _ } ->
          visit_expr ~caller s.Ast.loc selector;
          List.iter
            (fun (items, _) -> List.iter (visit_expr ~caller s.Ast.loc) (case_item_exprs items))
            arms
        | Ast.Do { from_; to_; step; _ } ->
          visit_expr ~caller s.Ast.loc from_;
          visit_expr ~caller s.Ast.loc to_;
          Option.iter (visit_expr ~caller s.Ast.loc) step
        | Ast.Do_while { cond; _ } -> visit_expr ~caller s.Ast.loc cond
        | Ast.Print_stmt args -> List.iter (visit_expr ~caller s.Ast.loc) args
        | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
      blk
  in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main m -> visit_block ~caller:None m.main_body
      | Ast.Module _ -> ());
      List.iter
        (fun (p : Ast.proc) -> visit_block ~caller:(Some p.proc_name) p.proc_body)
        (Ast.procs_of_unit u))
    prog

let mismatches st : mismatch list =
  let acc = ref [] in
  iter_call_sites st (fun ~caller ~callee ~args ~loc ->
      List.iteri
        (fun i actual ->
          match List.nth_opt callee.Ast.params i with
          | None -> ()
          | Some dummy -> (
            match Symtab.lookup_var st ~in_proc:(Some callee.Ast.proc_name) dummy with
            | Some dinfo -> (
              match dinfo.v_base, infer st ~in_proc:caller actual with
              | Ast.Treal dk, Real ak when dk <> ak ->
                acc :=
                  { mm_caller = caller; mm_callee = callee.Ast.proc_name; mm_arg_index = i;
                    mm_dummy = dummy; mm_actual = actual; mm_actual_kind = ak;
                    mm_dummy_kind = dk; mm_is_array = dinfo.v_dims <> []; mm_loc = loc }
                  :: !acc
              | _ -> ())
            | None -> ()))
        args);
  List.rev !acc

let check_block st ~in_proc blk =
  let infer_e e = ignore (infer st ~in_proc e) in
  Ast.iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Assign (lhs, rhs) ->
        let lname = match lhs with Ast.Lvar v | Ast.Lindex (v, _) -> v in
        (match Symtab.lookup_var st ~in_proc lname with
        | Some { Symtab.v_intent = Some Ast.In; _ } ->
          error s.Ast.loc "assignment to intent(in) dummy %S%s" lname (ctx in_proc)
        | Some _ | None -> ());
        let lt =
          match lhs with
          | Ast.Lvar v -> infer st ~in_proc (Ast.Var v)
          | Ast.Lindex (v, idx) -> infer st ~in_proc (Ast.Index (v, idx))
        in
        let rt = infer st ~in_proc rhs in
        (match lt, rt with
        | (Real _ | Integer), (Real _ | Integer) -> ()  (* implicit conversion via [=] *)
        | Logical, Logical | Str, Str -> ()
        | _ -> error s.Ast.loc "type clash in assignment")
      | Ast.Call (name, args) ->
        List.iter infer_e args;
        if Builtins.is_intrinsic_subroutine name then ()
        else (
          match Symtab.find_proc st name with
          | Some p ->
            if List.length args <> List.length p.Ast.params then
              error s.Ast.loc "subroutine %S expects %d arguments, got %d" name
                (List.length p.Ast.params) (List.length args)
          | None -> error s.Ast.loc "call to unknown subroutine %S" name)
      | Ast.If (arms, _) ->
        List.iter
          (fun (c, _) ->
            match infer st ~in_proc c with
            | Logical -> ()
            | Real _ | Integer | Str -> error s.Ast.loc "if condition is not logical")
          arms
      | Ast.Do { from_; to_; step; var; _ } ->
        (match infer st ~in_proc (Ast.Var var) with
        | Integer -> ()
        | Real _ | Logical | Str -> error s.Ast.loc "do variable %S is not integer" var);
        List.iter
          (fun e ->
            match infer st ~in_proc e with
            | Integer -> ()
            | Real _ | Logical | Str -> error s.Ast.loc "do bound is not integer")
          (from_ :: to_ :: Option.to_list step)
      | Ast.Do_while { cond; _ } -> (
        match infer st ~in_proc cond with
        | Logical -> ()
        | Real _ | Integer | Str -> error s.Ast.loc "do while condition is not logical")
      | Ast.Select { selector; arms; _ } ->
        let sel_ty = infer st ~in_proc selector in
        (match sel_ty with
        | Integer | Logical -> ()
        | Real _ | Str -> error s.Ast.loc "select case selector must be integer or logical");
        List.iter
          (fun (items, _) ->
            List.iter
              (fun e ->
                if not (ty_equal (infer st ~in_proc e) sel_ty) then
                  error s.Ast.loc "case value type differs from the selector")
              (case_item_exprs items))
          arms
      | Ast.Print_stmt args -> List.iter infer_e args
      | Ast.Exit_stmt | Ast.Cycle_stmt | Ast.Return_stmt | Ast.Stop_stmt _ -> ())
    blk

let check_program st =
  let prog = Symtab.program st in
  List.iter
    (fun u ->
      (match u with
      | Ast.Main m -> check_block st ~in_proc:None m.main_body
      | Ast.Module _ -> ());
      List.iter
        (fun (p : Ast.proc) -> check_block st ~in_proc:(Some p.proc_name) p.proc_body)
        (Ast.procs_of_unit u))
    prog;
  match mismatches st with
  | [] -> ()
  | m :: _ ->
    error m.mm_loc
      "argument %d of call to %S: actual is real(%d) but dummy %S is real(%d) — a \
       conversion wrapper is required"
      (m.mm_arg_index + 1) m.mm_callee
      (Token.int_of_kind m.mm_actual_kind)
      m.mm_dummy
      (Token.int_of_kind m.mm_dummy_kind)
