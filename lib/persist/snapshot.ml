type t = {
  s_records : int;
  s_hours : float;
  s_best_speedup : float;
  s_lost_seconds : float;
  s_preemptions : int;
  s_finished : bool;
}

let file ~dir = Filename.concat dir "snapshot.json"

let to_json s =
  Json.Obj
    [
      ("records", Json.Num (float_of_int s.s_records));
      ("hours", Json.Str (Json.hex_float s.s_hours));
      ("best_speedup", Json.Str (Json.hex_float s.s_best_speedup));
      ("lost_seconds", Json.Str (Json.hex_float s.s_lost_seconds));
      ("preemptions", Json.Num (float_of_int s.s_preemptions));
      ("finished", Json.Bool s.s_finished);
    ]

let of_json j =
  let open Option in
  bind (bind (Json.member "records" j) Json.to_int) (fun s_records ->
      bind (bind (Json.member "hours" j) Json.to_str) (fun hours ->
          bind (bind (Json.member "best_speedup" j) Json.to_str) (fun best ->
              bind (bind (Json.member "lost_seconds" j) Json.to_str) (fun lost ->
                  bind (bind (Json.member "preemptions" j) Json.to_int) (fun s_preemptions ->
                      bind (bind (Json.member "finished" j) Json.to_bool) (fun s_finished ->
                          some
                            {
                              s_records;
                              s_hours = Json.of_hex_float hours;
                              s_best_speedup = Json.of_hex_float best;
                              s_lost_seconds = Json.of_hex_float lost;
                              s_preemptions;
                              s_finished;
                            }))))))

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir s =
  mkdir_p dir;
  let path = file ~dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json s));
      output_char oc '\n';
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let read ~dir =
  match open_in_bin (file ~dir) with
  | exception Sys_error _ -> None
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    (match of_json (Json.parse s) with
    | v -> v
    | exception Json.Parse_error _ -> None)
