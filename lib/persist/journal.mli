(** Durable campaign journal: a write-ahead JSONL log of every evaluated
    variant.

    A campaign directory holds one [journal.jsonl]. Its first line is a
    versioned header identifying the campaign (model, search algorithm,
    seed, a digest of the result-affecting configuration, worker count,
    search-space size); every further line is one committed
    {!Search.Variant.record}, content-addressed by its
    {!Transform.Assignment.signature} and written {e before} the campaign
    proceeds (flushed and fsynced by default), so a SIGKILL at any moment
    loses at most the record being appended.

    Record lines are emitted in commit order by {!Search.Trace}'s append
    sink, which fires under the trace mutex — record lines are therefore
    byte-identical for every worker count (the header differs only in its
    [workers] field). Measurement floats are stored as lossless [%h] hex
    strings: a replayed record compares bit-identical to the original.

    {!load} tolerates a torn final line (the crash case): everything up to
    the last complete line is returned, and {!reopen} truncates the torn
    tail before appending — the write-ahead discipline for resume. *)

type header = {
  version : int;
  model : string;  (** registry name, e.g. ["mpas"] *)
  algo : string;  (** ["brute_force"], ["delta_debug"] or ["hierarchical"] *)
  seed : int;
  config_digest : string;  (** {!Core.Config} digest over result-affecting fields *)
  workers : int;  (** requested worker count (informational) *)
  atoms : int;  (** search-space size; signatures must have this length *)
  caps : string list;
      (** declared optional line kinds. Writers in this tree always
          declare [["shared"]]; journals written before the field existed
          parse as [[]], and a journal may only contain a "shared"
          provenance line when its header declares the capability —
          anywhere else such a line is damage, exactly as any other
          unknown kind. *)
}

type entry = {
  e_index : int;  (** 1-based commit index *)
  e_signature : string;
  e_meas : Search.Variant.measurement;
  e_score : float option;
      (** predicted score the sensitivity scorer assigned at commit time;
          [None] on unpredicted runs and every pre-PR-9 journal (the field
          is simply absent from those lines, and absent fields parse as
          [None] — version stays 1) *)
  e_bound : float option;  (** static error bound, same presence rule *)
}

type shared = {
  sh_index : int;  (** commit index of the record line being annotated *)
  sh_signature : string;
  sh_donor : string;  (** donor job id that published the measurement *)
}
(** Cross-campaign provenance annotation: written immediately after the
    record line it attributes to the fleet-wide evaluation memo. Carries
    no measurement data, so stripping every "shared" line recovers the
    solo journal byte for byte; losing one to a crash loses provenance
    metadata only, never a record. *)

exception Corrupt of string
(** Unreadable or mismatching journal (bad header, wrong version, record
    before header, signature length mismatch). A torn {e final} line is
    not corruption — see {!load}. *)

val file : dir:string -> string
(** [dir ^ "/journal.jsonl"]. *)

val entry_of_record : Search.Variant.record -> entry
(** [e_score]/[e_bound] are [None]; a predicting caller fills them in
    before {!append}. *)

type writer

val create : ?fsync:bool -> dir:string -> header -> writer
(** Creates [dir] (and parents) if needed and the journal file with the
    header line. Fails with [Sys_error] if a journal already exists there
    — resuming must go through {!reopen}. [fsync] (default [true]) syncs
    after every line. *)

val append : writer -> entry -> unit
(** Write one record line, flush, and (by default) fsync. *)

val append_shared : writer -> shared -> unit
(** Write one provenance annotation line (immediately after the record it
    annotates). Only meaningful when the header declares the ["shared"]
    capability. *)

val close : writer -> unit

type loaded = {
  l_header : header;
  l_entries : entry list;  (** in commit order; indices are 1..n *)
  l_shared : shared list;  (** provenance annotations, in file order *)
  l_valid_bytes : int;  (** prefix length covered by complete lines *)
  l_torn : bool;  (** a trailing incomplete line was discarded *)
}

val load : dir:string -> loaded
(** Raises {!Corrupt} on a missing or malformed journal; a torn final
    line only sets [l_torn]. *)

val reopen : ?fsync:bool -> dir:string -> unit -> loaded * writer
(** {!load}, then truncate the file to [l_valid_bytes] (dropping any torn
    tail) and reopen it for appending. *)

val find_campaigns : ?max_depth:int -> root:string -> unit -> string list
(** Every directory at or below [root] (descending at most [max_depth]
    levels, default 3) that holds a [journal.jsonl], in deterministic
    depth-first lexicographic order; campaign directories are not
    descended into. Foreign files, broken symlinks and unreadable
    directories are skipped silently, so the scan is safe on a root that
    mixes campaign dirs with other state (e.g. a service root). Never
    raises; journals are located, not validated. *)
