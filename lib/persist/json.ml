type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num v ->
    if Float.is_integer v && Float.abs v < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.0f" v)
    else Buffer.add_string b (Printf.sprintf "%.17g" v)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape_string s);
    Buffer.add_char b '"'
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string k);
        Buffer.add_string b "\":";
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Recursive-descent parser over a string with an index cursor.        *)

type cursor = { src : string; mutable pos : int }

let fail msg = raise (Parse_error msg)

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail (Printf.sprintf "expected %C at %d, got %C" ch c.pos x)
  | None -> fail (Printf.sprintf "expected %C at %d, got end of input" ch c.pos)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail (Printf.sprintf "bad literal at %d" c.pos)

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail "bad \\u escape"

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> fail "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail "truncated \\u escape";
          let v =
            (hex_digit c.src.[c.pos] lsl 12)
            lor (hex_digit c.src.[c.pos + 1] lsl 8)
            lor (hex_digit c.src.[c.pos + 2] lsl 4)
            lor hex_digit c.src.[c.pos + 3]
          in
          c.pos <- c.pos + 4;
          (* we only emit \u00XX for control bytes; decode the low byte and
             pass anything larger through as UTF-8 would be overkill here *)
          if v < 0x100 then Buffer.add_char b (Char.chr v)
          else fail "\\u escape above \\u00ff unsupported"
        | _ -> fail "unknown escape");
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let numchar ch = String.contains "0123456789+-.eE" ch in
  while (match peek c with Some ch -> numchar ch | None -> false) do
    advance c
  done;
  if c.pos = start then fail (Printf.sprintf "expected number at %d" start);
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some v -> v
  | None -> fail (Printf.sprintf "bad number at %d" start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          members ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail (Printf.sprintf "expected ',' or '}' at %d" c.pos)
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elems (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail (Printf.sprintf "expected ',' or ']' at %d" c.pos)
      in
      Arr (elems [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail (Printf.sprintf "trailing input at %d" c.pos);
  v

(* ------------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 -> Some (int_of_float v)
  | _ -> None

let to_bool = function Bool v -> Some v | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None

let hex_float v = Printf.sprintf "%h" v

let of_hex_float s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail (Printf.sprintf "bad float %S" s)
