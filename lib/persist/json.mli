(** Minimal JSON tree, encoder and parser — just enough for the journal
    and snapshot files, with no external dependency.

    Strings are treated as byte sequences: every byte below [0x20] is
    escaped as [\u00XX] (plus the usual two-character escapes), so any
    diagnostic or signature the pipeline produces round-trips through a
    journal line as valid JSON. Numbers are parsed as [float]; integers
    survive exactly up to 2{^53}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val escape_string : string -> string
(** Escaped contents of a JSON string literal (without the surrounding
    quotes): ["\""], ["\\"], [\n], [\r], [\t], [\b], [\f] as two-character
    escapes, every other byte < 0x20 as [\u00XX]. *)

val to_string : t -> string
(** Compact single-line rendering (no newlines — one value per journal
    line). [Num] renders integers without a fractional part and other
    floats with 17 significant digits; non-finite numbers are a
    programming error (encode them as {!Str} hex floats instead). *)

val parse : string -> t
(** Parses exactly one JSON value (surrounding whitespace allowed).
    Raises {!Parse_error} on malformed or trailing input. *)

(** Accessors; all return [None] on a type mismatch. *)

val member : string -> t -> t option
val to_str : t -> string option
val to_float : t -> float option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

val hex_float : float -> string
(** Lossless float rendering ([%h]): hexadecimal for finite values,
    ["infinity"]/["-infinity"]/["nan"] otherwise. Journals store every
    measurement float this way so replayed records are bit-identical. *)

val of_hex_float : string -> float
(** Inverse of {!hex_float} (plain [float_of_string]); raises
    {!Parse_error} on garbage. *)
