type header = {
  version : int;
  model : string;
  algo : string;
  seed : int;
  config_digest : string;
  workers : int;
  atoms : int;
  caps : string list;  (* optional-line capabilities, e.g. "shared" *)
}

type entry = {
  e_index : int;
  e_signature : string;
  e_meas : Search.Variant.measurement;
  e_score : float option;  (* predicted score at commit time (predict runs) *)
  e_bound : float option;  (* static error bound (predict runs) *)
}

(* Provenance annotation for one cross-campaign shared record: the line
   immediately after a record line may attribute that record's measurement
   to the fleet memo entry published by [sh_donor]. Annotations carry no
   measurement data — stripping every "shared" line recovers the solo
   journal byte for byte. *)
type shared = {
  sh_index : int;  (* commit index of the record line being annotated *)
  sh_signature : string;
  sh_donor : string;  (* donor job id that published the measurement *)
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let current_version = 1

let file ~dir = Filename.concat dir "journal.jsonl"

let entry_of_record (r : Search.Variant.record) =
  {
    e_index = r.Search.Variant.index;
    e_signature = Transform.Assignment.signature r.Search.Variant.asg;
    e_meas = r.Search.Variant.meas;
    e_score = None;
    e_bound = None;
  }

(* ------------------------------------------------------------------ *)
(* Line codecs                                                         *)

let header_json h =
  Json.Obj
    [
      ("kind", Json.Str "header");
      ("version", Json.Num (float_of_int h.version));
      ("model", Json.Str h.model);
      ("algo", Json.Str h.algo);
      ("seed", Json.Num (float_of_int h.seed));
      ("config", Json.Str h.config_digest);
      ("workers", Json.Num (float_of_int h.workers));
      ("atoms", Json.Num (float_of_int h.atoms));
      ("caps", Json.Arr (List.map (fun c -> Json.Str c) h.caps));
    ]

let hex = Json.hex_float

let entry_json e =
  let m = e.e_meas in
  let fields =
    [
      ("kind", Json.Str "record");
      ("index", Json.Num (float_of_int e.e_index));
      ("sig", Json.Str e.e_signature);
      ("status", Json.Str (Search.Variant.status_to_string m.Search.Variant.status));
      ("speedup", Json.Str (hex m.Search.Variant.speedup));
      ("rel_error", Json.Str (hex m.Search.Variant.rel_error));
      ("hotspot_time", Json.Str (hex m.Search.Variant.hotspot_time));
      ("model_time", Json.Str (hex m.Search.Variant.model_time));
      ( "proc_stats",
        Json.Arr
          (List.map
             (fun (name, inclusive, calls) ->
               Json.Arr
                 [ Json.Str name; Json.Str (hex inclusive); Json.Num (float_of_int calls) ])
             m.Search.Variant.proc_stats) );
      ("casting_share", Json.Str (hex m.Search.Variant.casting_share));
      ("detail", Json.Str m.Search.Variant.detail);
    ]
    (* score/bound are appended only when present, so journals written
       without prediction are byte-identical to pre-PR-9 ones *)
    @ (match e.e_score with Some s -> [ ("score", Json.Str (hex s)) ] | None -> [])
    @ (match e.e_bound with Some b -> [ ("bound", Json.Str (hex b)) ] | None -> [])
  in
  Json.Obj fields

let shared_json sh =
  Json.Obj
    [
      ("kind", Json.Str "shared");
      ("index", Json.Num (float_of_int sh.sh_index));
      ("sig", Json.Str sh.sh_signature);
      ("donor", Json.Str sh.sh_donor);
    ]

let need what = function Some v -> v | None -> corrupt "missing or ill-typed %s" what

let get_str j k = need k Option.(bind (Json.member k j) Json.to_str)
let get_int j k = need k Option.(bind (Json.member k j) Json.to_int)
let get_hex j k = Json.of_hex_float (get_str j k)

let header_of_json j =
  {
    version = get_int j "version";
    model = get_str j "model";
    algo = get_str j "algo";
    seed = get_int j "seed";
    config_digest = get_str j "config";
    workers = get_int j "workers";
    atoms = get_int j "atoms";
    (* absent on pre-PR-10 journals: no optional line kinds allowed *)
    caps =
      (match Json.member "caps" j with
      | None | Some Json.Null -> []
      | Some v ->
        List.map
          (fun c -> need "cap" (Json.to_str c))
          (need "caps" (Json.to_list v)));
  }

let shared_of_json j =
  { sh_index = get_int j "index"; sh_signature = get_str j "sig"; sh_donor = get_str j "donor" }

let entry_of_json j =
  let status =
    match Search.Variant.status_of_string (get_str j "status") with
    | Some s -> s
    | None -> corrupt "unknown status %S" (get_str j "status")
  in
  let proc_stats =
    List.map
      (fun row ->
        match Json.to_list row with
        | Some [ name; inclusive; calls ] ->
          ( need "proc name" (Json.to_str name),
            Json.of_hex_float (need "proc inclusive" (Json.to_str inclusive)),
            need "proc calls" (Json.to_int calls) )
        | Some _ | None -> corrupt "bad proc_stats row")
      (need "proc_stats" Option.(bind (Json.member "proc_stats" j) Json.to_list))
  in
  {
    e_index = get_int j "index";
    e_signature = get_str j "sig";
    e_meas =
      {
        Search.Variant.status;
        speedup = get_hex j "speedup";
        rel_error = get_hex j "rel_error";
        hotspot_time = get_hex j "hotspot_time";
        model_time = get_hex j "model_time";
        proc_stats;
        casting_share = get_hex j "casting_share";
        detail = get_str j "detail";
      };
    (* absent on pre-PR-9 journals and unpredicted runs: parse as None *)
    e_score = Option.map Json.of_hex_float Option.(bind (Json.member "score" j) Json.to_str);
    e_bound = Option.map Json.of_hex_float Option.(bind (Json.member "bound" j) Json.to_str);
  }

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

type writer = { oc : out_channel; w_fsync : bool }

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sync w =
  flush w.oc;
  if w.w_fsync then Unix.fsync (Unix.descr_of_out_channel w.oc)

let write_line w json =
  output_string w.oc (Json.to_string json);
  output_char w.oc '\n';
  sync w

let create ?(fsync = true) ~dir h =
  mkdir_p dir;
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_excl ] 0o644 (file ~dir) in
  let w = { oc; w_fsync = fsync } in
  write_line w (header_json { h with version = current_version });
  w

let append w e = write_line w (entry_json e)
let append_shared w sh = write_line w (shared_json sh)

let close w = close_out w.oc

(* ------------------------------------------------------------------ *)
(* Loader                                                              *)

type loaded = {
  l_header : header;
  l_entries : entry list;
  l_shared : shared list;
  l_valid_bytes : int;
  l_torn : bool;
}

let read_all path =
  let ic = try open_in_bin path with Sys_error m -> corrupt "%s" m in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir =
  let s = read_all (file ~dir) in
  let n = String.length s in
  (* split into complete (newline-terminated) lines, tracking offsets *)
  let rec lines from acc =
    if from >= n then (List.rev acc, from)
    else
      match String.index_from_opt s from '\n' with
      | None -> (List.rev acc, from)  (* torn tail: no terminating newline *)
      | Some nl -> lines (nl + 1) ((String.sub s from (nl - from), nl + 1) :: acc)
  in
  let complete, _end_of_complete = lines 0 [] in
  match complete with
  | [] -> corrupt "journal %s has no header line" (file ~dir)
  | (hline, hend) :: rest ->
    let h =
      match Json.parse hline with
      | j when Json.member "kind" j = Some (Json.Str "header") -> header_of_json j
      | _ -> corrupt "journal %s: first line is not a header" (file ~dir)
      | exception Json.Parse_error m -> corrupt "journal %s header: %s" (file ~dir) m
    in
    if h.version <> current_version then
      corrupt "journal %s: version %d (supported: %d)" (file ~dir) h.version current_version;
    (* records: a crash can only tear the FINAL line, so an unparsable last
       line is tolerated (it becomes the torn region that [reopen] truncates);
       damage anywhere earlier means the file was edited or the disk lied,
       and silently dropping the suffix would resume from the wrong state *)
    let rec records acc shacc valid = function
      | [] -> (List.rev acc, List.rev shacc, valid)
      | (line, lend) :: tl -> (
        let damaged () =
          if tl = [] then (List.rev acc, List.rev shacc, valid)
          else corrupt "journal %s: damaged record line mid-file (offset %d)" (file ~dir) valid
        in
        match Json.parse line with
        | j when Json.member "kind" j = Some (Json.Str "record") -> (
          match entry_of_json j with
          | e ->
            if String.length e.e_signature <> h.atoms then
              corrupt "journal %s: record %d signature length %d (expected %d)" (file ~dir)
                e.e_index
                (String.length e.e_signature)
                h.atoms;
            records (e :: acc) shacc lend tl
          | exception Corrupt _ -> damaged ())
        (* provenance annotations: only legal when the header declared the
           "shared" capability — in any other journal an unexpected kind
           is damage, exactly as before *)
        | j when Json.member "kind" j = Some (Json.Str "shared") && List.mem "shared" h.caps
          -> (
          match shared_of_json j with
          | sh ->
            if String.length sh.sh_signature <> h.atoms then
              corrupt "journal %s: shared %d signature length %d (expected %d)" (file ~dir)
                sh.sh_index
                (String.length sh.sh_signature)
                h.atoms;
            records acc (sh :: shacc) lend tl
          | exception Corrupt _ -> damaged ())
        | _ -> damaged ()
        | exception Json.Parse_error _ -> damaged ())
    in
    let entries, shares, valid = records [] [] hend rest in
    { l_header = h; l_entries = entries; l_shared = shares; l_valid_bytes = valid;
      l_torn = valid < n }

(* Campaign discovery: every directory under [root] (bounded depth)
   holding a journal.jsonl, in deterministic depth-first lexicographic
   order. Foreign files, broken symlinks and unreadable directories are
   skipped silently — a service root interleaves job state files with
   campaign dirs, and listing must tolerate all of it. *)
let find_campaigns ?(max_depth = 3) ~root () =
  let out = ref [] in
  let rec go depth dir =
    if Sys.file_exists (file ~dir) then out := dir :: !out
    else if depth < max_depth then
      match Sys.readdir dir with
      | exception Sys_error _ -> ()
      | entries ->
        Array.sort compare entries;
        Array.iter
          (fun e ->
            let sub = Filename.concat dir e in
            let is_dir = try Sys.is_directory sub with Sys_error _ -> false in
            if is_dir then go (depth + 1) sub)
          entries
  in
  go 0 root;
  List.rev !out

let reopen ?(fsync = true) ~dir () =
  let l = load ~dir in
  let path = file ~dir in
  if l.l_torn then begin
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () -> Unix.ftruncate fd l.l_valid_bytes)
  end;
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  (l, { oc; w_fsync = fsync })
