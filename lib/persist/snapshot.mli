(** Atomic checkpoint of search-frontier state, written beside the
    journal.

    The journal is the source of truth for resume; the snapshot is a
    cheap-to-read digest of where the campaign stands (record count,
    consumed cluster hours, best accepted speedup so far, fault losses,
    whether the search finished) for [prose campaign ls|show] and for
    monitoring a live run. It is refreshed every few commits and at
    campaign exit via write-to-temp + [rename], so readers never observe
    a half-written file and a crash never corrupts the previous one. *)

type t = {
  s_records : int;  (** committed (journaled) variant records *)
  s_hours : float;  (** simulated cluster hours consumed, incl. fault losses *)
  s_best_speedup : float;  (** best passing Eq.-1 speedup so far; 0 if none *)
  s_lost_seconds : float;  (** node-seconds lost to injected faults *)
  s_preemptions : int;  (** simulated job-boundary preemptions so far *)
  s_finished : bool;  (** the search ran to completion *)
}

val file : dir:string -> string
(** [dir ^ "/snapshot.json"]. *)

val write : dir:string -> t -> unit
(** Atomic: writes [snapshot.json.tmp], fsyncs, renames over
    [snapshot.json]. *)

val read : dir:string -> t option
(** [None] when absent or unreadable (a snapshot is advisory; the journal
    decides). *)
