open Persist

type request =
  | Ping
  | Submit of Job.spec
  | Jobs
  | Show of string
  | Cancel of string
  | Watch of string

let socket_file ~root = Filename.concat root "prose.sock"

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)

let request_json = function
  | Ping -> Json.Obj [ ("cmd", Json.Str "ping") ]
  | Submit spec -> Json.Obj [ ("cmd", Json.Str "submit"); ("spec", Job.spec_json spec) ]
  | Jobs -> Json.Obj [ ("cmd", Json.Str "jobs") ]
  | Show id -> Json.Obj [ ("cmd", Json.Str "show"); ("id", Json.Str id) ]
  | Cancel id -> Json.Obj [ ("cmd", Json.Str "cancel"); ("id", Json.Str id) ]
  | Watch id -> Json.Obj [ ("cmd", Json.Str "watch"); ("id", Json.Str id) ]

let request_of_json j =
  let id () =
    match Option.bind (Json.member "id" j) Json.to_str with
    | Some id -> Ok id
    | None -> Error "missing job id"
  in
  match Option.bind (Json.member "cmd" j) Json.to_str with
  | Some "ping" -> Ok Ping
  | Some "submit" -> (
    match Json.member "spec" j with
    | Some spec -> Result.map (fun s -> Submit s) (Job.spec_result spec)
    | None -> Error "missing spec")
  | Some "jobs" -> Ok Jobs
  | Some "show" -> Result.map (fun id -> Show id) (id ())
  | Some "cancel" -> Result.map (fun id -> Cancel id) (id ())
  | Some "watch" -> Result.map (fun id -> Watch id) (id ())
  | Some cmd -> Error (Printf.sprintf "unknown command %S" cmd)
  | None -> Error "missing command"

let request_of_string line =
  match Json.parse line with
  | j -> request_of_json j
  | exception Json.Parse_error m -> Error ("malformed request: " ^ m)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)
let error msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let is_ok j = Option.bind (Json.member "ok" j) Json.to_bool = Some true

let error_of j =
  match Option.bind (Json.member "error" j) Json.to_str with
  | Some m -> m
  | None -> "server error"

let event_json (e : Sched.event) =
  Json.Obj
    [
      ("event", Json.Str "status");
      ("job", Json.Str e.Sched.ev_job);
      ("state", Json.Str (Job.state_name e.Sched.ev_state));
      ( "error",
        match e.Sched.ev_state with Job.Failed m -> Json.Str m | _ -> Json.Null );
      ("records", Json.Num (float_of_int e.Sched.ev_records));
      ("hours", Json.Str (Json.hex_float e.Sched.ev_hours));
      ("best", Json.Str (Json.hex_float e.Sched.ev_best));
      ("shared", Json.Num (float_of_int e.Sched.ev_shared));
      ("detail", Json.Str e.Sched.ev_detail);
    ]

let event_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  match (str "job", str "state") with
  | Some job, Some state_s ->
    let state =
      match state_s with
      | "queued" -> Some Job.Queued
      | "running" -> Some Job.Running
      | "paused" -> Some Job.Paused
      | "done" -> Some Job.Done
      | "failed" -> Some (Job.Failed (Option.value ~default:"" (str "error")))
      | _ -> None
    in
    Option.map
      (fun state ->
        {
          Sched.ev_job = job;
          ev_state = state;
          ev_records =
            Option.value ~default:0 (Option.bind (Json.member "records" j) Json.to_int);
          ev_hours = (match str "hours" with Some h -> Json.of_hex_float h | None -> 0.0);
          ev_best = (match str "best" with Some b -> Json.of_hex_float b | None -> 0.0);
          (* absent on events from pre-PR-10 servers *)
          ev_shared =
            Option.value ~default:0 (Option.bind (Json.member "shared" j) Json.to_int);
          ev_detail = Option.value ~default:"" (str "detail");
        })
      state
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Client side                                                         *)

let send oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n';
  flush oc

let recv ic =
  match input_line ic with
  | line -> (
    match Json.parse line with
    | j -> Some j
    | exception Json.Parse_error _ -> None)
  | exception (End_of_file | Sys_error _) -> None

let connect ~root =
  let path = socket_file ~root in
  if not (Sys.file_exists path) then None
  else
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Some (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

let with_client ~root f =
  match connect ~root with
  | None -> None
  | Some ((ic, _) as conn) ->
    Some (Fun.protect ~finally:(fun () -> try close_in ic with Sys_error _ -> ()) (fun () -> f conn))

let roundtrip ~root req =
  with_client ~root (fun (ic, oc) ->
      send oc (request_json req);
      match recv ic with
      | Some j -> if is_ok j then Ok j else Error (error_of j)
      | None -> Error "no response from server")
