(** The multiplexing campaign scheduler: fair round-robin time slices of
    runnable jobs over one shared evaluation substrate.

    A time slice is a journaled run/resume segment of one job's campaign:
    the scheduler starts (fresh directory) or {!Core.Tuner.resume}s the
    job with a checkpoint hook that raises {!Core.Tuner.Paused} after
    [slice_records] fresh durable records — or earlier, when the job's
    quota is reached or a drain was requested. Slice boundaries therefore
    always sit on durable records, and PR 4's resume invariant (resumed ≡
    uninterrupted, zero re-evaluation of the journaled prefix) lifts
    directly to the headline multiplexing invariant: for any interleaving
    of N jobs, each job's journal, minimal set and summary are
    byte-identical to the same campaign run solo via [prose tune]. The
    scheduler multiplexes on a single thread and only decides {e when}
    work happens, never {e what} gets recorded.

    Quota enforcement reuses the preemption arithmetic: a job whose
    accumulated simulated hours (the journal context's books, fault
    losses included) reach [sp_quota_hours] stops at exactly the durable
    record an injected {!Core.Cluster.Faults} preemption at the same
    boundary would stop at, and goes terminal ([Failed
    "quota-exhausted"]). *)

type event = {
  ev_job : string;
  ev_state : Job.state;
  ev_records : int;
  ev_hours : float;
  ev_best : float;
  ev_shared : int;  (** cumulative fleet-memo-served records *)
  ev_detail : string;  (** [""] for progress ticks; else ["slice"],
                           ["drained"], ["finished"], ["quota-exhausted"],
                           ["cancelled"], ["error"] *)
}

type slice_result =
  | Idle  (** no runnable job (or draining) *)
  | Sliced of {
      si_job : string;
      si_state : Job.state;  (** the job's state after the slice *)
      si_fresh : int;  (** fresh dynamic evaluations this slice (trace misses) *)
      si_new_records : int;  (** records committed beyond the resumed prefix *)
      si_shared : int;  (** records served by the fleet memo this slice *)
    }

(** Pure weighted-deficit round-robin cursor arithmetic, shared by the
    live scheduler and the fairness property tests. *)
module Fair : sig
  type cursor = {
    c_id : string option;  (** last served id *)
    c_credit : int;  (** consecutive slices the last id may still claim *)
  }

  val start : cursor

  val next :
    weight:(string -> int) -> cursor:cursor -> string list -> (string * cursor) option
  (** Serve the cursor's id again while it has credit and is still
      runnable; otherwise advance to the first id strictly after it in
      the sorted runnable list (wrapping to the head) with fresh credit
      [weight id - 1]. Weights below 1 are clamped to 1. [None] iff the
      list is empty. *)

  val next_after : cursor:string option -> string list -> string option
  (** {!next} at uniform weight 1 (the plain round robin): the first id
      strictly after [cursor] in the sorted runnable list, wrapping to
      the head; [None] cursor (or no greater id) picks the head. [None]
      iff the list is empty. *)

  val simulate_weighted : slices:(string * int * int) list -> string list
  (** Pure replay of the scheduling loop: each [(id, slices, weight)] job
      needs the given number of slices, every round serves {!next} over
      the still-runnable ids. Returns the service order — the subject of
      the QCheck fairness bounds (burst length <= weight while others are
      runnable; between consecutive services of any job, each other job
      appears at most its weight times). *)

  val simulate : slices:(string * int) list -> string list
  (** {!simulate_weighted} at uniform weight 1. *)
end

val event_of_job : Job.t -> detail:string -> event
(** An event mirroring the job's persisted state — what a fresh [watch]
    subscriber is greeted with. *)

type t

val create :
  ?slice_records:int ->
  ?pool:Search.Pool.t ->
  ?memo:Memo.t ->
  ?find_model:(string -> Models.Registry.t) ->
  ?on_event:(event -> unit) ->
  Store.t ->
  t
(** [slice_records] (default 8, >= 1) is the fresh-record budget of one
    slice (memo-served records count too: a fully-shared slice still
    yields the thread). [pool] is the shared evaluation substrate lent to
    every slice (jobs with positive [sp_workers]); [None] runs jobs
    sequentially or on per-slice pools. [memo] is the fleet-wide
    cross-campaign evaluation memo every slice consults and feeds
    ({!Memo}); [None] turns dedup off. [find_model] (default
    {!Models.Registry.find}, raising [Not_found]) resolves model names —
    tests override it to substitute scaled-down sources. [on_event]
    observes every progress tick and state transition. *)

val store : t -> Store.t
val find_model : t -> string -> Models.Registry.t

val step : t -> slice_result
(** Run one slice of the next runnable job after the cursor
    (weighted-deficit round-robin in id order; a job's [sp_priority] is
    its weight). [Idle] when nothing is runnable or the
    scheduler is draining. Admission errors, resume mismatches and other
    per-job failures land in the job's [Failed] state — [step] never
    raises on job-level problems. *)

val drain : t -> unit
(** Request shutdown: the in-flight slice (if [drain] was called from a
    signal handler mid-slice) pauses at its next durable record, and
    subsequent [step]s return [Idle]. Safe to call from a signal
    handler. *)

val draining : t -> bool

val pause_all : t -> unit
(** Mark every [Running] job [Paused] (emitting a ["drained"] event) —
    the drain finalizer, after the last slice returned. *)

val cancel : t -> string -> (Job.t, string) result
(** Terminal-state a runnable job as [Failed "cancelled"]. Errors on
    unknown ids and already-terminal jobs. *)

val minimal_text : Core.Tuner.campaign -> Search.Delta_debug.result -> string
(** The deterministic [minimal.txt] rendering (signature, 64-bit atom
    list, declaration diff) — exposed so tests can byte-compare a service
    job's published minimal set against a solo campaign's. *)
