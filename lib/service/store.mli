(** The campaign store: durable job state under one service root.

    Layout: [ROOT/jobs/<id>/] holds [job.json] (the {!Job.t}), the job's
    [campaign/] journal directory, and — once the campaign completes —
    [summary.json] and [minimal.txt]. Every [job.json] write goes through
    [.tmp]+rename (fsynced before the rename), so state transitions are
    atomic: a crash leaves the old or the new state, never a torn file.
    Foreign files and directories anywhere under the root are ignored. *)

type t

val open_ : root:string -> t
(** Creates [ROOT/jobs/] if needed. *)

val root : t -> string

val submit :
  t -> find_model:(string -> Models.Registry.t) -> Job.spec -> (Job.t, string) result
(** Admission ({!Job.validate}), then assign the next sequential id
    ([j001], [j002], ... — 1 + the highest existing, tolerating foreign
    entries) and persist the [Queued] job. *)

val load : t -> string -> Job.t option
(** [None] for unknown ids and unreadable or malformed state files. *)

val list : t -> Job.t list
(** All loadable jobs in id order. *)

val update : t -> Job.t -> unit
(** Atomically rewrite the job's state file. *)

val job_dir : t -> string -> string
val campaign_dir : t -> string -> string
val summary_file : t -> string -> string
val minimal_file : t -> string -> string
