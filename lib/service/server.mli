(** The [prose serve] event loop.

    Single-threaded: the loop alternates between handling client
    requests (one request line per connection; see {!Proto}) and running
    {!Sched.step} slices, so campaign state is never touched
    concurrently. [watch] connections stay registered and stream status
    events as the scheduler progresses.

    SIGTERM/SIGINT drain the server: the in-flight slice pauses at its
    next durable record, every [Running] job is marked [Paused], the
    socket is unlinked and {!run} returns. A later server (or a solo
    [prose tune --resume]) continues every journal bit-identically with
    zero re-evaluation of the journaled prefix. *)

val run :
  ?slice_records:int ->
  ?shared_memo:bool ->
  ?find_model:(string -> Models.Registry.t) ->
  ?log:(string -> unit) ->
  root:string ->
  slots:int ->
  unit ->
  (unit, string) result
(** Serve the given store root on [ROOT/prose.sock] until drained.
    [slots] sizes the shared evaluation pool lent to every job slice
    ([0] = strictly sequential evaluation); job results never depend on
    it. [slice_records] (default 8) is the per-slice fresh-record
    budget. [shared_memo] (default [true]) enables the process-wide
    cross-campaign evaluation memo ({!Memo}): concurrent jobs in the
    same evaluation space evaluate each variant once fleet-wide, with
    memo-served records journaled normally plus a provenance line; job
    results never depend on it. A stale socket (no listener behind it)
    is replaced; [Error _] is returned when another server is actually
    listening. *)
