(* The multiplexing scheduler: fair round-robin time slices over the
   runnable jobs, one slice at a time on the server's single thread.

   A slice IS a journaled run/resume segment: the job's campaign is
   started (or resumed) with a Tuner checkpoint hook that raises
   Tuner.Paused once the slice's fresh-record budget is spent, the job's
   quota is reached, or a drain was requested. Because every slice
   boundary sits on a durable record and PR 4's resume invariant makes a
   resumed campaign bit-identical to an uninterrupted one, interleaving N
   jobs this way can only change *when* their work happens — each job's
   journal, minimal set and summary are byte-identical to the same
   campaign run solo through `prose tune`. Determinism is inherited, not
   re-proven: the scheduler never touches what gets recorded. *)

type event = {
  ev_job : string;
  ev_state : Job.state;
  ev_records : int;
  ev_hours : float;
  ev_best : float;
  ev_shared : int;
  ev_detail : string;
}

type slice_result =
  | Idle
  | Sliced of {
      si_job : string;
      si_state : Job.state;
      si_fresh : int;
      si_new_records : int;
      si_shared : int;
    }

(* Pure weighted-deficit round-robin cursor arithmetic, shared by the
   live scheduler and the fairness property tests. A job of weight w is
   served up to w consecutive slices per turn (its remaining credit rides
   in the cursor), then the cursor advances to the next runnable id in
   sorted wrap-around order. Weight 1 everywhere degenerates to the plain
   round robin. *)
module Fair = struct
  type cursor = { c_id : string option; c_credit : int }

  let start = { c_id = None; c_credit = 0 }

  let next ~weight ~cursor ids =
    match ids with
    | [] -> None
    | first :: _ -> (
      match cursor.c_id with
      | Some c when cursor.c_credit > 0 && List.mem c ids ->
        Some (c, { cursor with c_credit = cursor.c_credit - 1 })
      | _ ->
        let id =
          match cursor.c_id with
          | None -> first
          | Some c -> (
            match List.find_opt (fun id -> id > c) ids with
            | Some id -> id
            | None -> first)
        in
        Some (id, { c_id = Some id; c_credit = max 1 (weight id) - 1 }))

  let next_after ~cursor ids =
    Option.map fst (next ~weight:(fun _ -> 1) ~cursor:{ c_id = cursor; c_credit = 0 } ids)

  let simulate_weighted ~slices =
    let remaining = Hashtbl.create 16 in
    let weights = Hashtbl.create 16 in
    List.iter
      (fun (id, n, w) ->
        if n > 0 then Hashtbl.replace remaining id n;
        Hashtbl.replace weights id (max 1 w))
      slices;
    let weight id = match Hashtbl.find_opt weights id with Some w -> w | None -> 1 in
    let runnable () =
      List.filter_map (fun (id, _, _) -> if Hashtbl.mem remaining id then Some id else None)
        slices
      |> List.sort_uniq compare
    in
    let order = ref [] in
    let cursor = ref start in
    let rec go () =
      match next ~weight ~cursor:!cursor (runnable ()) with
      | None -> ()
      | Some (id, cursor') ->
        cursor := cursor';
        order := id :: !order;
        let n = Hashtbl.find remaining id in
        if n <= 1 then Hashtbl.remove remaining id else Hashtbl.replace remaining id (n - 1);
        go ()
    in
    go ();
    List.rev !order

  let simulate ~slices = simulate_weighted ~slices:(List.map (fun (id, n) -> (id, n, 1)) slices)
end

type t = {
  store : Store.t;
  slice_records : int;
  pool : Search.Pool.t option;
  memo : Memo.t option;  (* fleet-wide evaluation memo; None = dedup off *)
  find_model : string -> Models.Registry.t;
  on_event : event -> unit;
  mutable cursor : Fair.cursor;
  mutable draining : bool;
}

let create ?(slice_records = 8) ?pool ?memo ?(find_model = Models.Registry.find)
    ?(on_event = fun (_ : event) -> ()) store =
  if slice_records < 1 then invalid_arg "Sched.create: slice_records < 1";
  { store; slice_records; pool; memo; find_model; on_event; cursor = Fair.start;
    draining = false }

let store t = t.store
let find_model t = t.find_model
let drain t = t.draining <- true
let draining t = t.draining

let emit t ~job ~state ~records ~hours ~best ~shared ~detail =
  t.on_event
    { ev_job = job; ev_state = state; ev_records = records; ev_hours = hours; ev_best = best;
      ev_shared = shared; ev_detail = detail }

let event_of_job (j : Job.t) ~detail =
  {
    ev_job = j.Job.id;
    ev_state = j.Job.state;
    ev_records = j.Job.records;
    ev_hours = j.Job.hours;
    ev_best = j.Job.best_speedup;
    ev_shared = j.Job.shared;
    ev_detail = detail;
  }

let minimal_text (c : Core.Tuner.campaign) (r : Search.Delta_debug.result) =
  Printf.sprintf "signature %s\nhigh %s\n%s"
    (Transform.Assignment.signature r.Search.Delta_debug.minimal)
    (String.concat " " (List.map Transform.Assignment.atom_id r.Search.Delta_debug.high_set))
    (Transform.Diff.declarations c.Core.Tuner.prepared.Core.Tuner.st r.Search.Delta_debug.minimal)

let run_slice t (job0 : Job.t) =
  let id = job0.Job.id in
  let spec = job0.Job.spec in
  let dir = Store.campaign_dir t.store id in
  let job = { job0 with Job.state = Job.Running } in
  Store.update t.store job;
  let quota_hit = ref false and drained = ref false in
  let start = ref None in
  let last =
    ref
      {
        Core.Tuner.pg_records = job.Job.records;
        pg_hours = job.Job.hours;
        pg_best = job.Job.best_speedup;
      }
  in
  (* Fires on every fresh durable record (and between batches). Order of
     the stop conditions matters: quota is checked before drain and slice
     exhaustion so a quota crossing is terminal no matter when the server
     shuts down — the stopping record must be the one an injected
     preemption at the same boundary would stop at. *)
  let checkpoint (pg : Core.Tuner.progress) =
    if !start = None then start := Some pg.Core.Tuner.pg_records;
    last := pg;
    emit t ~job:id ~state:Job.Running ~records:pg.Core.Tuner.pg_records
      ~hours:pg.Core.Tuner.pg_hours ~best:pg.Core.Tuner.pg_best ~shared:job0.Job.shared
      ~detail:"";
    (match spec.Job.sp_quota_hours with
    | Some q when pg.Core.Tuner.pg_hours >= q ->
      quota_hit := true;
      raise Core.Tuner.Paused
    | Some _ | None -> ());
    if t.draining then begin
      drained := true;
      raise Core.Tuner.Paused
    end;
    match !start with
    | Some s when pg.Core.Tuner.pg_records - s >= t.slice_records -> raise Core.Tuner.Paused
    | Some _ | None -> ()
  in
  let finish (job : Job.t) ~detail ~fresh ~new_records ~slice_shared =
    Store.update t.store job;
    t.on_event (event_of_job job ~detail);
    Sliced
      { si_job = id; si_state = job.Job.state; si_fresh = fresh; si_new_records = new_records;
        si_shared = slice_shared }
  in
  match
    let model =
      match t.find_model spec.Job.sp_model with
      | m -> m
      | exception Not_found -> failwith ("unknown model " ^ spec.Job.sp_model)
    in
    let config = Job.config_of_spec spec in
    let faults = spec.Job.sp_faults in
    let algo =
      match Core.Tuner.algo_of_name spec.Job.sp_algo with
      | Some a -> a
      | None -> failwith ("unknown algorithm " ^ spec.Job.sp_algo)
    in
    (* one evaluation space per (model source, config digest): only jobs
       whose measurements are interchangeable ever share *)
    let memo =
      Option.map (fun m -> Memo.hooks m ~space:(Memo.space_key ~model ~config) ~job:id) t.memo
    in
    if Sys.file_exists (Persist.Journal.file ~dir) then
      Core.Tuner.resume ~config ~workers:spec.Job.sp_workers ?pool:t.pool ?faults ~checkpoint
        ?memo ~model ~journal:dir ()
    else begin
      match algo with
      | Core.Tuner.Brute_force_algo ->
        Core.Tuner.run_brute_force ~config ~journal:dir ?faults ~checkpoint ?memo model
      | Core.Tuner.Delta_debug_algo ->
        Core.Tuner.run_delta_debug ~config ~workers:spec.Job.sp_workers ?pool:t.pool
          ~journal:dir ?faults ~checkpoint ?memo model
      | Core.Tuner.Hierarchical_algo ->
        Core.Tuner.run_hierarchical ~config ~workers:spec.Job.sp_workers ?pool:t.pool
          ~journal:dir ?faults ~checkpoint ?memo model
    end
  with
  | campaign ->
    let pg = !last in
    let fresh = campaign.Core.Tuner.trace_stats.Search.Trace.misses in
    let slice_shared = campaign.Core.Tuner.trace_stats.Search.Trace.shared in
    let new_records =
      List.length campaign.Core.Tuner.records - campaign.Core.Tuner.preloaded
    in
    let state, detail =
      if not campaign.Core.Tuner.interrupted then begin
        Core.Export.write_file ~path:(Store.summary_file t.store id)
          (Core.Export.summary_json campaign);
        Option.iter
          (fun r ->
            Core.Export.write_file ~path:(Store.minimal_file t.store id)
              (minimal_text campaign r))
          campaign.Core.Tuner.minimal;
        (Job.Done, "finished")
      end
      else if !quota_hit then (Job.Failed "quota-exhausted", "quota-exhausted")
      else if !drained then (Job.Paused, "drained")
      else (Job.Running, "slice")
    in
    finish
      {
        job with
        Job.state;
        records = pg.Core.Tuner.pg_records;
        hours = pg.Core.Tuner.pg_hours;
        best_speedup = pg.Core.Tuner.pg_best;
        shared = job0.Job.shared + slice_shared;
      }
      ~detail ~fresh ~new_records ~slice_shared
  | exception
      (( Core.Tuner.Resume_mismatch msg
       | Persist.Journal.Corrupt msg
       | Failure msg
       | Invalid_argument msg
       | Sys_error msg ) as e) ->
    ignore (e : exn);
    finish { job with Job.state = Job.Failed msg } ~detail:"error" ~fresh:0 ~new_records:0
      ~slice_shared:0

let step t =
  if t.draining then Idle
  else
    let runnable = List.filter (fun j -> Job.runnable j.Job.state) (Store.list t.store) in
    let weight id =
      match List.find_opt (fun (j : Job.t) -> j.Job.id = id) runnable with
      | Some j -> j.Job.spec.Job.sp_priority
      | None -> 1
    in
    match
      Fair.next ~weight ~cursor:t.cursor (List.map (fun (j : Job.t) -> j.Job.id) runnable)
    with
    | None -> Idle
    | Some (id, cursor') -> (
      t.cursor <- cursor';
      match List.find_opt (fun (j : Job.t) -> j.Job.id = id) runnable with
      | Some job -> run_slice t job
      | None -> Idle)

let pause_all t =
  List.iter
    (fun (j : Job.t) ->
      if j.Job.state = Job.Running then begin
        let j = { j with Job.state = Job.Paused } in
        Store.update t.store j;
        t.on_event (event_of_job j ~detail:"drained")
      end)
    (Store.list t.store)

let cancel t id =
  match Store.load t.store id with
  | None -> Error ("no such job " ^ id)
  | Some j ->
    if Job.terminal j.Job.state then Error (id ^ " is already " ^ Job.state_name j.Job.state)
    else begin
      let j = { j with Job.state = Job.Failed "cancelled" } in
      Store.update t.store j;
      t.on_event (event_of_job j ~detail:"cancelled");
      Ok j
    end
