(** One tuning request in the service's queue.

    A job bundles what a tenant asked the service to tune — model, search
    algorithm and the result-affecting settings `prose tune` exposes —
    with a quota in simulated cluster-hours and the durable progress the
    scheduler has made on it. Serialized via {!Persist.Json} (floats as
    bit-exact hex strings). *)

type spec = {
  sp_model : string;  (** registry name, e.g. ["funarc"] *)
  sp_algo : string;  (** ["brute_force"], ["delta_debug"] or ["hierarchical"] *)
  sp_seed : int;
  sp_workers : int;
      (** requested evaluation parallelism; lands in the journal header
          exactly as a solo [prose tune --workers] run's would (results
          never depend on it) *)
  sp_max_variants : int option;
  sp_whole_model : bool;
  sp_quota_hours : float option;
      (** per-job budget in simulated cluster hours; the scheduler stops
          the job (terminal [Failed "quota-exhausted"]) at the first
          durable record whose accumulated hours reach it — the same
          stopping record an injected preemption at that boundary
          produces. [None] = unlimited *)
  sp_faults : Core.Cluster.Faults.spec option;
      (** deterministic fault injection for this job's campaign; specs
          with a preemption boundary are admission-rejected (stopping jobs
          is the scheduler's prerogative) *)
  sp_tenant : string;  (** accounting label, free-form *)
  sp_priority : int;
      (** scheduling weight (>= 1, default 1): consecutive slices the
          weighted-deficit round-robin grants per turn. Absent on
          pre-PR-10 state files, which parse as weight 1. Never
          result-affecting — only {e when} a job's slices run. *)
}

type state =
  | Queued  (** admitted, no slice run yet *)
  | Running  (** has a journal; runnable *)
  | Paused  (** drained by server shutdown; runnable, resumes bit-identically *)
  | Done  (** campaign finished; summary and minimal set published *)
  | Failed of string  (** terminal: admission/config error, cancel, or quota *)

type t = {
  id : string;  (** ["j001"], ["j002"], ... *)
  spec : spec;
  state : state;
  records : int;  (** committed journal records at the last checkpoint *)
  hours : float;  (** simulated cluster hours consumed, incl. fault losses *)
  best_speedup : float;
  shared : int;
      (** cumulative records served by the fleet-wide evaluation memo
          (provenance-annotated in the journal); 0 with the memo off *)
}

val make : id:string -> spec -> t
(** A fresh [Queued] job with zeroed progress. *)

val state_name : state -> string
(** ["queued"], ["running"], ["paused"], ["done"], ["failed"]. *)

val terminal : state -> bool
val runnable : state -> bool
(** Runnable = [Queued], [Running] or [Paused]. *)

val config_of_spec : spec -> Core.Config.t
(** The exact {!Core.Config.t} [prose tune] builds from the same
    settings, so a job's journal carries the same config digest as the
    solo run it must be byte-identical to. *)

val validate : find_model:(string -> Models.Registry.t) -> spec -> (unit, string) result
(** Admission control: known model ([find_model] raising [Not_found]
    rejects) and algorithm, non-negative workers, positive quota,
    variant budget and priority, and no job-supplied preemption
    boundary. *)

val spec_json : spec -> Persist.Json.t
val to_json : t -> Persist.Json.t
val spec_of_json : Persist.Json.t -> spec
(** Raises an internal exception on malformed input — use {!spec_result}
    at trust boundaries. *)

val spec_result : Persist.Json.t -> (spec, string) result
val of_json : Persist.Json.t -> (t, string) result
