(** Process-wide cross-campaign evaluation memo.

    One table per server process, shared by every job the scheduler
    multiplexes: pre-fault measurements keyed by {e evaluation space} ×
    signature, where a space ({!space_key}) is the equivalence class of
    campaigns whose measurements are interchangeable — same model source
    (name + content digest) and same result-affecting configuration
    ({!Core.Config.digest}: includes the seed, excludes fault specs,
    worker counts and execution strategy). N concurrent jobs in one space
    evaluate each variant once fleet-wide; jobs in different spaces never
    share. First write wins under the mutex. The memo is in-memory only —
    a restarted server starts empty and jobs resume from their own
    journals, re-sharing fresh work as it happens. *)

type t

type stats = {
  entries : int;  (** distinct (space, signature) measurements stored *)
  finds : int;  (** lookup calls *)
  hits : int;  (** lookups answered *)
  publishes : int;  (** publish calls (first write per key wins) *)
}

val create : unit -> t

val space_key : model:Models.Registry.t -> config:Core.Config.t -> string

val find :
  t -> space:string -> signature:string -> (Search.Variant.measurement * string) option
(** The stored pre-fault measurement and its donor job id, if any. *)

val publish :
  t -> space:string -> donor:string -> signature:string -> Search.Variant.measurement -> unit

val hooks : t -> space:string -> job:string -> Core.Tuner.memo_hooks
(** The {!Core.Tuner.memo_hooks} pair a slice of [job] plugs into its
    campaign runner: finds answered from this memo (never citing [job]
    itself as donor), publishes attributed to [job]. *)

val stats : t -> stats
