(* The serve loop: a single-threaded event loop alternating between
   accepting/handling client requests and running scheduler slices.

   Requests are handled between slices (a connection is one request
   line), so the campaign state is never touched concurrently; watch
   connections stay registered and receive event lines as the
   scheduler's checkpoint hook fires. SIGTERM/SIGINT set the drain flag:
   the in-flight slice pauses at its next durable record (the checkpoint
   sees the flag), every running job is marked paused, the socket is
   removed, and the process exits cleanly — a later server resumes every
   journal bit-identically. *)

open Persist

type watcher = { w_job : string; w_ic : in_channel; w_oc : out_channel }

type t = {
  store : Store.t;
  find_model : string -> Models.Registry.t;
  mutable sched : Sched.t option;  (* set right after creation (on_event ties the knot) *)
  mutable watchers : watcher list;
  mutable stop : bool;
  log : string -> unit;
}

let close_watcher w =
  close_out_noerr w.w_oc;
  close_in_noerr w.w_ic

let deliver t ev =
  let line = Json.to_string (Proto.event_json ev) ^ "\n" in
  t.watchers <-
    List.filter
      (fun w ->
        if w.w_job <> ev.Sched.ev_job then true
        else
          match
            output_string w.w_oc line;
            flush w.w_oc
          with
          | () ->
            if Job.terminal ev.Sched.ev_state then begin
              close_watcher w;
              false
            end
            else true
          | exception Sys_error _ ->
            close_watcher w;
            false)
      t.watchers

let handle t fd =
  (* a stalled or hostile client may not block the scheduler forever *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0 with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with Unix.Unix_error _ -> ());
  let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
  let close () =
    close_out_noerr oc;
    close_in_noerr ic
  in
  let respond j = try Proto.send oc j with Sys_error _ -> () in
  let sched = Option.get t.sched in
  match input_line ic with
  | exception (End_of_file | Sys_error _) -> close ()
  | line -> (
    match Proto.request_of_string line with
    | Error msg ->
      respond (Proto.error msg);
      close ()
    | Ok Proto.Ping ->
      respond (Proto.ok []);
      close ()
    | Ok (Proto.Submit spec) ->
      (match Store.submit t.store ~find_model:t.find_model spec with
      | Ok job ->
        t.log (Printf.sprintf "submit %s: %s %s (tenant %s)" job.Job.id spec.Job.sp_model
                 spec.Job.sp_algo spec.Job.sp_tenant);
        respond (Proto.ok [ ("job", Job.to_json job) ])
      | Error m -> respond (Proto.error ("rejected: " ^ m)));
      close ()
    | Ok Proto.Jobs ->
      respond (Proto.ok [ ("jobs", Json.Arr (List.map Job.to_json (Store.list t.store))) ]);
      close ()
    | Ok (Proto.Show id) ->
      (match Store.load t.store id with
      | Some job -> respond (Proto.ok [ ("job", Job.to_json job) ])
      | None -> respond (Proto.error ("no such job " ^ id)));
      close ()
    | Ok (Proto.Cancel id) ->
      (match Sched.cancel sched id with
      | Ok job ->
        t.log (Printf.sprintf "cancel %s" id);
        respond (Proto.ok [ ("job", Job.to_json job) ])
      | Error m -> respond (Proto.error m));
      close ()
    | Ok (Proto.Watch id) -> (
      match Store.load t.store id with
      | None ->
        respond (Proto.error ("no such job " ^ id));
        close ()
      | Some job ->
        respond (Proto.ok [ ("job", Job.to_json job) ]);
        if Job.terminal job.Job.state then begin
          (try Proto.send oc (Proto.event_json (Sched.event_of_job job ~detail:"")) with
          | Sys_error _ -> ());
          close ()
        end
        else t.watchers <- { w_job = id; w_ic = ic; w_oc = oc } :: t.watchers))

let rec accept_pending t sock =
  match Unix.select [ sock ] [] [] 0.0 with
  | [], _, _ -> ()
  | _ :: _, _, _ -> (
    match Unix.accept sock with
    | fd, _ ->
      handle t fd;
      accept_pending t sock
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let wait_activity sock =
  match Unix.select [ sock ] [] [] 0.1 with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run ?(slice_records = 8) ?(shared_memo = true) ?(find_model = Models.Registry.find)
    ?(log = fun _ -> ()) ~root ~slots () =
  let store = Store.open_ ~root in
  let path = Proto.socket_file ~root in
  let stale_live =
    Sys.file_exists path
    &&
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      Unix.close fd;
      true
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      false
  in
  if stale_live then Error (Printf.sprintf "a server is already listening on %s" path)
  else begin
    let t = { store; find_model; sched = None; watchers = []; stop = false; log } in
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 16;
    let pool = if slots > 0 then Some (Search.Pool.create ~workers:slots) else None in
    let memo = if shared_memo then Some (Memo.create ()) else None in
    let sched =
      Sched.create ~slice_records ?pool ?memo ~find_model ~on_event:(fun ev -> deliver t ev)
        store
    in
    t.sched <- Some sched;
    let on_signal =
      Sys.Signal_handle
        (fun _ ->
          t.stop <- true;
          Sched.drain sched)
    in
    Sys.set_signal Sys.sigterm on_signal;
    Sys.set_signal Sys.sigint on_signal;
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    log (Printf.sprintf "serving %s (%d evaluation slots, %d records per slice)" root slots
           slice_records);
    Fun.protect
      ~finally:(fun () ->
        List.iter close_watcher t.watchers;
        t.watchers <- [];
        (try Unix.close sock with Unix.Unix_error _ -> ());
        (try Sys.remove path with Sys_error _ -> ());
        Option.iter Search.Pool.shutdown pool)
      (fun () ->
        while not t.stop do
          accept_pending t sock;
          if not t.stop then begin
            match Sched.step sched with
            | Sched.Sliced { si_job; si_state; si_fresh; si_new_records; si_shared } ->
              log
                (Printf.sprintf "slice %s: +%d records (%d fresh, %d memo-shared) -> %s"
                   si_job si_new_records si_fresh si_shared (Job.state_name si_state))
            | Sched.Idle -> wait_activity sock
          end
        done;
        (* drain: the in-flight slice already paused at a durable record *)
        Sched.pause_all sched;
        log "drained; all running jobs paused");
    Ok ()
  end
