(* A tuning request as the service persists it: what to tune (model +
   search settings, exactly the knobs `prose tune` exposes that affect
   results) plus how much simulated cluster time the tenant may burn. *)

open Persist

type spec = {
  sp_model : string;
  sp_algo : string;
  sp_seed : int;
  sp_workers : int;
  sp_max_variants : int option;
  sp_whole_model : bool;
  sp_quota_hours : float option;
  sp_faults : Core.Cluster.Faults.spec option;
  sp_tenant : string;
  sp_priority : int;  (* scheduling weight: slices per round-robin turn *)
}

type state = Queued | Running | Paused | Done | Failed of string

type t = {
  id : string;
  spec : spec;
  state : state;
  records : int;
  hours : float;
  best_speedup : float;
  shared : int;  (* records served by the fleet memo, cumulative *)
}

let make ~id spec =
  { id; spec; state = Queued; records = 0; hours = 0.0; best_speedup = 0.0; shared = 0 }

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Paused -> "paused"
  | Done -> "done"
  | Failed _ -> "failed"

let terminal = function Done | Failed _ -> true | Queued | Running | Paused -> false
let runnable = function Queued | Running | Paused -> true | Done | Failed _ -> false

(* The exact configuration `prose tune` builds from the same settings —
   anything less and the journal's config digest would diverge from the
   solo run the service's byte-identity invariant is stated against. *)
let config_of_spec s =
  {
    Core.Config.default with
    Core.Config.seed = s.sp_seed;
    max_variants = s.sp_max_variants;
    mode = (if s.sp_whole_model then Core.Config.Whole_model_guided else Core.Config.Hotspot_guided);
  }

let validate ~find_model s =
  if Core.Tuner.algo_of_name s.sp_algo = None then
    Error (Printf.sprintf "unknown algorithm %S (brute_force, delta_debug, hierarchical)" s.sp_algo)
  else if s.sp_workers < 0 then Error "workers must be >= 0"
  else if (match s.sp_max_variants with Some n -> n < 1 | None -> false) then
    Error "max-variants must be >= 1"
  else if (match s.sp_quota_hours with Some q -> not (q > 0.0) | None -> false) then
    Error "quota must be positive"
  else if s.sp_priority < 1 then Error "priority must be >= 1"
  else
    match s.sp_faults with
    | Some f when f.Core.Cluster.Faults.preempt_at_hours <> None ->
      (* the scheduler is the thing that decides when a job stops running;
         a job-supplied preemption boundary would fight the quota clock
         and, below the quota, pin the job in a never-progressing
         resume loop *)
      Error "job fault specs may not set a preemption boundary; use a quota instead"
    | _ -> (
      match find_model s.sp_model with
      | (_ : Models.Registry.t) -> Ok ()
      | exception Not_found -> Error (Printf.sprintf "unknown model %S" s.sp_model))

(* ------------------------------------------------------------------ *)
(* JSON codecs (Persist.Json; hex floats for bit-exact round trips)    *)

let hex = Json.hex_float

let faults_json (f : Core.Cluster.Faults.spec) =
  Json.Obj
    [
      ("seed", Json.Num (float_of_int f.Core.Cluster.Faults.fault_seed));
      ("transient", Json.Str (hex f.Core.Cluster.Faults.transient_prob));
      ("node", Json.Str (hex f.Core.Cluster.Faults.node_failure_prob));
      ("retries", Json.Num (float_of_int f.Core.Cluster.Faults.max_retries));
      ( "preempt",
        match f.Core.Cluster.Faults.preempt_at_hours with
        | Some h -> Json.Str (hex h)
        | None -> Json.Null );
    ]

let spec_json s =
  Json.Obj
    [
      ("model", Json.Str s.sp_model);
      ("algo", Json.Str s.sp_algo);
      ("seed", Json.Num (float_of_int s.sp_seed));
      ("workers", Json.Num (float_of_int s.sp_workers));
      ( "max_variants",
        match s.sp_max_variants with Some n -> Json.Num (float_of_int n) | None -> Json.Null );
      ("whole_model", Json.Bool s.sp_whole_model);
      ( "quota_hours",
        match s.sp_quota_hours with Some h -> Json.Str (hex h) | None -> Json.Null );
      ("faults", match s.sp_faults with Some f -> faults_json f | None -> Json.Null);
      ("tenant", Json.Str s.sp_tenant);
      ("priority", Json.Num (float_of_int s.sp_priority));
    ]

let to_json j =
  Json.Obj
    [
      ("id", Json.Str j.id);
      ("spec", spec_json j.spec);
      ("state", Json.Str (state_name j.state));
      ("error", match j.state with Failed m -> Json.Str m | _ -> Json.Null);
      ("records", Json.Num (float_of_int j.records));
      ("hours", Json.Str (hex j.hours));
      ("best_speedup", Json.Str (hex j.best_speedup));
      ("shared", Json.Num (float_of_int j.shared));
    ]

exception Bad of string

let get j k = match Json.member k j with Some v -> v | None -> raise (Bad ("missing " ^ k))
let need k = function Some v -> v | None -> raise (Bad ("ill-typed " ^ k))
let get_str j k = need k (Json.to_str (get j k))
let get_int j k = need k (Json.to_int (get j k))
let get_bool j k = need k (Json.to_bool (get j k))
let get_hex j k = Json.of_hex_float (get_str j k)
let get_opt j k f = match Json.member k j with None | Some Json.Null -> None | Some v -> Some (f k v)

let faults_of_json j =
  {
    Core.Cluster.Faults.fault_seed = get_int j "seed";
    transient_prob = get_hex j "transient";
    node_failure_prob = get_hex j "node";
    max_retries = get_int j "retries";
    preempt_at_hours =
      get_opt j "preempt" (fun k v -> Json.of_hex_float (need k (Json.to_str v)));
  }

let spec_of_json j =
  {
    sp_model = get_str j "model";
    sp_algo = get_str j "algo";
    sp_seed = get_int j "seed";
    sp_workers = get_int j "workers";
    sp_max_variants = get_opt j "max_variants" (fun k v -> need k (Json.to_int v));
    sp_whole_model = get_bool j "whole_model";
    sp_quota_hours = get_opt j "quota_hours" (fun k v -> Json.of_hex_float (need k (Json.to_str v)));
    sp_faults = get_opt j "faults" (fun _ v -> faults_of_json v);
    sp_tenant = get_str j "tenant";
    (* absent on pre-PR-10 state files: plain round-robin weight *)
    sp_priority =
      (match get_opt j "priority" (fun k v -> need k (Json.to_int v)) with
      | Some p -> p
      | None -> 1);
  }

let state_of_json j =
  match get_str j "state" with
  | "queued" -> Queued
  | "running" -> Running
  | "paused" -> Paused
  | "done" -> Done
  | "failed" ->
    Failed (match get_opt j "error" (fun k v -> need k (Json.to_str v)) with Some m -> m | None -> "")
  | s -> raise (Bad ("unknown state " ^ s))

let spec_result j =
  match spec_of_json j with s -> Ok s | exception Bad m -> Error m

let of_json j =
  match
    {
      id = get_str j "id";
      spec = spec_of_json (get j "spec");
      state = state_of_json j;
      records = get_int j "records";
      hours = get_hex j "hours";
      best_speedup = get_hex j "best_speedup";
      shared =
        (match get_opt j "shared" (fun k v -> need k (Json.to_int v)) with
        | Some n -> n
        | None -> 0);
    }
  with
  | j -> Ok j
  | exception Bad m -> Error m
