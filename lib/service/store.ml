(* Durable job state under one service root:

     ROOT/jobs/<id>/job.json      the Job.t (atomic .tmp+rename writes)
     ROOT/jobs/<id>/campaign/     the job's journal directory
     ROOT/jobs/<id>/summary.json  published on completion
     ROOT/jobs/<id>/minimal.txt   published on completion (searches only)

   Every state transition rewrites job.json atomically, so a crash at any
   moment leaves either the old or the new state — never a torn file. The
   journal inside campaign/ stays the durable source of search truth;
   job.json only carries queue state and progress gauges. *)

open Persist

type t = { root : string }

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let jobs_dir t = Filename.concat t.root "jobs"
let job_dir t id = Filename.concat (jobs_dir t) id
let job_file t id = Filename.concat (job_dir t id) "job.json"
let campaign_dir t id = Filename.concat (job_dir t id) "campaign"
let summary_file t id = Filename.concat (job_dir t id) "summary.json"
let minimal_file t id = Filename.concat (job_dir t id) "minimal.txt"

let open_ ~root =
  let t = { root } in
  mkdir_p (jobs_dir t);
  t

let root t = t.root

let atomic_write path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc text;
      output_char oc '\n';
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let update t (job : Job.t) = atomic_write (job_file t job.Job.id) (Json.to_string (Job.to_json job))

let load t id =
  match open_in_bin (job_file t id) with
  | exception Sys_error _ -> None
  | ic -> (
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Job.of_json (Json.parse s) with
    | Ok j -> Some j
    | Error _ -> None
    | exception Json.Parse_error _ -> None)

(* A job id is j<N>; anything else in jobs/ is foreign and ignored, so
   the root tolerates editor droppings, lost+found, etc. *)
let id_number id =
  if String.length id >= 2 && id.[0] = 'j' then int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

let ids t =
  match Sys.readdir (jobs_dir t) with
  | exception Sys_error _ -> []
  | entries ->
    Array.to_list entries
    |> List.filter (fun id -> id_number id <> None && Sys.file_exists (job_file t id))
    |> List.sort compare

let list t = List.filter_map (load t) (ids t)

let next_id t =
  let max_n =
    match Sys.readdir (jobs_dir t) with
    | exception Sys_error _ -> 0
    | entries ->
      Array.fold_left
        (fun acc id -> match id_number id with Some n -> max acc n | None -> acc)
        0 entries
  in
  Printf.sprintf "j%03d" (max_n + 1)

let submit t ~find_model spec =
  match Job.validate ~find_model spec with
  | Error _ as e -> e
  | Ok () ->
    let id = next_id t in
    mkdir_p (job_dir t id);
    let job = Job.make ~id spec in
    update t job;
    Ok job
