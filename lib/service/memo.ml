(* Process-wide cross-campaign evaluation memo: pre-fault measurements
   keyed by (evaluation space, signature), shared by every job the
   scheduler multiplexes. An evaluation space is one equivalence class of
   campaigns whose measurements are interchangeable: same model source
   and same result-affecting configuration (Config.digest, which includes
   the seed — speedup noise is seeded — and excludes fault specs, worker
   counts and execution strategy, which never change a pre-fault
   measurement). First write wins under the mutex, so the table's
   contents never depend on scheduling. *)

type entry = { e_meas : Search.Variant.measurement; e_donor : string }

type t = {
  lock : Mutex.t;
  tbl : (string * string, entry) Hashtbl.t;  (* (space, signature) *)
  mutable m_finds : int;
  mutable m_hits : int;
  mutable m_publishes : int;
}

type stats = { entries : int; finds : int; hits : int; publishes : int }

let create () =
  { lock = Mutex.create (); tbl = Hashtbl.create 1024; m_finds = 0; m_hits = 0;
    m_publishes = 0 }

let space_key ~(model : Models.Registry.t) ~config =
  model.Models.Registry.name
  ^ "/"
  ^ Digest.to_hex (Digest.string model.Models.Registry.source)
  ^ "/"
  ^ Core.Config.digest config

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~space ~signature =
  locked t (fun () ->
      t.m_finds <- t.m_finds + 1;
      match Hashtbl.find_opt t.tbl (space, signature) with
      | Some e ->
        t.m_hits <- t.m_hits + 1;
        Some (e.e_meas, e.e_donor)
      | None -> None)

let publish t ~space ~donor ~signature meas =
  locked t (fun () ->
      t.m_publishes <- t.m_publishes + 1;
      let key = (space, signature) in
      if not (Hashtbl.mem t.tbl key) then
        Hashtbl.add t.tbl key { e_meas = meas; e_donor = donor })

let hooks t ~space ~job : Core.Tuner.memo_hooks =
  {
    Core.Tuner.memo_find =
      (fun ~signature ->
        match find t ~space ~signature with
        (* a job never cites itself as donor: its own fresh evaluations
           are already in its trace cache, but a resumed job may probe
           signatures it published in an earlier slice *)
        | Some (_, donor) when donor = job -> None
        | r -> r);
    memo_publish = (fun ~signature m -> publish t ~space ~donor:job ~signature m);
  }

let stats t =
  locked t (fun () ->
      { entries = Hashtbl.length t.tbl; finds = t.m_finds; hits = t.m_hits;
        publishes = t.m_publishes })
