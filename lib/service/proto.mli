(** The service wire protocol: line-delimited JSON over a Unix-domain
    socket at [ROOT/prose.sock].

    Every connection carries exactly one request line; the server answers
    with one response line and — for [watch] — a stream of event lines.

    {2 Requests}

    One JSON object per line, selected by ["cmd"]:

    - [{"cmd":"ping"}] — liveness probe.
    - [{"cmd":"submit","spec":SPEC}] — admit a job; [SPEC] is
      {!Job.spec_json} (model, algo, seed, workers, max_variants,
      whole_model, quota_hours, faults, tenant; floats as [%h] hex
      strings).
    - [{"cmd":"jobs"}] — list all jobs.
    - [{"cmd":"show","id":"j001"}] — one job's state.
    - [{"cmd":"cancel","id":"j001"}] — terminal-state a runnable job.
    - [{"cmd":"watch","id":"j001"}] — subscribe to the job's status
      events.

    {2 Responses}

    One JSON object per line: [{"ok":true, ...}] with a ["job"] or
    ["jobs"] payload ({!Job.to_json}), or [{"ok":false,"error":MSG}].

    {2 Events}

    After a successful [watch] response the connection stays open and
    receives one event object per line:
    [{"event":"status","job":ID,"state":S,"error":E,"records":N,
    "hours":H,"best":B,"detail":D}] — [detail] is [""] for progress
    ticks, else the transition kind (["slice"], ["drained"],
    ["finished"], ["quota-exhausted"], ["cancelled"], ["error"]). The
    server closes the connection after a terminal ([done]/[failed])
    event. *)

type request =
  | Ping
  | Submit of Job.spec
  | Jobs
  | Show of string
  | Cancel of string
  | Watch of string

val socket_file : root:string -> string
(** [ROOT/prose.sock]. *)

val request_json : request -> Persist.Json.t
val request_of_string : string -> (request, string) result
(** Parse one request line (never raises). *)

val ok : (string * Persist.Json.t) list -> Persist.Json.t
(** [{"ok":true, ...fields}]. *)

val error : string -> Persist.Json.t
(** [{"ok":false,"error":msg}]. *)

val is_ok : Persist.Json.t -> bool
val error_of : Persist.Json.t -> string

val event_json : Sched.event -> Persist.Json.t
val event_of_json : Persist.Json.t -> Sched.event option

val send : out_channel -> Persist.Json.t -> unit
(** One JSON line, flushed. *)

val recv : in_channel -> Persist.Json.t option
(** One JSON line; [None] on EOF or unparsable input. *)

val connect : root:string -> (in_channel * out_channel) option
(** Connect to the root's socket; [None] when absent or refusing. *)

val with_client : root:string -> (in_channel * out_channel -> 'a) -> 'a option
(** {!connect}, run, close. [None] when no server is reachable. *)

val roundtrip : root:string -> request -> ((Persist.Json.t, string) result) option
(** One request/response exchange: [None] when no server is reachable,
    [Some (Ok json)] on an [ok] response, [Some (Error msg)] otherwise. *)
