(** Lowering of a typechecked program to a slot-resolved IR, plus an
    evaluator over that IR.

    [lower] resolves every name once: locals and dummies become integer
    slots into a per-frame cell array, module globals and parameters
    become indices into program-wide arrays, callees become indices into
    a per-body link table, and per-site cost tables are precomputed for
    each (vector mode, real kind) pair. [run] then executes the IR with
    bit-identical observable behavior to [Interp.run] on the
    unparse→reparse round-trip of the same program: same status, same
    cost (float accumulation order preserved), same timers, records,
    printed lines, and breakdown.

    The optional [Cache.t] memoizes lowered procedures across variants
    keyed by name + the precision signature of every declaration the
    procedure can observe (its own scope, all module scopes, and all
    transitively reachable callees). It is domain-safe.

    The IR, the runtime context and the building blocks of the evaluator
    are exposed concretely so that [Compile] — the closure-compilation
    backend — can translate the same IR into pre-dispatched closures
    while sharing every piece of observable semantics (charges, traps,
    timers, binding rules) with this evaluator. Anything not needed by
    [Compile] stays private. *)

(** {1 The IR} *)

type vmode = Vscalar | Vnarrow | Vfull

val mode_idx : vmode -> int
val kind_idx : Fortran.Ast.real_kind -> int

type ref_ =
  | Rlocal of int  (** slot in the current frame *)
  | Rglobal of int  (** slot in the per-run global store *)
  | Rparam of int  (** slot in the lazily-evaluated parameter store *)
  | Rerr of string  (** name resolution failed: trap when touched *)

type expr =
  | Elit of Value.v
  | Evar of { name : string; r : ref_ }
  | Eneg of { e : expr; costs : float array }
  | Enot of expr
  | Ebin of {
      op : Fortran.Ast.binop;
      a : expr;
      b : expr;
      exempt : bool;  (** either operand is a real literal: casting folds *)
      costs : float array;  (** op table ([[||]] for compares and logic) *)
      powmul : float array;  (** Mul table for strength-reduced powers *)
    }
  | Earr of { name : string; r : ref_; idx : expr array; mem : float array }
  | Ecall of call_site
  | Eintr of intr
  | Etrap of string

and intr =
  | Iabs of { e : expr; costs : float array }
  | Ielem of { name : string; fn : float -> float; e : expr; costs : float array }
  | Iminmax of { name : string; args : expr array; costs : float array }
  | Imod of { a : expr; b : expr; costs : float array }
  | Iatan2 of { a : expr; b : expr; costs : float array }
  | Isign of { a : expr; b : expr; costs : float array }
  | Ireal of { e : expr; kind : Fortran.Ast.real_kind option }
  | Ireal_bad of { e : expr; k : int }
  | Idble of expr
  | Iicvt of { which : int; e : expr }
  | Idot of { an : string; ar : ref_; bn : string; br : ref_ }
  | Ireduce of { name : string; rn : string; r : ref_ }
  | Isize of { rn : string; r : ref_; dim : expr option }
  | Iinq of { name : string; e : expr }

and call_site = {
  cs_name : string;
  cs_callee : int;  (** index into the owning body's callee-name table *)
  cs_args : arg array;
  cs_arity_trap : string option;
}

and arg =
  | Aref of { name : string; r : ref_ }
  | Aval of { e : expr; lit : bool; co : copy_out option }

and copy_out = { co_name : string; co_r : ref_; co_idx : expr array }

type lhs =
  | Lsc of { name : string; r : ref_; rhs_lit : bool }
  | Larr of { name : string; r : ref_; idx : expr array; rhs_lit : bool }

type stmt =
  | Sassign of { tgt : lhs; rhs : expr }
  | Scall of call_site
  | Sallreduce of { send : expr; send_lit : bool; rn : string; recv : ref_; op : string }
  | Sbarrier
  | Sif of { arms : (expr * stmt array) array; els : stmt array }
  | Sdo of {
      vn : string;
      var : ref_;
      from_ : expr;
      to_ : expr;
      step : expr option;
      mode : vmode;
      iter_overhead : float;
      body : stmt array;
    }
  | Sdo_while of { cond : expr; body : stmt array }
  | Sselect of { selector : expr; arms : (case array * stmt array) array; default : stmt array }
  | Sexit
  | Scycle
  | Sreturn
  | Sstop of string
  | Sprint of expr array
  | Strap of string

and case =
  | Cval of expr
  | Crange of expr option * expr option

type dummy = {
  d_name : string;
  d_slot : int;
  d_base : Fortran.Ast.base_type;
  d_is_array : bool;
  d_writable : bool;
  d_undeclared : bool;
}

type local = { l_slot : int; l_base : Fortran.Ast.base_type; l_dims : expr array }
type initr = { i_name : string; i_slot : int; i_rhs : expr; i_lit : bool }

type proc_ir = {
  p_name : string;
  p_key : string;  (** cache key when lowered through a [Cache]; [""] otherwise *)
  p_result : int;  (** result slot; -1 = subroutine; -2 = function, no cell *)
  p_is_function : bool;
  p_is_wrapper : bool;
  p_inlinable : bool;
  p_nslots : int;
  p_dummies : dummy array;
  p_locals : local array;
  p_inits : initr array;
  p_body : stmt array;
  p_callees : string array;
}

type global = {
  g_slot : int;
  g_unit : string;
  g_name : string;
  g_base : Fortran.Ast.base_type;
  g_extents : int array option;
  g_init : (expr * bool) option;
}

type param = { pa_name : string; pa_base : Fortran.Ast.base_type; pa_init : expr option }

type program = {
  machine : Machine.t;
  has_main : bool;
  procs : proc_ir array;
  links : int array array;
  main_body : stmt array;
  main_key : string;  (** cache key of the main pseudo-procedure; [""] uncached *)
  main_links : int array;
  aux_links : int array;
  globals : global array;
  nglobals : int;
  params : param array;
  conv_costs : float array;
}

module Cache : sig
  type t

  val create : unit -> t

  val stats : t -> int * int
  (** [(hits, misses)] since creation. The counters are atomics
      aggregated across every domain that used the cache, so the read is
      never torn — but speculative evaluation can still make live
      traffic schedule-dependent; deterministic per-campaign diagnostics
      are derived by replaying committed records over {!cache_keys}. *)
end

val cache_keys : Fortran.Symtab.t -> string list
(** The cache keys one [lower ?cache] pass over this (already
    transformed) program requests, in request order: one per procedure,
    plus the ["<main>"] pseudo-procedure when a main program exists.
    [Compile.compile ?cache] requests exactly the same keys. Computed
    statically — nothing is lowered — so callers can account compile
    traffic for a variant without running it. *)

val lower :
  ?cache:Cache.t ->
  ?wrapper_owner:(string -> string option) ->
  machine:Machine.t ->
  Fortran.Symtab.t ->
  program
(** [wrapper_owner name] returns [Some orig] when [name] is a generated
    precision wrapper for [orig]; wrappers are exempt from timers and
    inlining, and pay [wrapper_overhead] (mirrors [Interp.run]'s
    [~wrapper_owner]). *)

val run : ?budget:float -> program -> Interp.outcome
(** Execute the lowered program. [budget] bounds the abstract cost; the
    run raises an internal timeout into [Interp.Timed_out] exactly as
    [Interp.run] does. *)

(** {1 Evaluator internals, shared with [Compile]}

    Everything below is the machinery [run] is built from. The compiled
    backend reuses it wholesale so that both backends trap, charge and
    record identically by construction. *)

exception Rreturn
exception Rexit
exception Rcycle
exception Rstop of string
exception Rtrap of string
exception Rtimeout

val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a
val trap_s : string -> 'a

val ci_flops : int
val ci_memory : int
val ci_convert : int
val ci_call : int
val ci_reduction : int
val ci_loop : int

type rframe = {
  pname : string;
  cells : Value.cell option array;
  flinks : int array;
}

type fbox = { mutable fv : float }
(** A single-field all-float record stores its float flat, so updating
    [fv] in place allocates nothing — unlike a [mutable float] field of
    a mixed record, which boxes on every store. The cost accumulator is
    the hottest write in an evaluation. *)

type rctx = {
  rprocs : proc_ir array;
  rlinks : int array array;
  raux : int array;
  rmachine : Machine.t;
  rtimers : Timers.t;
  raccs : Timers.acc option array;
      (** per-procedure timer accumulators, resolved on first entry *)
  rcost : fbox;
  rbudget : float;
  rglobals : Value.cell array;
  rparams : Value.v option array;
  rparam_defs : param array;
  rconv : float array;
  rmemtab : float array;
  mutable rvec : int;
  mutable rrecords : (string * float) list;  (** reversed *)
  mutable rprinted : string list;  (** reversed *)
  mutable rdepth : int;
  mutable rcharging : bool;
  mutable rin_wrapper : bool;
  rbreakdown : float array;
}

val charge : rctx -> int -> float -> unit
val check_budget : rctx -> unit

val proc_acc : rctx -> int -> string -> Timers.acc
(** Timer accumulator of the proc at index [pidx], cached in [raccs]
    (lazily, so never-entered procedures stay out of the snapshot). *)

val mk_realf : Fortran.Ast.real_kind -> float -> float
(** Round to [kind], trapping on NaN/overflow with the interpreter's
    messages; returns the rounded float unboxed. *)

val mk_real : Fortran.Ast.real_kind -> float -> Value.v
val as_float : Value.v -> float
val as_int : Value.v -> int
val as_bool : Value.v -> bool
val value_kind : Value.v -> Fortran.Ast.real_kind option
val promote_kind :
  Fortran.Ast.real_kind option ->
  Fortran.Ast.real_kind option ->
  Fortran.Ast.real_kind option

val alloc_cell : Fortran.Ast.base_type -> int list -> Value.cell
val force_param : rctx -> int -> Value.v
val resolve_g : rctx -> rframe -> string -> ref_ -> [ `Cell of Value.cell | `Param of Value.v ]
val scalar_ref : rctx -> rframe -> string -> ref_ -> Value.v ref

val eval_expr : rctx -> rframe -> expr -> Value.v

val bin_values :
  rctx ->
  Fortran.Ast.binop ->
  exempt:bool ->
  costs:float array ->
  powmul:float array ->
  Value.v ->
  Value.v ->
  Value.v
(** The value-level tail of a non-short-circuit binary operation: the
    conversion charge, the op charge and the computation, given both
    operand values. *)

val store_indexed :
  rctx -> rframe -> string -> Value.cell -> expr array -> lit:bool -> Value.v -> unit

val scalar_store : rctx -> Value.v ref -> Value.v -> lit:bool -> unit

val exec_call : rctx -> rframe -> call_site -> Value.v option

val bind_arg_ref :
  rctx ->
  rframe ->
  Value.cell option array ->
  callee:string ->
  d:dummy ->
  string ->
  ref_ ->
  unit
(** Bind a whole-variable actual (its source name and resolved [ref_])
    to dummy [d] of [callee], by reference when kinds line up, trapping
    with the tree-walker's messages otherwise. *)

val bind_by_value :
  rctx -> Value.cell option array -> callee:string -> d:dummy -> lit:bool -> Value.v -> unit

val exec_block : rctx -> rframe -> stmt array -> unit
val exec_stmt : rctx -> rframe -> stmt -> unit

val fresh_rctx : ?budget:float -> program -> rctx

val run_with : rctx -> program -> exec:(unit -> unit) -> Interp.outcome
