(** Lowering of a typechecked program to a slot-resolved IR, plus an
    evaluator over that IR.

    [lower] resolves every name once: locals and dummies become integer
    slots into a per-frame cell array, module globals and parameters
    become indices into program-wide arrays, callees become indices into
    a per-body link table, and per-site cost tables are precomputed for
    each (vector mode, real kind) pair. [run] then executes the IR with
    bit-identical observable behavior to [Interp.run] on the
    unparse→reparse round-trip of the same program: same status, same
    cost (float accumulation order preserved), same timers, records,
    printed lines, and breakdown.

    The optional [Cache.t] memoizes lowered procedures across variants
    keyed by name + the precision signature of every declaration the
    procedure can observe (its own scope, all module scopes, and all
    transitively reachable callees). It is domain-safe. *)

type program

module Cache : sig
  type t

  val create : unit -> t

  val stats : t -> int * int
  (** [(hits, misses)] since creation. *)
end

val lower :
  ?cache:Cache.t ->
  ?wrapper_owner:(string -> string option) ->
  machine:Machine.t ->
  Fortran.Symtab.t ->
  program
(** [wrapper_owner name] returns [Some orig] when [name] is a generated
    precision wrapper for [orig]; wrappers are exempt from timers and
    inlining, and pay [wrapper_overhead] (mirrors [Interp.run]'s
    [~wrapper_owner]). *)

val run : ?budget:float -> program -> Interp.outcome
(** Execute the lowered program. [budget] bounds the abstract cost; the
    run raises an internal timeout into [Interp.Timed_out] exactly as
    [Interp.run] does. *)
