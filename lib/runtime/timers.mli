(** GPTL-style per-procedure timers.

    The paper measures hotspot CPU time with the GPTL library, excluding
    non-targeted model procedures but including intrinsic/library time
    (Sec. III-E). The interpreter reproduces that attribution:

    - every modeled cost charge is attributed to the procedure currently
      on top of the attribution stack (intrinsics do not push, so their
      cost lands on the caller, as with GPTL);
    - generated wrappers get no timer of their own: their conversion cost
      is attributed to the procedure containing the call site. Casting at
      an {e intra-hotspot} boundary therefore counts against the hotspot
      (the paper's MPAS-A flux and MOM6 findings), while casting at the
      hotspot's {e outer} boundary counts against the surrounding model
      only — which is exactly why the whole-model-guided search of
      Sec. IV-C sees slowdowns that hotspot timing does not;
    - inclusive time (callees included) and call counts are kept per
      procedure; Fig. 6 plots average inclusive time per call. *)

type acc = { mutable calls : float; mutable exclusive : float; mutable inclusive : float }
(** A procedure's accumulator. All-float so the record is stored flat
    and charging never allocates. Fast-path evaluators resolve it once
    per (run, procedure) with {!acc_of} and then {!enter_acc} with no
    hashtable traffic.

    The representation (and [t] below) is exposed so the evaluators can
    inline the per-operation charge — a single flat float-field update
    on [top] — instead of paying a cross-module call with a boxed float
    argument on their hottest path. Treat both as read/charge-only
    outside this module: all stack discipline goes through
    {!enter}/{!enter_acc}/{!exit_}. *)

type t = {
  table : (string, acc) Hashtbl.t;
  mutable names : string array;
  mutable marks : float array;
  mutable accs : acc array;
  mutable depth : int;
  mutable top : acc;  (** accumulator of the stack's top frame *)
  sentinel : acc;  (** discards charges when the stack is empty *)
}

type entry = {
  name : string;
  calls : int;
  exclusive : float;  (** cost charged while this procedure was on top *)
  inclusive : float;  (** cost between entry and exit, callees included *)
}

val create : unit -> t

val acc_of : t -> string -> acc
(** The accumulator for [name], created (and added to the table, hence
    to future {!snapshot}s) on first use. Resolve accumulators only for
    procedures actually being entered, or snapshots grow zero-call
    entries a name-keyed user would never produce. *)

val enter : t -> string -> now:float -> unit
(** Push procedure [name]; [now] is the global cost accumulator. *)

val enter_acc : t -> acc -> string -> now:float -> unit
(** {!enter} with the accumulator pre-resolved. *)

val exit_ : t -> now:float -> unit
(** Pop the top procedure, folding [now - entry_mark] into its inclusive
    time. Calls must nest properly. *)

val charge : t -> float -> unit
(** Attribute cost to the procedure on top (no-op on an empty stack). *)

val current : t -> string option

val snapshot : t -> entry list
(** Per-procedure totals, sorted by descending inclusive time. Only valid
    once the stack has fully unwound (recursion would double-count
    inclusive time; the models are non-recursive). *)

val inclusive_of : entry list -> string -> float
val exclusive_of : entry list -> string -> float
val calls_of : entry list -> string -> int
