(** Closure-compilation backend over the [Lower] IR.

    [compile] translates a lowered program once into a tree of OCaml
    closures — expressions become [env -> float/int/bool/value]
    functions with slots, cost tables and static typing decisions
    pre-bound, statements become [env -> unit] — so the per-evaluation
    inner loop runs no opcode dispatch at all. [run] executes the
    compiled tree with observable behavior bit-identical to [Lower.run]
    (and therefore to [Interp.run]): same status, cost, timers, records,
    printed lines and breakdown.

    Typed unboxed lanes are used only where a declared base type pins
    the runtime representation; everything else falls back to
    [Lower.eval_expr] / [Lower.exec_stmt] on the original IR node, which
    is exact by construction. *)

type t
(** A compiled program, ready to [run] any number of times. *)

(** Memoizes compiled procedures across variants under the same
    precision-signature keys as [Lower.Cache] ([Lower.proc_ir.p_key]).
    Compiled closures never bake procedure indices — callees resolve
    through the frame's link table at runtime — so entries are shared
    across variants and domains. *)
module Cache : sig
  type t

  val create : unit -> t

  val stats : t -> int * int
  (** [(hits, misses)] since creation. Each miss is one procedure
      compiled; each hit is one compilation avoided. Atomics aggregated
      across worker domains, as in [Lower.Cache.stats]. *)
end

val compile : ?cache:Cache.t -> Lower.program -> t
(** Procedures lowered through a [Lower.Cache] (non-empty
    [Lower.proc_ir.p_key]) are compiled at most once per [cache]. *)

val run : ?budget:float -> t -> Interp.outcome
(** Execute the compiled program. [budget] bounds the abstract cost
    exactly as in [Lower.run]. *)
