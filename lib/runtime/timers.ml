(* Accumulators are all-float records on purpose: OCaml stores those
   flat (like a float array), so the per-charge field updates allocate
   nothing. With an int [calls] field the record would be mixed, every
   float store would box, and [charge] — the hottest operation in an
   evaluation — would allocate on each call. Call counts are exact in a
   float far beyond any reachable count. *)
type acc = { mutable calls : float; mutable exclusive : float; mutable inclusive : float }

(* The attribution stack is three parallel arrays (grown on demand)
   rather than a list: [enter]/[exit_] run once per modeled procedure
   call, and cons cells plus a boxed mark float per call were a
   measurable share of evaluation allocation. [marks] is a float array,
   so pushing a mark is a flat store. *)
type t = {
  table : (string, acc) Hashtbl.t;
  mutable names : string array;
  mutable marks : float array;
  mutable accs : acc array;
  mutable depth : int;
  mutable top : acc;  (* accumulator of the stack's top frame *)
  sentinel : acc;  (* discards charges when the stack is empty *)
}

type entry = { name : string; calls : int; exclusive : float; inclusive : float }

let create () =
  let sentinel = { calls = 0.0; exclusive = 0.0; inclusive = 0.0 } in
  {
    table = Hashtbl.create 32;
    names = Array.make 64 "";
    marks = Array.make 64 0.0;
    accs = Array.make 64 sentinel;
    depth = 0;
    top = sentinel;
    sentinel;
  }

let acc_of t name =
  match Hashtbl.find_opt t.table name with
  | Some a -> a
  | None ->
    let a = { calls = 0.0; exclusive = 0.0; inclusive = 0.0 } in
    Hashtbl.add t.table name a;
    a

let grow t =
  let n = Array.length t.names in
  let names = Array.make (2 * n) "" in
  let marks = Array.make (2 * n) 0.0 in
  let accs = Array.make (2 * n) t.sentinel in
  Array.blit t.names 0 names 0 n;
  Array.blit t.marks 0 marks 0 n;
  Array.blit t.accs 0 accs 0 n;
  t.names <- names;
  t.marks <- marks;
  t.accs <- accs

(* pre-resolved accumulator: the fast-path evaluators look the acc up
   once per (run, procedure) and then enter with no hashtable traffic *)
let enter_acc t (a : acc) name ~now =
  a.calls <- a.calls +. 1.0;
  let d = t.depth in
  if d = Array.length t.names then grow t;
  t.names.(d) <- name;
  t.marks.(d) <- now;
  t.accs.(d) <- a;
  t.depth <- d + 1;
  t.top <- a

let enter t name ~now = enter_acc t (acc_of t name) name ~now

let exit_ t ~now =
  if t.depth = 0 then invalid_arg "Timers.exit_: empty stack";
  let d = t.depth - 1 in
  let a = t.accs.(d) in
  a.inclusive <- a.inclusive +. (now -. t.marks.(d));
  t.depth <- d;
  t.top <- (if d = 0 then t.sentinel else t.accs.(d - 1))

(* [charge] sits on the interpreter's hottest path (once per charged
   operation): one flat float-field update, no lookup, no allocation.
   The sentinel absorbs charges outside any frame, as the empty-stack
   no-op used to. *)
let[@inline] charge t cost = t.top.exclusive <- t.top.exclusive +. cost

let current t = if t.depth = 0 then None else Some t.names.(t.depth - 1)

let snapshot t =
  Hashtbl.fold
    (fun name (a : acc) l ->
      {
        name;
        calls = int_of_float a.calls;
        exclusive = a.exclusive;
        inclusive = a.inclusive;
      }
      :: l)
    t.table []
  |> List.sort (fun a b -> compare b.inclusive a.inclusive)

let find entries name = List.find_opt (fun e -> e.name = name) entries
let inclusive_of entries name = match find entries name with Some e -> e.inclusive | None -> 0.0
let exclusive_of entries name = match find entries name with Some e -> e.exclusive | None -> 0.0
let calls_of entries name = match find entries name with Some e -> e.calls | None -> 0
