type acc = { mutable calls : int; mutable exclusive : float; mutable inclusive : float }

type t = {
  table : (string, acc) Hashtbl.t;
  mutable stack : (string * float) list;  (* (name, cost mark at entry) *)
  mutable top : acc option;  (* accumulator of the stack's top frame *)
}

type entry = { name : string; calls : int; exclusive : float; inclusive : float }

let create () = { table = Hashtbl.create 32; stack = []; top = None }

let acc_of t name =
  match Hashtbl.find_opt t.table name with
  | Some a -> a
  | None ->
    let a = { calls = 0; exclusive = 0.0; inclusive = 0.0 } in
    Hashtbl.add t.table name a;
    a

let enter t name ~now =
  let a = acc_of t name in
  a.calls <- a.calls + 1;
  t.stack <- (name, now) :: t.stack;
  t.top <- Some a

let exit_ t ~now =
  match t.stack with
  | [] -> invalid_arg "Timers.exit_: empty stack"
  | (name, mark) :: rest ->
    let a = acc_of t name in
    a.inclusive <- a.inclusive +. (now -. mark);
    t.stack <- rest;
    t.top <- (match rest with [] -> None | (n, _) :: _ -> Some (acc_of t n))

(* [charge] sits on the interpreter's hottest path (once per charged
   operation), so it must not pay a string-keyed lookup — the cached
   [top] accumulator keeps it O(1). *)
let charge t cost =
  match t.top with
  | None -> ()
  | Some a -> a.exclusive <- a.exclusive +. cost

let current t = match t.stack with [] -> None | (name, _) :: _ -> Some name

let snapshot t =
  Hashtbl.fold
    (fun name (a : acc) l ->
      { name; calls = a.calls; exclusive = a.exclusive; inclusive = a.inclusive } :: l)
    t.table []
  |> List.sort (fun a b -> compare b.inclusive a.inclusive)

let find entries name = List.find_opt (fun e -> e.name = name) entries
let inclusive_of entries name = match find entries name with Some e -> e.inclusive | None -> 0.0
let exclusive_of entries name = match find entries name with Some e -> e.exclusive | None -> 0.0
let calls_of entries name = match find entries name with Some e -> e.calls | None -> 0
